// Scenario: inspecting the machinery — what Partition(beta) actually does.
//
// Renders the Miller-Peng-Xu exponential-shift clustering on a small grid
// as ASCII art (one letter per cluster), then prints the Lemma 2.1 /
// Theorem 2.2 statistics for a beta sweep. Useful for building intuition
// about why random beta + curtailed schedules propagate messages at
// log n / log D per hop.
//
//   ./clustering_demo [--rows=16] [--cols=48] [--beta=0.18] [--seed=5]
#include <cstdio>
#include <iostream>

#include "core/radiocast.hpp"

using namespace radiocast;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("rows", "grid rows (default 16)")
      .describe("cols", "grid cols (default 48)")
      .describe("beta", "clustering rate for the picture (default 0.18)")
      .describe("seed", "rng seed (default 5)");
  const auto rows = static_cast<graph::NodeId>(cli.get_uint("rows", 16));
  const auto cols = static_cast<graph::NodeId>(cli.get_uint("cols", 48));
  const double beta = cli.get_double("beta", 0.18);
  const std::uint64_t seed = cli.get_uint("seed", 5);

  const graph::Graph g = graph::grid(rows, cols);
  const std::uint32_t d = rows + cols - 2;
  util::Rng rng(seed);

  // Picture: nodes labelled by cluster (letters cycle), centres uppercase.
  const auto p = cluster::partition(g, beta, rng);
  const auto dense = p.dense_ids();
  std::printf("Partition(beta=%.2f) on a %ux%u grid — %zu clusters; "
              "centres shown as '#':\n\n", beta, rows, cols,
              dense.center_of_id.size());
  for (graph::NodeId r = 0; r < rows; ++r) {
    std::printf("  ");
    for (graph::NodeId c = 0; c < cols; ++c) {
      const graph::NodeId v = r * cols + c;
      if (p.is_center(v)) {
        std::printf("#");
      } else {
        std::printf("%c", 'a' + static_cast<char>(dense.id_of_node[v] % 26));
      }
    }
    std::printf("\n");
  }

  // Statistics sweep.
  util::Table t({"beta", "#clusters", "mean dist to centre",
                 "Thm 2.2 bound", "cut fraction", "cut/beta",
                 "risky nodes"});
  for (double b : {0.05, 0.1, 0.2, 0.4}) {
    const auto part = cluster::partition(g, b, rng);
    const auto risky = cluster::boundary_nodes(g, part);
    std::uint32_t risky_count = 0;
    for (auto x : risky) risky_count += x;
    t.row()
        .add(b, 2)
        .add(std::uint64_t{part.dense_ids().center_of_id.size()})
        .add(cluster::mean_dist_to_center(part), 2)
        .add(core::theory::bound_cluster_distance(g.node_count(), d, b), 2)
        .add(cluster::cut_fraction(g, part), 4)
        .add(cluster::cut_fraction(g, part) / b, 3)
        .add(std::uint64_t{risky_count});
  }
  t.print(std::cout, "Lemma 2.1 / Theorem 2.2 statistics");
  return 0;
}
