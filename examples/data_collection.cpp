// Scenario: standing up a data-collection service on a fresh deployment —
// the full pipeline the paper's Section 1.2 motivates.
//
//   1. leader election     (Algorithm 6: the network picks a sink)
//   2. BFS-tree building   (layered growth from the sink)
//   3. k-message dissemination down the tree (Lemma 2.3's pipelined
//      schedule: firmware chunks / configuration pages to every node)
//
//   ./data_collection [--n=800] [--radius=0.07] [--chunks=24] [--seed=21]
#include <cstdio>

#include "core/radiocast.hpp"

using namespace radiocast;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("n", "sensors (default 800)")
      .describe("radius", "radio range (default 0.07)")
      .describe("chunks", "configuration chunks to disseminate (default 24)")
      .describe("seed", "rng seed (default 21)");
  const auto n = static_cast<graph::NodeId>(cli.get_uint("n", 800));
  const double radius = cli.get_double("radius", 0.07);
  const auto chunks = static_cast<std::uint32_t>(cli.get_uint("chunks", 24));
  const std::uint64_t seed = cli.get_uint("seed", 21);

  util::Rng rng(seed);
  const graph::Graph g = graph::random_geometric(n, radius, rng);
  const std::uint32_t d = std::max(2u, graph::diameter_double_sweep(g));
  std::printf("deployment: %s, D>=%u\n", g.summary().c_str(), d);

  // Steps 1+2 fused: build_bfs_tree elects when no root hint is given.
  const auto tree = core::build_bfs_tree(g, d, core::BfsTreeParams{}, seed);
  if (!tree.success) {
    std::printf("tree construction FAILED\n");
    return 1;
  }
  std::uint32_t max_layer = 0;
  for (auto l : tree.layer) max_layer = std::max(max_layer, l);
  std::printf(
      "sink elected: node %u (%llu rounds); BFS tree grown in %llu rounds, "
      "depth %u\n",
      tree.root, static_cast<unsigned long long>(tree.election_rounds),
      static_cast<unsigned long long>(tree.growth_rounds), max_layer);

  // Step 3: pipeline `chunks` messages down the tree.
  std::vector<radio::Payload> msgs(chunks);
  for (std::uint32_t i = 0; i < chunks; ++i) msgs[i] = 0xF00D0000u + i;
  core::MultiMessageParams mp;
  mp.root = tree.root;
  const auto mm = core::multi_message_broadcast(g, msgs, mp, seed);
  std::printf(
      "dissemination: %u chunks to all %u nodes in %llu rounds "
      "(schedule period %u, pipeline efficiency %.2f, ideal P*(D+k)=%u)\n",
      chunks, g.node_count(), static_cast<unsigned long long>(mm.rounds),
      mm.period, mm.pipeline_ratio,
      mm.period * (max_layer + chunks));
  if (!mm.success) {
    std::printf("dissemination FAILED\n");
    return 1;
  }
  std::printf("\ntotal: %llu rounds for election + tree + %u-chunk rollout\n",
              static_cast<unsigned long long>(tree.election_rounds +
                                              tree.growth_rounds + mm.rounds),
              chunks);
  return 0;
}
