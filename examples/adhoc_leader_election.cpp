// Scenario: bootstrap coordination in a freshly deployed ad-hoc network.
//
// Drones are scattered over an area with no infrastructure and no assigned
// coordinator. Before any multi-message protocol (BFS trees, routing,
// aggregation) can start, the network must elect a leader. We run
// Algorithm 6 (candidates w.p. Theta(log n/n) + Compete) and compare
// against the classical binary-search reduction, demonstrating the paper's
// headline: leader election at broadcast price.
//
//   ./adhoc_leader_election [--n=1500] [--radius=0.06] [--seed=3] [--runs=3]
#include <cstdio>

#include "baselines/le_binary_search.hpp"
#include "core/radiocast.hpp"

using namespace radiocast;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("n", "number of drones (default 1500)")
      .describe("radius", "radio range in the unit square (default 0.06)")
      .describe("seed", "rng seed (default 3)")
      .describe("runs", "independent elections to run (default 3)");
  const auto n = static_cast<graph::NodeId>(cli.get_uint("n", 1500));
  const double radius = cli.get_double("radius", 0.06);
  const std::uint64_t seed = cli.get_uint("seed", 3);
  const int runs = static_cast<int>(cli.get_uint("runs", 3));

  util::Rng rng(seed);
  const graph::Graph g = graph::random_geometric(n, radius, rng);
  const std::uint32_t d = std::max(2u, graph::diameter_double_sweep(g));
  std::printf("swarm: %s, D>=%u\n\n", g.summary().c_str(), d);

  for (int run = 0; run < runs; ++run) {
    const std::uint64_t s = util::mix_seed(seed, run);
    const auto le = core::elect_leader(g, d, core::LeaderElectionParams{}, s);
    const auto bc = core::broadcast(g, d, 0, 1, core::CompeteParams{}, s);
    const auto ble =
        baselines::binary_search_leader_election(g, d, {}, s);
    std::printf(
        "run %d: CD election -> node %-5u in %7llu rounds "
        "(broadcast alone: %7llu; binary-search LE: %8llu rounds)\n",
        run, le.leader, static_cast<unsigned long long>(le.rounds),
        static_cast<unsigned long long>(bc.rounds),
        static_cast<unsigned long long>(ble.rounds));
    if (!le.success || !ble.success) {
      std::printf("run %d: FAILURE (agreement not reached)\n", run);
      return 1;
    }
  }
  std::printf("\nLE ~ broadcast time: the paper's Theorem 5.2 (previously LE "
              "always cost strictly more).\n");
  return 0;
}
