// Scenario: an emergency alert in a city-scale sensor grid.
//
// A metropolitan sensor deployment is laid out as a (sparse, large-
// diameter) grid — the regime where the paper's O(D log n / log D)
// broadcast shines over the classical Decay algorithms, because D is
// polynomial in n. A sensor at one corner detects an event and must alert
// the whole network. We race the Czumaj-Davies broadcast against the
// BGI and CR/KP baselines on the same topology and seed, and show the
// per-hop cost of each.
//
//   ./sensor_grid_alert [--rows=40] [--cols=100] [--seed=7]
#include <cmath>
#include <cstdio>

#include "baselines/decay_broadcast.hpp"
#include "core/radiocast.hpp"

using namespace radiocast;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("rows", "grid rows (default 40)")
      .describe("cols", "grid cols (default 100)")
      .describe("seed", "rng seed (default 7)");
  const auto rows = static_cast<graph::NodeId>(cli.get_uint("rows", 40));
  const auto cols = static_cast<graph::NodeId>(cli.get_uint("cols", 100));
  const std::uint64_t seed = cli.get_uint("seed", 7);

  const graph::Graph g = graph::grid(rows, cols);
  const std::uint32_t d = rows + cols - 2;
  std::printf("sensor grid %ux%u: %s, D=%u (D ~ n^%.2f)\n", rows, cols,
              g.summary().c_str(), d,
              std::log2(double(d)) / std::log2(double(g.node_count())));

  const graph::NodeId detector = 0;  // corner sensor sees the event
  const radio::Payload alert = 911;

  const auto cd = core::broadcast(g, d, detector, alert,
                                  core::CompeteParams{}, seed);
  const auto bgi = baselines::decay_broadcast(
      g, d, {{detector, alert}}, baselines::bgi_params(g.node_count()), seed);
  const auto cr = baselines::decay_broadcast(
      g, d, {{detector, alert}},
      baselines::cr_params(g.node_count(), d), seed);

  std::printf("\n  algorithm            rounds    rounds/hop   informed\n");
  std::printf("  Czumaj-Davies      %8llu    %8.2f    %u/%u\n",
              static_cast<unsigned long long>(cd.rounds),
              double(cd.rounds) / d, cd.informed, g.node_count());
  std::printf("  BGI Decay          %8llu    %8.2f    %u/%u\n",
              static_cast<unsigned long long>(bgi.rounds),
              double(bgi.rounds) / d, bgi.informed, g.node_count());
  std::printf("  CR/KP Decay        %8llu    %8.2f    %u/%u\n",
              static_cast<unsigned long long>(cr.rounds),
              double(cr.rounds) / d, cr.informed, g.node_count());
  std::printf("\n  (theory per-hop: CD ~ log n/log D = %.2f, BGI ~ log n = "
              "%.2f, CR ~ log(n/D) = %.2f)\n",
              util::log_ratio(g.node_count(), d),
              util::safe_log2(g.node_count()),
              std::log2(std::max(2.0, double(g.node_count()) / d)));
  return cd.success && bgi.success && cr.success ? 0 : 1;
}
