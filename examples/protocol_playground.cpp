// Scenario: writing your own protocol against the node-local API.
//
// Shows the Protocol interface (what a real radio node sees: n, D, its own
// id, its random bits, and successful receptions — never the topology) by
// implementing the classic Decay flooding protocol from scratch and
// running it with a per-round activity trace.
//
//   ./protocol_playground [--n=300] [--seed=9]
#include <cstdio>
#include <iostream>
#include <memory>

#include "core/radiocast.hpp"

using namespace radiocast;

namespace {

/// Every informed node repeats synchronized Decay forever; uninformed nodes
/// listen. This is the Bar-Yehuda-Goldreich-Itai broadcast, written as a
/// node-local state machine.
class DecayFlood final : public radio::Protocol {
 public:
  explicit DecayFlood(bool is_source) : is_source_(is_source) {}

  void start(const radio::NodeInfo& info, util::Rng rng) override {
    rng_ = rng;
    lambda_ = schedule::decay_round_length(info.n);
    if (is_source_) message_ = 0xA1E27;
  }

  radio::Action on_round(radio::Round r) override {
    if (message_ == radio::kNoPayload) return radio::Action::listen();
    const auto step = static_cast<std::uint32_t>(r % lambda_) + 1;
    if (rng_.bernoulli(schedule::decay_probability(step))) {
      return radio::Action::send(message_);
    }
    return radio::Action::listen();
  }

  void on_message(radio::Round, radio::Payload p) override {
    if (message_ == radio::kNoPayload) message_ = p;
  }

  bool done() const override { return message_ != radio::kNoPayload; }

 private:
  bool is_source_;
  util::Rng rng_{0};
  std::uint32_t lambda_ = 1;
  radio::Payload message_ = radio::kNoPayload;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("n", "nodes in the random geometric network (default 300)")
      .describe("seed", "rng seed (default 9)");
  const auto n = static_cast<graph::NodeId>(cli.get_uint("n", 300));
  const std::uint64_t seed = cli.get_uint("seed", 9);

  util::Rng rng(seed);
  const graph::Graph g = graph::random_geometric(n, 0.09, rng);
  const std::uint32_t d = std::max(2u, graph::diameter_double_sweep(g));
  std::printf("network: %s, D>=%u\n", g.summary().c_str(), d);

  radio::Engine engine(g, d);
  radio::Trace trace;
  engine.attach_trace(&trace);
  util::Rng seeds(seed + 1);
  engine.install(
      [](graph::NodeId v) -> std::unique_ptr<radio::Protocol> {
        return std::make_unique<DecayFlood>(v == 0);
      },
      seeds);

  const auto result = engine.run(200000);
  std::printf("decay flood: %s after %llu rounds "
              "(%llu transmissions, %llu deliveries, %llu collisions)\n",
              result.all_done ? "everyone informed" : "INCOMPLETE",
              static_cast<unsigned long long>(result.rounds),
              static_cast<unsigned long long>(result.transmissions),
              static_cast<unsigned long long>(result.deliveries),
              static_cast<unsigned long long>(result.collisions));
  std::cout << trace.activity_summary() << "\n";
  std::printf("(BGI theory: ~(D + log n) log n = %.0f rounds)\n",
              core::theory::bound_bgi(g.node_count(), d));
  return result.all_done ? 0 : 1;
}
