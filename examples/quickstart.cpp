// Quickstart: broadcast a message through an ad-hoc radio network and
// elect a leader, with the Czumaj-Davies algorithms.
//
//   ./quickstart [--n=2000] [--radius=0.05] [--seed=42]
//
// Builds a random geometric ("sensor network") topology, runs the
// spontaneous-transmission broadcast of Theorem 5.1 and the leader
// election of Theorem 5.2, and prints what happened.
#include <cstdio>

#include "core/radiocast.hpp"

using namespace radiocast;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("n", "number of nodes (default 2000)")
      .describe("radius", "unit-disk connection radius (default 0.05)")
      .describe("seed", "rng seed (default 42)");
  const auto n = static_cast<graph::NodeId>(cli.get_uint("n", 2000));
  const double radius = cli.get_double("radius", 0.05);
  const std::uint64_t seed = cli.get_uint("seed", 42);

  // 1. A topology. Nodes scattered in the unit square; two nodes hear each
  //    other iff within `radius`. The library repairs connectivity if the
  //    radius is below the connectivity threshold.
  util::Rng rng(seed);
  graph::Graph g = graph::random_geometric(n, radius, rng);
  const std::uint32_t d = graph::diameter_double_sweep(g);
  std::printf("topology : %s, diameter >= %u\n", g.summary().c_str(), d);

  // 2. Broadcast: node 0 has a message; everyone must learn it.
  core::CompeteParams params;  // the paper's defaults
  const auto bc = core::broadcast(g, d, /*source=*/0, /*message=*/0xC0FFEE,
                                  params, seed);
  std::printf(
      "broadcast: %s in %llu rounds (+%llu charged precompute), "
      "%u/%u nodes informed\n",
      bc.success ? "completed" : "INCOMPLETE",
      static_cast<unsigned long long>(bc.rounds),
      static_cast<unsigned long long>(bc.precompute_rounds_charged),
      bc.informed, g.node_count());

  // 3. Leader election: candidates self-select with probability
  //    Theta(log n / n), draw random IDs, and Compete propagates the max.
  const auto le = core::elect_leader(g, d, core::LeaderElectionParams{}, seed);
  std::printf(
      "election : %s in %llu rounds — leader is node %u "
      "(%u candidates stood)\n",
      le.success ? "agreed" : "FAILED",
      static_cast<unsigned long long>(le.rounds), le.leader,
      le.candidate_count);

  // 4. The theory reference for this (n, D).
  std::printf("theory   : CD bound ~ %.0f rounds, BGI (classical Decay) "
              "bound ~ %.0f rounds\n",
              core::theory::bound_cd(g.node_count(), d),
              core::theory::bound_bgi(g.node_count(), d));
  return bc.success && le.success ? 0 : 1;
}
