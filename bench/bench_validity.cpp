// E11 — Lemma 4.2: during Intra-Cluster Propagation, a node within the
// curtailed radius of its centre is "valid" (correctly exchanges messages
// with the centre despite inter-cluster collisions) with probability >=
// 0.99, thanks to the Algorithm 4 background rescue whose cost scales with
// the number q of bordering clusters.
//
// We run single ICP windows over real Partition(beta) clusterings, and
// measure (a) the fraction of in-radius nodes that received the outward
// wave (with and without the background), and (b) risky-node counts and
// the distribution of q (bordering clusters), the quantity Lemma 4.2's
// O(q log^2 n) rescue-time bound depends on.
#include <cmath>
#include <vector>

#include "cluster/exponential_shifts.hpp"
#include "cluster/partition_stats.hpp"
#include "schedule/intra_cluster.hpp"
#include "sim/instances.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/math.hpp"

using namespace radiocast;

RADIOCAST_SCENARIO(validity, "validity",
                   "E11: Lemma 4.2 ICP validity and background rescue") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(11);
  const int reps = ctx.reps(2, 5);
  util::Rng rng(seed);

  std::vector<sim::Instance> instances;
  instances.push_back(sim::make_grid_instance(quick ? 30 : 50,
                                              quick ? 30 : 50));
  if (!quick) {
    instances.push_back(sim::make_rgg_instance(2000, 0.04, rng));
  }

  util::Table t({"graph", "beta", "risky frac", "q p95", "valid% bg ON",
                 "valid% bg OFF", "rescued/window"});
  for (const auto& inst : instances) {
    for (double beta : {0.15, 0.3}) {
      const std::uint64_t base = util::mix_seed(
          seed, inst.g.node_count() * 10 + std::uint64_t(beta * 100));
      const auto stats = ctx.runner.replicate(
          reps, base, 5, [&](int rep, std::uint64_t s) {
            util::Rng rep_rng(s);
            std::vector<double> m(5, std::nan(""));
            const auto p = cluster::partition(inst.g, beta, rep_rng);
            const auto risky = cluster::boundary_nodes(inst.g, p);
            std::uint32_t risky_count = 0;
            util::Sample qs;
            for (graph::NodeId v = 0; v < inst.g.node_count(); ++v) {
              risky_count += risky[v];
              if (risky[v]) {
                qs.add(cluster::bordering_clusters(inst.g, p, v));
              }
            }
            m[0] = static_cast<double>(risky_count) / inst.g.node_count();
            if (!qs.empty()) m[1] = qs.quantile(0.95);

            const std::uint32_t ell =
                1 + static_cast<std::uint32_t>(
                        util::safe_log2(inst.g.node_count()) / beta);
            for (int bg = 0; bg < 2; ++bg) {
              const schedule::TreeSchedule sched(
                  inst.g, p, schedule::ScheduleMode::kPipelined);
              radio::Network net(inst.g);
              std::vector<radio::Payload> best(inst.g.node_count(),
                                               radio::kNoPayload);
              for (graph::NodeId v = 0; v < inst.g.node_count(); ++v) {
                if (p.is_center(v)) best[v] = 100;
              }
              schedule::IcpParams params;
              params.pass_hops = ell;
              params.with_background = bg == 1;
              params.seed = util::mix_seed(s, bg);
              params.window_id = static_cast<std::uint32_t>(rep);
              const auto wstats =
                  schedule::run_icp_window(net, sched, best, params, rep_rng);
              std::uint32_t in_radius = 0, got = 0;
              for (graph::NodeId v = 0; v < inst.g.node_count(); ++v) {
                if (p.dist_to_center[v] <= ell) {
                  ++in_radius;
                  got += best[v] != radio::kNoPayload;
                }
              }
              const double frac =
                  in_radius ? static_cast<double>(got) / in_radius : 1.0;
              if (bg == 1) {
                m[2] = frac;
                m[4] = static_cast<double>(wstats.rescued);
              } else {
                m[3] = frac;
              }
            }
            return m;
          });
      t.row()
          .add(inst.name)
          .add(beta, 2)
          .add(stats[0].mean(), 3)
          .add(stats[1].mean(), 1)
          .add(100.0 * stats[2].mean(), 1)
          .add(100.0 * stats[3].mean(), 1)
          .add(stats[4].mean(), 1);
    }
  }
  ctx.emit(t, "E11: Lemma 4.2 validity and background rescue",
           "e11_validity");
}
