// E12 — model contrast: what collision detection buys (Section 1.1's
// model discussion and the Ghaffari-Haeupler-Khabbazian reference [11]).
//
// We race, on the same topologies: (a) BGI Decay (no CD), (b) the paper's
// CD algorithm CD-broadcast emulation: beep-wave layering + layered Decay
// (uses collisions as 1-bit energy), and print the GHK O(D + log^6 n)
// analytic curve. The beep wave itself (exact BFS layering in D+1 rounds)
// is impossible without collision detection — the scenario also
// demonstrates that by running it under the no-CD medium and reporting the
// stall rate.
#include <cmath>
#include <memory>
#include <vector>

#include "baselines/protocols.hpp"
#include "core/theory.hpp"
#include "radio/engine.hpp"
#include "sim/instances.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/math.hpp"

using namespace radiocast;
using baselines::protocols::BeepWave;
using baselines::protocols::DecayBroadcast;
using baselines::protocols::LayeredCdBroadcast;

namespace {

template <typename P>
radio::EngineResult run_broadcast(const graph::Graph& g, std::uint32_t d,
                                  radio::CollisionModel model,
                                  std::uint64_t seed) {
  radio::Engine eng(g, d, model);
  util::Rng seeds(seed);
  eng.install(
      [](graph::NodeId v) -> std::unique_ptr<radio::Protocol> {
        return std::make_unique<P>(v == 0 ? radio::Payload{7}
                                          : radio::kNoPayload);
      },
      seeds);
  return eng.run(5'000'000);
}

}  // namespace

RADIOCAST_SCENARIO(collision_detection, "collision-detection",
                   "E12: collision-detection model contrast (GHK)") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(12);
  const int reps = ctx.reps(1, 3);
  util::Rng rng(seed);

  std::vector<sim::Instance> instances;
  instances.push_back(sim::make_grid_instance(quick ? 15 : 30,
                                              quick ? 30 : 60));
  instances.push_back(
      sim::make_rgg_instance(quick ? 400 : 1200, quick ? 0.08 : 0.045, rng));

  util::Table t({"graph", "BGI (no CD)", "layered CD", "CD/BGI",
                 "GHK bound D+log^6 n", "beep-wave stalls w/o CD"});
  for (std::size_t ii = 0; ii < instances.size(); ++ii) {
    const auto& inst = instances[ii];
    const auto stats = ctx.runner.replicate(
        reps, util::mix_seed(seed, ii), 3, [&](int, std::uint64_t s) {
          std::vector<double> m(3, std::nan(""));
          const auto rb = run_broadcast<DecayBroadcast>(
              inst.g, inst.diameter, radio::CollisionModel::kNoDetection, s);
          if (rb.all_done) m[0] = static_cast<double>(rb.rounds);
          const auto rc = run_broadcast<LayeredCdBroadcast>(
              inst.g, inst.diameter, radio::CollisionModel::kDetection, s);
          if (rc.all_done) m[1] = static_cast<double>(rc.rounds);
          // Beep wave under the no-CD medium: count nodes that never layer.
          radio::Engine eng(inst.g, inst.diameter,
                            radio::CollisionModel::kNoDetection);
          util::Rng seeds(s);
          eng.install(
              [](graph::NodeId v) -> std::unique_ptr<radio::Protocol> {
                return std::make_unique<BeepWave>(v == 0);
              },
              seeds);
          eng.run(static_cast<radio::Round>(inst.diameter) + 2);
          std::uint32_t stalled = 0;
          for (graph::NodeId v = 0; v < inst.g.node_count(); ++v) {
            const auto& p = static_cast<const BeepWave&>(eng.protocol(v));
            stalled += p.layer() == BeepWave::kNoLayer;
          }
          m[2] = static_cast<double>(stalled) / inst.g.node_count();
          return m;
        });
    const double logn = util::safe_log2(inst.g.node_count());
    t.row()
        .add(inst.name)
        .add(stats[0].mean(), 0)
        .add(stats[1].mean(), 0)
        .add(stats[0].mean() > 0 ? stats[1].mean() / stats[0].mean() : 0.0,
             2)
        .add(static_cast<double>(inst.diameter) +
                 logn * logn * logn * logn * logn * logn / 1e4,
             0)
        .add(stats[2].mean(), 3);
  }
  ctx.emit(t, "E12: collision detection model contrast", "e12_cd");
  ctx.note(
      "(GHK's O(D + log^6 n) algorithm [11] is out of scope; the "
      "layered-CD protocol here demonstrates the model's power — "
      "exact BFS layering in D+1 rounds — which the stall column "
      "shows is impossible without CD.)");
}
