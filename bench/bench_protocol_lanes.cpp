// Lane-parallel protocol execution: real protocol cores (not synthetic
// floods) running their Monte-Carlo replications through BatchNetwork
// lanes vs one scalar Network run per seed.
//
// Part 1 — lane-batched Decay. A 64-seed Monte-Carlo of repeated Decay
// rounds (every node participates, relaying a fixed value) on a Gnp
// instance: the scalar rows drive the lane-generic decay_round_lanes
// through a 1-lane Network per seed (sim::Runner::replicate); the lanes
// rows drive the same code through a 64-lane bitslice BatchNetwork
// (Runner::replicate_batched), so all seeds share each CSR traversal.
// Both sides draw the same per-lane coin streams, so the per-seed results
// are byte-identical (tests/test_protocol_lanes.cpp) and the comparison
// is pure execution cost. Acceptance bar: lanes >= 4x scalar reps/s.
//
// Part 2 — lane-batched broadcast/Compete. The full Decay-relay Compete
// protocol (core::broadcast_batched / compete_batched): per-lane payload
// planes carry each lane's own best[] knowledge, lanes terminate on their
// own clocks, and the batch returns per-seed success/rounds identical to
// per-seed scalar runs.
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/compete_batched.hpp"
#include "graph/generators.hpp"
#include "radio/batch_network.hpp"
#include "radio/network.hpp"
#include "schedule/decay.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"

using namespace radiocast;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr radio::Payload kDecayValue = 7;

/// One replication (= one lane batch) of Part 1's Decay workload: all
/// nodes participate for `cycles` full Decay rounds. Returns one
/// {rounds, deliveries, wall ms} vector per lane.
std::vector<std::vector<double>> decay_lanes_body(
    const graph::Graph& g, radio::LaneExecutor& net, int cycles,
    const std::vector<std::uint64_t>& seeds) {
  const double t0 = now_ms();
  const graph::NodeId n = g.node_count();
  const int lanes = static_cast<int>(seeds.size());
  const std::uint64_t lane_mask = radio::lane_mask(lanes);
  std::vector<util::Rng> rngs;
  rngs.reserve(seeds.size());
  for (const std::uint64_t s : seeds) rngs.emplace_back(s);
  const std::vector<std::uint64_t> participates(n, lane_mask);
  const std::vector<radio::Payload> payload(n, kDecayValue);
  std::vector<radio::Payload> best(static_cast<std::size_t>(lanes) * n,
                                   radio::kNoPayload);
  radio::BatchOutcome out;
  std::vector<std::uint64_t> delivered(static_cast<std::size_t>(lanes), 0);
  const std::uint32_t steps = schedule::decay_round_length(n);
  for (int c = 0; c < cycles; ++c) {
    for (std::uint32_t s = 1; s <= steps; ++s) {
      schedule::decay_step_lanes(net, participates, payload, s, best, rngs,
                                 out);
      for (int l = 0; l < lanes; ++l) {
        delivered[static_cast<std::size_t>(l)] += out.delivered_count[l];
      }
    }
  }
  const double rounds = static_cast<double>(cycles) * steps;
  const double wall = now_ms() - t0;
  std::vector<std::vector<double>> result;
  result.reserve(seeds.size());
  for (int l = 0; l < lanes; ++l) {
    result.push_back({rounds,
                      static_cast<double>(delivered[static_cast<std::size_t>(l)]),
                      wall / lanes});
  }
  return result;
}

}  // namespace

RADIOCAST_SCENARIO(protocol_lanes, "protocol-lanes",
                   "real protocol cores through BatchNetwork lanes: "
                   "lane-batched Decay and Decay-relay broadcast/Compete "
                   "vs per-seed scalar execution") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(17);
  const int reps = ctx.reps(64, 64);
  // The scalar rows are the per-seed reference; --medium selects the
  // backend the lane-batched rows run on (bitslice unless overridden).
  const radio::MediumKind lanes_medium =
      ctx.cli.has("medium") ? ctx.medium_kind() : radio::MediumKind::kBitslice;
  const std::string lanes_medium_name{radio::to_string(lanes_medium)};

  auto add_row = [&](util::Table& t, const std::string& label, int reps_n,
                     const std::vector<util::OnlineStats>& stats, double wall,
                     double base_wall) {
    t.row()
        .add(label)
        .add(static_cast<double>(reps_n), 0)
        .add(stats[0].mean(), 1)
        .add(stats[2].count() > 0 ? stats[2].mean() : 0.0, 3)
        .add(wall, 1)
        .add(wall > 0 ? reps_n * 1e3 / wall : 0.0, 1)
        .add(base_wall > 0 && wall > 0 ? base_wall / wall : 1.0, 2);
  };

  // ---- Part 1: lane-batched Decay ----------------------------------------
  {
    util::Rng grng(seed);
    const graph::NodeId n = quick ? 2000 : 24000;
    const double avg_deg = quick ? 16.0 : 12.0;
    const graph::Graph g = graph::gnp(n, avg_deg / n, grng);
    const int cycles = quick ? 4 : 8;

    util::Table t({"protocol", "reps", "rounds", "wall/rep ms", "wall ms",
                   "reps/s", "speedup"});
    double scalar_wall = 0.0;
    {
      const double t0 = now_ms();
      const auto stats = ctx.runner.replicate(
          reps, seed, 3, [&](int rep, std::uint64_t rep_seed) {
            radio::Network net(g);
            auto lanes = decay_lanes_body(g, net, cycles, {rep_seed});
            ctx.record({"decay-scalar", rep, lanes[0][0], lanes[0][1],
                        lanes[0][2], "scalar", 1});
            return lanes[0];
          });
      scalar_wall = now_ms() - t0;
      add_row(t, "decay-scalar", reps, stats, scalar_wall, scalar_wall);
    }
    {
      const double t0 = now_ms();
      const auto stats = ctx.runner.replicate_batched(
          reps, seed, 3, radio::kMaxLanes,
          [&](int first_rep, const std::vector<std::uint64_t>& seeds) {
            radio::BatchNetwork bn(g, static_cast<int>(seeds.size()),
                                   radio::CollisionModel::kNoDetection,
                                   lanes_medium);
            auto lanes = decay_lanes_body(g, bn, cycles, seeds);
            for (std::size_t l = 0; l < lanes.size(); ++l) {
              ctx.record({"decay-lanes", first_rep + static_cast<int>(l),
                          lanes[l][0], lanes[l][1], lanes[l][2],
                          lanes_medium_name,
                          static_cast<int>(seeds.size())});
            }
            return lanes;
          });
      add_row(t, "decay-lanes", reps, stats, now_ms() - t0, scalar_wall);
    }
    ctx.emit(t,
             "lane-batched Decay on gnp(n=" + std::to_string(n) +
                 ", avg_deg~" + std::to_string(static_cast<int>(avg_deg)) +
                 "), " + std::to_string(reps) + " seeds x " +
                 std::to_string(cycles) + " Decay rounds",
             "protocol_lanes_decay");
    ctx.note("(same lane-generic decay_round_lanes both rows; per-seed "
             "results are byte-identical — acceptance bar is >= 4x scalar "
             "reps/s)");
  }

  // ---- Part 2: lane-batched Decay-relay broadcast / Compete --------------
  {
    util::Rng grng(util::mix_seed(seed, 1));
    const graph::NodeId n = quick ? 1500 : 4000;
    const graph::Graph g = graph::gnp(n, 12.0 / n, grng);
    core::BatchedCompeteParams params;
    params.max_rounds = quick ? 2000 : 6000;
    const std::vector<core::CompeteSource> sources{
        {0, 1'000'000}, {n / 2, 999'999}};
    const int breps = quick ? 32 : 64;

    util::Table t({"protocol", "reps", "rounds", "wall/rep ms", "wall ms",
                   "reps/s", "speedup"});
    double scalar_wall = 0.0;
    double success_scalar = 0.0, success_lanes = 0.0;
    {
      const double t0 = now_ms();
      const auto stats = ctx.runner.replicate(
          breps, seed, 4, [&](int rep, std::uint64_t rep_seed) {
            const double r0 = now_ms();
            radio::Network net(g);
            const std::uint64_t one[] = {rep_seed};
            const auto lane =
                core::compete_batched(net, sources, params, one).front();
            const double wall = now_ms() - r0;
            ctx.record({"broadcast-scalar", rep,
                        static_cast<double>(lane.rounds),
                        static_cast<double>(lane.deliveries), wall, "scalar",
                        1});
            return std::vector<double>{static_cast<double>(lane.rounds),
                                       static_cast<double>(lane.deliveries),
                                       wall, lane.success ? 1.0 : 0.0};
          });
      scalar_wall = now_ms() - t0;
      success_scalar = stats[3].mean();
      add_row(t, "broadcast-scalar", breps, stats, scalar_wall, scalar_wall);
    }
    {
      const double t0 = now_ms();
      const auto stats = ctx.runner.replicate_batched(
          breps, seed, 4, radio::kMaxLanes,
          [&](int first_rep, const std::vector<std::uint64_t>& seeds) {
            const double b0 = now_ms();
            const auto lanes =
                core::compete_batched(g, sources, params, seeds, lanes_medium);
            const double wall = (now_ms() - b0) / lanes.size();
            std::vector<std::vector<double>> metrics;
            metrics.reserve(lanes.size());
            for (std::size_t l = 0; l < lanes.size(); ++l) {
              const auto& lane = lanes[l];
              ctx.record({"broadcast-lanes", first_rep + static_cast<int>(l),
                          static_cast<double>(lane.rounds),
                          static_cast<double>(lane.deliveries), wall,
                          lanes_medium_name,
                          static_cast<int>(seeds.size())});
              metrics.push_back({static_cast<double>(lane.rounds),
                                 static_cast<double>(lane.deliveries), wall,
                                 lane.success ? 1.0 : 0.0});
            }
            return metrics;
          });
      success_lanes = stats[3].mean();
      add_row(t, "broadcast-lanes", breps, stats, now_ms() - t0, scalar_wall);
    }
    ctx.emit(t,
             "Decay-relay Compete (|S|=2) on gnp(n=" + std::to_string(n) +
                 ", avg_deg~12), " + std::to_string(breps) + " seeds",
             "protocol_lanes_broadcast");
    ctx.note("(success rate scalar=" + std::to_string(success_scalar) +
             " lanes=" + std::to_string(success_lanes) +
             " — identical seeds, identical per-lane results)");
  }
}
