// Lane-parallel protocol execution: real protocol cores (not synthetic
// floods) running their Monte-Carlo replications through BatchNetwork
// lanes vs one scalar Network run per seed.
//
// Part 1 — lane-batched Decay. A 64-seed Monte-Carlo of repeated Decay
// rounds (every node participates, relaying a fixed value) on a Gnp
// instance: the scalar rows drive the lane-generic decay_round_lanes
// through a 1-lane Network per seed (sim::Runner::replicate); the lanes
// rows drive the same code through a 64-lane bitslice BatchNetwork
// (Runner::replicate_batched), so all seeds share each CSR traversal.
// Both sides draw the same per-lane coin streams, so the per-seed results
// are byte-identical (tests/test_protocol_lanes.cpp) and the comparison
// is pure execution cost. Acceptance bar: lanes >= 4x scalar reps/s.
//
// Part 2 — lane-batched broadcast/Compete. The full Decay-relay Compete
// protocol (core::broadcast_batched / compete_batched): per-lane payload
// planes carry each lane's own best[] knowledge, lanes terminate on their
// own clocks, and the batch returns per-seed success/rounds identical to
// per-seed scalar runs.
//
// --recovery=rowscan|idplanes|auto pins the batch medium's sender-recovery
// path (auto when absent); every JSON record carries the strategy plus the
// medium's per-phase nanosecond breakdown (kernel traversal vs output scan
// vs sender recovery), so the recovery hot spot is measured, not asserted.
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/compete_batched.hpp"
#include "graph/generators.hpp"
#include "radio/batch_network.hpp"
#include "radio/network.hpp"
#include "schedule/decay.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"

using namespace radiocast;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr radio::Payload kDecayValue = 7;

/// One replication (= one lane batch) of Part 1's Decay workload: all
/// nodes participate for `cycles` full Decay rounds. Returns one
/// {rounds, deliveries, wall ms} vector per lane; `phases` receives the
/// medium's per-phase breakdown for the whole batch.
std::vector<std::vector<double>> decay_lanes_body(
    const graph::Graph& g, radio::LaneExecutor& net, int cycles,
    const std::vector<std::uint64_t>& seeds, radio::PhaseTimers& phases) {
  const double t0 = now_ms();
  const graph::NodeId n = g.node_count();
  const int lanes = static_cast<int>(seeds.size());
  const std::uint64_t lane_mask = radio::lane_mask(lanes);
  net.medium().reset_phase_timers();
  std::vector<util::Rng> rngs;
  rngs.reserve(seeds.size());
  for (const std::uint64_t s : seeds) rngs.emplace_back(s);
  const std::vector<std::uint64_t> participates(n, lane_mask);
  const std::vector<radio::Payload> payload(n, kDecayValue);
  // Node-major knowledge planes: the layout the batched cores use, so the
  // bench measures the contiguous per-listener fold path.
  std::vector<radio::Payload> best(static_cast<std::size_t>(lanes) * n,
                                   radio::kNoPayload);
  const radio::KnowledgePlanes bestk =
      radio::KnowledgePlanes::node_major(best, n);
  radio::BatchOutcome out;
  std::vector<std::uint64_t> delivered(static_cast<std::size_t>(lanes), 0);
  const std::uint32_t steps = schedule::decay_round_length(n);
  for (int c = 0; c < cycles; ++c) {
    for (std::uint32_t s = 1; s <= steps; ++s) {
      schedule::decay_step_lanes(net, participates, payload, s, bestk, rngs,
                                 out);
      for (int l = 0; l < lanes; ++l) {
        delivered[static_cast<std::size_t>(l)] += out.delivered_count[l];
      }
    }
  }
  phases = net.medium().phase_timers();
  const double rounds = static_cast<double>(cycles) * steps;
  const double wall = now_ms() - t0;
  std::vector<std::vector<double>> result;
  result.reserve(seeds.size());
  for (int l = 0; l < lanes; ++l) {
    result.push_back({rounds,
                      static_cast<double>(delivered[static_cast<std::size_t>(l)]),
                      wall / lanes});
  }
  return result;
}

/// Each replication's JSON record carries its share of the batch's phase
/// breakdown, mirroring how the batch wall time is attributed per lane.
sim::ReplicationRecord make_record(const std::string& label, int rep,
                                   const std::vector<double>& metrics,
                                   const std::string& medium, int lanes,
                                   const std::string& recovery,
                                   const radio::PhaseTimers& phases) {
  sim::ReplicationRecord r;
  r.label = label;
  r.rep = rep;
  r.rounds = metrics[0];
  r.deliveries = metrics[1];
  r.wall_ms = metrics[2];
  r.medium = medium;
  r.lanes = lanes;
  r.recovery = recovery;
  r.phase_traverse_ns = static_cast<double>(phases.traverse_ns) / lanes;
  r.phase_output_ns = static_cast<double>(phases.output_ns) / lanes;
  r.phase_recover_ns = static_cast<double>(phases.recover_ns) / lanes;
  return r;
}

std::string phase_note(const std::string& label,
                       const radio::PhaseTimers& phases) {
  auto ms = [](std::uint64_t ns) {
    return std::to_string(ns / 1000000) + "." +
           std::to_string(ns / 100000 % 10) + " ms";
  };
  return "(" + label + " phase split per batch: traverse " +
         ms(phases.traverse_ns) + ", output " + ms(phases.output_ns) +
         ", recover " + ms(phases.recover_ns) + "; recovery rounds: " +
         std::to_string(phases.rowscan_rounds) + " rowscan / " +
         std::to_string(phases.idplane_rounds) + " idplanes / " +
         std::to_string(phases.constfold_rounds) + " constfold)";
}

}  // namespace

RADIOCAST_SCENARIO(protocol_lanes, "protocol-lanes",
                   "real protocol cores through BatchNetwork lanes: "
                   "lane-batched Decay and Decay-relay broadcast/Compete "
                   "vs per-seed scalar execution") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(17);
  const int reps = ctx.reps(64, 64);
  // The scalar rows are the per-seed reference; --medium selects the
  // backend the lane-batched rows run on (bitslice unless overridden) and
  // --recovery pins its sender-recovery path (auto otherwise).
  const radio::MediumKind lanes_medium =
      ctx.cli.has("medium") ? ctx.medium_kind() : radio::MediumKind::kBitslice;
  const std::string lanes_medium_name{radio::to_string(lanes_medium)};
  const radio::RecoveryStrategy recovery = ctx.recovery_strategy();
  const std::string recovery_name{radio::to_string(recovery)};

  auto add_row = [&](util::Table& t, const std::string& label, int reps_n,
                     const std::vector<util::OnlineStats>& stats, double wall,
                     double base_wall) {
    t.row()
        .add(label)
        .add(static_cast<double>(reps_n), 0)
        .add(stats[0].mean(), 1)
        .add(stats[2].count() > 0 ? stats[2].mean() : 0.0, 3)
        .add(wall, 1)
        .add(wall > 0 ? reps_n * 1e3 / wall : 0.0, 1)
        .add(base_wall > 0 && wall > 0 ? base_wall / wall : 1.0, 2);
  };

  // ---- Part 1: lane-batched Decay ----------------------------------------
  {
    util::Rng grng(seed);
    const graph::NodeId n = quick ? 2000 : 24000;
    const double avg_deg = quick ? 16.0 : 12.0;
    const graph::Graph g = graph::gnp(n, avg_deg / n, grng);
    const int cycles = quick ? 4 : 8;

    util::Table t({"protocol", "reps", "rounds", "wall/rep ms", "wall ms",
                   "reps/s", "speedup"});
    double scalar_wall = 0.0;
    radio::PhaseTimers lanes_phases;
    {
      const double t0 = now_ms();
      const auto stats = ctx.runner.replicate(
          reps, seed, 3, [&](int rep, std::uint64_t rep_seed) {
            radio::Network net(g);
            radio::PhaseTimers phases;
            auto lanes = decay_lanes_body(g, net, cycles, {rep_seed}, phases);
            ctx.record(make_record("decay-scalar", rep, lanes[0], "scalar", 1,
                                   "", phases));
            return lanes[0];
          });
      scalar_wall = now_ms() - t0;
      add_row(t, "decay-scalar", reps, stats, scalar_wall, scalar_wall);
    }
    {
      const double t0 = now_ms();
      const auto stats = ctx.runner.replicate_batched(
          reps, seed, 3, radio::kMaxLanes,
          [&](int first_rep, const std::vector<std::uint64_t>& seeds) {
            radio::BatchNetwork bn(g, static_cast<int>(seeds.size()),
                                   radio::CollisionModel::kNoDetection,
                                   lanes_medium, recovery);
            radio::PhaseTimers phases;
            auto lanes = decay_lanes_body(g, bn, cycles, seeds, phases);
            for (std::size_t l = 0; l < lanes.size(); ++l) {
              ctx.record(make_record(
                  "decay-lanes", first_rep + static_cast<int>(l), lanes[l],
                  lanes_medium_name, static_cast<int>(seeds.size()),
                  recovery_name, phases));
            }
            if (first_rep == 0) lanes_phases = phases;
            return lanes;
          });
      add_row(t, "decay-lanes", reps, stats, now_ms() - t0, scalar_wall);
    }
    ctx.emit(t,
             "lane-batched Decay on gnp(n=" + std::to_string(n) +
                 ", avg_deg~" + std::to_string(static_cast<int>(avg_deg)) +
                 "), " + std::to_string(reps) + " seeds x " +
                 std::to_string(cycles) + " Decay rounds",
             "protocol_lanes_decay");
    ctx.note("(same lane-generic decay_round_lanes both rows; per-seed "
             "results are byte-identical — acceptance bar is >= 4x scalar "
             "reps/s; lanes recovery=" + recovery_name + ")");
    ctx.note(phase_note("decay-lanes", lanes_phases));
  }

  // ---- Part 2: lane-batched Decay-relay broadcast / Compete --------------
  {
    util::Rng grng(util::mix_seed(seed, 1));
    const graph::NodeId n = quick ? 1500 : 4000;
    const graph::Graph g = graph::gnp(n, 12.0 / n, grng);
    core::BatchedCompeteParams params;
    params.max_rounds = quick ? 2000 : 6000;
    const std::vector<core::CompeteSource> sources{
        {0, 1'000'000}, {n / 2, 999'999}};
    const int breps = quick ? 32 : 64;

    util::Table t({"protocol", "reps", "rounds", "wall/rep ms", "wall ms",
                   "reps/s", "speedup"});
    double scalar_wall = 0.0;
    double success_scalar = 0.0, success_lanes = 0.0;
    radio::PhaseTimers broadcast_phases;
    {
      const double t0 = now_ms();
      const auto stats = ctx.runner.replicate(
          breps, seed, 4, [&](int rep, std::uint64_t rep_seed) {
            const double r0 = now_ms();
            radio::Network net(g);
            const std::uint64_t one[] = {rep_seed};
            const auto lane =
                core::compete_batched(net, sources, params, one).front();
            const double wall = now_ms() - r0;
            ctx.record(make_record(
                "broadcast-scalar", rep,
                {static_cast<double>(lane.rounds),
                 static_cast<double>(lane.deliveries), wall},
                "scalar", 1, "", net.medium().phase_timers()));
            return std::vector<double>{static_cast<double>(lane.rounds),
                                       static_cast<double>(lane.deliveries),
                                       wall, lane.success ? 1.0 : 0.0};
          });
      scalar_wall = now_ms() - t0;
      success_scalar = stats[3].mean();
      add_row(t, "broadcast-scalar", breps, stats, scalar_wall, scalar_wall);
    }
    {
      const double t0 = now_ms();
      const auto stats = ctx.runner.replicate_batched(
          breps, seed, 4, radio::kMaxLanes,
          [&](int first_rep, const std::vector<std::uint64_t>& seeds) {
            const double b0 = now_ms();
            radio::BatchNetwork bn(g, static_cast<int>(seeds.size()),
                                   radio::CollisionModel::kNoDetection,
                                   lanes_medium, recovery);
            const auto lanes = core::compete_batched(bn, sources, params,
                                                     seeds);
            const auto phases = bn.medium().phase_timers();
            const double wall = (now_ms() - b0) / lanes.size();
            std::vector<std::vector<double>> metrics;
            metrics.reserve(lanes.size());
            for (std::size_t l = 0; l < lanes.size(); ++l) {
              const auto& lane = lanes[l];
              ctx.record(make_record(
                  "broadcast-lanes", first_rep + static_cast<int>(l),
                  {static_cast<double>(lane.rounds),
                   static_cast<double>(lane.deliveries), wall},
                  lanes_medium_name, static_cast<int>(seeds.size()),
                  recovery_name, phases));
              metrics.push_back({static_cast<double>(lane.rounds),
                                 static_cast<double>(lane.deliveries), wall,
                                 lane.success ? 1.0 : 0.0});
            }
            if (first_rep == 0) broadcast_phases = phases;
            return metrics;
          });
      success_lanes = stats[3].mean();
      add_row(t, "broadcast-lanes", breps, stats, now_ms() - t0, scalar_wall);
    }
    ctx.emit(t,
             "Decay-relay Compete (|S|=2) on gnp(n=" + std::to_string(n) +
                 ", avg_deg~12), " + std::to_string(breps) + " seeds",
             "protocol_lanes_broadcast");
    ctx.note("(success rate scalar=" + std::to_string(success_scalar) +
             " lanes=" + std::to_string(success_lanes) +
             " — identical seeds, identical per-lane results)");
    ctx.note(phase_note("broadcast-lanes", broadcast_phases));
  }
}
