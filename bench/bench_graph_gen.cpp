// `radiocast_bench graph-gen` — generation throughput per graph family.
//
// Builds each pargen family once per n and reports edges/second, the
// number the million-node sweep items care about: generation is off the
// critical path when these rates dwarf the protocol replication cost.
// The gnp-bernoulli row runs the reference O(n^2) Bernoulli loop (pargen's
// gnp_compat mode) at the sizes where it is bearable, so the speedup of
// the skip sampler over the seed generator stays measured, not assumed.
//
//   radiocast_bench graph-gen --quick
//   radiocast_bench graph-gen --n=100000,1000000 --gen-threads=4
//   radiocast_bench graph-gen --family=gnp,ba   # subset of the families
#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/spec.hpp"
#include "graph/pargen.hpp"
#include "sim/scenario.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace radiocast;

namespace {

struct GenCase {
  std::string label;
  /// Largest n this case runs at (the Bernoulli reference is quadratic).
  std::uint64_t max_n;
  graph::Graph (*build)(graph::NodeId n, std::uint64_t seed, int threads);
};

constexpr double kTargetDeg = 12.0;

graph::Graph build_gnp(graph::NodeId n, std::uint64_t seed, int threads) {
  return graph::pargen::gnp(n, std::min(1.0, kTargetDeg / n), seed,
                            {.threads = threads});
}

graph::Graph build_gnp_bernoulli(graph::NodeId n, std::uint64_t seed,
                                 int threads) {
  (void)threads;  // the reference loop is sequential by definition
  return graph::pargen::gnp(n, std::min(1.0, kTargetDeg / n), seed,
                            {.gnp_compat = true});
}

graph::Graph build_rgg(graph::NodeId n, std::uint64_t seed, int threads) {
  // Radius giving expected average degree ~kTargetDeg: pi r^2 n = deg.
  const double radius = std::sqrt(kTargetDeg / (3.14159265358979 * n));
  return graph::pargen::random_geometric(n, radius, seed,
                                         {.threads = threads});
}

graph::Graph build_ba(graph::NodeId n, std::uint64_t seed, int threads) {
  // attach = deg/2: BA average degree approaches 2 * attach.
  return graph::pargen::barabasi_albert(
      n, static_cast<std::uint32_t>(kTargetDeg / 2), seed,
      {.threads = threads});
}

graph::Graph build_powerlaw(graph::NodeId n, std::uint64_t seed,
                            int threads) {
  return graph::pargen::chung_lu(n, 2.5, kTargetDeg, seed,
                                 {.threads = threads});
}

}  // namespace

RADIOCAST_SCENARIO(graph_gen, "graph-gen",
                   "generation throughput (edges/s) of the pargen families "
                   "at large n, incl. the Bernoulli gnp reference") {
  const std::uint64_t seed = ctx.seed(29);
  const int gen_threads = ctx.gen_threads();
  const int resolved = graph::pargen::resolve_threads(gen_threads);

  std::vector<std::uint64_t> ns =
      ctx.quick() ? std::vector<std::uint64_t>{20'000, 50'000}
                  : std::vector<std::uint64_t>{100'000, 1'000'000};
  if (ctx.cli.has("n")) {
    ns = exp::parse_int_axis(ctx.cli.get_string("n", ""), "flag --n");
  }

  const std::vector<GenCase> cases{
      {"gnp", ~0ull, &build_gnp},
      // The quadratic reference gets ~12 s at n=1e5; never run it bigger.
      {"gnp-bernoulli", 100'000, &build_gnp_bernoulli},
      {"rgg", ~0ull, &build_rgg},
      {"ba", ~0ull, &build_ba},
      {"powerlaw", ~0ull, &build_powerlaw},
  };

  // --family= restricts the run to a subset (the ASan smoke wants n=1e5
  // without the quadratic Bernoulli reference); unknown labels fail loudly.
  const std::vector<std::string> wanted = ctx.cli.get_list("family");
  for (const std::string& w : wanted) {
    if (std::none_of(cases.begin(), cases.end(),
                     [&](const GenCase& c) { return c.label == w; })) {
      throw std::invalid_argument("graph-gen: unknown --family value '" + w +
                                  "' (gnp, gnp-bernoulli, rgg, ba, powerlaw)");
    }
  }
  const auto selected = [&](const GenCase& c) {
    return wanted.empty() ||
           std::find(wanted.begin(), wanted.end(), c.label) != wanted.end();
  };

  util::Table table({"family", "n", "m", "gen_ms", "edges_per_s"});
  util::Json points = util::Json::array();
  for (const std::uint64_t n : ns) {
    for (const GenCase& c : cases) {
      if (n > c.max_n || !selected(c)) continue;
      const auto start = std::chrono::steady_clock::now();
      const graph::Graph g =
          c.build(static_cast<graph::NodeId>(n), seed, gen_threads);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      const double edges_per_s =
          ms > 0.0 ? static_cast<double>(g.edge_count()) * 1e3 / ms : 0.0;
      table.row()
          .add(c.label)
          .add(n)
          .add(g.edge_count())
          .add(ms, 1)
          .add(edges_per_s, 0);
      util::Json p = util::Json::object();
      p.set("family", c.label);
      p.set("n", n);
      p.set("edges", g.edge_count());
      p.set("gen_ms", ms);
      p.set("edges_per_s", edges_per_s);
      points.push_back(std::move(p));
    }
  }

  ctx.emit(table,
           "graph-gen: one build per (family, n), gen-threads=" +
               std::to_string(resolved),
           "graph-gen");
  ctx.note("(gnp-bernoulli = the O(n^2) reference loop the skip sampler "
           "replaces; capped at n=1e5)");

  util::Json doc = util::Json::object();
  doc.set("kind", "graph-gen");
  doc.set("gen_threads", static_cast<std::uint64_t>(resolved));
  doc.set("seed", seed);
  doc.set("points", std::move(points));
  ctx.emit_json("graph-gen", std::move(doc));
}
