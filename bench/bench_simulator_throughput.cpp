// Microbenchmarks (google-benchmark) of the simulation substrate itself:
// the dense and sparse collision-resolution kernels, Partition(beta), BFS,
// and TreeSchedule construction. These are engineering measurements (not a
// paper experiment): they justify the round budgets the E1-E11 experiments
// can afford.
#include <benchmark/benchmark.h>

#include "cluster/exponential_shifts.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"
#include "schedule/bfs_schedule.hpp"
#include "util/rng.hpp"

namespace {

using namespace radiocast;

const graph::Graph& test_graph() {
  static const graph::Graph g = [] {
    util::Rng rng(1);
    return graph::random_geometric(20000, 0.012, rng);
  }();
  return g;
}

void BM_NetworkStepDense(benchmark::State& state) {
  const graph::Graph& g = test_graph();
  radio::Network net(g);
  util::Rng rng(2);
  const graph::NodeId n = g.node_count();
  std::vector<std::uint8_t> tx(n, 0);
  std::vector<radio::Payload> pay(n, 1);
  const double density = 1e-2 * static_cast<double>(state.range(0));
  for (graph::NodeId v = 0; v < n; ++v) tx[v] = rng.bernoulli(density);
  radio::RoundOutcome out;
  for (auto _ : state) {
    net.step(tx, pay, out);
    benchmark::DoNotOptimize(out.delivered_count);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NetworkStepDense)->Arg(1)->Arg(10)->Arg(50);

void BM_NetworkStepSparse(benchmark::State& state) {
  const graph::Graph& g = test_graph();
  radio::Network net(g);
  util::Rng rng(3);
  const graph::NodeId n = g.node_count();
  std::vector<graph::NodeId> tx_nodes;
  std::vector<radio::Payload> tx_pay;
  const double density = 1e-2 * static_cast<double>(state.range(0));
  for (graph::NodeId v = 0; v < n; ++v) {
    if (rng.bernoulli(density)) {
      tx_nodes.push_back(v);
      tx_pay.push_back(1);
    }
  }
  radio::Network::SparseOutcome out;
  for (auto _ : state) {
    net.step_sparse(tx_nodes, tx_pay, out);
    benchmark::DoNotOptimize(out.deliveries.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          std::max<std::size_t>(1, tx_nodes.size()));
}
BENCHMARK(BM_NetworkStepSparse)->Arg(1)->Arg(10)->Arg(50);

void BM_PartitionBeta(benchmark::State& state) {
  const graph::Graph& g = test_graph();
  util::Rng rng(4);
  const double beta = 1e-3 * static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto p = cluster::partition(g, beta, rng);
    benchmark::DoNotOptimize(p.center.data());
  }
  state.SetItemsProcessed(state.iterations() * g.node_count());
}
BENCHMARK(BM_PartitionBeta)->Arg(10)->Arg(100)->Arg(500);

void BM_Bfs(benchmark::State& state) {
  const graph::Graph& g = test_graph();
  for (auto _ : state) {
    auto d = graph::bfs_distances(g, 0);
    benchmark::DoNotOptimize(d.data());
  }
  state.SetItemsProcessed(state.iterations() * g.node_count());
}
BENCHMARK(BM_Bfs);

void BM_TreeScheduleBuild(benchmark::State& state) {
  const graph::Graph& g = test_graph();
  util::Rng rng(5);
  const auto p = cluster::partition(g, 0.2, rng);
  const bool colored = state.range(0) != 0;
  for (auto _ : state) {
    schedule::TreeSchedule s(g, p,
                             colored ? schedule::ScheduleMode::kColored
                                     : schedule::ScheduleMode::kPipelined);
    benchmark::DoNotOptimize(s.period());
  }
}
BENCHMARK(BM_TreeScheduleBuild)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
