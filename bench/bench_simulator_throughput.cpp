// Microbenchmarks of the simulation substrate itself: the dense and
// sparse collision-resolution kernels, Partition(beta), BFS, and
// TreeSchedule construction. These are engineering measurements (not a
// paper experiment): they justify the round budgets the E1-E11 scenarios
// can afford. Timed with steady_clock over fixed iteration counts so the
// scenario needs no external benchmark framework.
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/exponential_shifts.hpp"
#include "graph/algorithms.hpp"
#include "radio/network.hpp"
#include "schedule/bfs_schedule.hpp"
#include "sim/instances.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"

using namespace radiocast;

namespace {

/// Times `iters` calls of `body` (after one warmup call) and returns
/// nanoseconds per call.
template <typename Fn>
double time_ns_per_op(int iters, Fn&& body) {
  body();  // warmup
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) body();
  const auto stop = std::chrono::steady_clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count();
  return static_cast<double>(ns) / iters;
}

}  // namespace

RADIOCAST_SCENARIO(throughput, "throughput",
                   "simulator kernel throughput: step/resolve/"
                   "partition/BFS/schedule build (--medium selects backend)") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(1);
  const radio::MediumKind medium = ctx.medium_kind();

  util::Rng rng(seed);
  const graph::NodeId n = quick ? 4000 : 20000;
  const double radius = quick ? 0.03 : 0.012;
  const graph::Graph g = graph::random_geometric(n, radius, rng);
  const int iters = quick ? 20 : 100;

  util::Table t({"kernel", "param", "ns/op", "Mitems/s"});
  auto report = [&](const std::string& kernel, const std::string& param,
                    double ns_per_op, double items_per_op) {
    t.row()
        .add(kernel)
        .add(param)
        .add(ns_per_op, 0)
        .add(ns_per_op > 0 ? items_per_op * 1e3 / ns_per_op : 0.0, 1);
  };

  // Dense and sparse collision-resolution kernels at several densities.
  for (const int pct : {1, 10, 50}) {
    const double density = 1e-2 * pct;
    radio::Network net(g, radio::CollisionModel::kNoDetection, medium);
    util::Rng trng(util::mix_seed(seed, pct));
    std::vector<std::uint8_t> tx(n, 0);
    std::vector<radio::Payload> pay(n, 1);
    std::vector<graph::NodeId> tx_nodes;
    std::vector<radio::Payload> tx_pay;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (trng.bernoulli(density)) {
        tx[v] = 1;
        tx_nodes.push_back(v);
        tx_pay.push_back(1);
      }
    }
    radio::RoundOutcome dense_out;
    report("step (dense)", std::to_string(pct) + "% tx",
           time_ns_per_op(iters, [&] { net.step(tx, pay, dense_out); }),
           static_cast<double>(n));
    radio::SparseOutcome sparse_out;
    report("resolve (sparse)", std::to_string(pct) + "% tx",
           time_ns_per_op(iters,
                          [&] { net.resolve(tx_nodes, tx_pay,
                                            sparse_out); }),
           static_cast<double>(std::max<std::size_t>(1, tx_nodes.size())));
  }

  // Partition(beta) over two decades of beta.
  for (const int beta_m : {10, 100, 500}) {
    const double beta = 1e-3 * beta_m;
    util::Rng prng(util::mix_seed(seed, 1000 + beta_m));
    report("partition", "beta=" + std::to_string(beta_m) + "e-3",
           time_ns_per_op(quick ? 5 : 20,
                          [&] {
                            auto p = cluster::partition(g, beta, prng);
                            (void)p;
                          }),
           static_cast<double>(n));
  }

  // BFS distances.
  report("bfs_distances", "full graph",
         time_ns_per_op(quick ? 10 : 50,
                        [&] {
                          auto d = graph::bfs_distances(g, 0);
                          (void)d;
                        }),
         static_cast<double>(n));

  // TreeSchedule construction in both modes.
  {
    util::Rng srng(util::mix_seed(seed, 2000));
    const auto p = cluster::partition(g, 0.2, srng);
    for (const bool colored : {false, true}) {
      report("TreeSchedule", colored ? "colored" : "pipelined",
             time_ns_per_op(quick ? 5 : 20,
                            [&] {
                              schedule::TreeSchedule s(
                                  g, p,
                                  colored
                                      ? schedule::ScheduleMode::kColored
                                      : schedule::ScheduleMode::kPipelined);
                              (void)s;
                            }),
             static_cast<double>(n));
    }
  }

  ctx.emit(t,
           "simulator kernel throughput on rgg(n=" + std::to_string(n) +
               "), medium=" + std::string(radio::to_string(medium)),
           "throughput");
  ctx.note("(timings vary run to run; the Mitems/s column is the "
           "per-kernel budget driver for the E1-E13 scenarios)");
}
