// E7 — Theorem 4.1: Compete(S) costs O(D log n/log D + |S| D^0.125 +
// polylog n). Sweep |S| at fixed (n, D) and check the additive growth in
// |S| stays near-linear with a small per-source coefficient (compared
// against the D^0.125 curve).
#include <cmath>
#include <vector>

#include "core/compete.hpp"
#include "core/theory.hpp"
#include "sim/instances.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/math.hpp"

using namespace radiocast;

RADIOCAST_SCENARIO(compete_sources, "compete-sources",
                   "E7: Compete rounds vs source-set size (Theorem 4.1)") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(7);
  const int reps = ctx.reps(1, 3);

  const sim::Instance inst =
      sim::make_cliquepath_instance(quick ? 1024 : 2048, quick ? 96 : 128);

  const std::vector<std::uint32_t> sizes =
      quick ? std::vector<std::uint32_t>{1, 16, 128}
            : std::vector<std::uint32_t>{1, 4, 16, 64, 256};

  util::Table t({"|S|", "rounds", "theory bound", "rounds/bound"});
  std::vector<double> xs, ys;
  for (const auto k : sizes) {
    const auto stats = ctx.runner.replicate(
        reps, util::mix_seed(seed, k), 1, [&](int, std::uint64_t s) {
          util::Rng rng(util::mix_seed(s, 1));
          std::vector<core::CompeteSource> sources;
          const auto picks =
              rng.sample_without_replacement(inst.g.node_count(), k);
          for (std::uint32_t i = 0; i < k; ++i) {
            sources.push_back({picks[i], 1000 + i});
          }
          const auto res = core::compete(inst.g, inst.diameter, sources,
                                         core::CompeteParams{}, s);
          return std::vector<double>{
              res.success ? static_cast<double>(res.rounds) : std::nan("")};
        });
    const auto& rounds = stats[0];
    const double bound = core::theory::bound_compete(
        inst.g.node_count(), inst.diameter, k);
    t.row()
        .add(std::uint64_t{k})
        .add(rounds.mean(), 0)
        .add(bound, 0)
        .add(rounds.mean() / bound, 3);
    xs.push_back(k);
    ys.push_back(rounds.mean());
  }
  ctx.emit(t, "E7: Compete rounds vs |S| on " + inst.name,
           "e7_compete_sources");
  if (xs.size() >= 3) {
    const auto fit = util::fit_linear(xs, ys);
    ctx.note("per-source marginal cost ~ " +
             util::format_double(fit.slope, 2) + " rounds (theory " +
             "coefficient D^0.125 = " +
             util::format_double(util::fpow(double(inst.diameter), 0.125),
                                 2) +
             ")");
  }
}
