// E7 — Theorem 4.1: Compete(S) costs O(D log n/log D + |S| D^0.125 +
// polylog n). Sweep |S| at fixed (n, D) and check the additive growth in
// |S| stays near-linear with a small per-source coefficient (compared
// against the D^0.125 curve).
#include "common.hpp"
#include "core/compete.hpp"
#include "core/theory.hpp"
#include "util/math.hpp"

using namespace radiocast;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const std::uint64_t seed = cli.get_uint("seed", 7);
  const int reps = static_cast<int>(cli.get_uint("reps", quick ? 1 : 3));

  const bench::Instance inst =
      bench::make_instance(quick ? 1024 : 2048, quick ? 96 : 128);
  util::Rng rng(seed);

  std::vector<std::uint32_t> sizes =
      quick ? std::vector<std::uint32_t>{1, 16, 128}
            : std::vector<std::uint32_t>{1, 4, 16, 64, 256};

  util::Table t({"|S|", "rounds", "theory bound", "rounds/bound"});
  std::vector<double> xs, ys;
  for (const auto k : sizes) {
    util::OnlineStats rounds;
    for (int r = 0; r < reps; ++r) {
      std::vector<core::CompeteSource> sources;
      const auto picks =
          rng.sample_without_replacement(inst.g.node_count(), k);
      for (std::uint32_t i = 0; i < k; ++i) {
        sources.push_back({picks[i], 1000 + i});
      }
      const auto res = core::compete(inst.g, inst.diameter, sources,
                                     core::CompeteParams{},
                                     util::mix_seed(seed, r * 31 + k));
      if (res.success) rounds.add(static_cast<double>(res.rounds));
    }
    const double bound = core::theory::bound_compete(
        inst.g.node_count(), inst.diameter, k);
    t.row()
        .add(std::uint64_t{k})
        .add(rounds.mean(), 0)
        .add(bound, 0)
        .add(rounds.mean() / bound, 3);
    xs.push_back(k);
    ys.push_back(rounds.mean());
  }
  bench::emit(t, "E7: Compete rounds vs |S| on " + inst.name,
              "e7_compete_sources");
  if (xs.size() >= 3) {
    const auto fit = util::fit_linear(xs, ys);
    std::cout << "per-source marginal cost ~ "
              << util::format_double(fit.slope, 2) << " rounds (theory "
              << "coefficient D^0.125 = "
              << util::format_double(
                     util::fpow(double(inst.diameter), 0.125), 2)
              << ")\n";
  }
  return 0;
}
