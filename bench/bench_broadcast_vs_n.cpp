// E2 — broadcasting time versus n at (approximately) fixed D.
//
// At fixed D, CD grows like D log n / log D + polylog n (slowly, through
// the log n factor), BGI like (D + log n) log n, CR like D log(n/D): the
// gap between the curves must widen with n.
#include <cmath>
#include <vector>

#include "baselines/decay_broadcast.hpp"
#include "baselines/hw_broadcast.hpp"
#include "core/broadcast.hpp"
#include "core/theory.hpp"
#include "sim/instances.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/math.hpp"

using namespace radiocast;

RADIOCAST_SCENARIO(broadcast_vs_n, "broadcast-vs-n",
                   "E2: broadcast rounds vs n at fixed diameter") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(2);
  const auto d_target =
      static_cast<graph::NodeId>(ctx.cli.get_uint("d", 96));
  const int reps = ctx.reps(1, 3);

  const std::vector<graph::NodeId> ns =
      quick ? std::vector<graph::NodeId>{512, 2048}
            : std::vector<graph::NodeId>{512, 1024, 2048, 4096, 8192};

  util::Table t({"n", "D", "CD rounds", "HW rounds", "BGI rounds",
                 "CR rounds", "CD bound", "BGI bound", "CR bound"});
  for (const auto n : ns) {
    const sim::Instance inst = sim::make_cliquepath_instance(n, d_target);
    const auto stats = ctx.runner.replicate(
        reps, util::mix_seed(seed, n), 4, [&](int, std::uint64_t s) {
          std::vector<double> m(4, std::nan(""));
          const auto rc = core::broadcast(inst.g, inst.diameter, 0, 7,
                                          core::CompeteParams{}, s);
          if (rc.success) m[0] = static_cast<double>(rc.rounds);
          const auto rh =
              baselines::hw_broadcast(inst.g, inst.diameter, 0, 7, s);
          if (rh.success) m[1] = static_cast<double>(rh.rounds);
          const auto rb = baselines::decay_broadcast(
              inst.g, inst.diameter, {{0, 7}},
              baselines::bgi_params(inst.g.node_count()), s);
          if (rb.success) m[2] = static_cast<double>(rb.rounds);
          const auto rr = baselines::decay_broadcast(
              inst.g, inst.diameter, {{0, 7}},
              baselines::cr_params(inst.g.node_count(), inst.diameter), s);
          if (rr.success) m[3] = static_cast<double>(rr.rounds);
          return m;
        });
    t.row()
        .add(std::uint64_t{n})
        .add(std::uint64_t{inst.diameter})
        .add(stats[0].mean(), 0)
        .add(stats[1].mean(), 0)
        .add(stats[2].mean(), 0)
        .add(stats[3].mean(), 0)
        .add(core::theory::bound_cd(n, inst.diameter), 0)
        .add(core::theory::bound_bgi(n, inst.diameter), 0)
        .add(core::theory::bound_crkp(n, inst.diameter), 0);
  }
  ctx.emit(t, "E2: broadcast rounds vs n (fixed D)", "e2_broadcast_vs_n");
}
