// E2 — broadcasting time versus n at (approximately) fixed D.
//
// At fixed D, CD grows like D log n / log D + polylog n (slowly, through
// the log n factor), BGI like (D + log n) log n, CR like D log(n/D): the
// gap between the curves must widen with n.
//
// Results are recorded through exp::Accumulator and rendered in the
// sweep's long format — one row per (n, algorithm) with success counts,
// Wilson intervals, round statistics, and the matching core/theory bound
// overlay — so this scenario's bench_out shapes match `sweep`'s.
#include <array>
#include <cmath>
#include <vector>

#include "baselines/decay_broadcast.hpp"
#include "baselines/hw_broadcast.hpp"
#include "core/broadcast.hpp"
#include "core/theory.hpp"
#include "exp/accumulator.hpp"
#include "exp/report.hpp"
#include "sim/instances.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"

using namespace radiocast;

RADIOCAST_SCENARIO(broadcast_vs_n, "broadcast-vs-n",
                   "E2: broadcast rounds vs n at fixed diameter") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(2);
  const auto d_target =
      static_cast<graph::NodeId>(ctx.cli.get_uint("d", 96));
  const int reps = ctx.reps(1, 3);

  const std::vector<graph::NodeId> ns =
      quick ? std::vector<graph::NodeId>{512, 2048}
            : std::vector<graph::NodeId>{512, 1024, 2048, 4096, 8192};

  constexpr std::size_t kAlgorithms = 4;
  const std::array<std::string_view, kAlgorithms> names{"cd", "hw", "bgi",
                                                        "cr"};

  util::Table t(exp::long_headers(/*timing=*/false));
  util::Json points = util::Json::array();
  for (const auto n : ns) {
    const sim::Instance inst = sim::make_cliquepath_instance(n, d_target);
    // One replication computes all four algorithms on the same instance
    // and seed (NaN = that algorithm failed to complete).
    const auto outs = ctx.runner.map(reps, [&](int rep) {
      const std::uint64_t s = util::mix_seed(util::mix_seed(seed, n),
                                             static_cast<std::uint64_t>(rep));
      std::array<double, kAlgorithms> m;
      m.fill(std::nan(""));
      const auto rc = core::broadcast(inst.g, inst.diameter, 0, 7,
                                      core::CompeteParams{}, s);
      if (rc.success) m[0] = static_cast<double>(rc.rounds);
      const auto rh = baselines::hw_broadcast(inst.g, inst.diameter, 0, 7, s);
      if (rh.success) m[1] = static_cast<double>(rh.rounds);
      const auto rb = baselines::decay_broadcast(
          inst.g, inst.diameter, {{0, 7}},
          baselines::bgi_params(inst.g.node_count()), s);
      if (rb.success) m[2] = static_cast<double>(rb.rounds);
      const auto rr = baselines::decay_broadcast(
          inst.g, inst.diameter, {{0, 7}},
          baselines::cr_params(inst.g.node_count(), inst.diameter), s);
      if (rr.success) m[3] = static_cast<double>(rr.rounds);
      return m;
    });
    const std::array<double, kAlgorithms> bounds{
        core::theory::bound_cd(n, inst.diameter),
        core::theory::bound_hw(n, inst.diameter),
        core::theory::bound_bgi(n, inst.diameter),
        core::theory::bound_crkp(n, inst.diameter)};
    for (std::size_t a = 0; a < kAlgorithms; ++a) {
      exp::Accumulator acc;
      for (const auto& m : outs) {
        const bool ok = !std::isnan(m[a]);
        acc.add(ok, ok ? m[a] : 0.0);
      }
      acc.set_theory_bound(bounds[a]);
      const exp::PointMeta meta{.family = "cliquepath",
                                .param_name = "d",
                                .param = static_cast<double>(d_target),
                                .n = inst.g.node_count(),
                                .diameter = inst.diameter,
                                .protocol = std::string(names[a]),
                                .medium = "scalar",
                                .recovery = "",
                                .lanes = 1};
      exp::add_long_row(t, meta, acc, /*timing=*/false);
      points.push_back(exp::point_json(meta, acc, /*timing=*/false));
    }
  }
  ctx.emit(t, "E2: broadcast rounds vs n (fixed D)", "e2_broadcast_vs_n");
  util::Json payload = util::Json::object();
  payload.set("kind", "points");
  payload.set("points", std::move(points));
  ctx.emit_json("e2_broadcast_vs_n", std::move(payload));
}
