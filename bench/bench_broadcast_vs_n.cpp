// E2 — broadcasting time versus n at (approximately) fixed D.
//
// At fixed D, CD grows like D log n / log D + polylog n (slowly, through
// the log n factor), BGI like (D + log n) log n, CR like D log(n/D): the
// gap between the curves must widen with n.
#include "baselines/decay_broadcast.hpp"
#include "baselines/hw_broadcast.hpp"
#include "common.hpp"
#include "core/broadcast.hpp"
#include "core/theory.hpp"
#include "util/math.hpp"

using namespace radiocast;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const std::uint64_t seed = cli.get_uint("seed", 2);
  const graph::NodeId d_target = static_cast<graph::NodeId>(
      cli.get_uint("d", 96));
  const int reps = static_cast<int>(cli.get_uint("reps", quick ? 1 : 3));

  std::vector<graph::NodeId> ns =
      quick ? std::vector<graph::NodeId>{512, 2048}
            : std::vector<graph::NodeId>{512, 1024, 2048, 4096, 8192};

  util::Table t({"n", "D", "CD rounds", "HW rounds", "BGI rounds",
                 "CR rounds", "CD bound", "BGI bound", "CR bound"});
  for (const auto n : ns) {
    const bench::Instance inst = bench::make_instance(n, d_target);
    util::OnlineStats cd, hw, bgi, cr;
    for (int r = 0; r < reps; ++r) {
      const std::uint64_t s = util::mix_seed(seed, r * 100000 + n);
      const auto rc = core::broadcast(inst.g, inst.diameter, 0, 7,
                                      core::CompeteParams{}, s);
      if (rc.success) cd.add(static_cast<double>(rc.rounds));
      const auto rh = baselines::hw_broadcast(inst.g, inst.diameter, 0, 7, s);
      if (rh.success) hw.add(static_cast<double>(rh.rounds));
      const auto rb = baselines::decay_broadcast(
          inst.g, inst.diameter, {{0, 7}},
          baselines::bgi_params(inst.g.node_count()), s);
      if (rb.success) bgi.add(static_cast<double>(rb.rounds));
      const auto rr = baselines::decay_broadcast(
          inst.g, inst.diameter, {{0, 7}},
          baselines::cr_params(inst.g.node_count(), inst.diameter), s);
      if (rr.success) cr.add(static_cast<double>(rr.rounds));
    }
    t.row()
        .add(std::uint64_t{n})
        .add(std::uint64_t{inst.diameter})
        .add(cd.mean(), 0)
        .add(hw.mean(), 0)
        .add(bgi.mean(), 0)
        .add(cr.mean(), 0)
        .add(core::theory::bound_cd(n, inst.diameter), 0)
        .add(core::theory::bound_bgi(n, inst.diameter), 0)
        .add(core::theory::bound_crkp(n, inst.diameter), 0);
  }
  bench::emit(t, "E2: broadcast rounds vs n (fixed D)", "e2_broadcast_vs_n");
  return 0;
}
