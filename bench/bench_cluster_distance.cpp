// E4 — Theorem 2.2: for j uniform in [0.01 log D, 0.1 log D] and
// beta = 2^-j, with probability >= 0.55 over j the expected distance from
// a node to its Partition(beta) cluster centre is O(log n / (beta log D)).
//
// We sweep j over a widened range, estimate E[dist-to-centre] by averaging
// over nodes and repetitions, and report the normalised ratio
//   E[dist] * beta * log D / log n,
// which Theorem 2.2 says is O(1) for a >= 0.55 fraction of j. We also
// report the improvement over the Haeupler-Wajc bound (which carries an
// extra log log n).
#include <cmath>
#include <vector>

#include "cluster/exponential_shifts.hpp"
#include "cluster/partition_stats.hpp"
#include "core/theory.hpp"
#include "sim/instances.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/math.hpp"

using namespace radiocast;

RADIOCAST_SCENARIO(cluster_distance, "cluster-distance",
                   "E4: Theorem 2.2 distance-to-centre vs beta") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(4);
  const int reps = ctx.reps(2, 6);
  util::Rng rng(seed);

  std::vector<sim::Instance> instances;
  instances.push_back(sim::make_cliquepath_instance(quick ? 2048 : 8192,
                                                    quick ? 256 : 768));
  if (!quick) {
    instances.push_back(sim::make_grid_instance(64, 128));
    instances.push_back(sim::make_rgg_instance(4096, 0.025, rng));
  }

  for (const auto& inst : instances) {
    const double logn = util::safe_log2(inst.g.node_count());
    const double logd = util::safe_log2(inst.diameter);
    const std::uint32_t j_max = std::max<std::uint32_t>(
        2, static_cast<std::uint32_t>(0.5 * logd));
    util::Table t({"j", "beta", "E[dist]", "bound logn/(b*logD)",
                   "ratio", "HW bound", "within 4x bound?"});
    std::uint32_t good = 0;
    for (std::uint32_t j = 1; j <= j_max; ++j) {
      const double beta = std::ldexp(1.0, -static_cast<int>(j));
      const auto stats = ctx.runner.replicate(
          reps, util::mix_seed(seed, inst.diameter * 1000 + j), 1,
          [&](int, std::uint64_t s) {
            util::Rng rep_rng(s);
            const auto p = cluster::partition(inst.g, beta, rep_rng);
            return std::vector<double>{cluster::mean_dist_to_center(p)};
          });
      const auto& dist = stats[0];
      const double bound = core::theory::bound_cluster_distance(
          inst.g.node_count(), inst.diameter, beta);
      const double ratio = dist.mean() / bound;
      const bool ok = ratio <= 4.0;
      good += ok;
      t.row()
          .add(std::uint64_t{j})
          .add(beta, 4)
          .add(dist.mean(), 2)
          .add(bound, 2)
          .add(ratio, 3)
          .add(bound * std::max(1.0, std::log2(logn)), 2)
          .add(ok ? "yes" : "NO");
    }
    ctx.emit(t, "E4: Theorem 2.2 distance-to-centre on " + inst.name,
             "e4_cluster_distance_" + std::to_string(inst.diameter));
    ctx.note("fraction of j within 4x bound: " + std::to_string(good) + "/" +
             std::to_string(j_max) +
             "  (Theorem 2.2 promises >= 0.55 of the [0.01,0.1]logD window)");
  }
}
