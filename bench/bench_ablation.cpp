// E9 — ablations of the design choices Section 2.3 claims as the advances
// over Haeupler-Wajc:
//   (a) Theorem 2.2's tighter curtail (vs HW's log log n longer windows),
//   (b) random beta per window (vs fixed beta),
//   (c) the Compete background process (Algorithm 2) on/off,
//   (d) the ICP background process (Algorithm 4) on/off,
//   (e) pipelined vs physically-colored schedules.
#include <cmath>
#include <vector>

#include "core/broadcast.hpp"
#include "sim/instances.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"

using namespace radiocast;

RADIOCAST_SCENARIO(ablation, "ablation",
                   "E9: ablations of the Section 2.3 design choices") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(9);
  const int reps = ctx.reps(1, 3);

  const sim::Instance inst =
      sim::make_cliquepath_instance(quick ? 1024 : 4096, quick ? 128 : 384);

  struct Config {
    const char* name;
    core::CompeteParams params;
  };
  std::vector<Config> configs;
  configs.push_back({"CD default", core::CompeteParams{}});
  {
    core::CompeteParams p;
    p.hw_curtail = true;
    configs.push_back({"HW curtail (x loglog n)", p});
  }
  {
    core::CompeteParams p;
    p.randomize_beta = false;
    configs.push_back({"fixed beta (no Thm 2.2 draw)", p});
  }
  {
    core::CompeteParams p;
    p.enable_background = false;
    configs.push_back({"no Algorithm 2 background", p});
  }
  {
    core::CompeteParams p;
    p.enable_icp_background = false;
    configs.push_back({"no Algorithm 4 decay rescue", p});
  }
  if (!quick) {
    core::CompeteParams p;
    p.mode = schedule::ScheduleMode::kColored;
    configs.push_back({"colored (fully physical) schedule", p});
  }

  util::Table t({"config", "success rate", "rounds (mean)", "vs default"});
  double baseline = 0.0;
  // Paired design: every config runs on the SAME replication seeds, so the
  // "vs default" ratio isolates the config effect from seed noise.
  for (const auto& cfg : configs) {
    const auto stats = ctx.runner.replicate(
        reps, seed, 2, [&](int, std::uint64_t s) {
          const auto res =
              core::broadcast(inst.g, inst.diameter, 0, 7, cfg.params, s);
          return std::vector<double>{
              res.success ? 1.0 : 0.0,
              res.success ? static_cast<double>(res.rounds) : std::nan("")};
        });
    const auto& ok = stats[0];
    const auto& rounds = stats[1];
    if (baseline == 0.0) baseline = rounds.mean();
    t.row()
        .add(cfg.name)
        .add(ok.mean(), 2)
        .add(rounds.mean(), 0)
        .add(baseline > 0 ? rounds.mean() / baseline : 0.0, 2);
  }
  ctx.emit(t, "E9: ablations on " + inst.name, "e9_ablation");
}
