// E9 — ablations of the design choices Section 2.3 claims as the advances
// over Haeupler-Wajc:
//   (a) Theorem 2.2's tighter curtail (vs HW's log log n longer windows),
//   (b) random beta per window (vs fixed beta),
//   (c) the Compete background process (Algorithm 2) on/off,
//   (d) the ICP background process (Algorithm 4) on/off,
//   (e) pipelined vs physically-colored schedules.
#include "common.hpp"
#include "core/broadcast.hpp"

using namespace radiocast;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const std::uint64_t seed = cli.get_uint("seed", 9);
  const int reps = static_cast<int>(cli.get_uint("reps", quick ? 1 : 3));

  const bench::Instance inst =
      bench::make_instance(quick ? 1024 : 4096, quick ? 128 : 384);

  struct Config {
    const char* name;
    core::CompeteParams params;
  };
  std::vector<Config> configs;
  configs.push_back({"CD default", core::CompeteParams{}});
  {
    core::CompeteParams p;
    p.hw_curtail = true;
    configs.push_back({"HW curtail (x loglog n)", p});
  }
  {
    core::CompeteParams p;
    p.randomize_beta = false;
    configs.push_back({"fixed beta (no Thm 2.2 draw)", p});
  }
  {
    core::CompeteParams p;
    p.enable_background = false;
    configs.push_back({"no Algorithm 2 background", p});
  }
  {
    core::CompeteParams p;
    p.enable_icp_background = false;
    configs.push_back({"no Algorithm 4 decay rescue", p});
  }
  if (!quick) {
    core::CompeteParams p;
    p.mode = schedule::ScheduleMode::kColored;
    configs.push_back({"colored (fully physical) schedule", p});
  }

  util::Table t({"config", "success rate", "rounds (mean)", "vs default"});
  double baseline = 0.0;
  for (const auto& cfg : configs) {
    util::OnlineStats rounds, ok;
    for (int r = 0; r < reps; ++r) {
      const auto res = core::broadcast(inst.g, inst.diameter, 0, 7,
                                       cfg.params,
                                       util::mix_seed(seed, r * 13 + 1));
      ok.add(res.success ? 1.0 : 0.0);
      if (res.success) rounds.add(static_cast<double>(res.rounds));
    }
    if (baseline == 0.0) baseline = rounds.mean();
    t.row()
        .add(cfg.name)
        .add(ok.mean(), 2)
        .add(rounds.mean(), 0)
        .add(baseline > 0 ? rounds.mean() / baseline : 0.0, 2);
  }
  bench::emit(t, "E9: ablations on " + inst.name, "e9_ablation");
  return 0;
}
