// Shared helpers for the experiment binaries (bench/).
//
// Every binary prints aligned tables to stdout and also writes CSV files
// into ./bench_out/ (created on demand) so results can be re-plotted.
// All binaries accept --quick (smaller sweeps) and --seed.
#pragma once

#include <sys/stat.h>

#include <cstdint>
#include <iostream>
#include <string>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace radiocast::bench {

inline void ensure_outdir() { ::mkdir("bench_out", 0755); }

inline void emit(const util::Table& t, const std::string& title,
                 const std::string& csv_name) {
  t.print(std::cout, title);
  ensure_outdir();
  const std::string path = "bench_out/" + csv_name + ".csv";
  if (t.write_csv(path)) {
    std::cout << "[csv] " << path << "\n";
  }
}

/// A graph together with its measured diameter.
struct Instance {
  graph::Graph g;
  std::uint32_t diameter = 0;
  std::string name;
};

/// n-node, roughly-D-diameter instance from the path-of-cliques family —
/// the "D polynomial in n" regime the paper targets.
inline Instance make_instance(graph::NodeId n, graph::NodeId d_target) {
  Instance inst;
  inst.g = graph::diameter_controlled(n, d_target);
  inst.diameter = graph::diameter_double_sweep(inst.g);
  inst.name = "cliquepath(n=" + std::to_string(n) +
              ",D=" + std::to_string(inst.diameter) + ")";
  return inst;
}

inline Instance make_grid_instance(graph::NodeId rows, graph::NodeId cols) {
  Instance inst;
  inst.g = graph::grid(rows, cols);
  inst.diameter = rows + cols - 2;
  inst.name = "grid(" + std::to_string(rows) + "x" + std::to_string(cols) + ")";
  return inst;
}

inline Instance make_rgg_instance(graph::NodeId n, double radius,
                                  util::Rng& rng) {
  Instance inst;
  inst.g = graph::random_geometric(n, radius, rng);
  inst.diameter = graph::diameter_double_sweep(inst.g);
  inst.name = "rgg(n=" + std::to_string(n) + ",D=" +
              std::to_string(inst.diameter) + ")";
  return inst;
}

}  // namespace radiocast::bench
