// E6 — Lemma 3.1: after one round of Decay, a listener with >= 1
// participating neighbour receives with constant probability, UNIFORMLY in
// the number of participants (that is the whole point of the halving
// densities). We sweep participant counts over four decades.
#include "common.hpp"
#include "radio/network.hpp"
#include "schedule/decay.hpp"

using namespace radiocast;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const std::uint64_t seed = cli.get_uint("seed", 6);
  const int trials = static_cast<int>(cli.get_uint("trials",
                                                   quick ? 400 : 3000));
  util::Rng rng(seed);

  util::Table t({"participants", "P[received]", "ci95", "steps/round"});
  double min_p = 1.0;
  for (std::uint32_t k = 1; k <= (quick ? 256u : 1024u); k *= 2) {
    const graph::Graph g = graph::star(k + 1);
    radio::Network net(g);
    util::OnlineStats succ;
    std::vector<std::uint8_t> part(g.node_count(), 1);
    part[0] = 0;
    std::vector<radio::Payload> pay(g.node_count(), 9);
    for (int trial = 0; trial < trials; ++trial) {
      std::vector<radio::Payload> best(g.node_count(), 9);
      best[0] = radio::kNoPayload;
      schedule::decay_round(net, part, pay, best, rng);
      succ.add(best[0] == 9 ? 1.0 : 0.0);
    }
    min_p = std::min(min_p, succ.mean());
    t.row()
        .add(std::uint64_t{k})
        .add(succ.mean(), 3)
        .add(succ.ci95_halfwidth(), 3)
        .add(std::uint64_t{schedule::decay_round_length(g.node_count())});
  }
  bench::emit(t, "E6: Lemma 3.1 Decay success probability vs participants",
              "e6_decay");
  std::cout << "minimum success probability over all participant counts: "
            << util::format_double(min_p, 3)
            << " (Lemma 3.1: a positive constant; classic analysis gives "
               "~1/(2e) ~ 0.18)\n";
  return 0;
}
