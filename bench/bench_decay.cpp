// E6 — Lemma 3.1: after one round of Decay, a listener with >= 1
// participating neighbour receives with constant probability, UNIFORMLY in
// the number of participants (that is the whole point of the halving
// densities). We sweep participant counts over four decades.
#include <algorithm>
#include <vector>

#include "radio/network.hpp"
#include "schedule/decay.hpp"
#include "sim/instances.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/math.hpp"

using namespace radiocast;

RADIOCAST_SCENARIO(decay, "decay",
                   "E6: Lemma 3.1 one-round Decay success probability vs"
                   " participants") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(6);
  const int trials =
      static_cast<int>(ctx.cli.get_uint("trials", quick ? 400 : 3000));

  util::Table t({"participants", "P[received]", "ci95", "steps/round"});
  double min_p = 1.0;
  for (std::uint32_t k = 1; k <= (quick ? 256u : 1024u); k *= 2) {
    const graph::Graph g = graph::star(k + 1);
    const auto stats = ctx.runner.replicate(
        trials, util::mix_seed(seed, k), 1, [&](int, std::uint64_t s) {
          util::Rng rng(s);
          radio::Network net(g);
          std::vector<std::uint8_t> part(g.node_count(), 1);
          part[0] = 0;
          std::vector<radio::Payload> pay(g.node_count(), 9);
          std::vector<radio::Payload> best(g.node_count(), 9);
          best[0] = radio::kNoPayload;
          schedule::decay_round(net, part, pay, best, rng);
          return std::vector<double>{best[0] == 9 ? 1.0 : 0.0};
        });
    const auto& succ = stats[0];
    min_p = std::min(min_p, succ.mean());
    t.row()
        .add(std::uint64_t{k})
        .add(succ.mean(), 3)
        .add(succ.ci95_halfwidth(), 3)
        .add(std::uint64_t{schedule::decay_round_length(g.node_count())});
  }
  ctx.emit(t, "E6: Lemma 3.1 Decay success probability vs participants",
           "e6_decay");
  ctx.note("minimum success probability over all participant counts: " +
           util::format_double(min_p, 3) +
           " (Lemma 3.1: a positive constant; classic analysis gives "
           "~1/(2e) ~ 0.18)");
}
