// radiocast_bench — the single experiment driver.
//
//   radiocast_bench --list
//   radiocast_bench <scenario> [--quick] [--seed=S] [--reps=R]
//                   [--threads=N] [--out=DIR]
//
// Scenarios self-register into sim::ScenarioRegistry (see the
// RADIOCAST_SCENARIO registrations in bench/bench_*.cpp); the driver just
// dispatches the subcommand and owns the shared replication runner.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <span>
#include <string>
#include <string_view>

#include "exp/checkpoint.hpp"
#include "exp/fault.hpp"
#include "obs/trace.hpp"
#include "radio/medium.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/cli.hpp"
#include "util/fsio.hpp"
#include "util/parse.hpp"

namespace {

void print_list(const radiocast::sim::ScenarioRegistry& registry) {
  std::size_t width = 0;
  for (const auto* s : registry.list()) {
    width = std::max(width, s->name.size());
  }
  std::cout << "scenarios (" << registry.size() << "):\n";
  for (const auto* s : registry.list()) {
    std::cout << "  " << s->name
              << std::string(width - s->name.size() + 2, ' ')
              << s->description << "\n";
  }
}

/// --help shows exactly what the get_choice validation will accept, via
/// the shared util::Cli::render_choices formatting.
template <std::size_t N>
std::string choice_values(const std::array<std::string_view, N>& names) {
  return radiocast::util::Cli::render_choices(
      std::span<const std::string_view>(names));
}

void print_usage(const char* program) {
  std::cout
      << "usage: " << program << " <scenario> [flags]\n"
      << "       " << program << " --list\n\n"
      << "flags:\n"
      << "  --quick        smaller sweeps (smoke-test sized)\n"
      << "  --seed=S       base RNG seed (per-scenario default otherwise)\n"
      << "  --reps=R       replications per sweep point\n"
      << "  --threads=N    worker threads for replications (default 1);\n"
      << "                 results are identical for any N\n"
      << "  --medium=" << choice_values(radiocast::radio::kMediumNames)
      << "\n"
      << "                 radio backend for medium-aware scenarios\n"
      << "                 (default scalar)\n"
      << "  --recovery=" << choice_values(radiocast::radio::kRecoveryNames)
      << "\n"
      << "                 sender-recovery strategy for batch media\n"
      << "                 (default auto = per-round cost prediction)\n"
      << "  --medium-threads=N\n"
      << "                 sharded-backend worker count (absent = the\n"
      << "                 RADIOCAST_SHARD_THREADS env var, else hardware;\n"
      << "                 must be a positive integer when given)\n"
      << "  --gen-threads=N\n"
      << "                 graph-generation worker count (absent = the\n"
      << "                 RADIOCAST_GEN_THREADS env var, else hardware;\n"
      << "                 must be a positive integer when given; never\n"
      << "                 changes generated graphs, only build speed)\n"
      << "  --out=DIR      CSV/JSON output directory (default bench_out;\n"
      << "                 empty string disables file output)\n"
      << "\n"
      << "observability (see README \"Observability\"):\n"
      << "  --trace=FILE   write a Chrome-trace JSON of the run to FILE\n"
      << "                 (open in ui.perfetto.dev or chrome://tracing;\n"
      << "                 the RADIOCAST_TRACE env var is the same knob).\n"
      << "                 Never changes CSV/JSON report bytes\n"
      << "  --progress=auto|on|off\n"
      << "                 live one-line sweep heartbeat on stderr\n"
      << "                 (default auto = only when stderr is a TTY)\n"
      << "\n"
      << "sweep subcommand (declarative experiment grids; axes accept\n"
      << "comma lists and lin:lo..hi:k / geom:lo..hi:k ranges):\n"
      << "  " << program << " sweep --family=gnp,cliquepath"
      << " --n=512,1024,2048 \\\n"
      << "      --p=deg:12 --protocol=decay"
      << " --medium=scalar,bitslice,sharded\n"
      << "  --manifest=F   read the grid from a JSON manifest file\n"
      << "  --dry-run      list the expanded jobs without running them\n"
      << "  --timing=off   omit wall/phase timing from sweep.csv/json\n"
      << "                 (output is then byte-identical across runs)\n"
      << "  --gen-cache=off\n"
      << "                 rebuild the graph per replication batch instead\n"
      << "                 of caching one instance per grid point\n"
      << "  (--medium/--recovery take comma lists here; family axes are\n"
      << "   --p/--radius/--m/--exp/--d with --pl-deg as the powerlaw\n"
      << "   degree knob; --lanes, --reps, --sources, --max-rounds,\n"
      << "   --seed scale the grid)\n"
      << "\n"
      << "crash safety (sweep; see README \"Crash safety\"):\n"
      << "  --resume=DIR   finish an interrupted sweep from DIR's journal\n"
      << "                 (same spec flags; output is byte-identical at\n"
      << "                 --timing=off to an uninterrupted run)\n"
      << "  --checkpoint=off\n"
      << "                 do not write the <out>/sweep.journal task log\n"
      << "  --task-timeout=MS\n"
      << "                 per-task watchdog: attempts over budget are\n"
      << "                 abandoned, retried, then quarantined\n"
      << "  --retries=K    transient-failure retries per task before the\n"
      << "                 task is quarantined (default 0)\n"
      << "  SIGINT/SIGTERM drain gracefully: in-flight tasks finish and\n"
      << "  journal, then the driver exits 75 (resumable)\n"
      << "  RADIOCAST_FAULT=kill@<task>|abort@<n>|io-fail@<n>|\n"
      << "      task-throw@<task>[x<k>]|task-hang@<task>|sigint@<task>\n"
      << "                 deterministic fault injection for crash tests\n";
}

}  // namespace

int main(int argc, char** argv) {
  using radiocast::sim::Runner;
  using radiocast::sim::ScenarioContext;
  using radiocast::sim::ScenarioRegistry;

  try {
    const radiocast::util::Cli cli(argc, argv);
    const auto& registry = ScenarioRegistry::global();

    // SIGINT/SIGTERM request a graceful drain (sweep journals in-flight
    // tasks and exits 75 = resumable); a second signal kills outright.
    radiocast::exp::install_signal_handlers();

    // RADIOCAST_FAULT arms the deterministic crash/fault harness (see
    // exp/fault.hpp for the grammar). An invalid value is a hard error —
    // a typo'd fault test that silently runs clean proves nothing.
    if (const char* fault = std::getenv("RADIOCAST_FAULT");
        fault != nullptr && *fault != '\0') {
      radiocast::exp::FaultInjector::global().configure(
          radiocast::exp::FaultSpec::parse(fault));
      radiocast::util::set_io_fault_hook([] {
        return radiocast::exp::FaultInjector::global().take_io_fault();
      });
    }

    // Cli's `--flag value` syntax eats a scenario name that follows a bare
    // boolean flag (`--quick decay`); catch the misparse before the
    // get_bool calls below choke on it, and point at the fix.
    for (const auto* s : registry.list()) {
      for (const char* flag : {"quick", "list", "help"}) {
        if (cli.get_string(flag, "") == s->name) {
          std::cerr << "error: '" << s->name << "' was parsed as the value"
                    << " of --" << flag << "; put the scenario first:\n  "
                    << cli.program() << " " << s->name << " --" << flag
                    << "\n";
          return 2;
        }
      }
    }

    if (cli.get_bool("list", false) || cli.subcommand() == "list") {
      print_list(registry);
      return 0;
    }
    if (cli.subcommand().empty() || cli.get_bool("help", false)) {
      print_usage(cli.program().c_str());
      print_list(registry);
      return cli.subcommand().empty() && !cli.get_bool("help", false) ? 2 : 0;
    }

    Runner runner(static_cast<int>(cli.get_int("threads", 1)));
    ScenarioContext ctx(cli, runner);
    // Validate the enum-valued flags for every scenario up front:
    // scenarios that ignore them would otherwise silently run their
    // defaults on a typo'd value. The sweep subcommand is exempt — its
    // --medium/--recovery are grid AXES (comma lists), validated
    // per-element by exp::SweepSpec.
    const bool is_sweep = cli.subcommand() == "sweep";
    if (cli.has("medium") && !is_sweep) (void)ctx.medium_kind();
    if (cli.has("recovery") && !is_sweep) (void)ctx.recovery_strategy();
    if (cli.has("medium-threads")) (void)ctx.medium_threads();
    if (cli.has("gen-threads")) (void)ctx.gen_threads();
    if (cli.has("task-timeout")) {
      (void)radiocast::util::parse_positive_int(
          cli.get_string("task-timeout", ""), "--task-timeout");
    }
    if (cli.has("retries")) {
      (void)radiocast::util::parse_uint(cli.get_string("retries", ""),
                                        "--retries");
    }
    if (cli.has("resume") && cli.get_string("resume", "").empty()) {
      throw std::invalid_argument(
          "--resume requires the output directory of the interrupted sweep");
    }
    if (cli.has("out")) ctx.out_dir = cli.get_string("out", "bench_out");

    // --trace=FILE (or RADIOCAST_TRACE) records the whole run as a
    // Chrome-trace JSON. Purely observational: reports are byte-identical
    // with tracing on or off (pinned by test_obs and CI).
    std::string trace_path = cli.get_string("trace", "");
    if (trace_path.empty()) {
      if (const char* env = std::getenv("RADIOCAST_TRACE");
          env != nullptr && *env != '\0') {
        trace_path = env;
      }
    }
    if (!trace_path.empty()) {
      radiocast::obs::TraceSession::global().start(trace_path);
    }
    const auto flush_trace = [] {
      auto& session = radiocast::obs::TraceSession::global();
      if (!session.active()) return;
      const std::string written = session.stop_and_flush();
      if (!written.empty()) std::cerr << "[trace] " << written << "\n";
      if (session.dropped() > 0) {
        std::cerr << "[trace] " << session.dropped()
                  << " events dropped (ring buffers full)\n";
      }
    };

    try {
      const auto start = std::chrono::steady_clock::now();
      registry.run(cli.subcommand(), ctx);
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();
      // The per-replication perf-trajectory JSON (scenarios that recorded
      // nothing skip it); the Report sink logs the "[json] path" line.
      (void)ctx.write_json(cli.subcommand(), wall_ms);
    } catch (...) {
      // An interrupted or failed run still flushes the partial trace —
      // that is exactly the run someone wants to look at.
      flush_trace();
      throw;
    }
    flush_trace();
    return 0;
  } catch (const radiocast::exp::ResumableInterrupt& e) {
    std::cerr << "interrupted: " << e.what() << "\n";
    return radiocast::exp::kResumableExit;  // 75: resumable, not failed
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
