// E1 — Theorem 5.1 shape: broadcasting time versus diameter D at fixed n.
//
// Paper claim: Czumaj-Davies broadcasts in O(D log n / log D + polylog n),
// i.e. the per-hop rate rounds/D falls like log n / log D as D grows,
// while BGI pays log n per hop and CR/KP pays log(n/D) per hop. We sweep D
// at fixed n on the path-of-cliques family (the D-polynomial-in-n regime)
// and report measured rounds, per-hop rates, and the analytic curves.
#include <cmath>
#include <vector>

#include "baselines/decay_broadcast.hpp"
#include "baselines/hw_broadcast.hpp"
#include "core/broadcast.hpp"
#include "core/theory.hpp"
#include "sim/instances.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/math.hpp"

using namespace radiocast;

RADIOCAST_SCENARIO(broadcast_vs_d, "broadcast-vs-d",
                   "E1: broadcast rounds vs diameter at fixed n (Theorem 5.1"
                   " shape)") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(1);
  const auto n = static_cast<graph::NodeId>(
      ctx.cli.get_uint("n", quick ? 1024 : 4096));
  const int reps = ctx.reps(1, 3);

  const std::vector<graph::NodeId> d_targets =
      quick ? std::vector<graph::NodeId>{24, 96, 384}
            : std::vector<graph::NodeId>{16, 32, 64, 128, 256, 512};

  util::Table t({"D", "n", "CD rounds", "CD/hop", "HW rounds", "HW/hop",
                 "BGI rounds", "BGI/hop", "CR rounds", "CR/hop",
                 "logn/logD", "log(n/D)", "logn"});
  std::vector<double> ds, cd_rates;
  for (const auto d_target : d_targets) {
    if (d_target >= n / 2) continue;
    const sim::Instance inst = sim::make_cliquepath_instance(n, d_target);
    const auto stats = ctx.runner.replicate(
        reps, util::mix_seed(seed, d_target), 4,
        [&](int, std::uint64_t s) {
          std::vector<double> m(4, std::nan(""));
          const auto rc = core::broadcast(inst.g, inst.diameter, 0, 7,
                                          core::CompeteParams{}, s);
          if (rc.success) m[0] = static_cast<double>(rc.rounds);
          const auto rh =
              baselines::hw_broadcast(inst.g, inst.diameter, 0, 7, s);
          if (rh.success) m[1] = static_cast<double>(rh.rounds);
          const auto rb = baselines::decay_broadcast(
              inst.g, inst.diameter, {{0, 7}},
              baselines::bgi_params(inst.g.node_count()), s);
          if (rb.success) m[2] = static_cast<double>(rb.rounds);
          const auto rr = baselines::decay_broadcast(
              inst.g, inst.diameter, {{0, 7}},
              baselines::cr_params(inst.g.node_count(), inst.diameter), s);
          if (rr.success) m[3] = static_cast<double>(rr.rounds);
          return m;
        });
    const auto& cd = stats[0];
    const auto& hw = stats[1];
    const auto& bgi = stats[2];
    const auto& cr = stats[3];
    const double d = inst.diameter;
    t.row()
        .add(std::uint64_t{inst.diameter})
        .add(std::uint64_t{inst.g.node_count()})
        .add(cd.mean(), 0)
        .add(cd.mean() / d, 2)
        .add(hw.mean(), 0)
        .add(hw.mean() / d, 2)
        .add(bgi.mean(), 0)
        .add(bgi.mean() / d, 2)
        .add(cr.mean(), 0)
        .add(cr.mean() / d, 2)
        .add(util::log_ratio(n, inst.diameter), 2)
        .add(std::log2(std::max(2.0, double(n) / d)), 2)
        .add(util::safe_log2(n), 2);
    ds.push_back(d);
    cd_rates.push_back(cd.mean() / d);
  }
  ctx.emit(t, "E1: broadcast rounds vs D (fixed n) — Theorem 5.1 shape",
           "e1_broadcast_vs_d");

  // Shape check: CD's per-hop rate must FALL as D grows (the log n/log D
  // signature); report the fitted trend.
  if (ds.size() >= 2) {
    const auto fit = util::fit_power(ds, cd_rates);
    ctx.note("CD per-hop rate ~ D^" + util::format_double(fit.exponent, 3) +
             " (negative exponent = paper's log n/log D shape; r2=" +
             util::format_double(fit.r2, 2) + ")");
  }
}
