// E1 — Theorem 5.1 shape: broadcasting time versus diameter D at fixed n.
//
// Paper claim: Czumaj-Davies broadcasts in O(D log n / log D + polylog n),
// i.e. the per-hop rate rounds/D falls like log n / log D as D grows,
// while BGI pays log n per hop and CR/KP pays log(n/D) per hop. We sweep D
// at fixed n on the path-of-cliques family (the D-polynomial-in-n regime)
// and report measured rounds, per-hop rates, and the analytic curves.
#include "baselines/decay_broadcast.hpp"
#include "baselines/hw_broadcast.hpp"
#include <cmath>

#include "common.hpp"
#include "core/broadcast.hpp"
#include "core/theory.hpp"
#include "util/math.hpp"

using namespace radiocast;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const std::uint64_t seed = cli.get_uint("seed", 1);
  const graph::NodeId n = static_cast<graph::NodeId>(
      cli.get_uint("n", quick ? 1024 : 4096));
  const int reps = static_cast<int>(cli.get_uint("reps", quick ? 1 : 3));

  std::vector<graph::NodeId> d_targets =
      quick ? std::vector<graph::NodeId>{24, 96, 384}
            : std::vector<graph::NodeId>{16, 32, 64, 128, 256, 512};

  util::Table t({"D", "n", "CD rounds", "CD/hop", "HW rounds", "HW/hop",
                 "BGI rounds", "BGI/hop", "CR rounds", "CR/hop",
                 "logn/logD", "log(n/D)", "logn"});
  std::vector<double> ds, cd_rates;
  for (const auto d_target : d_targets) {
    if (d_target >= n / 2) continue;
    const bench::Instance inst = bench::make_instance(n, d_target);
    util::OnlineStats cd, hw, bgi, cr;
    for (int r = 0; r < reps; ++r) {
      const std::uint64_t s = util::mix_seed(seed, r * 1000 + d_target);
      const auto rc = core::broadcast(inst.g, inst.diameter, 0, 7,
                                      core::CompeteParams{}, s);
      if (rc.success) cd.add(static_cast<double>(rc.rounds));
      const auto rh = baselines::hw_broadcast(inst.g, inst.diameter, 0, 7, s);
      if (rh.success) hw.add(static_cast<double>(rh.rounds));
      const auto rb = baselines::decay_broadcast(
          inst.g, inst.diameter, {{0, 7}},
          baselines::bgi_params(inst.g.node_count()), s);
      if (rb.success) bgi.add(static_cast<double>(rb.rounds));
      const auto rr = baselines::decay_broadcast(
          inst.g, inst.diameter, {{0, 7}},
          baselines::cr_params(inst.g.node_count(), inst.diameter), s);
      if (rr.success) cr.add(static_cast<double>(rr.rounds));
    }
    const double d = inst.diameter;
    t.row()
        .add(std::uint64_t{inst.diameter})
        .add(std::uint64_t{inst.g.node_count()})
        .add(cd.mean(), 0)
        .add(cd.mean() / d, 2)
        .add(hw.mean(), 0)
        .add(hw.mean() / d, 2)
        .add(bgi.mean(), 0)
        .add(bgi.mean() / d, 2)
        .add(cr.mean(), 0)
        .add(cr.mean() / d, 2)
        .add(util::log_ratio(n, inst.diameter), 2)
        .add(std::log2(std::max(2.0, double(n) / d)), 2)
        .add(util::safe_log2(n), 2);
    ds.push_back(d);
    cd_rates.push_back(cd.mean() / d);
  }
  bench::emit(t, "E1: broadcast rounds vs D (fixed n) — Theorem 5.1 shape",
              "e1_broadcast_vs_d");

  // Shape check: CD's per-hop rate must FALL as D grows (the log n/log D
  // signature); report the fitted trend.
  if (ds.size() >= 2) {
    const auto fit = util::fit_power(ds, cd_rates);
    std::cout << "CD per-hop rate ~ D^" << util::format_double(fit.exponent, 3)
              << " (negative exponent = paper's log n/log D shape; r2="
              << util::format_double(fit.r2, 2) << ")\n";
  }
  return 0;
}
