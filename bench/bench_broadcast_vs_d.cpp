// E1 — Theorem 5.1 shape: broadcasting time versus diameter D at fixed n.
//
// Paper claim: Czumaj-Davies broadcasts in O(D log n / log D + polylog n),
// i.e. the per-hop rate rounds/D falls like log n / log D as D grows,
// while BGI pays log n per hop and CR/KP pays log(n/D) per hop. We sweep D
// at fixed n on the path-of-cliques family (the D-polynomial-in-n regime)
// and report measured rounds against the analytic curves.
//
// Results are recorded through exp::Accumulator and rendered in the
// sweep's long format — one row per (D, algorithm) with success counts,
// Wilson intervals, round statistics, and the matching core/theory bound
// overlay — so this scenario's bench_out shapes match `sweep`'s.
#include <array>
#include <cmath>
#include <vector>

#include "baselines/decay_broadcast.hpp"
#include "baselines/hw_broadcast.hpp"
#include "core/broadcast.hpp"
#include "core/theory.hpp"
#include "exp/accumulator.hpp"
#include "exp/report.hpp"
#include "sim/instances.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace radiocast;

RADIOCAST_SCENARIO(broadcast_vs_d, "broadcast-vs-d",
                   "E1: broadcast rounds vs diameter at fixed n (Theorem 5.1"
                   " shape)") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(1);
  const auto n = static_cast<graph::NodeId>(
      ctx.cli.get_uint("n", quick ? 1024 : 4096));
  const int reps = ctx.reps(1, 3);

  const std::vector<graph::NodeId> d_targets =
      quick ? std::vector<graph::NodeId>{24, 96, 384}
            : std::vector<graph::NodeId>{16, 32, 64, 128, 256, 512};

  constexpr std::size_t kAlgorithms = 4;
  const std::array<std::string_view, kAlgorithms> names{"cd", "hw", "bgi",
                                                        "cr"};

  util::Table t(exp::long_headers(/*timing=*/false));
  util::Json points = util::Json::array();
  std::vector<double> ds, cd_rates;
  for (const auto d_target : d_targets) {
    if (d_target >= n / 2) continue;
    const sim::Instance inst = sim::make_cliquepath_instance(n, d_target);
    const auto outs = ctx.runner.map(reps, [&](int rep) {
      const std::uint64_t s = util::mix_seed(
          util::mix_seed(seed, d_target), static_cast<std::uint64_t>(rep));
      std::array<double, kAlgorithms> m;
      m.fill(std::nan(""));
      const auto rc = core::broadcast(inst.g, inst.diameter, 0, 7,
                                      core::CompeteParams{}, s);
      if (rc.success) m[0] = static_cast<double>(rc.rounds);
      const auto rh = baselines::hw_broadcast(inst.g, inst.diameter, 0, 7, s);
      if (rh.success) m[1] = static_cast<double>(rh.rounds);
      const auto rb = baselines::decay_broadcast(
          inst.g, inst.diameter, {{0, 7}},
          baselines::bgi_params(inst.g.node_count()), s);
      if (rb.success) m[2] = static_cast<double>(rb.rounds);
      const auto rr = baselines::decay_broadcast(
          inst.g, inst.diameter, {{0, 7}},
          baselines::cr_params(inst.g.node_count(), inst.diameter), s);
      if (rr.success) m[3] = static_cast<double>(rr.rounds);
      return m;
    });
    const std::array<double, kAlgorithms> bounds{
        core::theory::bound_cd(n, inst.diameter),
        core::theory::bound_hw(n, inst.diameter),
        core::theory::bound_bgi(n, inst.diameter),
        core::theory::bound_crkp(n, inst.diameter)};
    for (std::size_t a = 0; a < kAlgorithms; ++a) {
      exp::Accumulator acc;
      for (const auto& m : outs) {
        const bool ok = !std::isnan(m[a]);
        acc.add(ok, ok ? m[a] : 0.0);
      }
      acc.set_theory_bound(bounds[a]);
      const exp::PointMeta meta{.family = "cliquepath",
                                .param_name = "d",
                                .param = static_cast<double>(d_target),
                                .n = inst.g.node_count(),
                                .diameter = inst.diameter,
                                .protocol = std::string(names[a]),
                                .medium = "scalar",
                                .recovery = "",
                                .lanes = 1};
      exp::add_long_row(t, meta, acc, /*timing=*/false);
      points.push_back(exp::point_json(meta, acc, /*timing=*/false));
      if (a == 0 && acc.rounds().count() > 0) {
        ds.push_back(static_cast<double>(inst.diameter));
        cd_rates.push_back(acc.rounds().mean() / inst.diameter);
      }
    }
  }
  ctx.emit(t, "E1: broadcast rounds vs D (fixed n) — Theorem 5.1 shape",
           "e1_broadcast_vs_d");
  util::Json payload = util::Json::object();
  payload.set("kind", "points");
  payload.set("points", std::move(points));
  ctx.emit_json("e1_broadcast_vs_d", std::move(payload));

  // Shape check: CD's per-hop rate must FALL as D grows (the log n/log D
  // signature); report the fitted trend.
  if (ds.size() >= 2) {
    const auto fit = util::fit_power(ds, cd_rates);
    ctx.note("CD per-hop rate ~ D^" + util::format_double(fit.exponent, 3) +
             " (negative exponent = paper's log n/log D shape; r2=" +
             util::format_double(fit.r2, 2) + ")");
  }
}
