// E13 — Lemma 2.3's k-message claim: one-to-all broadcast of k messages in
// O(D + k log n + log^6 n). Our colored-tree pipeline achieves
// period*(D + k); we sweep k at fixed D and D at fixed k, and verify the
// additive (not multiplicative) k-dependence.
#include "common.hpp"
#include "core/multi_message.hpp"
#include "util/math.hpp"

using namespace radiocast;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const std::uint64_t seed = cli.get_uint("seed", 13);
  util::Rng rng(seed);

  // Sweep k at fixed topology.
  {
    const bench::Instance inst =
        bench::make_rgg_instance(quick ? 500 : 2000, quick ? 0.07 : 0.035,
                                 rng);
    util::Table t({"k", "rounds", "period", "ideal P*(D+k)",
                   "pipeline ratio"});
    std::vector<double> ks, rounds;
    for (std::uint32_t k : {1u, 4u, 16u, 64u, 256u}) {
      if (quick && k > 64) break;
      std::vector<radio::Payload> msgs(k);
      for (std::uint32_t i = 0; i < k; ++i) msgs[i] = i;
      const auto r =
          core::multi_message_broadcast(inst.g, msgs, {}, seed + k);
      if (!r.success) continue;
      const double ideal =
          static_cast<double>(r.period) * (inst.diameter + k);
      t.row()
          .add(std::uint64_t{k})
          .add(r.rounds, 0)
          .add(std::uint64_t{r.period})
          .add(ideal, 0)
          .add(r.pipeline_ratio, 3);
      ks.push_back(k);
      rounds.push_back(static_cast<double>(r.rounds));
    }
    bench::emit(t, "E13a: k-message broadcast vs k on " + inst.name,
                "e13a_multi_message_k");
    if (ks.size() >= 3) {
      const auto fit = util::fit_linear(ks, rounds);
      std::cout << "marginal cost per extra message ~ "
                << util::format_double(fit.slope, 2)
                << " rounds (additive in k: Lemma 2.3's '+ k log n')\n";
    }
  }

  // Sweep D at fixed k.
  {
    util::Table t({"D", "rounds", "period", "pipeline ratio"});
    const std::uint32_t k = 32;
    std::vector<radio::Payload> msgs(k);
    for (std::uint32_t i = 0; i < k; ++i) msgs[i] = i;
    for (graph::NodeId d_target : {24u, 96u, 384u}) {
      const bench::Instance inst =
          bench::make_instance(quick ? 1024 : 2048, d_target);
      const auto r =
          core::multi_message_broadcast(inst.g, msgs, {}, seed + d_target);
      if (!r.success) continue;
      t.row()
          .add(std::uint64_t{inst.diameter})
          .add(r.rounds, 0)
          .add(std::uint64_t{r.period})
          .add(r.pipeline_ratio, 3);
    }
    bench::emit(t, "E13b: k-message broadcast vs D (k=32)",
                "e13b_multi_message_d");
  }
  return 0;
}
