// E13 — Lemma 2.3's k-message claim: one-to-all broadcast of k messages in
// O(D + k log n + log^6 n). Our colored-tree pipeline achieves
// period*(D + k); we sweep k at fixed D and D at fixed k, and verify the
// additive (not multiplicative) k-dependence.
#include <vector>

#include "core/multi_message.hpp"
#include "sim/instances.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/math.hpp"

using namespace radiocast;

// E13a: sweep k at fixed topology.
RADIOCAST_SCENARIO(multi_message_k, "multi-message-k",
                   "E13a: k-message broadcast rounds vs k (Lemma 2.3)") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(13);
  util::Rng rng(seed);

  const sim::Instance inst = sim::make_rgg_instance(
      quick ? 500 : 2000, quick ? 0.07 : 0.035, rng);
  util::Table t({"k", "rounds", "period", "ideal P*(D+k)",
                 "pipeline ratio"});
  std::vector<double> ks, rounds;
  for (std::uint32_t k : {1u, 4u, 16u, 64u, 256u}) {
    if (quick && k > 64) break;
    std::vector<radio::Payload> msgs(k);
    for (std::uint32_t i = 0; i < k; ++i) msgs[i] = i;
    const auto r = core::multi_message_broadcast(inst.g, msgs, {}, seed + k);
    if (!r.success) continue;
    const double ideal =
        static_cast<double>(r.period) * (inst.diameter + k);
    t.row()
        .add(std::uint64_t{k})
        .add(r.rounds, 0)
        .add(std::uint64_t{r.period})
        .add(ideal, 0)
        .add(r.pipeline_ratio, 3);
    ks.push_back(k);
    rounds.push_back(static_cast<double>(r.rounds));
  }
  ctx.emit(t, "E13a: k-message broadcast vs k on " + inst.name,
           "e13a_multi_message_k");
  if (ks.size() >= 3) {
    const auto fit = util::fit_linear(ks, rounds);
    ctx.note("marginal cost per extra message ~ " +
             util::format_double(fit.slope, 2) +
             " rounds (additive in k: Lemma 2.3's '+ k log n')");
  }
}

// E13b: sweep D at fixed k.
RADIOCAST_SCENARIO(multi_message_d, "multi-message-d",
                   "E13b: k-message broadcast rounds vs diameter (k=32)") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(13);

  util::Table t({"D", "rounds", "period", "pipeline ratio"});
  const std::uint32_t k = 32;
  std::vector<radio::Payload> msgs(k);
  for (std::uint32_t i = 0; i < k; ++i) msgs[i] = i;
  for (graph::NodeId d_target : {24u, 96u, 384u}) {
    const sim::Instance inst =
        sim::make_cliquepath_instance(quick ? 1024 : 2048, d_target);
    const auto r =
        core::multi_message_broadcast(inst.g, msgs, {}, seed + d_target);
    if (!r.success) continue;
    t.row()
        .add(std::uint64_t{inst.diameter})
        .add(r.rounds, 0)
        .add(std::uint64_t{r.period})
        .add(r.pipeline_ratio, 3);
  }
  ctx.emit(t, "E13b: k-message broadcast vs D (k=32)",
           "e13b_multi_message_d");
}
