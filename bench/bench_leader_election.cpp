// E3 — Theorem 5.2: leader election costs the same as broadcasting.
//
// The paper's headline for LE: previously every fast LE algorithm paid a
// strictly super-broadcast price (binary search pays T_BC * log n;
// Ghaffari-Haeupler pays an extra min(log log n, log(n/D)) factor). Our
// Compete-based LE must land within a constant factor of Compete
// broadcast. We measure CD broadcast, CD LE, binary-search LE, and print
// the GH analytic curve.
#include "baselines/le_binary_search.hpp"
#include "common.hpp"
#include "core/broadcast.hpp"
#include "core/leader_election.hpp"
#include "core/theory.hpp"
#include "util/math.hpp"

using namespace radiocast;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const std::uint64_t seed = cli.get_uint("seed", 3);
  const int reps = static_cast<int>(cli.get_uint("reps", quick ? 1 : 3));

  struct Case {
    graph::NodeId n;
    graph::NodeId d;
  };
  std::vector<Case> cases = quick
                                ? std::vector<Case>{{1024, 64}}
                                : std::vector<Case>{{1024, 32},
                                                    {2048, 96},
                                                    {4096, 192},
                                                    {4096, 384}};

  util::Table t({"n", "D", "CD BC", "CD LE", "LE/BC", "binsearch LE",
                 "binLE/BC", "GH bound", "|C| avg"});
  for (const auto& c : cases) {
    const bench::Instance inst = bench::make_instance(c.n, c.d);
    util::OnlineStats bc, le, ble, cand;
    for (int r = 0; r < reps; ++r) {
      const std::uint64_t s = util::mix_seed(seed, r * 7919 + c.n + c.d);
      const auto rb = core::broadcast(inst.g, inst.diameter, 0, 7,
                                      core::CompeteParams{}, s);
      if (rb.success) bc.add(static_cast<double>(rb.rounds));
      const auto rl = core::elect_leader(inst.g, inst.diameter,
                                         core::LeaderElectionParams{}, s);
      if (rl.success) {
        le.add(static_cast<double>(rl.rounds));
        cand.add(rl.candidate_count);
      }
      const auto rble = baselines::binary_search_leader_election(
          inst.g, inst.diameter, baselines::BinarySearchLeParams{}, s);
      if (rble.success) ble.add(static_cast<double>(rble.rounds));
    }
    t.row()
        .add(std::uint64_t{c.n})
        .add(std::uint64_t{inst.diameter})
        .add(bc.mean(), 0)
        .add(le.mean(), 0)
        .add(bc.mean() > 0 ? le.mean() / bc.mean() : 0.0, 2)
        .add(ble.mean(), 0)
        .add(bc.mean() > 0 ? ble.mean() / bc.mean() : 0.0, 2)
        .add(core::theory::bound_gh_le(c.n, inst.diameter), 0)
        .add(cand.mean(), 1);
  }
  bench::emit(t,
              "E3: leader election vs broadcast — LE/BC must be O(1), "
              "binsearch pays ~log n",
              "e3_leader_election");
  return 0;
}
