// E3 — Theorem 5.2: leader election costs the same as broadcasting.
//
// The paper's headline for LE: previously every fast LE algorithm paid a
// strictly super-broadcast price (binary search pays T_BC * log n;
// Ghaffari-Haeupler pays an extra min(log log n, log(n/D)) factor). Our
// Compete-based LE must land within a constant factor of Compete
// broadcast. We measure CD broadcast, CD LE, binary-search LE, and print
// the GH analytic curve.
#include <cmath>
#include <vector>

#include "baselines/le_binary_search.hpp"
#include "core/broadcast.hpp"
#include "core/leader_election.hpp"
#include "core/theory.hpp"
#include "sim/instances.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/math.hpp"

using namespace radiocast;

RADIOCAST_SCENARIO(leader_election, "leader-election",
                   "E3: leader election vs broadcast cost (Theorem 5.2)") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(3);
  const int reps = ctx.reps(1, 3);

  struct Case {
    graph::NodeId n;
    graph::NodeId d;
  };
  const std::vector<Case> cases = quick
                                      ? std::vector<Case>{{1024, 64}}
                                      : std::vector<Case>{{1024, 32},
                                                          {2048, 96},
                                                          {4096, 192},
                                                          {4096, 384}};

  util::Table t({"n", "D", "CD BC", "CD LE", "LE/BC", "binsearch LE",
                 "binLE/BC", "GH bound", "|C| avg"});
  for (const auto& c : cases) {
    const sim::Instance inst = sim::make_cliquepath_instance(c.n, c.d);
    const auto stats = ctx.runner.replicate(
        reps, util::mix_seed(seed, 7919 * c.n + c.d), 4,
        [&](int, std::uint64_t s) {
          std::vector<double> m(4, std::nan(""));
          const auto rb = core::broadcast(inst.g, inst.diameter, 0, 7,
                                          core::CompeteParams{}, s);
          if (rb.success) m[0] = static_cast<double>(rb.rounds);
          const auto rl = core::elect_leader(
              inst.g, inst.diameter, core::LeaderElectionParams{}, s);
          if (rl.success) {
            m[1] = static_cast<double>(rl.rounds);
            m[3] = rl.candidate_count;
          }
          const auto rble = baselines::binary_search_leader_election(
              inst.g, inst.diameter, baselines::BinarySearchLeParams{}, s);
          if (rble.success) m[2] = static_cast<double>(rble.rounds);
          return m;
        });
    const auto& bc = stats[0];
    const auto& le = stats[1];
    const auto& ble = stats[2];
    const auto& cand = stats[3];
    t.row()
        .add(std::uint64_t{c.n})
        .add(std::uint64_t{inst.diameter})
        .add(bc.mean(), 0)
        .add(le.mean(), 0)
        .add(bc.mean() > 0 ? le.mean() / bc.mean() : 0.0, 2)
        .add(ble.mean(), 0)
        .add(bc.mean() > 0 ? ble.mean() / bc.mean() : 0.0, 2)
        .add(core::theory::bound_gh_le(c.n, inst.diameter), 0)
        .add(cand.mean(), 1);
  }
  ctx.emit(t,
           "E3: leader election vs broadcast — LE/BC must be O(1), "
           "binsearch pays ~log n",
           "e3_leader_election");
}
