// `radiocast_bench sweep` — declarative experiment grids.
//
// Expands a SweepSpec (CLI axes and/or --manifest=FILE) into a job grid —
// family x family-parameter x n x protocol x medium x recovery — packs
// each job's Monte-Carlo replications into lane batches through the
// BatchNetwork seam, schedules every (job, batch) task over the --threads
// pool, and emits one long-format CSV plus one schema-versioned JSON
// (bench_out/sweep.{csv,json}) with Welford round statistics, Wilson
// success intervals, per-phase medium rollups, and the core/theory bound
// overlay at every grid point.
//
// Determinism: replication seeds depend only on the instance coordinates,
// tasks are folded in grid order, and `--timing=off` removes the only
// non-deterministic fields (wall/phase times) — the emitted files are
// then byte-identical for any --threads value (pinned by
// tests/test_exp_sweep.cpp and the CI sweep smoke job).
//
//   radiocast_bench sweep --quick --dry-run
//   radiocast_bench sweep --family=gnp,cliquepath --n=geom:512..8192:5
//       --p=deg:12 --protocol=decay,compete
//       --medium=scalar,bitslice,sharded --recovery=auto --reps=16
//   radiocast_bench sweep --manifest=grid.json --threads=8
#include <string>

#include "exp/planner.hpp"
#include "exp/report.hpp"
#include "exp/spec.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"

using namespace radiocast;

RADIOCAST_SCENARIO(sweep, "sweep",
                   "declarative experiment grids: family x n x param x "
                   "protocol x medium x recovery, lane-batched, with Wilson "
                   "intervals and theory-bound overlays") {
  const exp::SweepSpec spec = exp::SweepSpec::from_cli(ctx.cli, ctx.quick());
  const std::vector<exp::Job> jobs = exp::expand(spec);

  if (ctx.cli.get_bool("dry-run", false)) {
    ctx.note("sweep: " + std::to_string(jobs.size()) + " jobs, " +
             std::to_string(static_cast<long long>(jobs.size()) * spec.reps) +
             " replications");
    for (const exp::Job& job : jobs) {
      ctx.note("  " + job.label() + " x" + std::to_string(job.reps));
    }
    return;
  }

  const bool timing = ctx.cli.get_bool("timing", true);
  // Instance cache on (the default): grid points sharing instance
  // coordinates — execution axes, replication batches — reuse one pargen
  // build. --gen-cache=off rebuilds per batch for A/B cost measurements.
  const exp::Planner planner{{.gen_threads = ctx.gen_threads(),
                              .cache = ctx.cli.get_bool("gen-cache", true)}};
  const std::vector<exp::PointResult> results = planner.run(jobs, ctx.runner);

  util::Table table(exp::long_headers(timing));
  for (const exp::PointResult& point : results) {
    exp::add_long_row(table, exp::point_meta(point), point.acc, timing,
                      &point.gen);
  }
  ctx.emit(table,
           "sweep: " + std::to_string(results.size()) +
               " grid points x " + std::to_string(spec.reps) +
               " replications (lanes=" + std::to_string(spec.lanes) + ")",
           "sweep");
  ctx.note("(rounds stats over successful replications; rate carries a 95% "
           "Wilson interval; bound = core/theory overlay, x_bound = mean "
           "rounds / bound" +
           std::string(timing ? "; --timing=off for byte-stable files)"
                              : "; timing columns omitted)"));
  ctx.emit_json("sweep", exp::sweep_json(spec, results, timing));
}
