// `radiocast_bench sweep` — declarative experiment grids.
//
// Expands a SweepSpec (CLI axes and/or --manifest=FILE) into a job grid —
// family x family-parameter x n x protocol x medium x recovery — packs
// each job's Monte-Carlo replications into lane batches through the
// BatchNetwork seam, schedules every (job, batch) task over the --threads
// pool, and emits one long-format CSV plus one schema-versioned JSON
// (bench_out/sweep.{csv,json}) with Welford round statistics, Wilson
// success intervals, per-phase medium rollups, and the core/theory bound
// overlay at every grid point.
//
// Determinism: replication seeds depend only on the instance coordinates,
// tasks are folded in grid order, and `--timing=off` removes the only
// non-deterministic fields (wall/phase times) — the emitted files are
// then byte-identical for any --threads value (pinned by
// tests/test_exp_sweep.cpp and the CI sweep smoke job).
//
// Crash safety: whenever reports are enabled, every completed (job,
// lane-batch) task is journaled to <out>/sweep.journal (fsynced,
// checksummed; --checkpoint=off disables). A sweep killed mid-grid —
// SIGKILL, OOM, CI timeout — finishes later with `sweep --resume=<out>`,
// which replays the journal, re-executes only the missing tasks, and
// emits byte-identical files (at --timing=off) to an uninterrupted run.
// SIGINT/SIGTERM drain gracefully (exit 75 = resumable); --task-timeout
// and --retries bound stuck or flaky tasks, quarantining poisoned grid
// coordinates instead of hanging. See README "Crash safety".
//
//   radiocast_bench sweep --quick --dry-run
//   radiocast_bench sweep --family=gnp,cliquepath --n=geom:512..8192:5
//       --p=deg:12 --protocol=decay,compete
//       --medium=scalar,bitslice,sharded --recovery=auto --reps=16
//   radiocast_bench sweep --manifest=grid.json --threads=8
//   radiocast_bench sweep --resume=bench_out   # finish an interrupted run
#include <memory>
#include <stdexcept>
#include <string>

#include "exp/checkpoint.hpp"
#include "exp/planner.hpp"
#include "exp/report.hpp"
#include "exp/spec.hpp"
#include "obs/progress.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/parse.hpp"

using namespace radiocast;

RADIOCAST_SCENARIO(sweep, "sweep",
                   "declarative experiment grids: family x n x param x "
                   "protocol x medium x recovery, lane-batched, with Wilson "
                   "intervals, theory-bound overlays, and checkpoint/resume") {
  const bool resuming = ctx.cli.has("resume");
  if (resuming) {
    // --resume names the interrupted run's output directory; reports and
    // the journal both live there, so it replaces --out wholesale.
    const std::string dir = ctx.cli.get_string("resume", "");
    if (dir.empty()) {
      throw std::invalid_argument(
          "--resume requires the output directory of the interrupted sweep "
          "(its --out)");
    }
    ctx.out_dir = dir;
  }

  const exp::SweepSpec spec = exp::SweepSpec::from_cli(ctx.cli, ctx.quick());
  const std::vector<exp::Job> jobs = exp::expand(spec);

  if (ctx.cli.get_bool("dry-run", false)) {
    ctx.note("sweep: " + std::to_string(jobs.size()) + " jobs, " +
             std::to_string(static_cast<long long>(jobs.size()) * spec.reps) +
             " replications");
    for (const exp::Job& job : jobs) {
      ctx.note("  " + job.label() + " x" + std::to_string(job.reps));
    }
    return;
  }

  const bool timing = ctx.cli.get_bool("timing", true);
  // Instance cache on (the default): grid points sharing instance
  // coordinates — execution axes, replication batches — reuse one pargen
  // build. --gen-cache=off rebuilds per batch for A/B cost measurements.
  exp::Planner::Options options;
  options.gen_threads = ctx.gen_threads();
  options.cache = ctx.cli.get_bool("gen-cache", true);
  if (ctx.cli.has("task-timeout")) {
    options.task_timeout_ms = util::parse_positive_int(
        ctx.cli.get_string("task-timeout", ""), "--task-timeout");
  }
  if (ctx.cli.has("retries")) {
    options.retries = static_cast<int>(
        util::parse_uint(ctx.cli.get_string("retries", ""), "--retries"));
  }
  const std::vector<exp::TaskRef> tasks = exp::flatten_tasks(jobs);
  const std::size_t task_count = tasks.size();

  // Live heartbeat on stderr: default auto = only when stderr is a TTY
  // (CI logs stay clean). Purely observational — never touches reports.
  const std::string progress_mode =
      ctx.cli.get_choice("progress", "auto", {"auto", "on", "off"});
  std::unique_ptr<obs::ProgressMeter> progress;
  if (progress_mode == "on" ||
      (progress_mode == "auto" && obs::ProgressMeter::stderr_is_tty())) {
    std::uint64_t total_reps = 0;
    for (const exp::TaskRef& task : tasks) {
      total_reps += static_cast<std::uint64_t>(task.count);
    }
    progress = std::make_unique<obs::ProgressMeter>(task_count, total_reps);
    options.progress = progress.get();
  }
  const exp::Planner planner{options};
  const bool checkpointing = ctx.cli.get_bool("checkpoint", true);
  std::unique_ptr<exp::Checkpoint> checkpoint;
  if (resuming) {
    if (!checkpointing) {
      throw std::invalid_argument("--resume needs the journal; it cannot be "
                                  "combined with --checkpoint=off");
    }
    // ctx.out_dir is non-empty here (checked above), so the journal has a
    // directory to live in — Report::enabled() and the journal agree.
    checkpoint = exp::Checkpoint::resume(ctx.out_dir, spec, task_count);
    ctx.note("sweep: resuming from " +
             exp::Checkpoint::journal_path(ctx.out_dir) + " — " +
             std::to_string(checkpoint->completed_count()) + "/" +
             std::to_string(task_count) + " tasks already journaled");
  } else if (checkpointing && !ctx.out_dir.empty()) {
    checkpoint = exp::Checkpoint::start(ctx.out_dir, spec, task_count);
  }

  exp::RunOutcome outcome =
      planner.run_durable(jobs, ctx.runner, checkpoint.get());
  if (progress != nullptr) progress->finish();

  if (outcome.interrupted) {
    const std::size_t done = outcome.tasks_replayed + outcome.tasks_run;
    throw exp::ResumableInterrupt(
        "sweep drained after shutdown request: " + std::to_string(done) +
        "/" + std::to_string(outcome.tasks_total) +
        " tasks journaled; finish with --resume=" +
        (ctx.out_dir.empty() ? std::string("<out-dir>") : ctx.out_dir));
  }

  for (const exp::QuarantinedTask& q : outcome.quarantined) {
    ctx.note("sweep: QUARANTINED task #" + std::to_string(q.task) + " " +
             q.job_label + " reps [" + std::to_string(q.first_rep) + ".." +
             std::to_string(q.first_rep + q.count - 1) + "]: " + q.error);
  }

  const std::vector<exp::PointResult>& results = outcome.points;
  util::Table table(exp::long_headers(timing));
  for (const exp::PointResult& point : results) {
    exp::add_long_row(table, exp::point_meta(point), point.acc, timing,
                      &point.gen);
  }
  ctx.emit(table,
           "sweep: " + std::to_string(results.size()) +
               " grid points x " + std::to_string(spec.reps) +
               " replications (lanes=" + std::to_string(spec.lanes) + ")",
           "sweep");
  ctx.note("(rounds stats over successful replications; rate carries a 95% "
           "Wilson interval; bound = core/theory overlay, x_bound = mean "
           "rounds / bound" +
           std::string(timing ? "; --timing=off for byte-stable files)"
                              : "; timing columns omitted)"));
  ctx.emit_json("sweep",
                exp::sweep_json(spec, results, timing, &outcome.quarantined));

  // Reports are on disk (atomically): the journal has served its purpose,
  // and leaving it would make a later --resume of this directory replay a
  // finished sweep.
  if (checkpoint != nullptr) {
    checkpoint->remove_journal();
    ctx.note("sweep: complete — journal removed");
  }
}
