// E8 — Lemmas 4.3 / 4.4: under the coarse clustering (beta = D^-0.5),
//  * a node sees >= 2 distinct coarse clusters within distance D^0.11 with
//    probability <= ~3 D^-0.39,
//  * a length-D^0.12 subpath is "bad" with probability <= D^-0.26,
//  * a shortest path has O(D^0.63) bad subpaths whp.
// We measure all three on the largest D we can simulate and report the
// measured/predicted ratios (constants are absorbed; the shape — decay
// with D — is the claim under test).
#include <cmath>
#include <vector>

#include "cluster/exponential_shifts.hpp"
#include "cluster/partition_stats.hpp"
#include "core/theory.hpp"
#include "sim/instances.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/math.hpp"

using namespace radiocast;

RADIOCAST_SCENARIO(subpaths, "subpaths",
                   "E8: Lemma 4.3/4.4 coarse-boundary statistics") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(8);
  const int reps = ctx.reps(2, 5);
  const int path_samples = static_cast<int>(ctx.cli.get_uint("paths", 8));

  std::vector<sim::Instance> instances;
  instances.push_back(sim::make_cliquepath_instance(quick ? 2048 : 4096,
                                                    quick ? 256 : 512));
  if (!quick) instances.push_back(sim::make_cliquepath_instance(8192, 1024));

  util::Table t({"D", "sub len D^.12", "radius D^.11", "P[bad] meas",
                 "P[bad] pred D^-.26", "bad/path meas", "bad/path pred D^.63",
                 "multi-cluster P meas", "pred 3D^-.39"});
  for (const auto& inst : instances) {
    const double d = inst.diameter;
    const double beta = util::fpow(d, -0.5);
    const auto sub_len = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::round(util::fpow(d, 0.12))));
    const auto radius = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::round(util::fpow(d, 0.11))));

    struct RepResult {
      std::vector<double> badness;
      std::vector<double> bad_per_path;
      std::vector<double> multi;
    };
    const std::uint64_t base = util::mix_seed(seed, inst.diameter);
    const auto per_rep = ctx.runner.map(reps, [&](int rep) {
      util::Rng rng(util::mix_seed(base, rep));
      RepResult res;
      const auto p = cluster::partition(inst.g, beta, rng);
      // Sample canonical shortest paths between random endpoint pairs.
      for (int s = 0; s < path_samples; ++s) {
        const graph::NodeId u =
            static_cast<graph::NodeId>(rng.uniform(inst.g.node_count()));
        const graph::NodeId v =
            static_cast<graph::NodeId>(rng.uniform(inst.g.node_count()));
        if (u == v) continue;
        const auto path = graph::shortest_path(inst.g, u, v);
        if (path.size() < sub_len) continue;
        const auto b =
            cluster::subpath_badness(inst.g, p, path, sub_len, radius);
        if (b.total_subpaths > 0) {
          res.badness.push_back(static_cast<double>(b.bad_subpaths) /
                                b.total_subpaths);
          res.bad_per_path.push_back(static_cast<double>(b.bad_subpaths));
        }
      }
      // Lemma 4.3 quantity at a sample of nodes.
      for (int s = 0; s < 32; ++s) {
        const graph::NodeId v =
            static_cast<graph::NodeId>(rng.uniform(inst.g.node_count()));
        res.multi.push_back(
            cluster::clusters_within(inst.g, p, v, radius) >= 2 ? 1.0 : 0.0);
      }
      return res;
    });
    util::OnlineStats badness, bad_per_path, multi;
    for (const auto& res : per_rep) {
      for (const double x : res.badness) badness.add(x);
      for (const double x : res.bad_per_path) bad_per_path.add(x);
      for (const double x : res.multi) multi.add(x);
    }
    t.row()
        .add(std::uint64_t{inst.diameter})
        .add(std::uint64_t{sub_len})
        .add(std::uint64_t{radius})
        .add(badness.mean(), 4)
        .add(core::theory::bound_subpath_badness(inst.diameter), 4)
        .add(bad_per_path.mean(), 2)
        .add(core::theory::bound_bad_subpaths(inst.diameter), 2)
        .add(multi.mean(), 4)
        .add(3.0 * util::fpow(d, -0.39), 4);
  }
  ctx.emit(t, "E8: Lemma 4.3/4.4 coarse-boundary statistics", "e8_subpaths");
}
