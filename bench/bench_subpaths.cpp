// E8 — Lemmas 4.3 / 4.4: under the coarse clustering (beta = D^-0.5),
//  * a node sees >= 2 distinct coarse clusters within distance D^0.11 with
//    probability <= ~3 D^-0.39,
//  * a length-D^0.12 subpath is "bad" with probability <= D^-0.26,
//  * a shortest path has O(D^0.63) bad subpaths whp.
// We measure all three on the largest D we can simulate and report the
// measured/predicted ratios (constants are absorbed; the shape — decay
// with D — is the claim under test).
#include <cmath>

#include "cluster/exponential_shifts.hpp"
#include "cluster/partition_stats.hpp"
#include "common.hpp"
#include "core/theory.hpp"
#include "util/math.hpp"

using namespace radiocast;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const std::uint64_t seed = cli.get_uint("seed", 8);
  const int reps = static_cast<int>(cli.get_uint("reps", quick ? 2 : 5));
  const int path_samples = static_cast<int>(cli.get_uint("paths", 8));
  util::Rng rng(seed);

  std::vector<bench::Instance> instances;
  instances.push_back(bench::make_instance(quick ? 2048 : 4096,
                                           quick ? 256 : 512));
  if (!quick) instances.push_back(bench::make_instance(8192, 1024));

  util::Table t({"D", "sub len D^.12", "radius D^.11", "P[bad] meas",
                 "P[bad] pred D^-.26", "bad/path meas", "bad/path pred D^.63",
                 "multi-cluster P meas", "pred 3D^-.39"});
  for (const auto& inst : instances) {
    const double d = inst.diameter;
    const double beta = util::fpow(d, -0.5);
    const auto sub_len = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::round(util::fpow(d, 0.12))));
    const auto radius = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::round(util::fpow(d, 0.11))));

    util::OnlineStats badness, bad_per_path, multi;
    for (int r = 0; r < reps; ++r) {
      const auto p = cluster::partition(inst.g, beta, rng);
      // Sample canonical shortest paths between random endpoint pairs.
      for (int s = 0; s < path_samples; ++s) {
        const graph::NodeId u =
            static_cast<graph::NodeId>(rng.uniform(inst.g.node_count()));
        const graph::NodeId v =
            static_cast<graph::NodeId>(rng.uniform(inst.g.node_count()));
        if (u == v) continue;
        const auto path = graph::shortest_path(inst.g, u, v);
        if (path.size() < sub_len) continue;
        const auto b =
            cluster::subpath_badness(inst.g, p, path, sub_len, radius);
        if (b.total_subpaths > 0) {
          badness.add(static_cast<double>(b.bad_subpaths) /
                      b.total_subpaths);
          bad_per_path.add(static_cast<double>(b.bad_subpaths));
        }
      }
      // Lemma 4.3 quantity at a sample of nodes.
      for (int s = 0; s < 32; ++s) {
        const graph::NodeId v =
            static_cast<graph::NodeId>(rng.uniform(inst.g.node_count()));
        multi.add(cluster::clusters_within(inst.g, p, v, radius) >= 2 ? 1.0
                                                                      : 0.0);
      }
    }
    t.row()
        .add(std::uint64_t{inst.diameter})
        .add(std::uint64_t{sub_len})
        .add(std::uint64_t{radius})
        .add(badness.mean(), 4)
        .add(core::theory::bound_subpath_badness(inst.diameter), 4)
        .add(bad_per_path.mean(), 2)
        .add(core::theory::bound_bad_subpaths(inst.diameter), 2)
        .add(multi.mean(), 4)
        .add(3.0 * util::fpow(d, -0.39), 4);
  }
  bench::emit(t, "E8: Lemma 4.3/4.4 coarse-boundary statistics",
              "e8_subpaths");
  return 0;
}
