#!/usr/bin/env bash
# trend.sh — headline performance trend for the medium backends.
#
# Runs the medium-backends scenario, extracts the four headline speedups
# from its CSV output, writes them as bench_out/trend.json, and checks
# them against the committed BENCH_baseline.json acceptance bars:
#
#   batch_reps_speedup    bitslice 64-seed replication vs scalar  (>= 8x)
#   sparse_tail_speedup   frontier vs bitslice on tail rounds     (>= 5x)
#   fold_layout_speedup   node-major vs lane-major 64-lane fold   (>= 1.3x)
#   sharded_scaling_w4    sharded 4-worker vs 1-worker batch      (>= 2x,
#                         enforced only on hosts with >= 4 cores)
#
# Usage:
#   bench/trend.sh [--quick] [--strict] [--append] [--bench BIN] [--out DIR]
#
# --quick   smoke-sized sweeps (bars are calibrated for full mode; quick
#           results are reported but never enforced)
# --strict  exit 1 when an enforced bar is missed (default: warn only)
# --append  also append one compact JSON line to <repo>/BENCH_history.jsonl
#           (date, git revision, mode, cores, the four metrics) — the
#           cross-PR perf trajectory; summarize it with bench/history.sh
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
bench_bin="${repo_root}/build/radiocast_bench"
out_dir="${repo_root}/bench_out"
history_file="${repo_root}/BENCH_history.jsonl"
quick=0
strict=0
append=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) quick=1 ;;
    --strict) strict=1 ;;
    --append) append=1 ;;
    --bench) bench_bin="$2"; shift ;;
    --out) out_dir="$2"; shift ;;
    *) echo "trend.sh: unknown flag $1" >&2; exit 2 ;;
  esac
  shift
done

if [[ ! -x "${bench_bin}" ]]; then
  echo "trend.sh: bench binary not found at ${bench_bin}" >&2
  echo "          build it first: cmake -B build -S . && cmake --build build -j" >&2
  exit 2
fi

mode_flag=()
mode="full"
if [[ ${quick} -eq 1 ]]; then
  mode_flag=(--quick)
  mode="quick"
fi

"${bench_bin}" medium-backends "${mode_flag[@]}" --out="${out_dir}"

# last_speedup CSV COL — final field named COL from the last data row that
# awk's filter matches; CSVs are flat key,value tables emitted by the bench.
col() {
  local file="$1" filter="$2" field="$3"
  awk -F, -v f="${filter}" -v c="${field}" '
    NR == 1 { for (i = 1; i <= NF; ++i) if ($i == c) col = i; next }
    $0 ~ f { v = $col }
    END { if (v != "") print v; else print "nan" }
  ' "${file}"
}

batch=$(col "${out_dir}/medium_backends_batch.csv" '^bitslice,' 'speedup')
tail_sp=$(col "${out_dir}/medium_backends_sparse_tail.csv" '^frontier,' 'tail speedup')
fold=$(col "${out_dir}/medium_backends_fold_layout.csv" '^node-major,' 'speedup')
scale=$(col "${out_dir}/medium_backends_two_level.csv" '^sharded,4,' 'scaling')

cores=$(nproc 2>/dev/null || echo 1)

cat > "${out_dir}/trend.json" <<EOF
{
  "date": "$(date -u +%Y-%m-%d)",
  "mode": "${mode}",
  "hardware_concurrency": ${cores},
  "metrics": {
    "batch_reps_speedup": ${batch},
    "sparse_tail_speedup": ${tail_sp},
    "fold_layout_speedup": ${fold},
    "sharded_scaling_w4": ${scale}
  }
}
EOF
echo
echo "[trend] ${out_dir}/trend.json"

if [[ ${append} -eq 1 ]]; then
  rev=$(git -C "${repo_root}" rev-parse --short HEAD 2>/dev/null || echo unknown)
  # A metric the CSVs did not produce is "nan" — valid JSON needs null.
  jnum() { if [[ "$1" == "nan" ]]; then echo null; else echo "$1"; fi; }
  printf '{"date":"%s","rev":"%s","mode":"%s","cores":%s,"batch_reps_speedup":%s,"sparse_tail_speedup":%s,"fold_layout_speedup":%s,"sharded_scaling_w4":%s}\n' \
    "$(date -u +%Y-%m-%dT%H:%M:%SZ)" "${rev}" "${mode}" "${cores}" \
    "$(jnum "${batch}")" "$(jnum "${tail_sp}")" "$(jnum "${fold}")" \
    "$(jnum "${scale}")" >> "${history_file}"
  echo "[trend] appended to ${history_file}"
fi

fail=0
check() {
  local name="$1" value="$2" bar="$3" enforced="$4"
  local status="PASS"
  if awk -v v="${value}" -v b="${bar}" 'BEGIN { exit !(v >= b) }'; then
    :
  elif [[ "${enforced}" == "1" ]]; then
    status="FAIL"
    fail=1
  else
    status="skip"
  fi
  printf '[trend] %-22s %8s  (bar >= %s)  %s\n' "${name}" "${value}" "${bar}" "${status}"
}

# Bars are calibrated for full mode on the committed baseline host; quick
# runs report but never enforce. The sharded scaling bar additionally
# needs >= 4 cores to be meaningful.
enforce=$(( quick == 0 ? 1 : 0 ))
scale_enforce=${enforce}
if [[ ${cores} -lt 4 ]]; then scale_enforce=0; fi

check batch_reps_speedup  "${batch}"   8.0  "${enforce}"
check sparse_tail_speedup "${tail_sp}" 5.0  "${enforce}"
check fold_layout_speedup "${fold}"    1.3  "${enforce}"
check sharded_scaling_w4  "${scale}"   2.0  "${scale_enforce}"

if [[ ${fail} -eq 1 && ${strict} -eq 1 ]]; then
  echo "[trend] FAIL: a headline bar regressed (see above)" >&2
  exit 1
fi
if [[ ${fail} -eq 1 ]]; then
  echo "[trend] WARN: a headline bar was missed (run with --strict to fail)"
fi
exit 0
