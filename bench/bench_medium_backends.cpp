// Medium backend comparison: the scaling axes the pluggable radio::Medium
// interface opens up.
//
// Part 1 — replication batching. A 64-seed Monte-Carlo of a decay-style
// probabilistic flood on a Gnp instance, run twice: the scalar backend
// resolving each seed's rounds independently (sim::Runner::replicate), and
// the bitslice backend resolving all 64 seeds per CSR traversal
// (sim::Runner::replicate_batched + radio::BatchNetwork). The headline
// number is replication throughput; the acceptance bar is bitslice >= 8x
// scalar.
//
// Part 2 — single-instance sharding. Fixed transmitter sets on a large
// Gnp instance, resolved by the scalar and sharded backends; the sharded
// backend cuts the listener space into degree-balanced slices, runs them
// on a work-stealing worker pool, and merges in slice order so outcomes
// are byte-identical for every worker count.
//
// Part 3 — sparse-tail rounds. A geometrically decaying transmitter
// schedule on a large Gnp instance (the long-tail shape of Decay back-off
// and broadcast mop-up phases: after a few dense rounds, almost every
// round has a handful of transmitters), driven through the sparse
// step_lanes_active entry point on the bitslice and frontier backends.
// Bitslice materialises a dense mask and scans all n per round; frontier
// wakes only the listeners adjacent to this round's transmitters, so its
// tail-round cost follows active_listeners, not n. Outcomes are
// cross-checksummed; the acceptance bar is frontier >= 5x bitslice
// lane-rounds/s on the tail segment at n = 1e6 (full mode).
//
// Part 4 — knowledge-plane layout. The 64-lane max-fold kernel timed
// against node-major vs lane-major best[] planes over one dense round's
// deliveries; the acceptance bar is node-major >= 1.3x lane-major.
//
// Part 5 — two-level sharded batch. 64-lane resolve_batch rounds on the
// work-stealing sharded backend (slices x lanes) across worker counts,
// with bitslice as the single-worker reference; outcomes stay
// byte-identical for every worker count.
//
// --medium=scalar|bitslice|sharded|frontier restricts the comparison to
// one backend (used by the CI smoke matrix); by default all rows run.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/pargen.hpp"
#include "radio/batch_network.hpp"
#include "radio/network.hpp"
#include "schedule/decay.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"

using namespace radiocast;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr radio::Payload kFloodValue = 42;

/// One scalar replication of the flood: informed nodes transmit with the
/// decay-cycle probability, deliveries inform their listeners. Returns
/// {rounds to inform the source's component, total deliveries, wall ms}.
std::vector<double> flood_scalar(const graph::Graph& g, graph::NodeId src,
                                 std::uint32_t reachable, std::uint64_t cap,
                                 std::uint64_t seed,
                                 radio::PhaseTimers& phases) {
  const double t0 = now_ms();
  const graph::NodeId n = g.node_count();
  const std::uint32_t depth = schedule::decay_round_length(n);
  radio::Network net(g);
  util::Rng rng(seed);
  std::vector<std::uint8_t> informed(n, 0);
  std::vector<graph::NodeId> informed_list{src};
  informed[src] = 1;
  std::uint32_t informed_count = 1;
  std::vector<graph::NodeId> tx;
  std::vector<radio::Payload> pay;
  radio::SparseOutcome out;
  std::uint64_t r = 0;
  while (informed_count < reachable && r < cap) {
    const double p = schedule::decay_probability(
        static_cast<std::uint32_t>(r % depth) + 1);
    tx.clear();
    pay.clear();
    for (const graph::NodeId v : informed_list) {
      if (rng.bernoulli(p)) {
        tx.push_back(v);
        pay.push_back(kFloodValue);
      }
    }
    net.resolve(tx, pay, out);
    for (const auto& d : out.deliveries) {
      if (!informed[d.node]) {
        informed[d.node] = 1;
        informed_list.push_back(d.node);
        ++informed_count;
      }
    }
    ++r;
  }
  phases = net.medium().phase_timers();
  return {static_cast<double>(r),
          static_cast<double>(net.total_deliveries()), now_ms() - t0};
}

/// One bitslice batch of the flood: all lanes advance per round through a
/// single BatchNetwork step. Returns one {rounds, deliveries, wall ms}
/// vector per lane (wall is the batch wall divided across lanes).
std::vector<std::vector<double>> flood_bitslice(
    const graph::Graph& g, graph::NodeId src, std::uint32_t reachable,
    std::uint64_t cap, const std::vector<std::uint64_t>& seeds,
    radio::PhaseTimers& phases) {
  const double t0 = now_ms();
  const graph::NodeId n = g.node_count();
  const int lanes = static_cast<int>(seeds.size());
  const std::uint64_t lane_mask = radio::lane_mask(lanes);
  const std::uint32_t depth = schedule::decay_round_length(n);
  radio::BatchNetwork bn(g, lanes);
  // One stream drives every lane's coins; lanes decouple through the
  // per-lane bit positions, and the batch is seeded from its first lane.
  // Coin words come from splitmix64 — the library's cheap stateless mixer
  // — because the batch draws whole 64-lane words, not distributions.
  std::uint64_t coin_state = util::mix_seed(seeds[0], 0xb175);
  std::vector<std::uint64_t> informed_mask(n, 0);
  informed_mask[src] = lane_mask;
  std::vector<std::uint32_t> informed_count(static_cast<std::size_t>(lanes),
                                            1);
  std::vector<std::uint64_t> rounds_done(static_cast<std::size_t>(lanes), 0);
  std::vector<std::uint64_t> tx_mask(n, 0);
  const std::vector<radio::Payload> payload(n, kFloodValue);
  radio::BatchOutcome out;
  std::uint64_t active = reachable > 1 ? lane_mask : 0;
  std::uint64_t r = 0;
  while (active != 0 && r < cap) {
    const std::uint32_t s = static_cast<std::uint32_t>(r % depth) + 1;
    for (graph::NodeId v = 0; v < n; ++v) {
      const std::uint64_t m = informed_mask[v] & active;
      if (m == 0) {
        tx_mask[v] = 0;
        continue;
      }
      // Bernoulli(2^-s) per lane: AND of s independent coin words (all
      // bits die early for large s, so the chain usually short-circuits).
      std::uint64_t coin = util::splitmix64(coin_state);
      for (std::uint32_t j = 1; j < s && coin != 0; ++j) {
        coin &= util::splitmix64(coin_state);
      }
      tx_mask[v] = m & coin;
    }
    // Mask-only resolution: the flood needs who-got-informed, not which
    // neighbour delivered, so skip the sender-recovery pass.
    bn.step(tx_mask, payload, out, /*with_senders=*/false);
    for (const auto& dm : out.delivered) {
      std::uint64_t fresh = dm.lanes & ~informed_mask[dm.node];
      if (fresh == 0) continue;
      informed_mask[dm.node] |= fresh;
      while (fresh != 0) {
        ++informed_count[std::countr_zero(fresh)];
        fresh &= fresh - 1;
      }
    }
    ++r;
    for (int l = 0; l < lanes; ++l) {
      const std::uint64_t bit = std::uint64_t{1} << l;
      if ((active & bit) && informed_count[l] >= reachable) {
        rounds_done[l] = r;
        active &= ~bit;
      }
    }
  }
  phases = bn.medium().phase_timers();
  const double wall = now_ms() - t0;
  std::vector<std::vector<double>> result;
  result.reserve(static_cast<std::size_t>(lanes));
  for (int l = 0; l < lanes; ++l) {
    result.push_back({static_cast<double>(rounds_done[l] == 0 && reachable > 1
                                              ? cap
                                              : rounds_done[l]),
                      static_cast<double>(bn.deliveries_by_lane()[l]),
                      wall / lanes});
  }
  return result;
}

}  // namespace

RADIOCAST_SCENARIO(medium_backends, "medium-backends",
                   "radio medium backends: bitslice 64-seed batching and "
                   "sharded parallel rounds vs the scalar kernel") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(7);
  const bool restricted = ctx.cli.has("medium");
  const radio::MediumKind only = ctx.medium_kind();
  auto enabled = [&](radio::MediumKind k) { return !restricted || only == k; };

  // ---- Part 1: 64-seed Monte-Carlo replication batch on Gnp ------------
  {
    util::Rng grng(seed);
    const graph::NodeId n = quick ? 4000 : 8000;
    const double p = 16.0 / n;  // avg degree ~16
    const graph::Graph g = graph::gnp(n, p, grng);
    const graph::NodeId src = 0;
    const auto dist = graph::bfs_distances(g, src);
    std::uint32_t reachable = 0;
    for (const auto d : dist) {
      if (d != graph::kUnreachable) ++reachable;
    }
    const int reps = ctx.reps(64, 64);
    const std::uint64_t cap = quick ? 2000 : 8000;

    util::Table t({"backend", "reps", "rounds", "deliveries", "wall ms",
                   "reps/s", "speedup"});
    double scalar_wall = 0.0;
    auto add_row = [&](const std::string& backend,
                       const std::vector<util::OnlineStats>& stats,
                       double wall) {
      t.row()
          .add(backend)
          .add(static_cast<double>(reps), 0)
          .add(stats[0].mean(), 1)
          .add(stats[1].mean(), 0)
          .add(wall, 1)
          .add(wall > 0 ? reps * 1e3 / wall : 0.0, 1)
          .add(scalar_wall > 0 && wall > 0 ? scalar_wall / wall : 1.0, 2);
    };

    if (enabled(radio::MediumKind::kScalar)) {
      const double t0 = now_ms();
      const auto stats = ctx.runner.replicate(
          reps, seed, 3, [&](int rep, std::uint64_t rep_seed) {
            radio::PhaseTimers phases;
            auto m = flood_scalar(g, src, reachable, cap, rep_seed, phases);
            ctx.record({"scalar", rep, m[0], m[1], m[2], "scalar", 1, "",
                        static_cast<double>(phases.traverse_ns),
                        static_cast<double>(phases.output_ns),
                        static_cast<double>(phases.recover_ns),
                        static_cast<double>(phases.active_listeners)});
            return m;
          });
      scalar_wall = now_ms() - t0;
      add_row("scalar", stats, scalar_wall);
    }
    if (enabled(radio::MediumKind::kBitslice)) {
      const double t0 = now_ms();
      const auto stats = ctx.runner.replicate_batched(
          reps, seed, 3, radio::kMaxLanes,
          [&](int first_rep, const std::vector<std::uint64_t>& seeds) {
            radio::PhaseTimers phases;
            auto lanes = flood_bitslice(g, src, reachable, cap, seeds, phases);
            const double share = 1.0 / static_cast<double>(lanes.size());
            for (std::size_t l = 0; l < lanes.size(); ++l) {
              // Mask-only flood: no sender recovery runs, so no strategy
              // is recorded and recover_ns stays 0 by construction.
              ctx.record({"bitslice", first_rep + static_cast<int>(l),
                          lanes[l][0], lanes[l][1], lanes[l][2], "bitslice",
                          static_cast<int>(seeds.size()), "",
                          static_cast<double>(phases.traverse_ns) * share,
                          static_cast<double>(phases.output_ns) * share,
                          static_cast<double>(phases.recover_ns) * share,
                          static_cast<double>(phases.active_listeners) *
                              share});
            }
            return lanes;
          });
      add_row("bitslice", stats, now_ms() - t0);
    }
    ctx.emit(t,
             "decay-flood Monte-Carlo on gnp(n=" + std::to_string(n) +
                 ", avg_deg~16), " + std::to_string(reps) + " seeds",
             "medium_backends_batch");
    ctx.note("(bitslice resolves up to 64 replication lanes per CSR "
             "traversal; acceptance bar is >= 8x scalar reps/s)");
  }

  // ---- Part 2: sharded single-instance round throughput ----------------
  {
    util::Rng grng(util::mix_seed(seed, 2));
    const graph::NodeId n = quick ? 20000 : 200000;
    const graph::Graph g = graph::gnp(n, 10.0 / n, grng);
    const int iters = quick ? 20 : 50;
    // Worker-count precedence: --medium-threads, then an explicit
    // --threads (including 1), then 0 = the backend default (the
    // RADIOCAST_SHARD_THREADS env var, else hardware).
    const int threads =
        ctx.cli.has("medium-threads")
            ? ctx.medium_threads()
            : (ctx.cli.has("threads")
                   ? static_cast<int>(ctx.cli.get_int("threads", 1))
                   : 0);

    util::Table t({"backend", "tx density", "ns/round", "Mlisteners/s",
                   "speedup"});
    for (const double density : {0.002, 0.02, 0.2}) {
      util::Rng trng(util::mix_seed(seed, static_cast<std::uint64_t>(
                                              density * 1e4)));
      std::vector<graph::NodeId> tx;
      std::vector<radio::Payload> pay;
      for (graph::NodeId v = 0; v < n; ++v) {
        if (trng.bernoulli(density)) {
          tx.push_back(v);
          pay.push_back(v);
        }
      }
      double scalar_ns = 0.0;
      for (const radio::MediumKind kind :
           {radio::MediumKind::kScalar, radio::MediumKind::kSharded}) {
        if (!enabled(kind)) continue;
        radio::Network net(g, radio::CollisionModel::kNoDetection, kind,
                           threads);
        radio::SparseOutcome out;
        net.resolve(tx, pay, out);  // warmup
        const double t0 = now_ms();
        for (int i = 0; i < iters; ++i) net.resolve(tx, pay, out);
        const double ns = (now_ms() - t0) * 1e6 / iters;
        if (kind == radio::MediumKind::kScalar) scalar_ns = ns;
        t.row()
            .add(std::string(radio::to_string(kind)))
            .add(density * 100.0, 1)
            .add(ns, 0)
            .add(ns > 0 ? n * 1e3 / ns : 0.0, 1)
            .add(scalar_ns > 0 && ns > 0 ? scalar_ns / ns : 1.0, 2);
      }
    }
    ctx.emit(t,
             "single-instance rounds on gnp(n=" + std::to_string(n) +
                 ", avg_deg~10)",
             "medium_backends_sharded");
    ctx.note("(sharded cuts listeners into degree-balanced CSR shards with "
             "a deterministic merge; its speedup scales with cores — this "
             "host has hardware_concurrency=" +
             std::to_string(std::thread::hardware_concurrency()) + ")");
  }

  // ---- Part 3: sparse-tail rounds via the event-driven frontier --------
  if (enabled(radio::MediumKind::kBitslice) ||
      enabled(radio::MediumKind::kFrontier)) {
    const graph::NodeId n = quick ? 100000 : 1000000;
    const graph::Graph g =
        graph::pargen::gnp(n, 8.0 / n, util::mix_seed(seed, 3));
    constexpr int kLanes = radio::kMaxLanes;
    const std::uint64_t live = radio::lane_mask(kLanes);

    // Geometric source decay: the transmitter count halves each round from
    // n/16 down to a floor of 4, then the tail holds there — the long-tail
    // shape where O(n)-per-round backends burn their time. Each entry gets
    // a random nonzero 64-bit lane mask so the sparse path's lane
    // composition is exercised, not just lane-0.
    std::vector<std::vector<radio::ActiveTx>> schedule;
    std::size_t tail_begin = 0;
    {
      const int tail_rounds = quick ? 24 : 32;
      std::uint64_t state = util::mix_seed(seed, 4);
      std::uint32_t count = n / 16;
      auto make_round = [&](std::uint32_t c) {
        std::vector<radio::ActiveTx> tx;
        tx.reserve(c);
        for (std::uint32_t i = 0; i < c; ++i) {
          const auto node =
              static_cast<graph::NodeId>(util::splitmix64(state) % n);
          std::uint64_t m = util::splitmix64(state) & live;
          if (m == 0) m = 1;
          tx.push_back({node, m});
        }
        return tx;
      };
      while (count > 4) {
        schedule.push_back(make_round(count));
        count /= 2;
      }
      tail_begin = schedule.size();
      for (int i = 0; i < tail_rounds; ++i) schedule.push_back(make_round(4));
    }
    const auto total_rounds = static_cast<double>(schedule.size());
    const auto tail_rounds =
        static_cast<double>(schedule.size() - tail_begin);
    const std::vector<radio::Payload> payload(n, kFloodValue);

    util::Table t({"backend", "rounds", "active/round", "wall ms",
                   "lane-rounds/s", "tail ns/round", "tail speedup"});
    double bitslice_tail_ns = 0.0;
    std::uint64_t bitslice_sum = 0, frontier_sum = 0;
    bool bitslice_ran = false, frontier_ran = false;
    for (const radio::MediumKind kind :
         {radio::MediumKind::kBitslice, radio::MediumKind::kFrontier}) {
      if (!enabled(kind)) continue;
      radio::BatchNetwork bn(g, kLanes, radio::CollisionModel::kNoDetection,
                             kind);
      radio::BatchOutcome out;
      // Full schedule: checksum the delivered masks (order-independent
      // fold) so the backends are held to identical outcomes here too.
      std::uint64_t checksum = 0;
      bn.step_lanes_active(schedule.front(), payload, out, false);  // warmup
      bn.reset_counters();
      bn.medium().reset_phase_timers();
      const double t0 = now_ms();
      for (const auto& tx : schedule) {
        bn.step_lanes_active(tx, payload, out, /*with_senders=*/false);
        for (const auto& dm : out.delivered) {
          checksum += (static_cast<std::uint64_t>(dm.node) * 0x9e3779b9u) ^
                      dm.lanes;
        }
      }
      const double wall = now_ms() - t0;
      const radio::PhaseTimers phases = bn.medium().phase_timers();
      const double deliveries = static_cast<double>(bn.total_deliveries());

      // Tail segment only, re-run hot: the per-round cost once the active
      // set has collapsed — where O(active) and O(n) diverge.
      const int tail_iters = quick ? 5 : 10;
      const double t1 = now_ms();
      for (int it = 0; it < tail_iters; ++it) {
        for (std::size_t r = tail_begin; r < schedule.size(); ++r) {
          bn.step_lanes_active(schedule[r], payload, out,
                               /*with_senders=*/false);
        }
      }
      const double tail_ns =
          (now_ms() - t1) * 1e6 / (tail_rounds * tail_iters);
      if (kind == radio::MediumKind::kBitslice) {
        bitslice_tail_ns = tail_ns;
        bitslice_sum = checksum;
        bitslice_ran = true;
      } else {
        frontier_sum = checksum;
        frontier_ran = true;
      }

      const double active_per_round =
          static_cast<double>(phases.active_listeners) / total_rounds;
      t.row()
          .add(std::string(radio::to_string(kind)))
          .add(total_rounds, 0)
          .add(active_per_round, 0)
          .add(wall, 1)
          .add(wall > 0 ? total_rounds * kLanes * 1e3 / wall : 0.0, 0)
          .add(tail_ns, 0)
          .add(bitslice_tail_ns > 0 && tail_ns > 0
                   ? bitslice_tail_ns / tail_ns
                   : 1.0,
               2);
      ctx.record({"sparse-tail", 0, total_rounds, deliveries, wall,
                  std::string(radio::to_string(kind)), kLanes, "",
                  static_cast<double>(phases.traverse_ns),
                  static_cast<double>(phases.output_ns),
                  static_cast<double>(phases.recover_ns),
                  static_cast<double>(phases.active_listeners)});
    }
    if (bitslice_ran && frontier_ran && bitslice_sum != frontier_sum) {
      ctx.note("WARNING: sparse-tail outcome checksum mismatch between "
               "bitslice and frontier");
    }
    ctx.emit(t,
             "sparse-tail rounds on gnp(n=" + std::to_string(n) +
                 ", avg_deg~8), geometric source decay, 64 lanes",
             "medium_backends_sparse_tail");
    ctx.note("(frontier wakes only listeners adjacent to this round's "
             "transmitters — tail cost follows active/round, not n; "
             "acceptance bar is >= 5x bitslice on tail rounds at n=1e6)");
  }

  // ---- Part 4: knowledge-plane layout (node-major vs lane-major) -------
  // The 64-lane max-fold writes each delivered listener's won lanes into
  // best[]. Lane-major planes scatter those writes across 64 planes (one
  // cache line each, n*sizeof(Payload) apart); node-major keeps a
  // listener's lane words contiguous. The microbench times the fold kernel
  // itself over a real round's delivered masks; the acceptance bar is
  // node-major >= 1.3x lane-major.
  {
    util::Rng grng(util::mix_seed(seed, 5));
    const graph::NodeId n = quick ? 20000 : 100000;
    const graph::Graph g = graph::gnp(n, 10.0 / n, grng);
    constexpr int kLanes = radio::kMaxLanes;
    const std::uint64_t live = radio::lane_mask(kLanes);
    std::vector<std::uint64_t> tx_mask(n);
    {
      // ~25% per-lane transmit density: the fold-heavy regime where most
      // listeners win in several lanes.
      std::uint64_t state = util::mix_seed(seed, 6);
      for (graph::NodeId v = 0; v < n; ++v) {
        tx_mask[v] = util::splitmix64(state) & util::splitmix64(state) & live;
      }
    }
    const std::vector<radio::Payload> payload(n, kFloodValue);
    radio::BatchOutcome out;
    auto bitslice = radio::make_medium(radio::MediumKind::kBitslice, g,
                                       radio::CollisionModel::kNoDetection);
    bitslice->resolve_batch(tx_mask, payload, kLanes, out,
                            /*with_senders=*/false);
    std::uint64_t fold_writes = 0;
    for (const auto& dm : out.delivered) {
      fold_writes += std::popcount(dm.lanes);
    }

    const int iters = quick ? 30 : 60;
    util::Table t({"best layout", "folds/round", "ns/round", "ns/fold",
                   "speedup"});
    double lane_major_ns = 0.0;
    std::vector<radio::Payload> best(static_cast<std::size_t>(kLanes) * n,
                                     radio::kNoPayload);
    for (const bool node_major : {false, true}) {
      const radio::KnowledgePlanes view =
          node_major ? radio::KnowledgePlanes::node_major(best, n)
                     : radio::KnowledgePlanes::lane_major(best, n);
      const std::size_t bls = view.lane_stride();
      // Monotonically growing payloads keep every fold a real write (the
      // max always improves), so both layouts pay their write traffic.
      std::fill(best.begin(), best.end(), radio::kNoPayload);
      auto fold_round = [&](radio::Payload base) {
        for (const auto& dm : out.delivered) {
          radio::Payload* const brow = view.row(dm.node);
          std::uint64_t hit = dm.lanes;
          do {
            const int lane = std::countr_zero(hit);
            radio::Payload& b =
                brow[static_cast<std::size_t>(lane) * bls];
            const radio::Payload p =
                base + static_cast<radio::Payload>(lane);
            if (b == radio::kNoPayload || p > b) b = p;
            hit &= hit - 1;
          } while (hit != 0);
        }
      };
      fold_round(1);  // warmup + first-touch
      const double t0 = now_ms();
      for (int i = 0; i < iters; ++i) {
        fold_round(static_cast<radio::Payload>(100 + i * kLanes));
      }
      const double ns = (now_ms() - t0) * 1e6 / iters;
      if (!node_major) lane_major_ns = ns;
      t.row()
          .add(node_major ? "node-major" : "lane-major")
          .add(static_cast<double>(fold_writes), 0)
          .add(ns, 0)
          .add(fold_writes > 0 ? ns / static_cast<double>(fold_writes) : 0.0,
               2)
          .add(lane_major_ns > 0 && ns > 0 ? lane_major_ns / ns : 1.0, 2);
      ctx.record({"fold-layout", node_major ? 1 : 0,
                  static_cast<double>(fold_writes), ns, ns, "bitslice",
                  kLanes, node_major ? "node-major" : "lane-major", 0.0, 0.0,
                  0.0, 0.0});
    }
    ctx.emit(t,
             "64-lane max-fold into best[] planes, one dense round's "
             "deliveries on gnp(n=" + std::to_string(n) + ", avg_deg~10)",
             "medium_backends_fold_layout");
    ctx.note("(node-major puts each listener's 64 lane words in one "
             "contiguous run; acceptance bar is >= 1.3x lane-major)");
  }

  // ---- Part 5: two-level sharded batch (slices x 64 lanes) -------------
  // Every slice runs the 64-lane bitslice kernel, so the sharded batch is
  // worker-parallel ON TOP of lane-parallel. Outcomes are byte-identical
  // for every worker count (pinned by tests); this table records how the
  // cost moves with workers on this host.
  if (enabled(radio::MediumKind::kSharded) ||
      enabled(radio::MediumKind::kBitslice)) {
    util::Rng grng(util::mix_seed(seed, 7));
    const graph::NodeId n = quick ? 20000 : 100000;
    const graph::Graph g = graph::gnp(n, 10.0 / n, grng);
    constexpr int kLanes = radio::kMaxLanes;
    const std::uint64_t live = radio::lane_mask(kLanes);
    std::vector<std::uint64_t> tx_mask(n);
    std::uint64_t state = util::mix_seed(seed, 8);
    for (graph::NodeId v = 0; v < n; ++v) {
      tx_mask[v] = util::splitmix64(state) & util::splitmix64(state) & live;
    }
    const std::vector<radio::Payload> payload(n, kFloodValue);
    const int iters = quick ? 10 : 20;

    util::Table t({"backend", "workers", "ns/round", "lane-rounds/s",
                   "scaling"});
    double one_worker_ns = 0.0;
    auto time_medium = [&](radio::Medium& m) {
      radio::BatchOutcome out;
      m.resolve_batch(tx_mask, payload, kLanes, out, /*with_senders=*/false);
      const double t0 = now_ms();
      for (int i = 0; i < iters; ++i) {
        m.resolve_batch(tx_mask, payload, kLanes, out,
                        /*with_senders=*/false);
      }
      return (now_ms() - t0) * 1e6 / iters;
    };
    if (enabled(radio::MediumKind::kBitslice)) {
      auto m = radio::make_medium(radio::MediumKind::kBitslice, g,
                                  radio::CollisionModel::kNoDetection);
      const double ns = time_medium(*m);
      t.row()
          .add("bitslice")
          .add(1.0, 0)
          .add(ns, 0)
          .add(ns > 0 ? kLanes * 1e9 / ns : 0.0, 0)
          .add(1.0, 2);
    }
    if (enabled(radio::MediumKind::kSharded)) {
      const unsigned hw = std::thread::hardware_concurrency();
      for (const int workers : {1, 2, 4}) {
        if (workers > 1 &&
            static_cast<unsigned>(workers) > std::max(hw, 1u) * 4) {
          continue;
        }
        auto m = radio::make_medium(radio::MediumKind::kSharded, g,
                                    radio::CollisionModel::kNoDetection,
                                    workers);
        const double ns = time_medium(*m);
        if (workers == 1) one_worker_ns = ns;
        t.row()
            .add("sharded")
            .add(static_cast<double>(workers), 0)
            .add(ns, 0)
            .add(ns > 0 ? kLanes * 1e9 / ns : 0.0, 0)
            .add(one_worker_ns > 0 && ns > 0 ? one_worker_ns / ns : 1.0, 2);
        ctx.record({"two-level", workers, ns,
                    ns > 0 ? kLanes * 1e9 / ns : 0.0,
                    one_worker_ns > 0 && ns > 0 ? one_worker_ns / ns : 1.0,
                    "sharded", kLanes, "", 0.0, 0.0, 0.0, 0.0});
      }
    }
    ctx.emit(t,
             "64-lane batch rounds on gnp(n=" + std::to_string(n) +
                 ", avg_deg~10), dense shape",
             "medium_backends_two_level");
    ctx.note("(sharded = work-stealing slices x 64 bitslice lanes; "
             "outcomes byte-identical for every worker count — scaling "
             "needs cores, this host has hardware_concurrency=" +
             std::to_string(std::thread::hardware_concurrency()) + ")");
  }
}
