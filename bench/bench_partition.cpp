// E5 — Lemma 2.1: Partition(beta) has strong diameter O(log n / beta) whp
// and cuts each edge with probability O(beta).
//
// Sweep beta over two decades on three families; report the cut fraction
// normalised by beta (must be O(1)) and strong-diameter quantiles
// normalised by log n / beta (must be O(1)).
#include <algorithm>
#include <vector>

#include "cluster/exponential_shifts.hpp"
#include "cluster/partition_stats.hpp"
#include "sim/instances.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "util/math.hpp"

using namespace radiocast;

RADIOCAST_SCENARIO(partition, "partition",
                   "E5: Lemma 2.1 partition cut fraction and strong"
                   " diameter") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(5);
  const int reps = ctx.reps(2, 6);
  util::Rng rng(seed);

  std::vector<sim::Instance> instances;
  instances.push_back(sim::make_grid_instance(quick ? 40 : 80,
                                              quick ? 40 : 80));
  if (!quick) {
    instances.push_back(sim::make_rgg_instance(4000, 0.03, rng));
    instances.push_back(sim::make_cliquepath_instance(4000, 400));
  }

  const std::vector<double> betas{0.02, 0.05, 0.1, 0.2, 0.4};

  for (std::size_t ii = 0; ii < instances.size(); ++ii) {
    const auto& inst = instances[ii];
    const double logn = util::safe_log2(inst.g.node_count());
    util::Table t({"beta", "cut frac", "cut/beta", "diam p50", "diam p95",
                   "diam max", "max/(logn/beta)", "#clusters"});
    for (std::size_t bi = 0; bi < betas.size(); ++bi) {
      const double beta = betas[bi];
      struct RepResult {
        double cut = 0.0;
        double clusters = 0.0;
        std::vector<double> diams;
      };
      const std::uint64_t base = util::mix_seed(seed, ii * 100 + bi);
      const auto per_rep = ctx.runner.map(reps, [&](int rep) {
        util::Rng rep_rng(util::mix_seed(base, rep));
        RepResult res;
        const auto p = cluster::partition(inst.g, beta, rep_rng);
        res.cut = cluster::cut_fraction(inst.g, p);
        const auto infos = cluster::cluster_infos(inst.g, p);
        res.clusters = static_cast<double>(infos.size());
        res.diams.reserve(infos.size());
        for (const auto& info : infos) {
          res.diams.push_back(static_cast<double>(
              std::max(info.strong_diameter_lb, info.strong_radius)));
        }
        return res;
      });
      util::OnlineStats cut, clusters;
      util::Sample diams;
      for (const auto& res : per_rep) {
        cut.add(res.cut);
        clusters.add(res.clusters);
        for (const double d : res.diams) diams.add(d);
      }
      t.row()
          .add(beta, 3)
          .add(cut.mean(), 4)
          .add(cut.mean() / beta, 3)
          .add(diams.quantile(0.5), 1)
          .add(diams.quantile(0.95), 1)
          .add(diams.max(), 1)
          .add(diams.max() / (logn / beta), 3)
          .add(clusters.mean(), 0);
    }
    ctx.emit(t, "E5: Lemma 2.1 partition properties on " + inst.name,
             "e5_partition_" + std::to_string(inst.g.node_count()));
  }
}
