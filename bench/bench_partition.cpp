// E5 — Lemma 2.1: Partition(beta) has strong diameter O(log n / beta) whp
// and cuts each edge with probability O(beta).
//
// Sweep beta over two decades on three families; report the cut fraction
// normalised by beta (must be O(1)) and strong-diameter quantiles
// normalised by log n / beta (must be O(1)).
#include "cluster/exponential_shifts.hpp"
#include "cluster/partition_stats.hpp"
#include "common.hpp"
#include "util/math.hpp"

using namespace radiocast;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const std::uint64_t seed = cli.get_uint("seed", 5);
  const int reps = static_cast<int>(cli.get_uint("reps", quick ? 2 : 6));
  util::Rng rng(seed);

  std::vector<bench::Instance> instances;
  instances.push_back(bench::make_grid_instance(quick ? 40 : 80,
                                                quick ? 40 : 80));
  if (!quick) {
    instances.push_back(bench::make_rgg_instance(4000, 0.03, rng));
    instances.push_back(bench::make_instance(4000, 400));
  }

  const std::vector<double> betas{0.02, 0.05, 0.1, 0.2, 0.4};

  for (const auto& inst : instances) {
    const double logn = util::safe_log2(inst.g.node_count());
    util::Table t({"beta", "cut frac", "cut/beta", "diam p50", "diam p95",
                   "diam max", "max/(logn/beta)", "#clusters"});
    for (const double beta : betas) {
      util::OnlineStats cut;
      util::Sample diams;
      util::OnlineStats clusters;
      for (int r = 0; r < reps; ++r) {
        const auto p = cluster::partition(inst.g, beta, rng);
        cut.add(cluster::cut_fraction(inst.g, p));
        const auto infos = cluster::cluster_infos(inst.g, p);
        clusters.add(static_cast<double>(infos.size()));
        for (const auto& info : infos) {
          diams.add(static_cast<double>(
              std::max(info.strong_diameter_lb, info.strong_radius)));
        }
      }
      t.row()
          .add(beta, 3)
          .add(cut.mean(), 4)
          .add(cut.mean() / beta, 3)
          .add(diams.quantile(0.5), 1)
          .add(diams.quantile(0.95), 1)
          .add(diams.max(), 1)
          .add(diams.max() / (logn / beta), 3)
          .add(clusters.mean(), 0);
    }
    bench::emit(t, "E5: Lemma 2.1 partition properties on " + inst.name,
                "e5_partition_" + std::to_string(inst.g.node_count()));
  }
  return 0;
}
