#!/usr/bin/env bash
# history.sh — summarize the cross-PR perf trajectory.
#
# Reads BENCH_history.jsonl (one line per `bench/trend.sh --append` run)
# and prints a date/revision table of the four headline metrics, plus the
# delta of the latest full-mode run against the previous one.
#
# Usage:
#   bench/history.sh [--file FILE] [--last N]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
history_file="${repo_root}/BENCH_history.jsonl"
last=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --file) history_file="$2"; shift ;;
    --last) last="$2"; shift ;;
    *) echo "history.sh: unknown flag $1" >&2; exit 2 ;;
  esac
  shift
done

if [[ ! -s "${history_file}" ]]; then
  echo "history.sh: no history at ${history_file}" >&2
  echo "            record a run first: bench/trend.sh --append" >&2
  exit 2
fi
if ! command -v jq >/dev/null 2>&1; then
  echo "history.sh: jq is required" >&2
  exit 2
fi

rows="$(cat "${history_file}")"
if [[ "${last}" -gt 0 ]]; then
  rows="$(tail -n "${last}" "${history_file}")"
fi

printf '%-20s %-9s %-5s %5s %9s %9s %9s %9s\n' \
  date rev mode cores batch tail fold shard
echo "${rows}" | jq -r '
  [.date, .rev, .mode, (.cores // "?"),
   (.batch_reps_speedup // "-"), (.sparse_tail_speedup // "-"),
   (.fold_layout_speedup // "-"), (.sharded_scaling_w4 // "-")]
  | @tsv' |
while IFS=$'\t' read -r date rev mode cores batch tail_sp fold shard; do
  printf '%-20s %-9s %-5s %5s %9s %9s %9s %9s\n' \
    "${date}" "${rev}" "${mode}" "${cores}" \
    "${batch}" "${tail_sp}" "${fold}" "${shard}"
done

# Delta of the two most recent full-mode runs (quick runs are sized
# differently, so comparing them to full runs would mislead).
full="$(jq -c 'select(.mode == "full")' "${history_file}" | tail -n 2)"
if [[ "$(echo "${full}" | grep -c . || true)" -eq 2 ]]; then
  echo
  echo "latest full-mode delta (vs previous full run):"
  echo "${full}" | jq -s -r '
    .[0] as $a | .[1] as $b |
    ["batch_reps_speedup", "sparse_tail_speedup",
     "fold_layout_speedup", "sharded_scaling_w4"][] as $k |
    if ($a[$k] != null and $b[$k] != null and $a[$k] != 0) then
      "  \($k): \($a[$k]) -> \($b[$k])  (\(
        (($b[$k] / $a[$k] - 1) * 1000 | round) / 10)%)"
    else
      "  \($k): \($a[$k] // "-") -> \($b[$k] // "-")"
    end'
fi
