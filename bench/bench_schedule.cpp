// E10 — Lemma 2.3 substrate: the intra-cluster schedule moves a message to
// distance ell in O(ell) rounds in pipelined mode, and O(period * ell) in
// the fully-physical colored mode; colored periods stay small on
// bounded-degree families.
#include <string>
#include <vector>

#include "cluster/exponential_shifts.hpp"
#include "schedule/intra_cluster.hpp"
#include "sim/instances.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"

using namespace radiocast;

// E10a: rounds to reach distance ell on a single whole-path cluster.
RADIOCAST_SCENARIO(schedule_distance, "schedule-distance",
                   "E10a: intra-cluster schedule rounds-to-distance") {
  const std::uint64_t seed = ctx.seed(10);

  util::Table t({"ell", "pipelined rounds", "rounds/ell",
                 "colored rounds", "colored period"});
  for (std::uint32_t ell : {8u, 16u, 32u, 64u}) {
    util::Rng rng(util::mix_seed(seed, ell));
    const graph::Graph g = graph::path(2 * ell + 1);
    cluster::Partition p;
    const graph::NodeId n = g.node_count();
    p.beta = 0.01;
    p.center.assign(n, 0);
    p.dist_to_center.resize(n);
    p.parent.resize(n);
    p.delta.assign(n, 0.0);
    for (graph::NodeId v = 0; v < n; ++v) {
      p.dist_to_center[v] = v;
      p.parent[v] = v == 0 ? 0 : v - 1;
    }
    schedule::IcpParams params;
    params.pass_hops = ell;
    params.with_background = false;
    // pipelined
    const schedule::TreeSchedule sp(g, p, schedule::ScheduleMode::kPipelined);
    radio::Network net1(g);
    std::vector<radio::Payload> best1(n, radio::kNoPayload);
    best1[0] = 1;
    const auto s1 = schedule::run_icp_window(net1, sp, best1, params, rng);
    // colored
    const schedule::TreeSchedule sc(g, p, schedule::ScheduleMode::kColored);
    radio::Network net2(g);
    std::vector<radio::Payload> best2(n, radio::kNoPayload);
    best2[0] = 1;
    const auto s2 = schedule::run_icp_window(net2, sc, best2, params, rng);
    t.row()
        .add(std::uint64_t{ell})
        .add(s1.rounds, 0)
        .add(static_cast<double>(s1.rounds) / ell, 2)
        .add(s2.rounds, 0)
        .add(std::uint64_t{sc.period()});
  }
  ctx.emit(t, "E10a: schedule rounds-to-distance (one window = 3 passes)",
           "e10a_schedule_distance");
}

// E10b: colored-schedule period across families and betas.
RADIOCAST_SCENARIO(schedule_period, "schedule-period",
                   "E10b: colored-schedule period across graph families") {
  const bool quick = ctx.quick();
  const std::uint64_t seed = ctx.seed(10);
  const int reps = ctx.reps(2, 5);
  util::Rng rng(seed);

  util::Table t({"family", "beta", "period mean", "period max",
                 "max degree"});
  struct Fam {
    std::string name;
    graph::Graph g;
  };
  std::vector<Fam> fams;
  fams.push_back({"grid 40x40", graph::grid(40, 40)});
  fams.push_back({"rgg 1500", graph::random_geometric(1500, 0.04, rng)});
  fams.push_back({"cliquepath", graph::path_of_cliques(60, 12)});
  if (!quick) {
    fams.push_back({"gnp 1500", graph::gnp(1500, 0.004, rng)});
  }
  for (std::size_t fi = 0; fi < fams.size(); ++fi) {
    const auto& fam = fams[fi];
    for (double beta : {0.1, 0.3}) {
      const auto stats = ctx.runner.replicate(
          reps, util::mix_seed(seed, fi * 100 + std::uint64_t(beta * 10)), 1,
          [&](int, std::uint64_t s) {
            util::Rng rep_rng(s);
            const auto p = cluster::partition(fam.g, beta, rep_rng);
            const schedule::TreeSchedule sched(
                fam.g, p, schedule::ScheduleMode::kColored);
            return std::vector<double>{static_cast<double>(sched.period())};
          });
      const auto& period = stats[0];
      t.row()
          .add(fam.name)
          .add(beta, 2)
          .add(period.mean(), 1)
          .add(period.max(), 0)
          .add(std::uint64_t{fam.g.max_degree()});
    }
  }
  ctx.emit(t, "E10b: colored-schedule period (the Lemma 2.3 'polylog')",
           "e10b_schedule_period");
}
