#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace radiocast::graph {

void write_edge_list(const Graph& g, std::ostream& os) {
  os << g.node_count() << ' ' << g.edge_count() << '\n';
  for (const auto& [u, v] : g.edges()) {
    os << u << ' ' << v << '\n';
  }
}

bool write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_edge_list(g, out);
  return static_cast<bool>(out);
}

Graph read_edge_list(std::istream& is) {
  std::string line;
  NodeId n = 0;
  std::uint64_t m = 0;
  bool have_header = false;
  GraphBuilder builder(0);
  std::uint64_t edges_seen = 0;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    if (!have_header) {
      if (ls >> n >> m) {
        have_header = true;
        builder = GraphBuilder(n);
      } else if (!line.empty() && line.find_first_not_of(" \t\r") != std::string::npos) {
        throw std::invalid_argument("read_edge_list: missing 'n m' header");
      }
      continue;
    }
    NodeId u, v;
    if (ls >> u >> v) {
      builder.add_edge(u, v);
      ++edges_seen;
    }
  }
  if (!have_header) {
    throw std::invalid_argument("read_edge_list: empty input");
  }
  if (edges_seen != m) {
    throw std::invalid_argument("read_edge_list: header declares " +
                                std::to_string(m) + " edges, found " +
                                std::to_string(edges_seen));
  }
  return builder.build();
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("read_edge_list_file: cannot open " + path);
  }
  return read_edge_list(in);
}

}  // namespace radiocast::graph
