#include "graph/algorithms.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <stdexcept>

namespace radiocast::graph {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  return bfs_tree(g, source).dist;
}

BfsTree bfs_tree(const Graph& g, NodeId source) {
  const NodeId n = g.node_count();
  if (source >= n) throw std::out_of_range("bfs: source out of range");
  BfsTree t;
  t.dist.assign(n, kUnreachable);
  t.parent.assign(n, kInvalidNode);
  std::vector<NodeId> frontier{source};
  std::vector<NodeId> next;
  t.dist[source] = 0;
  t.parent[source] = source;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (NodeId u : frontier) {
      for (NodeId v : g.neighbors(u)) {
        if (t.dist[v] == kUnreachable) {
          t.dist[v] = level;
          t.parent[v] = u;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return t;
}

MultiBfs multi_source_bfs(const Graph& g, const std::vector<NodeId>& sources) {
  const NodeId n = g.node_count();
  MultiBfs r;
  r.dist.assign(n, kUnreachable);
  r.nearest_source.assign(n, kInvalidNode);
  std::vector<NodeId> frontier;
  frontier.reserve(sources.size());
  for (NodeId s : sources) {
    if (s >= n) throw std::out_of_range("multi_source_bfs: source OOR");
    if (r.dist[s] == kUnreachable) {
      r.dist[s] = 0;
      r.nearest_source[s] = s;
      frontier.push_back(s);
    }
  }
  std::vector<NodeId> next;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (NodeId u : frontier) {
      for (NodeId v : g.neighbors(u)) {
        if (r.dist[v] == kUnreachable) {
          r.dist[v] = level;
          r.nearest_source[v] = r.nearest_source[u];
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return r;
}

std::vector<NodeId> connected_components(const Graph& g) {
  const NodeId n = g.node_count();
  std::vector<NodeId> comp(n, kInvalidNode);
  NodeId next_id = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (comp[s] != kInvalidNode) continue;
    comp[s] = next_id;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : g.neighbors(u)) {
        if (comp[v] == kInvalidNode) {
          comp[v] = next_id;
          stack.push_back(v);
        }
      }
    }
    ++next_id;
  }
  return comp;
}

bool is_connected(const Graph& g) {
  if (g.node_count() == 0) return true;
  const auto d = bfs_distances(g, 0);
  return std::find(d.begin(), d.end(), kUnreachable) == d.end();
}

std::uint32_t eccentricity(const Graph& g, NodeId v) {
  const auto d = bfs_distances(g, v);
  std::uint32_t ecc = 0;
  for (std::uint32_t x : d) {
    if (x == kUnreachable) {
      throw std::invalid_argument("eccentricity: graph is disconnected");
    }
    ecc = std::max(ecc, x);
  }
  return ecc;
}

std::uint32_t diameter_exact(const Graph& g) {
  std::uint32_t best = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    best = std::max(best, eccentricity(g, v));
  }
  return best;
}

std::uint32_t diameter_double_sweep(const Graph& g, NodeId start) {
  const auto d1 = bfs_distances(g, start);
  NodeId far1 = start;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (d1[v] != kUnreachable && d1[v] > d1[far1]) far1 = v;
  }
  const auto d2 = bfs_distances(g, far1);
  std::uint32_t best = 0;
  for (std::uint32_t x : d2) {
    if (x != kUnreachable) best = std::max(best, x);
  }
  return best;
}

std::pair<std::uint32_t, std::uint32_t> diameter_bounds(const Graph& g) {
  if (g.node_count() == 0) return {0, 0};
  const auto d1 = bfs_distances(g, 0);
  NodeId far1 = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (d1[v] != kUnreachable && d1[v] > d1[far1]) far1 = v;
  }
  const auto t = bfs_tree(g, far1);
  NodeId far2 = far1;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (t.dist[v] != kUnreachable && t.dist[v] > t.dist[far2]) far2 = v;
  }
  const std::uint32_t lower = t.dist[far2];
  // Midpoint of the far1->far2 path; its eccentricity*2 upper-bounds D.
  NodeId mid = far2;
  for (std::uint32_t hop = 0; hop < lower / 2; ++hop) mid = t.parent[mid];
  const std::uint32_t upper = 2 * eccentricity(g, mid);
  return {lower, std::max(lower, upper)};
}

std::vector<NodeId> shortest_path(const Graph& g, NodeId u, NodeId v) {
  const BfsTree t = bfs_tree(g, u);
  if (v >= g.node_count() || t.dist[v] == kUnreachable) return {};
  std::vector<NodeId> rev;
  for (NodeId cur = v; cur != u; cur = t.parent[cur]) rev.push_back(cur);
  rev.push_back(u);
  std::reverse(rev.begin(), rev.end());
  return rev;
}

std::uint32_t degeneracy(const Graph& g) {
  const NodeId n = g.node_count();
  if (n == 0) return 0;
  std::vector<std::uint32_t> deg(n);
  std::uint32_t max_deg = 0;
  for (NodeId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  // Bucket queue over degrees.
  std::vector<std::vector<NodeId>> buckets(max_deg + 1);
  for (NodeId v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  std::vector<bool> removed(n, false);
  std::uint32_t degen = 0;
  std::uint32_t cursor = 0;
  for (NodeId iter = 0; iter < n; ++iter) {
    while (cursor <= max_deg && buckets[cursor].empty()) ++cursor;
    // Lazy deletion: entries may be stale (degree since decreased).
    NodeId v = kInvalidNode;
    while (cursor <= max_deg) {
      if (buckets[cursor].empty()) {
        ++cursor;
        continue;
      }
      const NodeId cand = buckets[cursor].back();
      buckets[cursor].pop_back();
      if (!removed[cand] && deg[cand] == cursor) {
        v = cand;
        break;
      }
    }
    if (v == kInvalidNode) break;
    degen = std::max(degen, deg[v]);
    removed[v] = true;
    for (NodeId w : g.neighbors(v)) {
      if (!removed[w] && deg[w] > 0) {
        --deg[w];
        buckets[deg[w]].push_back(w);
        if (deg[w] < cursor) cursor = deg[w];
      }
    }
  }
  return degen;
}

}  // namespace radiocast::graph
