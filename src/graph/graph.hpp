// Immutable undirected graph in compressed-sparse-row form.
//
// This is the topology substrate for the radio-network simulator: the
// per-round collision resolution iterates neighbourhoods, so adjacency must
// be cache-friendly and allocation-free at simulation time. Graphs are
// built once via GraphBuilder (which deduplicates parallel edges and drops
// self-loops) and then frozen into CSR arrays.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace radiocast::graph {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

class Graph {
 public:
  Graph() = default;

  /// Adopts already-assembled CSR arrays (offsets size n+1, adjacency size
  /// 2m with both directions of every edge present and each row sorted,
  /// deduplicated, and self-loop free — the caller's contract; the parallel
  /// generators in graph/pargen.* produce exactly this). Validates the
  /// cheap structural invariants (monotone offsets, matching sizes, ids in
  /// range) and throws std::invalid_argument on violation; row ordering is
  /// not re-checked here, it is pinned by the generator tests.
  static Graph from_csr(std::vector<std::uint64_t> offsets,
                        std::vector<NodeId> adjacency);

  NodeId node_count() const { return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1); }
  std::uint64_t edge_count() const { return adjacency_.size() / 2; }

  /// Neighbours of v, sorted ascending.
  std::span<const NodeId> neighbors(NodeId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  std::uint32_t degree(NodeId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// The CSR offset array (size n+1): degree_prefix()[v] is the sum of
  /// degrees of all nodes < v, and degree_prefix()[n] == 2m. Used for
  /// balanced shard cuts (the sharded radio medium) and any other
  /// adjacency-volume partitioning.
  std::span<const std::uint64_t> degree_prefix() const { return offsets_; }

  std::uint32_t max_degree() const;
  double average_degree() const;

  /// O(log deg) adjacency query (binary search over the sorted row).
  bool has_edge(NodeId u, NodeId v) const;

  /// All edges as (u, v) with u < v, lexicographic order.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// One-line human-readable summary: n, m, max degree.
  std::string summary() const;

 private:
  friend class GraphBuilder;
  std::vector<std::uint64_t> offsets_;  // size n+1
  std::vector<NodeId> adjacency_;       // size 2m, row-sorted
};

/// Accumulates edges, then freezes into a Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId node_count);

  /// Adds undirected edge {u, v}. Self-loops are ignored; duplicates are
  /// deduplicated at build time.
  void add_edge(NodeId u, NodeId v);

  NodeId node_count() const { return n_; }
  std::size_t pending_edges() const { return edges_.size(); }

  /// Freezes into CSR. The builder may be reused afterwards.
  Graph build() const;

 private:
  NodeId n_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace radiocast::graph
