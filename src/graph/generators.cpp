#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/pargen.hpp"

namespace radiocast::graph {

namespace {

/// Connects the components of the edge set described by `builder` by adding
/// one edge between a representative of consecutive components. Component
/// representatives are discovered on the built graph.
Graph build_connected(GraphBuilder& builder) {
  Graph g = builder.build();
  const std::vector<NodeId> comp = connected_components(g);
  NodeId comp_count = 0;
  for (NodeId c : comp) comp_count = std::max(comp_count, static_cast<NodeId>(c + 1));
  if (comp_count <= 1) return g;
  std::vector<NodeId> representative(comp_count, kInvalidNode);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (representative[comp[v]] == kInvalidNode) representative[comp[v]] = v;
  }
  for (NodeId c = 1; c < comp_count; ++c) {
    builder.add_edge(representative[c - 1], representative[c]);
  }
  return builder.build();
}

}  // namespace

Graph path(NodeId n) {
  if (n == 0) throw std::invalid_argument("path: n must be >= 1");
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return b.build();
}

Graph cycle(NodeId n) {
  if (n < 3) throw std::invalid_argument("cycle: n must be >= 3");
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) b.add_edge(i, (i + 1) % n);
  return b.build();
}

Graph clique(NodeId n) {
  if (n == 0) throw std::invalid_argument("clique: n must be >= 1");
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) b.add_edge(i, j);
  }
  return b.build();
}

Graph star(NodeId n) {
  if (n == 0) throw std::invalid_argument("star: n must be >= 1");
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) b.add_edge(0, i);
  return b.build();
}

Graph grid(NodeId rows, NodeId cols) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("grid: empty");
  const NodeId n = rows * cols;
  GraphBuilder b(n);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph torus(NodeId rows, NodeId cols) {
  if (rows < 3 || cols < 3) throw std::invalid_argument("torus: dims >= 3");
  const NodeId n = rows * cols;
  GraphBuilder b(n);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      b.add_edge(id(r, c), id(r, (c + 1) % cols));
      b.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return b.build();
}

Graph balanced_binary_tree(NodeId n) {
  if (n == 0) throw std::invalid_argument("tree: n must be >= 1");
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) b.add_edge(i, (i - 1) / 2);
  return b.build();
}

Graph random_recursive_tree(NodeId n, util::Rng& rng) {
  if (n == 0) throw std::invalid_argument("tree: n must be >= 1");
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) {
    b.add_edge(i, static_cast<NodeId>(rng.uniform(i)));
  }
  return b.build();
}

Graph caterpillar(NodeId spine, NodeId legs) {
  if (spine == 0) throw std::invalid_argument("caterpillar: spine >= 1");
  const NodeId n = spine * (legs + 1);
  GraphBuilder b(n);
  for (NodeId s = 0; s + 1 < spine; ++s) b.add_edge(s, s + 1);
  for (NodeId s = 0; s < spine; ++s) {
    for (NodeId l = 0; l < legs; ++l) {
      b.add_edge(s, spine + s * legs + l);
    }
  }
  return b.build();
}

Graph hypercube(std::uint32_t dim) {
  if (dim == 0 || dim > 24) {
    throw std::invalid_argument("hypercube: dim in [1,24]");
  }
  const NodeId n = NodeId{1} << dim;
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t bit = 0; bit < dim; ++bit) {
      const NodeId u = v ^ (NodeId{1} << bit);
      if (v < u) b.add_edge(v, u);
    }
  }
  return b.build();
}

Graph gnp(NodeId n, double p, util::Rng& rng) {
  if (n == 0) throw std::invalid_argument("gnp: n must be >= 1");
  GraphBuilder b(n);
  if (p >= 1.0) return clique(n);
  if (p > 0.0) {
    // Geometric skipping over the implicit edge enumeration: expected work
    // O(n + m) instead of O(n^2).
    const double log1mp = std::log1p(-p);
    std::uint64_t idx = 0;  // linear index into the strictly-upper triangle
    const std::uint64_t total =
        static_cast<std::uint64_t>(n) * (n - 1) / 2;
    while (true) {
      const double u = rng.uniform_real();
      const std::uint64_t skip =
          static_cast<std::uint64_t>(std::floor(std::log1p(-u) / log1mp));
      if (total - idx <= skip) break;
      idx += skip;
      // Decode idx -> (row, col) in the upper triangle.
      // Row r occupies indices [r*n - r(r+1)/2 ... ) of width n-1-r.
      NodeId r = 0;
      std::uint64_t rem = idx;
      // Binary search the row to keep this O(log n).
      NodeId lo = 0, hi = n - 1;
      while (lo < hi) {
        const NodeId mid = lo + (hi - lo) / 2;
        const std::uint64_t start =
            static_cast<std::uint64_t>(mid) * n -
            static_cast<std::uint64_t>(mid) * (mid + 1) / 2;
        if (start <= idx) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      r = lo - 1;
      const std::uint64_t row_start =
          static_cast<std::uint64_t>(r) * n -
          static_cast<std::uint64_t>(r) * (r + 1) / 2;
      rem = idx - row_start;
      const NodeId c = static_cast<NodeId>(r + 1 + rem);
      b.add_edge(r, c);
      ++idx;
      if (idx >= total) break;
    }
  }
  return build_connected(b);
}

Graph random_geometric(NodeId n, double radius, util::Rng& rng) {
  if (n == 0) throw std::invalid_argument("rgg: n must be >= 1");
  if (radius <= 0.0) throw std::invalid_argument("rgg: radius must be > 0");
  std::vector<double> xs(n), ys(n);
  for (NodeId i = 0; i < n; ++i) {
    xs[i] = rng.uniform_real();
    ys[i] = rng.uniform_real();
  }
  // Grid hashing with cell size = radius: only neighbouring cells checked.
  const double cell = radius;
  const std::uint32_t cells =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(1.0 / cell));
  std::vector<std::vector<NodeId>> buckets(
      static_cast<std::size_t>(cells) * cells);
  auto bucket_of = [&](double x, double y) {
    std::uint32_t cx = std::min<std::uint32_t>(
        cells - 1, static_cast<std::uint32_t>(x * cells));
    std::uint32_t cy = std::min<std::uint32_t>(
        cells - 1, static_cast<std::uint32_t>(y * cells));
    return static_cast<std::size_t>(cy) * cells + cx;
  };
  for (NodeId i = 0; i < n; ++i) buckets[bucket_of(xs[i], ys[i])].push_back(i);

  GraphBuilder b(n);
  const double r2 = radius * radius;
  for (std::uint32_t cy = 0; cy < cells; ++cy) {
    for (std::uint32_t cx = 0; cx < cells; ++cx) {
      const auto& here = buckets[static_cast<std::size_t>(cy) * cells + cx];
      for (std::int32_t dy = 0; dy <= 1; ++dy) {
        for (std::int32_t dx = (dy == 0 ? 0 : -1); dx <= 1; ++dx) {
          const std::int64_t ny = static_cast<std::int64_t>(cy) + dy;
          const std::int64_t nx = static_cast<std::int64_t>(cx) + dx;
          if (ny < 0 || nx < 0 || ny >= cells || nx >= cells) continue;
          const auto& there =
              buckets[static_cast<std::size_t>(ny) * cells + nx];
          const bool same = (dy == 0 && dx == 0);
          for (std::size_t a = 0; a < here.size(); ++a) {
            const std::size_t b0 = same ? a + 1 : 0;
            for (std::size_t bi = b0; bi < there.size(); ++bi) {
              const NodeId u = here[a], v = there[bi];
              const double ddx = xs[u] - xs[v], ddy = ys[u] - ys[v];
              if (ddx * ddx + ddy * ddy <= r2) b.add_edge(u, v);
            }
          }
        }
      }
    }
  }
  return build_connected(b);
}

Graph barabasi_albert(NodeId n, std::uint32_t m, util::Rng& rng) {
  // pargen is seed-based; drawing one word from the caller's stream keeps
  // the Rng& convention of this header without duplicating the generator.
  return pargen::barabasi_albert(n, m, rng());
}

Graph chung_lu(NodeId n, double exponent, double avg_deg, util::Rng& rng) {
  return pargen::chung_lu(n, exponent, avg_deg, rng());
}

Graph path_of_cliques(NodeId beads, NodeId bead_size) {
  if (beads == 0 || bead_size == 0) {
    throw std::invalid_argument("path_of_cliques: empty");
  }
  const NodeId n = beads * bead_size;
  GraphBuilder b(n);
  for (NodeId bead = 0; bead < beads; ++bead) {
    const NodeId base = bead * bead_size;
    for (NodeId i = 0; i < bead_size; ++i) {
      for (NodeId j = i + 1; j < bead_size; ++j) {
        b.add_edge(base + i, base + j);
      }
    }
    if (bead + 1 < beads) {
      // Connect last node of this bead to first node of the next.
      b.add_edge(base + bead_size - 1, base + bead_size);
    }
  }
  return b.build();
}

Graph cylinder(NodeId len, NodeId girth) {
  if (len == 0 || girth < 3) throw std::invalid_argument("cylinder: bad dims");
  const NodeId n = len * girth;
  GraphBuilder b(n);
  auto id = [girth](NodeId ring, NodeId k) { return ring * girth + k; };
  for (NodeId ring = 0; ring < len; ++ring) {
    for (NodeId k = 0; k < girth; ++k) {
      b.add_edge(id(ring, k), id(ring, (k + 1) % girth));
      if (ring + 1 < len) b.add_edge(id(ring, k), id(ring + 1, k));
    }
  }
  return b.build();
}

Graph barbell(NodeId k, NodeId path_len) {
  if (k == 0) throw std::invalid_argument("barbell: k >= 1");
  const NodeId n = 2 * k + path_len;
  GraphBuilder b(n);
  for (NodeId i = 0; i < k; ++i) {
    for (NodeId j = i + 1; j < k; ++j) {
      b.add_edge(i, j);
      b.add_edge(k + path_len + i, k + path_len + j);
    }
  }
  NodeId prev = k - 1;
  for (NodeId p = 0; p < path_len; ++p) {
    b.add_edge(prev, k + p);
    prev = k + p;
  }
  b.add_edge(prev, k + path_len);  // into the far clique's node 0
  return b.build();
}

Graph lollipop(NodeId k, NodeId path_len) {
  if (k == 0) throw std::invalid_argument("lollipop: k >= 1");
  const NodeId n = k + path_len;
  GraphBuilder b(n);
  for (NodeId i = 0; i < k; ++i) {
    for (NodeId j = i + 1; j < k; ++j) b.add_edge(i, j);
  }
  NodeId prev = k - 1;
  for (NodeId p = 0; p < path_len; ++p) {
    b.add_edge(prev, k + p);
    prev = k + p;
  }
  return b.build();
}

Graph random_regularish(NodeId n, std::uint32_t d, util::Rng& rng) {
  if (n < 2) throw std::invalid_argument("regularish: n >= 2");
  if (d < 2 || d % 2 != 0) {
    throw std::invalid_argument("regularish: d must be even and >= 2");
  }
  GraphBuilder b(n);
  std::vector<NodeId> perm(n);
  for (std::uint32_t cyc = 0; cyc < d / 2; ++cyc) {
    std::iota(perm.begin(), perm.end(), NodeId{0});
    rng.shuffle(perm);
    for (NodeId i = 0; i < n; ++i) {
      b.add_edge(perm[i], perm[(i + 1) % n]);
    }
  }
  return build_connected(b);
}

Graph necklace(NodeId beads, NodeId bead_size, std::uint32_t d,
               util::Rng& rng) {
  if (beads < 3 || bead_size < 2) {
    throw std::invalid_argument("necklace: beads >= 3, bead_size >= 2");
  }
  const NodeId n = beads * bead_size;
  GraphBuilder b(n);
  std::vector<NodeId> perm(bead_size);
  for (NodeId bead = 0; bead < beads; ++bead) {
    const NodeId base = bead * bead_size;
    for (std::uint32_t cyc = 0; cyc < std::max<std::uint32_t>(1, d / 2);
         ++cyc) {
      std::iota(perm.begin(), perm.end(), NodeId{0});
      rng.shuffle(perm);
      for (NodeId i = 0; i < bead_size; ++i) {
        b.add_edge(base + perm[i], base + perm[(i + 1) % bead_size]);
      }
    }
    const NodeId next_base = ((bead + 1) % beads) * bead_size;
    b.add_edge(base + bead_size - 1, next_base);
  }
  return build_connected(b);
}

Graph diameter_controlled(NodeId n, NodeId d) {
  if (n < 4 || d < 3 || d > n) {
    throw std::invalid_argument("diameter_controlled: need 4 <= n, 3 <= d <= n");
  }
  // A path of `beads` cliques has diameter 3*beads - 3 + (2 if bead_size>1).
  // Choose beads ~ d/3 and distribute the n nodes as evenly as possible.
  NodeId beads = std::max<NodeId>(2, (d + 2) / 3);
  beads = std::min(beads, n / 2);
  const NodeId base_size = n / beads;
  NodeId remainder = n % beads;
  GraphBuilder b(n);
  NodeId start = 0;
  NodeId prev_tail = kInvalidNode;
  for (NodeId bead = 0; bead < beads; ++bead) {
    const NodeId size = base_size + (bead < remainder ? 1 : 0);
    for (NodeId i = 0; i < size; ++i) {
      for (NodeId j = i + 1; j < size; ++j) {
        b.add_edge(start + i, start + j);
      }
    }
    if (prev_tail != kInvalidNode) b.add_edge(prev_tail, start);
    prev_tail = start + size - 1;
    start += size;
  }
  return b.build();
}

}  // namespace radiocast::graph
