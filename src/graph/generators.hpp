// Graph families used throughout the experiments.
//
// The paper's regime of interest is D polynomial in n (large diameter), so
// besides the classic random families we provide generators whose diameter
// is a controllable parameter: paths of cliques, grids with aspect ratio,
// caterpillars, and "necklace" graphs (cycle of expanders). Every generator
// returns a connected graph (generators based on random models repair
// connectivity and document how).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace radiocast::graph {

/// Simple path v0 - v1 - ... - v_{n-1}. Diameter n-1.
Graph path(NodeId n);

/// Cycle on n >= 3 nodes. Diameter floor(n/2).
Graph cycle(NodeId n);

/// Complete graph on n nodes. Diameter 1.
Graph clique(NodeId n);

/// Star with n-1 leaves. Diameter 2.
Graph star(NodeId n);

/// rows x cols grid, 4-neighbour. Diameter rows+cols-2.
Graph grid(NodeId rows, NodeId cols);

/// rows x cols torus (wrap-around grid), 4-neighbour.
Graph torus(NodeId rows, NodeId cols);

/// Complete binary tree with n nodes (heap indexing). Diameter ~2 log n.
Graph balanced_binary_tree(NodeId n);

/// Uniform random recursive tree: node i attaches to uniform j < i.
/// Diameter Theta(log n) whp.
Graph random_recursive_tree(NodeId n, util::Rng& rng);

/// Caterpillar: a spine path of `spine` nodes, each with `legs` leaves.
/// Diameter spine+1. n = spine * (legs + 1).
Graph caterpillar(NodeId spine, NodeId legs);

/// d-dimensional hypercube: n = 2^dim nodes, diameter dim.
Graph hypercube(std::uint32_t dim);

/// Erdos-Renyi G(n, p); if disconnected, components are stitched by a
/// random edge between consecutive components (documented repair; adds
/// < #components extra edges).
Graph gnp(NodeId n, double p, util::Rng& rng);

/// Random geometric graph (unit-disk model): n points uniform in the unit
/// square, edge iff distance <= radius. Connectivity repaired by linking
/// each component to its nearest other component (closest-pair heuristic).
/// This is the canonical "sensor network" topology for radio networks.
Graph random_geometric(NodeId n, double radius, util::Rng& rng);

/// Barabasi-Albert preferential attachment: each new node attaches `m`
/// edges to earlier nodes with probability proportional to their degree.
/// Delegates to graph::pargen (chunked parallel, seed drawn from `rng`);
/// connectivity repaired by component stitching. Heavy-tailed degrees —
/// the hub-dominated regime absent from the Gnp/RGG/grid trio.
Graph barabasi_albert(NodeId n, std::uint32_t m, util::Rng& rng);

/// Chung-Lu power-law random graph: weights w_i ~ (n/(i+1))^(1/(exponent-1))
/// scaled to expected average degree `avg_deg`; edge (u,v) with probability
/// min(1, w_u w_v / sum w). Delegates to graph::pargen. exponent > 2.
Graph chung_lu(NodeId n, double exponent, double avg_deg, util::Rng& rng);

/// Path of cliques ("beads"): `beads` cliques of size `bead_size` strung on
/// a path, consecutive cliques joined by one edge between representatives.
/// n = beads * bead_size, D = 3*beads - ... ~ 3*beads. This family realises
/// "D polynomial in n" with dense local neighbourhoods, the regime where the
/// paper's algorithm shines.
Graph path_of_cliques(NodeId beads, NodeId bead_size);

/// Cylinder: path of `len` segments each a cycle of `girth` nodes, with
/// corresponding nodes of consecutive rings joined. D ~ len + girth/2.
Graph cylinder(NodeId len, NodeId girth);

/// Barbell: two cliques of size k joined by a path of length path_len.
Graph barbell(NodeId k, NodeId path_len);

/// Lollipop: clique of size k with a path of length path_len attached.
Graph lollipop(NodeId k, NodeId path_len);

/// Random d-regular-ish expander-like graph via the union of `d/2` random
/// permutation cycles (d even, d >= 2). Connectivity repaired by stitching.
/// Diameter O(log n) whp.
Graph random_regularish(NodeId n, std::uint32_t d, util::Rng& rng);

/// "Necklace": `beads` expander beads of size `bead_size` arranged in a
/// cycle, joined by single edges. D ~ beads.
Graph necklace(NodeId beads, NodeId bead_size, std::uint32_t d,
               util::Rng& rng);

/// A family for diameter-controlled experiments: n total nodes arranged as a
/// path of cliques with approximately the requested diameter d (d >= 3).
/// Ensures n nodes exactly by spreading remainder over beads.
Graph diameter_controlled(NodeId n, NodeId d);

}  // namespace radiocast::graph
