// Parallel streaming graph generation: CSR directly, no edge lists.
//
// The sweep subsystem wants n = 10^6 grid points; the GraphBuilder path
// (materialise an edge list, sort, dedup, scatter) is single-threaded and
// allocates ~3x the final graph. The generators here instead produce the
// final CSR arrays in a two-pass chunked scheme, the KaGen idiom:
//
//   * The node/index space is cut into K CHUNKS, where K depends only on
//     the instance size — never on the thread count. Chunk c draws from an
//     RNG stream seeded by mix_seed(seed, c), so the emitted edge multiset
//     is a pure function of (family parameters, seed): output is
//     byte-identical for any --gen-threads value (pinned by
//     tests/test_pargen.cpp and a CI diff).
//   * Pass 1 runs every chunk's sampler and counts degrees (atomic,
//     commutative — scheduling cannot change the totals); a prefix sum
//     turns the counts into the final offsets array.
//   * Pass 2 re-runs the SAME sampler streams and scatters both endpoints
//     through per-node atomic cursors into the final adjacency array.
//     Re-sampling instead of buffering is the streaming part: peak memory
//     is the output CSR plus O(n), not an edge list.
//   * Pass 3 sorts each row (normalising whatever interleaving pass 2
//     ran with) and compacts duplicate edges (only scale-free families
//     produce any).
//
// Every family repairs connectivity exactly like graph::generators does:
// one edge between representatives of consecutive components.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace radiocast::graph::pargen {

struct GenOptions {
  /// Generation worker threads. 0 = the RADIOCAST_GEN_THREADS environment
  /// variable when set (invalid values throw — see resolve_threads), else
  /// a hardware-derived default. Output never depends on this value.
  int threads = 0;
  /// gnp only: run the literal O(n^2) Bernoulli reference loop (one
  /// uniform_real draw per pair (u, v), u < v, lexicographic order, from
  /// util::Rng(seed)) instead of the chunked skip sampler. Exists so the
  /// skip sampler's distribution stays testable against the textbook
  /// definition at small n; do not use it at scale.
  bool gnp_compat = false;
};

/// Resolves the generation worker count: `threads` > 0 wins (capped at
/// 64), else the RADIOCAST_GEN_THREADS env var (a set-but-invalid value —
/// junk, zero, negative — throws std::invalid_argument instead of
/// silently degrading), else hardware_concurrency clamped to [1, 8].
int resolve_threads(int threads);

/// Erdos-Renyi G(n, p) via per-chunk geometric edge skipping over the
/// upper-triangle index space: expected work O(n + m), chunkable.
Graph gnp(NodeId n, double p, std::uint64_t seed,
          const GenOptions& opts = {});

/// Random geometric graph (unit square, connect iff distance <= radius)
/// with a radius-sized cell grid: each chunk owns a band of cell rows and
/// scans only neighbouring-cell pairs, O(n + m) expected for uniform
/// points.
Graph random_geometric(NodeId n, double radius, std::uint64_t seed,
                       const GenOptions& opts = {});

/// Barabasi-Albert preferential attachment, `attach` edges per node, via
/// the Batagelj-Brandes edge array resolved by HASH RETRACING: target(j)
/// re-derives the uniform draw of any earlier edge from (seed, j) instead
/// of reading a shared array, so every edge is independently computable —
/// embarrassingly parallel and seed-deterministic (the KaGen BA idiom).
Graph barabasi_albert(NodeId n, std::uint32_t attach, std::uint64_t seed,
                      const GenOptions& opts = {});

/// Chung-Lu random graph with a power-law weight sequence
/// w_i ~ (n/(i+1))^(1/(exponent-1)), scaled so the expected average degree
/// is `avg_deg`; edge (u, v) appears with probability min(1, w_u w_v / S).
/// Sampled with the Miller-Hagberg skip algorithm (weights are sorted
/// descending, so a geometric skip under the current upper bound plus a
/// thinning accept is exact), chunked over source nodes. exponent > 2.
Graph chung_lu(NodeId n, double exponent, double avg_deg, std::uint64_t seed,
               const GenOptions& opts = {});

}  // namespace radiocast::graph::pargen
