// Edge-list I/O so experiments can be re-run on externally supplied
// topologies (one "u v" pair per line, '#' comments, 0-based ids).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace radiocast::graph {

/// Writes "n m" header then one edge per line.
void write_edge_list(const Graph& g, std::ostream& os);
bool write_edge_list_file(const Graph& g, const std::string& path);

/// Parses the format produced by write_edge_list. Throws
/// std::invalid_argument on malformed input.
Graph read_edge_list(std::istream& is);
Graph read_edge_list_file(const std::string& path);

}  // namespace radiocast::graph
