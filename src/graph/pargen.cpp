#include "graph/pargen.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "graph/algorithms.hpp"
#include "obs/trace.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"

namespace radiocast::graph::pargen {

namespace {

// Chunk granularity: small enough that mid-size instances still split
// across workers, large enough that per-chunk RNG setup is noise. The
// chunk count is a pure function of the domain size — NEVER of the thread
// count — which is what makes output thread-count independent.
constexpr std::uint64_t kChunkGrain = 4096;
constexpr int kMaxChunks = 256;

// Family tags folded into the seed so two families never share streams.
constexpr std::uint64_t kTagGnp = 0x706E67u;   // "gnp"
constexpr std::uint64_t kTagRgg = 0x676772u;   // "rgg"
constexpr std::uint64_t kTagBa = 0x6162u;      // "ba"
constexpr std::uint64_t kTagCl = 0x6C63u;      // "cl"

int chunk_count_for(std::uint64_t domain) {
  const std::uint64_t chunks = (domain + kChunkGrain - 1) / kChunkGrain;
  return static_cast<int>(
      std::clamp<std::uint64_t>(chunks, 1, static_cast<std::uint64_t>(kMaxChunks)));
}

/// [lo, hi) slice of [0, domain) for chunk c of `chunks` (balanced split).
void chunk_range(std::uint64_t domain, int chunks, int c, std::uint64_t& lo,
                 std::uint64_t& hi) {
  const auto uc = static_cast<std::uint64_t>(chunks);
  const auto ui = static_cast<std::uint64_t>(c);
  lo = domain * ui / uc;
  hi = domain * (ui + 1) / uc;
}

/// Runs fn(c) for every chunk over up to `threads` workers (atomic work
/// stealing — chunks are independent, so schedule order is free). The
/// first exception thrown by any chunk is rethrown on the caller.
void run_chunks(int chunks, int threads, const std::function<void(int)>& fn) {
  threads = std::min(threads, chunks);
  if (threads <= 1) {
    for (int c = 0; c < chunks; ++c) {
      const obs::TraceSpan span("pargen.chunk", "chunk",
                                static_cast<std::uint64_t>(c));
      fn(c);
    }
    return;
  }
  std::atomic<int> next{0};
  std::exception_ptr error;
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  auto worker = [&](int w) {
    if (obs::tracing_enabled()) {
      obs::set_thread_name(("pargen-worker-" + std::to_string(w)).c_str());
    }
    while (!failed.load(std::memory_order_relaxed)) {
      const int c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const obs::TraceSpan span("pargen.chunk", "chunk",
                                static_cast<std::uint64_t>(c));
      try {
        fn(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

// ------------------------------------------------------------- CSR assembly

/// Two-pass chunked CSR assembly. `emit_chunk(c, emit)` must emit the SAME
/// edge sequence every time it is called for a given c (re-seed any RNG
/// inside); it runs once to count and once to fill. Self-loops are dropped
/// centrally; duplicate edges are compacted after the per-row sort.
template <typename EmitChunk>
Graph assemble_csr(NodeId n, int chunks, int threads,
                   const EmitChunk& emit_chunk) {
  // Pass 1: count degrees. Atomic increments commute, so the totals are
  // independent of chunk scheduling.
  std::unique_ptr<std::atomic<std::uint32_t>[]> degree(
      new std::atomic<std::uint32_t>[n]);
  for (NodeId v = 0; v < n; ++v) {
    degree[v].store(0, std::memory_order_relaxed);
  }
  run_chunks(chunks, threads, [&](int c) {
    emit_chunk(c, [&](NodeId u, NodeId v) {
      if (u == v) return;
      degree[u].fetch_add(1, std::memory_order_relaxed);
      degree[v].fetch_add(1, std::memory_order_relaxed);
    });
  });

  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + degree[v].load(std::memory_order_relaxed);
  }

  // Pass 2: re-run the identical sampler streams and scatter through
  // per-node cursors. Row CONTENT order depends on scheduling; the sort
  // below normalises it, so the final bytes do not.
  std::vector<NodeId> adjacency(offsets[n]);
  std::unique_ptr<std::atomic<std::uint64_t>[]> cursor(
      new std::atomic<std::uint64_t>[n]);
  for (NodeId v = 0; v < n; ++v) {
    cursor[v].store(offsets[v], std::memory_order_relaxed);
  }
  run_chunks(chunks, threads, [&](int c) {
    emit_chunk(c, [&](NodeId u, NodeId v) {
      if (u == v) return;
      adjacency[cursor[u].fetch_add(1, std::memory_order_relaxed)] = v;
      adjacency[cursor[v].fetch_add(1, std::memory_order_relaxed)] = u;
    });
  });

  // Pass 3: per-row sort + duplicate detection, chunked over nodes.
  std::vector<std::uint32_t> unique_degree(n);
  const int sort_chunks = chunk_count_for(n);
  run_chunks(sort_chunks, threads, [&](int c) {
    std::uint64_t lo = 0, hi = 0;
    chunk_range(n, sort_chunks, c, lo, hi);
    for (std::uint64_t v = lo; v < hi; ++v) {
      const auto begin =
          adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
      const auto end =
          adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]);
      std::sort(begin, end);
      unique_degree[v] = static_cast<std::uint32_t>(
          std::distance(begin, std::unique(begin, end)));
    }
  });

  std::vector<std::uint64_t> final_offsets(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    final_offsets[v + 1] = final_offsets[v] + unique_degree[v];
  }
  if (final_offsets[n] == offsets[n]) {
    return Graph::from_csr(std::move(offsets), std::move(adjacency));
  }
  // Duplicates found: compact the unique prefix of each row.
  std::vector<NodeId> compacted(final_offsets[n]);
  run_chunks(sort_chunks, threads, [&](int c) {
    std::uint64_t lo = 0, hi = 0;
    chunk_range(n, sort_chunks, c, lo, hi);
    for (std::uint64_t v = lo; v < hi; ++v) {
      std::copy_n(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
                  unique_degree[v],
                  compacted.begin() +
                      static_cast<std::ptrdiff_t>(final_offsets[v]));
    }
  });
  return Graph::from_csr(std::move(final_offsets), std::move(compacted));
}

// ------------------------------------------------------ connectivity repair

/// Same repair policy as graph::generators' build_connected: one edge
/// between the first-discovered representatives of consecutive components.
/// Rebuilds the CSR with the extra edges merged in (O(n + m) copy; the
/// repair set is tiny, so affected rows are re-sorted individually).
Graph repair_connected(Graph g) {
  const std::vector<NodeId> comp = connected_components(g);
  NodeId comp_count = 0;
  for (const NodeId c : comp) {
    comp_count = std::max(comp_count, static_cast<NodeId>(c + 1));
  }
  if (comp_count <= 1) return g;
  const NodeId n = g.node_count();
  std::vector<NodeId> representative(comp_count, kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    if (representative[comp[v]] == kInvalidNode) representative[comp[v]] = v;
  }
  std::vector<std::uint32_t> extra(n, 0);
  for (NodeId c = 1; c < comp_count; ++c) {
    ++extra[representative[c - 1]];
    ++extra[representative[c]];
  }
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + g.degree(v) + extra[v];
  }
  std::vector<NodeId> adjacency(offsets[n]);
  std::vector<std::uint64_t> fill(offsets.begin(), offsets.end() - 1);
  for (NodeId v = 0; v < n; ++v) {
    const auto row = g.neighbors(v);
    std::copy(row.begin(), row.end(),
              adjacency.begin() + static_cast<std::ptrdiff_t>(fill[v]));
    fill[v] += row.size();
  }
  for (NodeId c = 1; c < comp_count; ++c) {
    const NodeId a = representative[c - 1], b = representative[c];
    adjacency[fill[a]++] = b;
    adjacency[fill[b]++] = a;
  }
  for (NodeId c = 0; c < comp_count; ++c) {
    const NodeId v = representative[c];
    std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }
  return Graph::from_csr(std::move(offsets), std::move(adjacency));
}

/// Hash-derived uniform draw in [0, bound): multiply-shift on a splitmix
/// of (seed, stream) — stateless, so any chunk can re-derive any draw.
std::uint64_t hash_uniform(std::uint64_t seed, std::uint64_t stream,
                           std::uint64_t bound) {
  const std::uint64_t h = util::mix_seed(seed, stream);
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(h) * bound) >> 64);
}

}  // namespace

int resolve_threads(int threads) {
  if (threads > 0) return std::min(threads, 64);
  if (const char* env = std::getenv("RADIOCAST_GEN_THREADS")) {
    return std::min(util::parse_positive_int(env, "RADIOCAST_GEN_THREADS"),
                    64);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 8u));
}

// -------------------------------------------------------------------- gnp

namespace {

/// Linear index of the first upper-triangle slot of row r (n columns).
std::uint64_t tri_start(std::uint64_t r, std::uint64_t n) {
  return r * n - r * (r + 1) / 2;
}

/// Decodes a linear upper-triangle index into (row, col), row < col. The
/// binary search is seeded with [row_lo, n-1] so chunked decodes stay
/// O(log chunk) instead of O(log n).
void tri_decode(std::uint64_t idx, std::uint64_t n, NodeId row_lo, NodeId& r,
                NodeId& c) {
  NodeId lo = row_lo, hi = static_cast<NodeId>(n - 1);
  while (lo < hi) {
    const NodeId mid = lo + (hi - lo) / 2;
    if (tri_start(mid, n) <= idx) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  r = lo - 1;
  c = static_cast<NodeId>(r + 1 + (idx - tri_start(r, n)));
}

Graph gnp_compat(NodeId n, double p, std::uint64_t seed) {
  // The textbook Bernoulli loop, byte-for-byte the reference the tests
  // compare against: one uniform_real per pair, lexicographic order.
  util::Rng rng(seed);
  std::vector<std::uint32_t> degree(n, 0);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.uniform_real() < p) {
        edges.emplace_back(u, v);
        ++degree[u];
        ++degree[v];
      }
    }
  }
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + degree[v];
  std::vector<NodeId> adjacency(offsets[n]);
  std::vector<std::uint64_t> fill(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges) {
    adjacency[fill[u]++] = v;
    adjacency[fill[v]++] = u;
  }
  // Lexicographic emission leaves every row sorted already.
  return repair_connected(
      Graph::from_csr(std::move(offsets), std::move(adjacency)));
}

}  // namespace

Graph gnp(NodeId n, double p, std::uint64_t seed, const GenOptions& opts) {
  if (n == 0) throw std::invalid_argument("pargen::gnp: n must be >= 1");
  if (opts.gnp_compat) return gnp_compat(n, std::min(p, 1.0), seed);
  const int threads = resolve_threads(opts.threads);
  const int chunks = chunk_count_for(n);
  const std::uint64_t base = util::mix_seed(seed, kTagGnp);
  const double pc = std::clamp(p, 0.0, 1.0);

  const auto emit_chunk = [&](int c, const auto& emit) {
    std::uint64_t row_lo = 0, row_hi = 0;
    chunk_range(n, chunks, c, row_lo, row_hi);
    if (row_lo >= row_hi) return;
    if (pc >= 1.0) {
      for (std::uint64_t u = row_lo; u < row_hi; ++u) {
        for (NodeId v = static_cast<NodeId>(u) + 1; v < n; ++v) {
          emit(static_cast<NodeId>(u), v);
        }
      }
      return;
    }
    if (pc <= 0.0) return;
    // Geometric skipping over this chunk's slice of the upper-triangle
    // index space; the chunk's stream is independent of every other
    // chunk's, so nothing downstream depends on who ran first.
    util::Rng rng(util::mix_seed(base, static_cast<std::uint64_t>(c)));
    const double log1mp = std::log1p(-pc);
    std::uint64_t idx = tri_start(row_lo, n);
    const std::uint64_t end = tri_start(row_hi, n);
    while (idx < end) {
      const double u01 = rng.uniform_real();
      const double skip_f = std::floor(std::log1p(-u01) / log1mp);
      if (!(skip_f < static_cast<double>(end - idx))) break;
      idx += static_cast<std::uint64_t>(skip_f);
      NodeId r = 0, col = 0;
      tri_decode(idx, n, static_cast<NodeId>(row_lo), r, col);
      emit(r, col);
      ++idx;
    }
  };
  return repair_connected(assemble_csr(n, chunks, threads, emit_chunk));
}

// ------------------------------------------------------- random geometric

Graph random_geometric(NodeId n, double radius, std::uint64_t seed,
                       const GenOptions& opts) {
  if (n == 0) throw std::invalid_argument("pargen::rgg: n must be >= 1");
  if (radius <= 0.0) {
    throw std::invalid_argument("pargen::rgg: radius must be > 0");
  }
  const int threads = resolve_threads(opts.threads);
  const std::uint64_t base = util::mix_seed(seed, kTagRgg);

  // Positions: chunked over node ranges, two uniform draws per node in
  // node order within the chunk — deterministic for any thread count.
  std::vector<double> xs(n), ys(n);
  const int pos_chunks = chunk_count_for(n);
  run_chunks(pos_chunks, threads, [&](int c) {
    std::uint64_t lo = 0, hi = 0;
    chunk_range(n, pos_chunks, c, lo, hi);
    util::Rng rng(util::mix_seed(base, static_cast<std::uint64_t>(c)));
    for (std::uint64_t v = lo; v < hi; ++v) {
      xs[v] = rng.uniform_real();
      ys[v] = rng.uniform_real();
    }
  });

  // Cell grid with cell size = radius; buckets filled sequentially in node
  // order (O(n), deterministic), then chunks own bands of cell rows and
  // scan the same (here, there) cell pairs the sequential generator does.
  const auto cells = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(1.0 / radius));
  std::vector<std::vector<NodeId>> buckets(static_cast<std::size_t>(cells) *
                                           cells);
  const auto bucket_of = [&](double x, double y) {
    const auto cx = std::min<std::uint32_t>(
        cells - 1, static_cast<std::uint32_t>(x * cells));
    const auto cy = std::min<std::uint32_t>(
        cells - 1, static_cast<std::uint32_t>(y * cells));
    return static_cast<std::size_t>(cy) * cells + cx;
  };
  for (NodeId v = 0; v < n; ++v) buckets[bucket_of(xs[v], ys[v])].push_back(v);

  const double r2 = radius * radius;
  const int chunks = std::min<int>(kMaxChunks, static_cast<int>(cells));
  const auto emit_chunk = [&](int c, const auto& emit) {
    std::uint64_t cy_lo = 0, cy_hi = 0;
    chunk_range(cells, chunks, c, cy_lo, cy_hi);
    for (std::uint64_t cy = cy_lo; cy < cy_hi; ++cy) {
      for (std::uint32_t cx = 0; cx < cells; ++cx) {
        const auto& here = buckets[static_cast<std::size_t>(cy) * cells + cx];
        if (here.empty()) continue;
        for (std::int32_t dy = 0; dy <= 1; ++dy) {
          for (std::int32_t dx = (dy == 0 ? 0 : -1); dx <= 1; ++dx) {
            const std::int64_t ny = static_cast<std::int64_t>(cy) + dy;
            const std::int64_t nx = static_cast<std::int64_t>(cx) + dx;
            if (ny < 0 || nx < 0 || ny >= static_cast<std::int64_t>(cells) ||
                nx >= static_cast<std::int64_t>(cells)) {
              continue;
            }
            const auto& there =
                buckets[static_cast<std::size_t>(ny) * cells + nx];
            const bool same = (dy == 0 && dx == 0);
            for (std::size_t a = 0; a < here.size(); ++a) {
              for (std::size_t b = same ? a + 1 : 0; b < there.size(); ++b) {
                const NodeId u = here[a], v = there[b];
                const double ddx = xs[u] - xs[v], ddy = ys[u] - ys[v];
                if (ddx * ddx + ddy * ddy <= r2) emit(u, v);
              }
            }
          }
        }
      }
    }
  };
  return repair_connected(assemble_csr(n, chunks, threads, emit_chunk));
}

// --------------------------------------------------------- Barabasi-Albert

namespace {

/// Batagelj-Brandes target of global edge j (source j / attach), resolved
/// by retracing hash draws: the virtual edge array M has M[2j] = source(j)
/// and M[2j+1] = M[r_j] with r_j uniform in [0, 2j]; even positions are
/// sources (known analytically), odd positions recurse to an earlier
/// edge's target. j strictly decreases, expected depth O(1).
NodeId ba_target(std::uint64_t seed, std::uint64_t j, std::uint32_t attach) {
  while (true) {
    const std::uint64_t r = hash_uniform(seed, j, 2 * j + 1);
    if ((r & 1) == 0) {
      return static_cast<NodeId>((r >> 1) / attach);
    }
    j = r >> 1;  // (r - 1) / 2 for odd r
  }
}

}  // namespace

Graph barabasi_albert(NodeId n, std::uint32_t attach, std::uint64_t seed,
                      const GenOptions& opts) {
  if (n < 2) throw std::invalid_argument("pargen::ba: n must be >= 2");
  if (attach == 0) {
    throw std::invalid_argument("pargen::ba: attach must be >= 1");
  }
  const int threads = resolve_threads(opts.threads);
  const int chunks = chunk_count_for(n);
  const std::uint64_t base = util::mix_seed(seed, kTagBa);
  const auto emit_chunk = [&](int c, const auto& emit) {
    std::uint64_t lo = 0, hi = 0;
    chunk_range(n, chunks, c, lo, hi);
    for (std::uint64_t v = lo; v < hi; ++v) {
      for (std::uint32_t i = 0; i < attach; ++i) {
        const std::uint64_t j = v * attach + i;
        // Self-loops (mostly node 0's bootstrap edges) are dropped by the
        // assembler; duplicates are compacted after the row sort.
        emit(static_cast<NodeId>(v), ba_target(base, j, attach));
      }
    }
  };
  return repair_connected(assemble_csr(n, chunks, threads, emit_chunk));
}

// ---------------------------------------------------------------- Chung-Lu

Graph chung_lu(NodeId n, double exponent, double avg_deg, std::uint64_t seed,
               const GenOptions& opts) {
  if (n < 2) throw std::invalid_argument("pargen::chung_lu: n must be >= 2");
  if (exponent <= 2.0) {
    throw std::invalid_argument(
        "pargen::chung_lu: exponent must be > 2 (finite mean degree)");
  }
  if (avg_deg <= 0.0) {
    throw std::invalid_argument("pargen::chung_lu: avg_deg must be > 0");
  }
  const int threads = resolve_threads(opts.threads);
  const int chunks = chunk_count_for(n);
  const std::uint64_t base = util::mix_seed(seed, kTagCl);

  // Power-law weights, descending in i; chunked pow evaluation with the
  // partial sums combined in fixed chunk order (float addition order is
  // part of the determinism contract).
  std::vector<double> w(n);
  std::vector<double> partial(static_cast<std::size_t>(chunks), 0.0);
  const double inv = 1.0 / (exponent - 1.0);
  run_chunks(chunks, threads, [&](int c) {
    std::uint64_t lo = 0, hi = 0;
    chunk_range(n, chunks, c, lo, hi);
    double sum = 0.0;
    for (std::uint64_t i = lo; i < hi; ++i) {
      w[i] = std::pow(static_cast<double>(n) / static_cast<double>(i + 1),
                      inv);
      sum += w[i];
    }
    partial[static_cast<std::size_t>(c)] = sum;
  });
  double raw_sum = 0.0;
  for (const double s : partial) raw_sum += s;
  const double scale = avg_deg * static_cast<double>(n) / raw_sum;
  run_chunks(chunks, threads, [&](int c) {
    std::uint64_t lo = 0, hi = 0;
    chunk_range(n, chunks, c, lo, hi);
    for (std::uint64_t i = lo; i < hi; ++i) w[i] *= scale;
  });
  const double big_s = avg_deg * static_cast<double>(n);  // = sum of w

  // Miller-Hagberg: for each source u the probabilities min(1, w_u w_v / S)
  // are non-increasing in v, so a geometric skip under the CURRENT bound p
  // plus an accept with q/p thins exactly to the target distribution.
  const auto emit_chunk = [&](int c, const auto& emit) {
    std::uint64_t lo = 0, hi = 0;
    chunk_range(n, chunks, c, lo, hi);
    util::Rng rng(util::mix_seed(base, static_cast<std::uint64_t>(c)));
    for (std::uint64_t u = lo; u < hi; ++u) {
      std::uint64_t v = u + 1;
      if (v >= n) continue;
      double p = std::min(1.0, w[u] * w[v] / big_s);
      while (v < n && p > 0.0) {
        if (p < 1.0) {
          const double r = rng.uniform_real();
          const double skip_f = std::floor(std::log1p(-r) / std::log1p(-p));
          if (!(skip_f < static_cast<double>(n - v))) break;
          v += static_cast<std::uint64_t>(skip_f);
        }
        const double q = std::min(1.0, w[u] * w[v] / big_s);
        if (rng.uniform_real() * p < q) {
          emit(static_cast<NodeId>(u), static_cast<NodeId>(v));
        }
        p = q;
        ++v;
      }
    }
  };
  return repair_connected(assemble_csr(n, chunks, threads, emit_chunk));
}

}  // namespace radiocast::graph::pargen
