#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace radiocast::graph {

Graph Graph::from_csr(std::vector<std::uint64_t> offsets,
                      std::vector<NodeId> adjacency) {
  if (offsets.empty() || offsets.front() != 0) {
    throw std::invalid_argument(
        "Graph::from_csr: offsets must be non-empty and start at 0");
  }
  if (offsets.back() != adjacency.size()) {
    throw std::invalid_argument(
        "Graph::from_csr: offsets.back() must equal adjacency.size()");
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      throw std::invalid_argument("Graph::from_csr: offsets must be monotone");
    }
  }
  const auto n = static_cast<NodeId>(offsets.size() - 1);
  for (const NodeId v : adjacency) {
    if (v >= n) {
      throw std::invalid_argument(
          "Graph::from_csr: adjacency id out of range");
    }
  }
  Graph g;
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  return g;
}

std::uint32_t Graph::max_degree() const {
  std::uint32_t best = 0;
  for (NodeId v = 0; v < node_count(); ++v) best = std::max(best, degree(v));
  return best;
}

double Graph::average_degree() const {
  const NodeId n = node_count();
  if (n == 0) return 0.0;
  return static_cast<double>(adjacency_.size()) / static_cast<double>(n);
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u >= node_count() || v >= node_count()) return false;
  const auto row = neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(edge_count());
  for (NodeId u = 0; u < node_count(); ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

std::string Graph::summary() const {
  std::ostringstream os;
  os << "Graph(n=" << node_count() << ", m=" << edge_count()
     << ", max_deg=" << max_degree() << ")";
  return os.str();
}

GraphBuilder::GraphBuilder(NodeId node_count) : n_(node_count) {}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  if (u >= n_ || v >= n_) {
    throw std::out_of_range("GraphBuilder::add_edge: node id out of range");
  }
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::build() const {
  std::vector<std::pair<NodeId, NodeId>> sorted = edges_;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const auto& [u, v] : sorted) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adjacency_.resize(sorted.size() * 2);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : sorted) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  // Rows are sorted because edge list was globally sorted and each row is
  // filled in increasing neighbour order for the first endpoint; for the
  // second endpoint order can break, so sort rows defensively.
  for (NodeId v = 0; v < n_; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  }
  return g;
}

}  // namespace radiocast::graph
