// Centralized graph algorithms used by generators, clustering statistics,
// theory predictions, and tests. These run outside the radio model (they
// are analysis tools, not distributed protocols).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace radiocast::graph {

constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

/// BFS distances from `source`; kUnreachable where disconnected.
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);

/// BFS distances and parent pointers (parent of source = source).
struct BfsTree {
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> parent;
};
BfsTree bfs_tree(const Graph& g, NodeId source);

/// Multi-source BFS: distance to the nearest source, and which source won
/// (ties broken by smaller source id via queue order).
struct MultiBfs {
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> nearest_source;
};
MultiBfs multi_source_bfs(const Graph& g, const std::vector<NodeId>& sources);

/// Connected component id per node, ids dense in [0, #components).
std::vector<NodeId> connected_components(const Graph& g);

bool is_connected(const Graph& g);

/// Eccentricity of `v` (max BFS distance; graph must be connected).
std::uint32_t eccentricity(const Graph& g, NodeId v);

/// Exact diameter via BFS from every node. O(n(n+m)); use for n <~ 20k.
std::uint32_t diameter_exact(const Graph& g);

/// Double-sweep lower bound on the diameter (exact on trees); cheap and
/// used by default in benches where n is large.
std::uint32_t diameter_double_sweep(const Graph& g, NodeId start = 0);

/// iFUB-style refinement: double sweep + eccentricity of a midpoint;
/// returns a (lower, upper) diameter estimate pair.
std::pair<std::uint32_t, std::uint32_t> diameter_bounds(const Graph& g);

/// Shortest path from u to v as a node sequence (inclusive); empty if
/// unreachable. This is the "canonical shortest path" of Section 4 of the
/// paper: we fix BFS-tree paths, deterministic given the graph.
std::vector<NodeId> shortest_path(const Graph& g, NodeId u, NodeId v);

/// Degeneracy (max over the degeneracy ordering of remaining degree).
std::uint32_t degeneracy(const Graph& g);

}  // namespace radiocast::graph
