// Durable file I/O for the crash-safe experiment harness.
//
// Two primitives back every file the harness must not lose or tear:
//   * atomic_write_file — whole-file replace via <path>.tmp + fsync +
//     rename, so a crash at any instant leaves either the old complete
//     file or the new complete file, never a half-written one (the
//     exp::Report CSV/JSON sink).
//   * AppendFile — an append-only handle whose append_fsync() makes each
//     record durable before returning (the sweep checkpoint journal).
//
// Both consult an optional process-wide fault hook before touching the
// kernel, so the deterministic fault-injection harness (RADIOCAST_FAULT=
// io-fail@<n>) can make exactly the n-th write fail without patching
// syscalls.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace radiocast::util {

/// Deterministic I/O fault seam: when set, every fsio write operation
/// (atomic_write_file, AppendFile::append_fsync) calls the hook first and
/// fails as if the kernel returned EIO when it returns true. Install once
/// before worker threads start (the hook itself may be called
/// concurrently); pass nullptr to disable.
void set_io_fault_hook(std::function<bool()> hook);

/// Crash-safe whole-file replace: writes `content` to `<path>.tmp`,
/// fsyncs it, renames it onto `path`, and fsyncs the parent directory.
/// Returns false and fills `error` on failure (the .tmp file is cleaned
/// up best-effort; `path` is never left partially written).
bool atomic_write_file(const std::string& path, std::string_view content,
                       std::string& error);

/// Append-only file handle with per-append durability. Non-copyable;
/// closes on destruction.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Opens `path` for appending, creating it; `truncate` starts it empty
  /// (a fresh journal) instead of keeping existing records. Returns false
  /// and fills `error` on failure.
  bool open(const std::string& path, bool truncate, std::string& error);
  bool is_open() const { return fd_ >= 0; }

  /// Appends `data` and fsyncs: when this returns true the bytes survive
  /// a crash. Consults the fault hook first. Returns false + `error` on
  /// (real or injected) failure.
  bool append_fsync(std::string_view data, std::string& error);

  /// Appends only the first `prefix` bytes of `data` WITHOUT fsync — the
  /// torn-write crash simulation behind the abort@ fault knob; the caller
  /// is expected to kill the process right after.
  void append_torn(std::string_view data, std::size_t prefix);

  void close();

 private:
  int fd_ = -1;
};

}  // namespace radiocast::util
