#include "util/math.hpp"

#include <bit>
#include <cmath>

namespace radiocast::util {

std::uint32_t ilog2(std::uint64_t x) {
  if (x <= 1) return 0;
  return 63u - static_cast<std::uint32_t>(std::countl_zero(x));
}

std::uint32_t clog2(std::uint64_t x) {
  if (x <= 1) return 0;
  return ilog2(x - 1) + 1;
}

double safe_log(double x) { return std::log(x < std::exp(1.0) ? std::exp(1.0) : x); }

double safe_log2(double x) { return std::log2(x < 2.0 ? 2.0 : x); }

double fpow(double x, double e) {
  if (x <= 0.0) return 0.0;
  return std::exp(e * std::log(x));
}

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

bool is_pow2(std::uint64_t x) { return x >= 1 && (x & (x - 1)) == 0; }

std::uint64_t next_pow2(std::uint64_t x) {
  if (x <= 1) return 1;
  return std::uint64_t{1} << clog2(x);
}

double log_ratio(std::uint64_t n, std::uint64_t d) {
  return safe_log2(static_cast<double>(n)) /
         safe_log2(static_cast<double>(d));
}

}  // namespace radiocast::util
