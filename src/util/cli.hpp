// Minimal command-line flag parser for examples and the bench driver.
//
// Flags take the forms --name=value, --name value, or boolean --name.
// The parser accepts any flag name; values are validated by type when
// accessed (get_int/get_bool/... throw on malformed values). Callers that
// want to reject typo'd flag names must check has()/describe() themselves
// — the parser cannot know the legal set at parse time.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace radiocast::util {

class Cli {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  std::uint64_t get_uint(const std::string& name,
                         std::uint64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Value of --name constrained to an enumerated set: returns `fallback`
  /// when the flag is absent, and throws std::invalid_argument naming the
  /// flag and listing the legal values when the given value is not one of
  /// `choices` — enum-valued flags must fail loudly, not silently fall
  /// back to a default.
  std::string get_choice(const std::string& name, const std::string& fallback,
                         std::span<const std::string_view> choices) const;
  std::string get_choice(
      const std::string& name, const std::string& fallback,
      std::initializer_list<std::string_view> choices) const {
    return get_choice(
        name, fallback,
        std::span<const std::string_view>(choices.begin(), choices.size()));
  }

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

  /// Subcommand dispatch for `program <subcommand> [flags]` drivers: the
  /// first positional argument, or "" when none was given.
  std::string subcommand() const;
  /// Positional arguments after the subcommand.
  std::vector<std::string> subcommand_args() const;

  /// Renders an enumerated flag's legal values as "<a|b|c>" — the single
  /// formatting point shared by describe() below and drivers with their
  /// own usage text, so the rendering cannot drift from what get_choice
  /// accepts.
  static std::string render_choices(std::span<const std::string_view> choices);

  /// Registers a flag for the usage string; returns *this for chaining.
  Cli& describe(const std::string& name, const std::string& help);
  /// Choice-valued flag: usage() renders it as --name=<a|b|c> so the legal
  /// values are discoverable from --help, matching what get_choice will
  /// accept.
  Cli& describe(const std::string& name, const std::string& help,
                std::span<const std::string_view> choices);
  Cli& describe(const std::string& name, const std::string& help,
                std::initializer_list<std::string_view> choices) {
    return describe(
        name, help,
        std::span<const std::string_view>(choices.begin(), choices.size()));
  }
  std::string usage() const;

 private:
  struct FlagHelp {
    std::string name;     // as rendered: "name" or "name=<a|b|c>"
    std::string help;
  };
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  std::vector<FlagHelp> help_;
};

}  // namespace radiocast::util
