// Minimal command-line flag parser for examples and the bench driver.
//
// Flags take the forms --name=value, --name value, or boolean --name.
// The parser accepts any flag name; values are validated by type when
// accessed (get_int/get_bool/... throw on malformed values). Callers that
// want to reject typo'd flag names must check has()/describe() themselves
// — the parser cannot know the legal set at parse time.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace radiocast::util {

class Cli {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;

  /// List-valued flag: every occurrence of --name contributes its value,
  /// each value split on commas, empty items dropped — `--x=a,b --x c`
  /// yields {a, b, c}. Returns {} when the flag is absent. The scalar
  /// accessors (get_string & friends) see the LAST occurrence, so a
  /// repeated scalar flag keeps its historical "last one wins" meaning.
  std::vector<std::string> get_list(const std::string& name) const;
  /// Same, but parses `fallback_csv` (comma-separated) when absent.
  std::vector<std::string> get_list(const std::string& name,
                                    const std::string& fallback_csv) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  std::uint64_t get_uint(const std::string& name,
                         std::uint64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Value of --name constrained to an enumerated set: returns `fallback`
  /// when the flag is absent, and throws std::invalid_argument naming the
  /// flag and listing the legal values when the given value is not one of
  /// `choices` — enum-valued flags must fail loudly, not silently fall
  /// back to a default.
  std::string get_choice(const std::string& name, const std::string& fallback,
                         std::span<const std::string_view> choices) const;
  std::string get_choice(
      const std::string& name, const std::string& fallback,
      std::initializer_list<std::string_view> choices) const {
    return get_choice(
        name, fallback,
        std::span<const std::string_view>(choices.begin(), choices.size()));
  }

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

  /// Subcommand dispatch for `program <subcommand> [flags]` drivers: the
  /// first positional argument, or "" when none was given.
  std::string subcommand() const;
  /// Positional arguments after the subcommand.
  std::vector<std::string> subcommand_args() const;

  /// Renders an enumerated flag's legal values as "<a|b|c>" — the single
  /// formatting point shared by describe() below and drivers with their
  /// own usage text, so the rendering cannot drift from what get_choice
  /// accepts.
  static std::string render_choices(std::span<const std::string_view> choices);

  /// Registers a flag for the usage string; returns *this for chaining.
  Cli& describe(const std::string& name, const std::string& help);
  /// Choice-valued flag: usage() renders it as --name=<a|b|c> so the legal
  /// values are discoverable from --help, matching what get_choice will
  /// accept.
  Cli& describe(const std::string& name, const std::string& help,
                std::span<const std::string_view> choices);
  Cli& describe(const std::string& name, const std::string& help,
                std::initializer_list<std::string_view> choices) {
    return describe(
        name, help,
        std::span<const std::string_view>(choices.begin(), choices.size()));
  }
  /// List-valued flag (get_list): usage() renders it as --name=v1,v2,...
  /// so the comma/repeat syntax is discoverable from --help.
  Cli& describe_list(const std::string& name, const std::string& help);
  std::string usage() const;

 private:
  struct FlagHelp {
    std::string name;     // as rendered: "name" or "name=<a|b|c>"
    std::string help;
  };
  /// Every occurrence of a flag, in argv order; scalar accessors read the
  /// last occurrence, get_list reads them all.
  std::map<std::string, std::vector<std::string>> flags_;
  /// Last occurrence of --name, or nullptr when absent.
  const std::string* last_value(const std::string& name) const;

  std::string program_;
  std::vector<std::string> positional_;
  std::vector<FlagHelp> help_;
};

}  // namespace radiocast::util
