#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

namespace radiocast::util {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  cells_.emplace_back();
  cells_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(const std::string& cell) {
  if (cells_.empty()) row();
  cells_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(double v, int precision) {
  return add(format_double(v, precision));
}

Table& Table::add(std::uint64_t v) { return add(std::to_string(v)); }
Table& Table::add(std::int64_t v) { return add(std::to_string(v)); }
Table& Table::add(int v) { return add(std::to_string(v)); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << ' ' << cell;
      for (std::size_t p = cell.size(); p < widths[c]; ++p) os << ' ';
      os << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    for (std::size_t p = 0; p < widths[c] + 2; ++p) os << '-';
    os << "|";
  }
  os << "\n";
  for (const auto& row : cells_) emit_row(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  const bool needs_quotes =
      s.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << "\n";
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << "\n";
  }
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

void Table::print(std::ostream& os, const std::string& title) const {
  os << "\n=== " << title << " ===\n" << to_string();
}

}  // namespace radiocast::util
