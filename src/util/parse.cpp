#include "util/parse.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>
#include <string>

namespace radiocast::util {

namespace {

[[noreturn]] void fail(std::string_view what, std::string_view expected,
                       std::string_view text) {
  throw std::invalid_argument(std::string(what) + " expects " +
                              std::string(expected) + ", got '" +
                              std::string(text) + "'");
}

}  // namespace

std::vector<std::string> split_csv(std::string_view text, bool keep_empty) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string_view::npos ? text.size()
                                                            : comma;
    if (end > start || keep_empty) {
      out.emplace_back(text.substr(start, end - start));
    }
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

int parse_positive_int(std::string_view text, std::string_view what) {
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value < 1) {
    fail(what, "a positive integer", text);
  }
  return value;
}

std::uint64_t parse_uint(std::string_view text, std::string_view what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    fail(what, "an unsigned integer", text);
  }
  return value;
}

double parse_double(std::string_view text, std::string_view what) {
  // std::from_chars<double> is still missing from some libstdc++ versions
  // this project supports, so route through stod with an explicit
  // full-consumption check.
  if (text.empty()) fail(what, "a number", text);
  double value = 0.0;
  std::size_t consumed = 0;
  try {
    value = std::stod(std::string(text), &consumed);
  } catch (const std::exception&) {
    fail(what, "a number", text);
  }
  if (consumed != text.size() || !std::isfinite(value)) {
    fail(what, "a finite number", text);
  }
  return value;
}

}  // namespace radiocast::util
