// Minimal JSON value model with insertion-ordered objects.
//
// This is the single JSON implementation behind bench_out emission
// (exp::Report) and sweep manifests (exp::SweepSpec): objects remember the
// order keys were set in, so every emitted file has a stable, reviewable
// key order and byte-identical output is a property the harness can pin in
// tests. The parser is a strict recursive-descent JSON reader (no
// comments, no trailing commas) sized for manifest files — not a
// general-purpose streaming parser.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace radiocast::util {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), number_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(std::string_view s) : Json(std::string(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  static Json array() { return Json(Type::kArray); }
  static Json object() { return Json(Type::kObject); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::invalid_argument on a type mismatch so
  /// manifest errors surface as readable messages, not UB.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array / object size (0 for scalars).
  std::size_t size() const;

  // ---- array building / access
  Json& push_back(Json v);
  const Json& at(std::size_t i) const;
  const std::vector<Json>& items() const { return items_; }

  // ---- object building / access (insertion-ordered)
  /// Sets `key`; replaces in place when the key already exists (order of
  /// first insertion is kept). Returns *this for chaining.
  Json& set(std::string key, Json value);
  /// Like set, but a NEW key lands first in the dump order (an existing
  /// key is replaced in place). For leading schema fields ("version").
  Json& prepend(std::string key, Json value);
  /// nullptr when absent or when this is not an object.
  const Json* find(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Serialize. indent >= 0 pretty-prints with that many spaces per level;
  /// indent < 0 emits the compact one-line form. NaN/Inf numbers render as
  /// null (JSON has no such literals); integral doubles with |v| < 2^53
  /// render without a decimal point.
  std::string dump(int indent = 2) const;

  /// Strict parse of a complete JSON document; throws
  /// std::invalid_argument with a byte offset on malformed input.
  static Json parse(std::string_view text);

 private:
  explicit Json(Type t) : type_(t) {}
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// JSON-escape + quote a string (shared by Json::dump and ad-hoc writers).
void json_append_escaped(std::string& out, std::string_view s);

/// Render a double the way Json::dump does (max_digits10 round-trip
/// precision, "null" for NaN/Inf, no decimal point for safe integers).
std::string json_number(double v);

/// Exact uint64 <-> Json round trip. JSON doubles only hold integers
/// exactly up to 2^53, but seeds, round budgets, and phase counters are
/// full uint64s: json_uint emits a number when that is exact and a
/// decimal string beyond 2^53; json_as_uint accepts either form and
/// throws std::invalid_argument (naming `what`) for anything lossy —
/// negatives, fractions, or numbers at/after 2^53.
Json json_uint(std::uint64_t v);
std::uint64_t json_as_uint(const Json& value, const std::string& what);

}  // namespace radiocast::util
