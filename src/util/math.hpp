// Integer/real math helpers shared across the library.
//
// The paper's bounds are expressed in terms of log n, log D, and fractional
// powers of D; these helpers centralise those formulas so the algorithm code
// and the theory-prediction code agree on conventions (log base 2, floors).
#pragma once

#include <cstdint>

namespace radiocast::util {

/// floor(log2(x)) for x >= 1; returns 0 for x == 0 or 1.
std::uint32_t ilog2(std::uint64_t x);

/// ceil(log2(x)) for x >= 1; 0 for x <= 1.
std::uint32_t clog2(std::uint64_t x);

/// Natural log of x clamped below at 1 (so log terms never vanish or go
/// negative in bound formulas for tiny inputs).
double safe_log(double x);

/// log2 of x clamped below at 2.
double safe_log2(double x);

/// x^e for real e via exp/log; x must be >= 0 (0^e = 0 for e > 0).
double fpow(double x, double e);

/// ceil(a / b) for positive integers.
std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b);

/// True if x is a power of two (x >= 1).
bool is_pow2(std::uint64_t x);

/// Smallest power of two >= x (x >= 1).
std::uint64_t next_pow2(std::uint64_t x);

/// The paper's canonical quantity log(n)/log(D), clamped so that both logs
/// are at least 1 (the paper assumes D = Omega(log^c n), i.e. D and n are
/// both "large"; on tiny inputs we degrade gracefully to Decay-like rates).
double log_ratio(std::uint64_t n, std::uint64_t d);

}  // namespace radiocast::util
