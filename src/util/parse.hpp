// Strict string-to-number parsing shared by every configuration surface
// (CLI flags, environment variables, sweep-grid axis expressions).
//
// The std::sto* family silently accepts trailing junk ("8x" -> 8) and
// std::atoi turns garbage into 0; configuration knobs must instead fail
// loudly so a typo'd thread count or grid axis never silently degrades a
// run. Every helper consumes the ENTIRE string or throws
// std::invalid_argument naming the source (`what`) and the offending text.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace radiocast::util {

/// Splits on ','. With keep_empty the result has exactly one item per
/// comma-separated position ("a,,b" -> {"a", "", "b"}); without it empty
/// items are dropped. The single splitter behind Cli::get_list and the
/// sweep axis grammar — their policies on empty items differ, their
/// splitting must not.
std::vector<std::string> split_csv(std::string_view text,
                                   bool keep_empty = false);

/// Entire string must be a base-10 integer >= 1. Throws
/// std::invalid_argument ("<what> expects a positive integer, got '...'")
/// on empty/non-numeric/zero/negative/overflowing input.
int parse_positive_int(std::string_view text, std::string_view what);

/// Entire string must be a base-10 unsigned integer (0 allowed).
std::uint64_t parse_uint(std::string_view text, std::string_view what);

/// Entire string must be a finite decimal number (1e-3 style exponents
/// allowed). Throws std::invalid_argument naming `what` otherwise.
double parse_double(std::string_view text, std::string_view what);

}  // namespace radiocast::util
