// Aligned console tables + CSV emission for the benchmark harness.
//
// Every bench binary prints its experiment as (1) a human-readable aligned
// table to stdout and (2) optionally a CSV file, so results can be diffed
// and re-plotted. Cells are stored as strings; numeric helpers format with
// sensible precision.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace radiocast::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();
  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(double v, int precision = 3);
  Table& add(std::uint64_t v);
  Table& add(std::int64_t v);
  Table& add(int v);

  std::size_t rows() const { return cells_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& cells() const { return cells_; }

  /// Render as an aligned, pipe-separated table.
  std::string to_string() const;
  /// Render as CSV (RFC-4180-ish quoting for commas/quotes/newlines).
  std::string to_csv() const;
  /// Write CSV to `path`; returns false on I/O failure.
  bool write_csv(const std::string& path) const;
  /// Print the aligned table to `os` with a title banner.
  void print(std::ostream& os, const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Format a double with fixed precision (no trailing-zero trimming).
std::string format_double(double v, int precision);

}  // namespace radiocast::util
