#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace radiocast::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  // Two rounds of splitmix over the concatenation-ish combination; enough to
  // decorrelate seed/stream lattices in practice.
  std::uint64_t s = seed ^ (0x9E3779B97F4A7C15ULL * (stream + 1));
  (void)splitmix64(s);
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Standard seeding procedure: fill state with splitmix64 outputs. A state
  // of all zeros is impossible because splitmix64 is a bijection walked from
  // distinct counter values.
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x853C49E6748FEA9BULL;
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_in(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) {  // full 64-bit span
    return static_cast<std::int64_t>((*this)());
  }
  return lo + static_cast<std::int64_t>(uniform(range));
}

double Rng::uniform_real() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform_real();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_real() < p;
}

double Rng::exponential(double beta) {
  assert(beta > 0.0);
  // Inverse CDF; 1 - U ~ U avoids log(0) since uniform_real() < 1.
  double u = uniform_real();
  return -std::log1p(-u) / beta;
}

std::uint64_t Rng::geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = uniform_real();
  return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  assert(k <= n);
  // Selection sampling for small k, partial Fisher-Yates otherwise.
  std::vector<std::uint32_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (static_cast<std::uint64_t>(k) * 16 < n) {
    // Floyd's algorithm: O(k) expected, no O(n) scratch.
    std::vector<std::uint32_t> chosen;
    chosen.reserve(k);
    for (std::uint32_t j = n - k; j < n; ++j) {
      std::uint32_t t = static_cast<std::uint32_t>(uniform(j + 1));
      bool seen = false;
      for (std::uint32_t c : chosen) {
        if (c == t) {
          seen = true;
          break;
        }
      }
      chosen.push_back(seen ? j : t);
    }
    out = std::move(chosen);
    shuffle(out);
  } else {
    std::vector<std::uint32_t> idx(n);
    for (std::uint32_t i = 0; i < n; ++i) idx[i] = i;
    for (std::uint32_t i = 0; i < k; ++i) {
      std::uint32_t j = i + static_cast<std::uint32_t>(uniform(n - i));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    out = std::move(idx);
  }
  return out;
}

Rng Rng::fork(std::uint64_t stream) {
  return Rng(mix_seed((*this)(), stream));
}

}  // namespace radiocast::util
