#include "util/cli.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/parse.hpp"

namespace radiocast::util {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)].push_back(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg].push_back(argv[++i]);
    } else {
      flags_[arg].push_back("true");  // bare boolean flag
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

const std::string* Cli::last_value(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return nullptr;
  return &it->second.back();
}

std::string Cli::subcommand() const {
  return positional_.empty() ? std::string{} : positional_.front();
}

std::vector<std::string> Cli::subcommand_args() const {
  if (positional_.size() <= 1) return {};
  return {positional_.begin() + 1, positional_.end()};
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) const {
  const std::string* v = last_value(name);
  return v == nullptr ? fallback : *v;
}

std::vector<std::string> Cli::get_list(const std::string& name) const {
  std::vector<std::string> out;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return out;
  for (const std::string& occurrence : it->second) {
    for (auto& item : split_csv(occurrence)) out.push_back(std::move(item));
  }
  return out;
}

std::vector<std::string> Cli::get_list(const std::string& name,
                                       const std::string& fallback_csv) const {
  if (has(name)) return get_list(name);
  return split_csv(fallback_csv);
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const std::string* v = last_value(name);
  if (v == nullptr) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                *v + "'");
  }
}

std::uint64_t Cli::get_uint(const std::string& name,
                            std::uint64_t fallback) const {
  const std::string* v = last_value(name);
  if (v == nullptr) return fallback;
  try {
    return std::stoull(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name +
                                " expects an unsigned integer, got '" + *v +
                                "'");
  }
}

double Cli::get_double(const std::string& name, double fallback) const {
  const std::string* v = last_value(name);
  if (v == nullptr) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                *v + "'");
  }
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const std::string* value = last_value(name);
  if (value == nullptr) return fallback;
  const std::string& v = *value;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              v + "'");
}

std::string Cli::get_choice(const std::string& name,
                            const std::string& fallback,
                            std::span<const std::string_view> choices) const {
  const std::string* v = last_value(name);
  if (v == nullptr) return fallback;
  for (const std::string_view c : choices) {
    if (*v == c) return *v;
  }
  std::ostringstream msg;
  msg << "flag --" << name << " expects one of";
  const char* sep = " ";
  for (const std::string_view c : choices) {
    msg << sep << c;
    sep = " | ";
  }
  msg << ", got '" << *v << "'";
  throw std::invalid_argument(msg.str());
}

Cli& Cli::describe(const std::string& name, const std::string& help) {
  help_.push_back({name, help});
  return *this;
}

std::string Cli::render_choices(std::span<const std::string_view> choices) {
  std::string out = "<";
  const char* sep = "";
  for (const std::string_view c : choices) {
    out += sep;
    out += c;
    sep = "|";
  }
  out += ">";
  return out;
}

Cli& Cli::describe(const std::string& name, const std::string& help,
                   std::span<const std::string_view> choices) {
  help_.push_back({name + "=" + render_choices(choices), help});
  return *this;
}

Cli& Cli::describe_list(const std::string& name, const std::string& help) {
  help_.push_back({name + "=v1,v2,...", help});
  return *this;
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags]\n";
  for (const auto& entry : help_) {
    os << "  --" << entry.name << "\n      " << entry.help << "\n";
  }
  return os.str();
}

}  // namespace radiocast::util
