#include "util/cli.hpp"

#include <sstream>
#include <stdexcept>

namespace radiocast::util {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // bare boolean flag
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::subcommand() const {
  return positional_.empty() ? std::string{} : positional_.front();
}

std::vector<std::string> Cli::subcommand_args() const {
  if (positional_.size() <= 1) return {};
  return {positional_.begin() + 1, positional_.end()};
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

std::uint64_t Cli::get_uint(const std::string& name,
                            std::uint64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    return std::stoull(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name +
                                " expects an unsigned integer, got '" +
                                it->second + "'");
  }
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              v + "'");
}

std::string Cli::get_choice(const std::string& name,
                            const std::string& fallback,
                            std::span<const std::string_view> choices) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  for (const std::string_view c : choices) {
    if (it->second == c) return it->second;
  }
  std::ostringstream msg;
  msg << "flag --" << name << " expects one of";
  const char* sep = " ";
  for (const std::string_view c : choices) {
    msg << sep << c;
    sep = " | ";
  }
  msg << ", got '" << it->second << "'";
  throw std::invalid_argument(msg.str());
}

Cli& Cli::describe(const std::string& name, const std::string& help) {
  help_.push_back({name, help});
  return *this;
}

std::string Cli::render_choices(std::span<const std::string_view> choices) {
  std::string out = "<";
  const char* sep = "";
  for (const std::string_view c : choices) {
    out += sep;
    out += c;
    sep = "|";
  }
  out += ">";
  return out;
}

Cli& Cli::describe(const std::string& name, const std::string& help,
                   std::span<const std::string_view> choices) {
  help_.push_back({name + "=" + render_choices(choices), help});
  return *this;
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags]\n";
  for (const auto& entry : help_) {
    os << "  --" << entry.name << "\n      " << entry.help << "\n";
  }
  return os.str();
}

}  // namespace radiocast::util
