// Deterministic, fast pseudo-random number generation for simulations.
//
// The whole library routes randomness through Rng so that every experiment
// is reproducible from a single 64-bit seed. The generator is xoshiro256**
// (Blackman & Vigna), seeded via splitmix64, which is the recommended
// seeding procedure for the xoshiro family. Rng additionally provides the
// distributions the algorithms need: uniform integers/reals, Bernoulli,
// exponential (for Miller-Peng-Xu shifts), and geometric.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace radiocast::util {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// Mix a seed with a stream identifier into an independent-looking seed.
/// Used to derive per-node / per-phase sub-streams deterministically.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream);

/// xoshiro256** generator with a std::uniform_random_bit_generator-compatible
/// interface plus the handful of distributions the simulator needs.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0xC0FFEE123456789ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Raw 64 random bits.
  result_type operator()();

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_in(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform_real();

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed real with rate `beta` (mean 1/beta).
  /// This is exactly the delta_v distribution of Partition(beta):
  /// P[X <= y] = 1 - exp(-beta*y).
  double exponential(double beta);

  /// Geometric: number of failures before first success, success prob p.
  std::uint64_t geometric(double p);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

  /// Fork an independent sub-stream (deterministic in (state, stream)).
  Rng fork(std::uint64_t stream);

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace radiocast::util
