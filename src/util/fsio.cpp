#include "util/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

namespace radiocast::util {

namespace {

std::function<bool()> g_io_fault_hook;

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool injected_fault(std::string& error) {
  if (g_io_fault_hook && g_io_fault_hook()) {
    error = "injected I/O fault (RADIOCAST_FAULT)";
    return true;
  }
  return false;
}

/// Full write loop (::write may be short); false + errno message on error.
bool write_all(int fd, std::string_view data, std::string& error) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      error = errno_message("write");
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Best-effort directory fsync so a rename/creation survives a crash too.
void fsync_parent_dir(const std::string& path) {
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::close(fd);
}

}  // namespace

void set_io_fault_hook(std::function<bool()> hook) {
  g_io_fault_hook = std::move(hook);
}

bool atomic_write_file(const std::string& path, std::string_view content,
                       std::string& error) {
  if (injected_fault(error)) return false;
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    error = errno_message("open");
    return false;
  }
  const bool wrote = write_all(fd, content, error) && ::fsync(fd) == 0;
  if (!wrote && error.empty()) error = errno_message("fsync");
  if (::close(fd) != 0 && wrote) {
    error = errno_message("close");
    (void)std::remove(tmp.c_str());
    return false;
  }
  if (!wrote) {
    (void)std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    error = errno_message("rename");
    (void)std::remove(tmp.c_str());
    return false;
  }
  fsync_parent_dir(path);
  return true;
}

AppendFile::~AppendFile() { close(); }

bool AppendFile::open(const std::string& path, bool truncate,
                      std::string& error) {
  close();
  const int flags = O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    error = errno_message("open");
    return false;
  }
  fsync_parent_dir(path);
  return true;
}

bool AppendFile::append_fsync(std::string_view data, std::string& error) {
  if (fd_ < 0) {
    error = "append on closed file";
    return false;
  }
  if (injected_fault(error)) return false;
  if (!write_all(fd_, data, error)) return false;
  if (::fsync(fd_) != 0) {
    error = errno_message("fsync");
    return false;
  }
  return true;
}

void AppendFile::append_torn(std::string_view data, std::size_t prefix) {
  if (fd_ < 0) return;
  std::string ignored;
  (void)write_all(fd_, data.substr(0, prefix), ignored);
  // Deliberately no fsync: the torn bytes may or may not survive, exactly
  // like a real crash mid-append. Resume must cope either way.
}

void AppendFile::close() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

}  // namespace radiocast::util
