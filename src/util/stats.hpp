// Online and batch statistics used by the experiment harness.
//
// OnlineStats accumulates mean/variance via Welford's algorithm so that a
// bench can stream millions of trial outcomes without storing them.
// Sample keeps raw values for quantiles and bootstrap confidence intervals.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace radiocast::util {

/// Streaming mean / variance / min / max (Welford).
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Half-width of a ~95% normal-approximation confidence interval.
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch sample retaining raw values; supports quantiles.
class Sample {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// q in [0,1]; linear interpolation between order statistics.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Wilson score interval for a binomial proportion — the success-rate
/// interval the experiment harness reports. Unlike the normal ("Wald")
/// interval it stays inside [0,1] and behaves at 0/n and n/n, which is
/// exactly the regime w.h.p. protocols live in (success counts at or near
/// `trials`). `z` is the normal quantile (1.96 ~ 95%).
struct WilsonInterval {
  double lo = 0.0;
  double hi = 1.0;
};
WilsonInterval wilson_interval(std::size_t successes, std::size_t trials,
                               double z = 1.96);

/// Least-squares fit of y = a + b*x; used to estimate empirical growth
/// exponents from log-log data in the benches.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y);

/// Fit y ~ c * x^e on log-log scale; returns (c, e, r2 of log fit).
struct PowerFit {
  double coefficient = 0.0;
  double exponent = 0.0;
  double r2 = 0.0;
};
PowerFit fit_power(const std::vector<double>& x, const std::vector<double>& y);

/// Simple histogram over [lo, hi) with uniform bins; out-of-range values
/// clamp into the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  /// Render as an ASCII bar chart (for bench output).
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace radiocast::util
