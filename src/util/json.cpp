#include "util/json.hpp"

#include "util/parse.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace radiocast::util {

// ----------------------------------------------------------------- access

bool Json::as_bool() const {
  if (type_ != Type::kBool) {
    throw std::invalid_argument("Json: expected a boolean");
  }
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) {
    throw std::invalid_argument("Json: expected a number");
  }
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) {
    throw std::invalid_argument("Json: expected a string");
  }
  return string_;
}

std::size_t Json::size() const {
  switch (type_) {
    case Type::kArray:
      return items_.size();
    case Type::kObject:
      return members_.size();
    default:
      return 0;
  }
}

Json& Json::push_back(Json v) {
  if (type_ != Type::kArray) {
    throw std::invalid_argument("Json: push_back on a non-array");
  }
  items_.push_back(std::move(v));
  return *this;
}

const Json& Json::at(std::size_t i) const {
  if (type_ != Type::kArray || i >= items_.size()) {
    throw std::invalid_argument("Json: array index out of range");
  }
  return items_[i];
}

Json& Json::set(std::string key, Json value) {
  if (type_ != Type::kObject) {
    throw std::invalid_argument("Json: set on a non-object");
  }
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::prepend(std::string key, Json value) {
  if (type_ != Type::kObject) {
    throw std::invalid_argument("Json: prepend on a non-object");
  }
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace(members_.begin(), std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

// ------------------------------------------------------------------- dump

void json_append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

Json json_uint(std::uint64_t v) {
  if (v < 9007199254740992ull /* 2^53 */) return Json(v);
  return Json(std::to_string(v));
}

std::uint64_t json_as_uint(const Json& value, const std::string& what) {
  if (value.is_string()) {
    return parse_uint(value.as_string(), what);
  }
  const double v = value.as_number();
  if (v < 0.0 || v != std::floor(v) || v >= 9007199254740992.0 /* 2^53 */) {
    throw std::invalid_argument(
        what + ": " + json_number(v) +
        " is not an exactly-representable non-negative integer (write it "
        "as a string for values beyond 2^53)");
  }
  return static_cast<std::uint64_t>(v);
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no NaN/Inf
  // Safe integers render without a decimal point so counts stay counts.
  if (v == std::floor(v) && std::abs(v) < 9007199254740992.0 /* 2^53 */) {
    return std::to_string(static_cast<long long>(v));
  }
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * d, ' ');
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      out += json_number(number_);
      return;
    case Type::kString:
      json_append_escaped(out, string_);
      return;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        json_append_escaped(out, members_[i].first);
        out += pretty ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent >= 0) out += '\n';
  return out;
}

// ------------------------------------------------------------------ parse

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      expect(':');
      obj.set(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // Manifests are ASCII in practice; encode BMP code points as
          // UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
    fail("unterminated string");
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (digits && pos_ < text_.size() &&
        (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      bool exp_digits = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) fail("bad exponent");
    }
    if (!digits) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    try {
      return Json(std::stod(token));
    } catch (const std::exception&) {
      fail("bad number '" + token + "'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace radiocast::util
