#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace radiocast::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::mean() const { return n_ ? mean_ : 0.0; }

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }
double OnlineStats::min() const { return n_ ? min_ : 0.0; }
double OnlineStats::max() const { return n_ ? max_ : 0.0; }

double OnlineStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

WilsonInterval wilson_interval(std::size_t successes, std::size_t trials,
                               double z) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(std::min(successes, trials)) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = p + z2 / (2.0 * n);
  const double spread =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, (centre - spread) / denom),
          std::min(1.0, (centre + spread) / denom)};
}

void Sample::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Sample::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Sample::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double v : values_) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values_.size() - 1));
}

double Sample::min() const {
  ensure_sorted();
  return values_.empty() ? 0.0 : values_.front();
}

double Sample::max() const {
  ensure_sorted();
  return values_.empty() ? 0.0 : values_.back();
}

double Sample::quantile(double q) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  assert(x.size() == y.size());
  LinearFit fit;
  const std::size_t n = x.size();
  if (n < 2) return fit;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

PowerFit fit_power(const std::vector<double>& x,
                   const std::vector<double>& y) {
  assert(x.size() == y.size());
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0 && y[i] > 0.0) {
      lx.push_back(std::log(x[i]));
      ly.push_back(std::log(y[i]));
    }
  }
  const LinearFit lin = fit_linear(lx, ly);
  PowerFit fit;
  fit.coefficient = std::exp(lin.intercept);
  fit.exponent = lin.slope;
  fit.r2 = lin.r2;
  return fit;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  std::size_t i;
  if (t < 0.0) {
    i = 0;
  } else if (t >= 1.0) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
  }
  ++counts_[i];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::ascii(std::size_t width) const {
  std::ostringstream os;
  std::size_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  if (peak == 0) peak = 1;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar = counts_[i] * width / peak;
    os << "[";
    os.width(10);
    os << bin_lo(i) << ", ";
    os.width(10);
    os << bin_hi(i) << ") ";
    for (std::size_t b = 0; b < bar; ++b) os << '#';
    os << "  " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace radiocast::util
