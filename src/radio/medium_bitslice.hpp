// Bit-sliced batch backend: resolves one round for up to 64 independent
// Monte-Carlo lanes with one CSR traversal.
//
// Per listener it maintains a contiguous block of bitplane words,
//
//   [ one | two | id_0 .. id_{idbits-1} ]
//
// where `one`/`two` are the ">= 1 tx" / ">= 2 tx" saturation planes
// updated with a bitwise saturating add (two |= one & m; one |= m) and the
// optional id words implement in-kernel sender identification: word id_b's
// lane-l bit is the XOR of bit b of every id transmitted into the listener
// on lane l. On any lane the listener *wins* (exactly one transmitter) the
// XOR IS the unique sender's id, so recovery reads senders straight out of
// the planes in O(idbits = ceil(log2 n)) per delivery instead of
// re-scanning the listener's adjacency row — the bookkeeping rides the
// batched communication pass instead of a second sweep. RecoveryStrategy
// (kRowScan / kIdPlanes / kAuto cost prediction) picks the path per round;
// both produce identical outcomes.
//
// The traversal itself is transmitter-centric scatter (sparse rounds,
// blocks in planes_) or listener-centric gather (dense rounds, blocks in
// registers, id words stored only for winning listeners); the per-edge id
// update and the per-delivery id extraction run through the AVX2 kernels
// in radio/simd.hpp behind runtime dispatch, with scalar fallbacks.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "radio/lane_counter.hpp"
#include "radio/medium.hpp"

namespace radiocast::radio {

class BitsliceMedium final : public Medium {
 public:
  BitsliceMedium(const graph::Graph& g, CollisionModel model);

  std::string_view name() const override { return "bitslice"; }

  /// Single-instance rounds run through the batch kernel with one lane, so
  /// the facade path and the batch path exercise the same code.
  void resolve(std::span<const graph::NodeId> transmitters,
               std::span<const Payload> tx_payload,
               SparseOutcome& out) override;

  void resolve_batch(std::span<const std::uint64_t> tx_mask,
                     PayloadPlanes payload, int lanes, BatchOutcome& out,
                     bool with_senders = true) override;

  /// Fold path: every recovered (listener, lane, sender) max-combines the
  /// sender's payload straight into the best knowledge planes (any
  /// KnowledgePlanes layout; node-major keeps each listener's folded lane
  /// words in one cache-line run) — no per-delivery records at all.
  void resolve_batch_max(std::span<const std::uint64_t> tx_mask,
                         PayloadPlanes payload, int lanes,
                         KnowledgePlanes best, BatchOutcome& out) override;

  /// Sender-id plane words per listener: ceil(log2 n), at least 1.
  std::uint32_t id_bits() const { return idbits_; }

 private:
  /// What run_batch does with each recovered delivery.
  enum class FoldMode : std::uint8_t { kMasksOnly, kSenders, kMaxFold };

  /// How this round identifies senders. The deferred paths run as a
  /// separate (timed) recovery pass; the fused paths recover inside the
  /// gather traversal while the listener's row / id accumulators are still
  /// hot in cache and registers:
  ///   kNone          — mask-only round, nothing to recover
  ///   kScanDeferred  — row scan over out.delivered (the PR 3 path;
  ///                    RecoveryStrategy::kRowScan pins it for comparison)
  ///   kScanFused     — gather only: re-walk the row at emit time (kAuto's
  ///                    gather choice: the row and transmit masks were read
  ///                    one loop iteration ago)
  ///   kIdsDeferred   — scatter id planes, extraction pass over delivered
  ///   kIdsFused      — gather id planes in registers, extraction at emit
  ///   kConstFold     — max-fold only: the prologue proved every
  ///                    transmitter carries the same payload value, so the
  ///                    fold needs no sender identity at all (run_batch
  ///                    handles it; run_core never sees this value)
  enum class Recover : std::uint8_t {
    kNone,
    kScanDeferred,
    kScanFused,
    kIdsDeferred,
    kIdsFused,
    kConstFold
  };

  void run_batch(std::span<const std::uint64_t> tx_mask, PayloadPlanes payload,
                 int lanes, BatchOutcome& out, FoldMode mode,
                 KnowledgePlanes best);
  template <class Sink>
  void run_core(std::span<const std::uint64_t> tx_mask, std::uint64_t lane_mask,
                int lanes, std::uint64_t work, BatchOutcome& out,
                Recover recover, Sink&& sink);
  /// Applies the RecoveryStrategy knob to this round's traversal shape;
  /// kAuto fuses a row re-walk into gather rounds and, for scatter rounds,
  /// predicts id planes vs the deferred scan from the traversal volume and
  /// the last sender-recovering round's delivered-row volume.
  Recover choose_recovery(std::uint64_t work, bool gather) const;
  /// Widens the per-listener block stride from 2 to 2 + idbits_. Planes
  /// are all-zero between rounds, so the relayout is just a bigger zeroed
  /// allocation.
  void ensure_id_capacity();

  template <bool kWithIds, bool kDense>
  void scatter_accumulate(std::span<const std::uint64_t> tx_mask,
                          std::uint64_t lane_mask);
  /// Row-scan recovery (the pre-id-planes path): re-walk each winning
  /// listener's row, clearing won lanes as their unique senders are found.
  /// Sink: (listener, sender, lane mask) — one call per sender group, so
  /// sinks hoist per-sender work (the payload read, for lane-invariant
  /// planes) out of the per-lane loop.
  template <class Sink>
  void rowscan_recover(std::span<const std::uint64_t> tx_mask,
                       const BatchOutcome& out, Sink&& sink) const;
  /// Id-plane recovery: read each won lane's sender id back out of the
  /// listener's XOR planes and re-zero them (the between-round invariant).
  template <class Sink>
  void idplane_recover(const BatchOutcome& out, Sink&& sink);
  /// Extraction core shared by the deferred and fused id paths: calls
  /// sink(v, sender, single-lane mask) for every lane in `win`, reading
  /// senders out of the id words (per-lane bit gather, or one 64x64
  /// transpose for win-dense listeners).
  template <class Sink>
  void extract_ids(graph::NodeId v, std::uint64_t win, const std::uint64_t* id,
                   Sink&& sink) const;

  // ceil(log2 n) — how many id planes a sender id needs. NodeId is 32-bit,
  // so blocks never exceed 2 + 32 words.
  std::uint32_t idbits_;
  // Words per listener block: 2 until the first id-plane round, then
  // 2 + idbits_ for the lifetime of the medium.
  std::size_t stride_ = 2;
  // Per-listener bitplane blocks (node_count * stride_ words). Invariant
  // between rounds: all zero — a nonzero `one` marks the listener as
  // touched this round (transmit masks are never empty), so no epoch
  // stamps are needed; each round's epilogue re-zeroes exactly what it
  // dirtied (id words of winning listeners are re-zeroed by the recovery
  // pass that consumes them).
  std::vector<std::uint64_t> planes_;
  std::vector<graph::NodeId> touched_;
  std::vector<graph::NodeId> txlist_;
  // kAuto's estimate of the row-scan volume: sum of delivered listeners'
  // degrees in the last sender-recovering round (round densities drift
  // slowly, so the previous round is a good predictor of this one).
  std::uint64_t scan_cost_estimate_;

  // Bit-sliced per-lane tallies (see radio/lane_counter.hpp).
  LaneCounter tx_tally_;
  LaneCounter delivered_tally_;
  LaneCounter collided_tally_;

  // Scratch for the single-instance resolve() adapter.
  std::vector<std::uint64_t> mask1_;
  std::vector<Payload> payload1_;
  BatchOutcome batch_out_;
};

}  // namespace radiocast::radio
