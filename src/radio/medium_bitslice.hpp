// Bit-sliced batch backend: resolves one round for up to 64 independent
// Monte-Carlo lanes with one pair of CSR traversals.
//
// Per listener it maintains two bitplane words — "at least one neighbour
// transmitted" and "at least two did" — updated with a bitwise saturating
// add (two |= one & m; one |= m), so the per-edge cost is a handful of
// 64-bit ops regardless of lane count. A listener-centric second pass
// recovers the unique sender and payload for exactly-one lanes only
// (output-sized work: rows are scanned only for listeners that won a
// lane, and only until every won lane found its sender), so one CSR
// traversal serves up to 64 seeds versus one traversal per seed for the
// scalar backend.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "radio/medium.hpp"

namespace radiocast::radio {

class BitsliceMedium final : public Medium {
 public:
  BitsliceMedium(const graph::Graph& g, CollisionModel model);

  std::string_view name() const override { return "bitslice"; }

  /// Single-instance rounds run through the batch kernel with one lane, so
  /// the facade path and the batch path exercise the same code.
  void resolve(std::span<const graph::NodeId> transmitters,
               std::span<const Payload> tx_payload,
               SparseOutcome& out) override;

  void resolve_batch(std::span<const std::uint64_t> tx_mask,
                     PayloadPlanes payload, int lanes, BatchOutcome& out,
                     bool with_senders = true) override;

  /// Fold path: the mask-only kernel plus one row scan per winning
  /// listener that max-combines each won lane's unique-sender payload
  /// straight into the best planes — no per-delivery records at all.
  void resolve_batch_max(std::span<const std::uint64_t> tx_mask,
                         PayloadPlanes payload, int lanes,
                         std::span<Payload> best, BatchOutcome& out) override;

 private:
  void recover_senders(std::span<const std::uint64_t> tx_mask,
                       PayloadPlanes payload, BatchOutcome& out) const;
  // Per-listener bitplanes, stored adjacently so the per-edge update stays
  // within one cache line. Invariant between rounds: all zero — a nonzero
  // `one` marks the listener as touched this round (transmit masks are
  // never empty), so no epoch stamps are needed; the round's epilogue
  // re-zeroes exactly the touched entries.
  struct Planes {
    std::uint64_t one = 0;  // lanes with >= 1 transmitting neighbour
    std::uint64_t two = 0;  // lanes with >= 2
  };
  std::vector<Planes> planes_;
  std::vector<graph::NodeId> touched_;
  std::vector<graph::NodeId> txlist_;

  // Bit-sliced per-lane tallies: plane j holds bit j of every lane's
  // count, so adding a 64-lane mask is a carry-save ripple (amortized ~2
  // word ops) instead of one loop iteration per set bit.
  struct LaneCounter {
    std::array<std::uint64_t, 32> plane{};
    std::size_t used = 0;  // planes [0, used) may be nonzero

    void add(std::uint64_t mask) {
      for (std::size_t j = 0; mask != 0; ++j) {
        if (j == used) {  // counts fit: used <= ceil(log2(adds)) <= 32
          plane[used++] = mask;
          return;
        }
        const std::uint64_t carry = plane[j] & mask;
        plane[j] ^= mask;
        mask = carry;
      }
    }
    void extract(std::array<std::uint32_t, kMaxLanes>& out, int lanes) const {
      for (std::size_t j = 0; j < used; ++j) {
        const std::uint64_t w = plane[j];
        if (w == 0) continue;
        for (int l = 0; l < lanes; ++l) {
          out[l] |= static_cast<std::uint32_t>(w >> l & 1) << j;
        }
      }
    }
    void reset() {
      for (std::size_t j = 0; j < used; ++j) plane[j] = 0;
      used = 0;
    }
  };
  LaneCounter tx_tally_;
  LaneCounter delivered_tally_;
  LaneCounter collided_tally_;

  // Scratch for the single-instance resolve() adapter.
  std::vector<std::uint64_t> mask1_;
  std::vector<Payload> payload1_;
  BatchOutcome batch_out_;
};

}  // namespace radiocast::radio
