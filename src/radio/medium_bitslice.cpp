#include "radio/medium_bitslice.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "radio/simd.hpp"

namespace radiocast::radio {

namespace {

// kAuto's scatter cost model: accumulating id planes costs ~idbits
// streaming word-XORs per traversed edge (the per-transmitter spread is
// hoisted out of the row loop, so the compiler vectorizes the rest), while
// the deferred row scan costs ~1 random adjacency + transmit-mask read per
// entry of every delivered listener's row. The factor calibrates that
// exchange rate (random reads are worth a few streaming XORs each).
constexpr std::uint64_t kRowScanCostFactor = 4;

// Id extraction switches from per-lane bit gathering (O(idbits) per won
// lane) to one 64x64 transpose per listener (fixed ~400 word-ops serving
// all 64 lanes at once) when a listener won at least this many lanes.
constexpr int kTransposeLanes = 12;

}  // namespace

BitsliceMedium::BitsliceMedium(const graph::Graph& g, CollisionModel model)
    : Medium(g, model) {
  const auto n = g.node_count();
  idbits_ = n > 1 ? static_cast<std::uint32_t>(std::bit_width(
                        static_cast<std::uint32_t>(n - 1)))
                  : 1u;
  planes_.assign(static_cast<std::size_t>(n) * stride_, 0);
  touched_.reserve(n);
  mask1_.assign(n, 0);
  payload1_.assign(n, kNoPayload);
  // Seed the row-scan estimate with the full adjacency: the first batches
  // of a protocol are typically dense enough that a row scan would walk
  // most rows, and the estimate self-corrects from round one onward.
  scan_cost_estimate_ = 2 * g.edge_count();
}

BitsliceMedium::Recover BitsliceMedium::choose_recovery(std::uint64_t work,
                                                        bool gather) const {
  switch (recovery_) {
    case RecoveryStrategy::kRowScan:
      return Recover::kScanDeferred;
    case RecoveryStrategy::kIdPlanes:
      return gather ? Recover::kIdsFused : Recover::kIdsDeferred;
    case RecoveryStrategy::kAuto:
      break;
  }
  if (gather) {
    // The fused re-walk touches only winning listeners' rows, against
    // transmit-mask words read one loop iteration earlier — it is never
    // beaten by accumulating id planes on every traversed edge.
    return Recover::kScanFused;
  }
  const std::uint64_t id_cost = work * (idbits_ / 4 + 1);
  return id_cost <= kRowScanCostFactor * scan_cost_estimate_
             ? Recover::kIdsDeferred
             : Recover::kScanDeferred;
}

void BitsliceMedium::ensure_id_capacity() {
  const std::size_t full = 2 + idbits_;
  if (stride_ == full) return;
  stride_ = full;
  planes_.assign(static_cast<std::size_t>(graph_->node_count()) * stride_, 0);
}

template <bool kWithIds, bool kDense>
void BitsliceMedium::scatter_accumulate(
    std::span<const std::uint64_t> tx_mask, std::uint64_t lane_mask) {
  std::uint64_t* const base = planes_.data();
  const std::size_t stride = stride_;
  const std::uint32_t idbits = idbits_;
  for (const graph::NodeId u : txlist_) {
    const std::uint64_t m = tx_mask[u] & lane_mask;
    // The id spread is loop-invariant across u's whole row: word b is m
    // where bit b of u is set, 0 otherwise. Hoisting it turns the
    // per-edge id update into a streaming XOR the compiler vectorizes.
    std::uint64_t spread[34];
    if constexpr (kWithIds) {
      for (std::uint32_t b = 0; b < idbits; ++b) {
        spread[b] = (-(static_cast<std::uint64_t>(u) >> b & 1)) & m;
      }
    }
    for (const graph::NodeId v : graph_->neighbors(u)) {
      std::uint64_t* const blk = base + static_cast<std::size_t>(v) * stride;
      if constexpr (!kDense) {
        if (blk[0] == 0) touched_.push_back(v);
      }
      blk[1] |= blk[0] & m;
      blk[0] |= m;
      if constexpr (kWithIds) {
        for (std::uint32_t b = 0; b < idbits; ++b) blk[2 + b] ^= spread[b];
      }
    }
  }
}

template <class Sink>
void BitsliceMedium::rowscan_recover(std::span<const std::uint64_t> tx_mask,
                                     const BatchOutcome& out,
                                     Sink&& sink) const {
  // Scan each winning listener's row, clearing won lanes as their unique
  // senders are found, so every row is visited at most once and only for
  // listeners that actually won a lane.
  for (const auto& dm : out.delivered) {
    std::uint64_t win = dm.lanes;
    for (const graph::NodeId u : graph_->neighbors(dm.node)) {
      const std::uint64_t hit = win & tx_mask[u];
      if (hit == 0) continue;
      win &= ~hit;
      sink(dm.node, u, hit);
      if (win == 0) break;
    }
  }
}

template <class Sink>
void BitsliceMedium::extract_ids(graph::NodeId v, std::uint64_t win,
                                 const std::uint64_t* id, Sink&& sink) const {
  const std::uint64_t idmask =
      idbits_ >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << idbits_) - 1;
  if (std::popcount(win) >= kTransposeLanes) {
    // Win-dense listener: one transpose yields every lane's sender id.
    // Store plane b into row 63-b and read lane l from row 63-l — the
    // anti-diagonal kernel then lands bit b of lane l's id at bit b.
    std::array<std::uint64_t, 64> w{};
    for (std::uint32_t b = 0; b < idbits_; ++b) w[63 - b] = id[b];
    simd::transpose64(w);
    do {
      const int lane = std::countr_zero(win);
      sink(v,
           static_cast<graph::NodeId>(
               w[static_cast<std::size_t>(63 - lane)] & idmask),
           std::uint64_t{1} << lane);
      win &= win - 1;
    } while (win != 0);
  } else {
    do {
      const int lane = std::countr_zero(win);
      sink(v,
           static_cast<graph::NodeId>(simd::extract_id(id, idbits_, lane)),
           std::uint64_t{1} << lane);
      win &= win - 1;
    } while (win != 0);
  }
}

template <class Sink>
void BitsliceMedium::idplane_recover(const BatchOutcome& out, Sink&& sink) {
  for (const auto& dm : out.delivered) {
    std::uint64_t* const id =
        planes_.data() + static_cast<std::size_t>(dm.node) * stride_ + 2;
    extract_ids(dm.node, dm.lanes, id, sink);
    // Consume-and-clear restores the between-round all-zero invariant for
    // the id words the output sweep left live for us.
    std::fill_n(id, idbits_, 0);
  }
}

template <class Sink>
void BitsliceMedium::run_core(std::span<const std::uint64_t> tx_mask,
                              std::uint64_t lane_mask, int lanes,
                              std::uint64_t work, BatchOutcome& out,
                              Recover recover, Sink&& sink) {
  const graph::NodeId n = graph_->node_count();
  const obs::TraceSpan trace_span("bitslice.round", "lanes",
                                  static_cast<std::uint64_t>(lanes), "work",
                                  work);
  const std::uint64_t t0 = now_ns();
  const bool dense = 2 * work >= n;
  // When transmitters cover at least half of all adjacency, flip the
  // traversal to a listener-centric gather: the planes accumulate in
  // registers, and the fused recovery paths identify senders before the
  // listener's row leaves cache.
  const bool gather = work >= graph_->edge_count();
  const bool use_ids =
      recover == Recover::kIdsDeferred || recover == Recover::kIdsFused;
  // Only the deferred path parks id words in planes_; the fused gather
  // path keeps them in registers, so it must not pay the widened stride.
  if (recover == Recover::kIdsDeferred) ensure_id_capacity();

  // Emits one listener's delivered/collision masks; returns the win mask.
  // Every listener with a nonzero `one` word passes through here exactly
  // once on each traversal shape, so the call count IS the active set.
  std::uint32_t active = 0;
  auto emit = [&](const graph::NodeId v, const std::uint64_t one,
                  const std::uint64_t two) -> std::uint64_t {
    ++active;
    const std::uint64_t not_tx = ~tx_mask[v];
    const std::uint64_t win = one & ~two & not_tx;
    const std::uint64_t coll = two & not_tx & lane_mask;
    if (win != 0) {
      out.delivered.push_back({v, win});
      delivered_tally_.add(win);
    }
    if (coll != 0) {
      if (model_ == CollisionModel::kDetection) {
        out.collisions.push_back({v, coll});
      }
      collided_tally_.add(coll);
    }
    return win;
  };

  if (gather) {
    // Gather fuses the output scan — and, on the fused recovery paths,
    // sender recovery itself — into the traversal; those phases report 0
    // and their cost counts toward traverse_ns.
    auto gather_pass = [&]<Recover kRecover>() {
      [[maybe_unused]] std::array<std::uint64_t, 34> idacc;
      for (graph::NodeId v = 0; v < n; ++v) {
        std::uint64_t one = 0;
        std::uint64_t two = 0;
        if constexpr (kRecover == Recover::kIdsFused) {
          std::fill_n(idacc.data(), idbits_, 0);
          for (const graph::NodeId u : graph_->neighbors(v)) {
            const std::uint64_t m = tx_mask[u] & lane_mask;
            if (m == 0) continue;
            two |= one & m;
            one |= m;
            simd::xor_id_accumulate(idacc.data(), u, m, idbits_);
          }
        } else {
          const auto row = graph_->neighbors(v);
          simd::gather_row(row.data(), row.size(), tx_mask.data(), lane_mask,
                           one, two);
        }
        if (one == 0) continue;
        const std::uint64_t win = emit(v, one, two);
        if (win == 0) continue;
        if constexpr (kRecover == Recover::kIdsFused) {
          // Extraction straight from the register accumulators — the id
          // words never touch the planes array on this path.
          extract_ids(v, win, idacc.data(), sink);
        } else if constexpr (kRecover == Recover::kScanFused) {
          // Hot re-walk: the row and its transmit-mask words were read
          // one loop iteration ago, so this is L1 traffic, and it only
          // happens for winning listeners.
          std::uint64_t left = win;
          for (const graph::NodeId u : graph_->neighbors(v)) {
            const std::uint64_t hit = left & tx_mask[u];
            if (hit == 0) continue;
            left &= ~hit;
            sink(v, u, hit);
            if (left == 0) break;
          }
        }
      }
    };
    switch (recover) {
      case Recover::kIdsFused:
        gather_pass.template operator()<Recover::kIdsFused>();
        break;
      case Recover::kScanFused:
        gather_pass.template operator()<Recover::kScanFused>();
        break;
      default:
        gather_pass.template operator()<Recover::kNone>();
        break;
    }
    timers_.traverse_ns += now_ns() - t0;
  } else {
    // Scatter: bitwise saturating add into the per-listener blocks. Planes
    // are all-zero between rounds, so "one == 0" doubles as the untouched
    // test; the dense path drops even that branch — its output scan walks
    // every listener anyway. Fused recovery does not apply here (plane
    // state only settles once every transmitter's row has been applied).
    if (dense) {
      if (use_ids) {
        scatter_accumulate<true, true>(tx_mask, lane_mask);
      } else {
        scatter_accumulate<false, true>(tx_mask, lane_mask);
      }
    } else {
      touched_.clear();
      if (use_ids) {
        scatter_accumulate<true, false>(tx_mask, lane_mask);
      } else {
        scatter_accumulate<false, false>(tx_mask, lane_mask);
      }
    }
    const std::uint64_t t1 = now_ns();
    timers_.traverse_ns += t1 - t0;

    // Output scan: a lane delivers iff exactly one neighbour transmitted
    // and the listener was silent — pure bitplane arithmetic. Re-zeroing
    // (the next round's invariant) is fused into the same sweep; winning
    // listeners' id words are left live for the recovery pass, which
    // consumes and clears them.
    auto output_block = [&](const graph::NodeId v) {
      std::uint64_t* const blk =
          planes_.data() + static_cast<std::size_t>(v) * stride_;
      const std::uint64_t win = emit(v, blk[0], blk[1]);
      blk[0] = 0;
      blk[1] = 0;
      if (use_ids && win == 0) std::fill_n(blk + 2, idbits_, 0);
    };
    if (dense) {
      for (graph::NodeId v = 0; v < n; ++v) {
        if (planes_[static_cast<std::size_t>(v) * stride_] != 0) {
          output_block(v);
        }
      }
    } else {
      for (const graph::NodeId v : touched_) output_block(v);
    }
    timers_.output_ns += now_ns() - t1;
  }

  out.active_listeners = active;
  timers_.active_listeners += active;
  delivered_tally_.extract(out.delivered_count, lanes);
  collided_tally_.extract(out.collided_count, lanes);
  const std::uint64_t t2 = now_ns();

  // Deferred recovery passes (the fused ones already ran inside gather).
  if (recover == Recover::kIdsDeferred) {
    idplane_recover(out, sink);
  } else if (recover == Recover::kScanDeferred) {
    rowscan_recover(tx_mask, out, sink);
  }

  if (recover != Recover::kNone) {
    if (use_ids) {
      ++timers_.idplane_rounds;
    } else {
      ++timers_.rowscan_rounds;
    }
    if (recovery_ == RecoveryStrategy::kAuto) {
      // Feed kAuto's scatter predictor with what a row scan of this
      // round's delivered listeners would have walked.
      std::uint64_t scan = 0;
      for (const auto& dm : out.delivered) scan += graph_->degree(dm.node);
      scan_cost_estimate_ = scan;
    }
    timers_.recover_ns += now_ns() - t2;
  }
  static obs::Histogram& round_hist =
      obs::Metrics::global().histogram("radio.bitslice.round_ns");
  round_hist.record(now_ns() - t0);
  ++timers_.rounds;
}

void BitsliceMedium::run_batch(std::span<const std::uint64_t> tx_mask,
                               PayloadPlanes payload, int lanes,
                               BatchOutcome& out, FoldMode mode,
                               KnowledgePlanes best) {
  const graph::NodeId n = graph_->node_count();
  if (tx_mask.size() != n || payload.plane_size() != n) {
    throw std::invalid_argument("BitsliceMedium: size mismatch");
  }
  if (lanes < 1 || lanes > kMaxLanes || lanes > payload.lane_capacity()) {
    throw std::invalid_argument("BitsliceMedium: lanes out of range");
  }
  const std::uint64_t lane_mask = radio::lane_mask(lanes);
  out.clear();
  tx_tally_.reset();
  delivered_tally_.reset();
  collided_tally_.reset();

  const std::uint64_t t0 = now_ns();
  // Prologue: transmitter list, per-lane tallies, and the traversal-volume
  // estimate that picks the scatter/gather shape and the recovery path.
  // For a lane-invariant max-fold it also checks whether every transmitter
  // carries one payload value — a fixed-value relay (flood) folds with no
  // sender identification at all.
  txlist_.clear();
  std::uint64_t work = 0;
  bool const_plane = mode == FoldMode::kMaxFold && payload.lane_invariant() &&
                     recovery_ == RecoveryStrategy::kAuto;
  Payload const_value = kNoPayload;
  bool const_seen = false;
  for (graph::NodeId u = 0; u < n; ++u) {
    const std::uint64_t m = tx_mask[u] & lane_mask;
    if (m == 0) continue;
    tx_tally_.add(m);
    txlist_.push_back(u);
    work += graph_->degree(u);
    if (const_plane) {
      const Payload p = payload.at(0, u);
      if (!const_seen) {
        const_value = p;
        const_seen = true;
      } else if (p != const_value) {
        const_plane = false;
      }
    }
  }
  tx_tally_.extract(out.transmitter_count, lanes);
  timers_.traverse_ns += now_ns() - t0;

  const bool gather = work >= graph_->edge_count();
  const Recover recover = mode == FoldMode::kMasksOnly ? Recover::kNone
                          : const_plane              ? Recover::kConstFold
                                                     : choose_recovery(
                                                           work, gather);

  if (recover == Recover::kConstFold) {
    run_core(tx_mask, lane_mask, lanes, work, out, Recover::kNone,
             [](graph::NodeId, graph::NodeId, std::uint64_t) {});
    const std::uint64_t tr = now_ns();
    const std::size_t bls = best.lane_stride();
    std::uint64_t scan = 0;
    for (const auto& dm : out.delivered) {
      Payload* const brow = best.row(dm.node);
      std::uint64_t hit = dm.lanes;
      do {
        const int lane = std::countr_zero(hit);
        Payload& b = brow[static_cast<std::size_t>(lane) * bls];
        if (b == kNoPayload || const_value > b) b = const_value;
        hit &= hit - 1;
      } while (hit != 0);
      scan += graph_->degree(dm.node);
    }
    scan_cost_estimate_ = scan;
    ++timers_.constfold_rounds;
    timers_.recover_ns += now_ns() - tr;
    return;
  }

  // Sinks take one (listener, sender, lane mask) group per call; for
  // lane-invariant payload planes the sender's payload is read once per
  // group instead of once per delivered lane.
  const bool invariant = payload.lane_invariant();
  if (mode == FoldMode::kSenders) {
    run_core(tx_mask, lane_mask, lanes, work, out, recover,
             [&](const graph::NodeId v, const graph::NodeId u,
                 std::uint64_t hit) {
               if (invariant) {
                 const Payload p = payload.at(0, u);
                 do {
                   const int lane = std::countr_zero(hit);
                   out.deliveries.push_back(
                       {v, static_cast<std::uint8_t>(lane), u, p});
                   hit &= hit - 1;
                 } while (hit != 0);
               } else {
                 do {
                   const int lane = std::countr_zero(hit);
                   out.deliveries.push_back({v,
                                             static_cast<std::uint8_t>(lane),
                                             u, payload.at(lane, u)});
                   hit &= hit - 1;
                 } while (hit != 0);
               }
             });
  } else if (mode == FoldMode::kMaxFold) {
    const std::size_t bls = best.lane_stride();
    const std::size_t pls = payload.lane_stride();
    run_core(tx_mask, lane_mask, lanes, work, out, recover,
             [&](const graph::NodeId v, const graph::NodeId u,
                 std::uint64_t hit) {
               Payload* const brow = best.row(v);
               if (invariant) {
                 const Payload p = payload.at(0, u);
                 do {
                   const int lane = std::countr_zero(hit);
                   Payload& b = brow[static_cast<std::size_t>(lane) * bls];
                   if (b == kNoPayload || p > b) b = p;
                   hit &= hit - 1;
                 } while (hit != 0);
               } else {
                 const Payload* const prow = payload.row(u);
                 do {
                   const int lane = std::countr_zero(hit);
                   Payload& b = brow[static_cast<std::size_t>(lane) * bls];
                   const Payload p = prow[static_cast<std::size_t>(lane) * pls];
                   if (b == kNoPayload || p > b) b = p;
                   hit &= hit - 1;
                 } while (hit != 0);
               }
             });
  } else {
    run_core(tx_mask, lane_mask, lanes, work, out, recover,
             [](graph::NodeId, graph::NodeId, std::uint64_t) {});
  }
}

void BitsliceMedium::resolve_batch(std::span<const std::uint64_t> tx_mask,
                                   PayloadPlanes payload, int lanes,
                                   BatchOutcome& out, bool with_senders) {
  run_batch(tx_mask, payload, lanes, out,
            with_senders ? FoldMode::kSenders : FoldMode::kMasksOnly,
            KnowledgePlanes(std::span<Payload>{}));
}

void BitsliceMedium::resolve_batch_max(std::span<const std::uint64_t> tx_mask,
                                       PayloadPlanes payload, int lanes,
                                       KnowledgePlanes best,
                                       BatchOutcome& out) {
  const graph::NodeId n = graph_->node_count();
  if (best.plane_size() < n || lanes > best.lane_capacity()) {
    throw std::invalid_argument(
        "BitsliceMedium::resolve_batch_max: best too small");
  }
  run_batch(tx_mask, payload, lanes, out, FoldMode::kMaxFold, best);
}

void BitsliceMedium::resolve(std::span<const graph::NodeId> transmitters,
                             std::span<const Payload> tx_payload,
                             SparseOutcome& out) {
  if (transmitters.size() != tx_payload.size()) {
    throw std::invalid_argument("BitsliceMedium::resolve: size mismatch");
  }
  // Materialise a one-lane mask; cleared sparsely afterwards so repeated
  // rounds stay proportional to the transmitter set.
  for (std::size_t i = 0; i < transmitters.size(); ++i) {
    const graph::NodeId u = transmitters[i];
    if (mask1_[u] != 0) continue;  // duplicate: first payload wins
    mask1_[u] = 1;
    payload1_[u] = tx_payload[i];
  }
  resolve_batch(mask1_, payload1_, 1, batch_out_);
  for (const graph::NodeId u : transmitters) {
    // Clear the payload alongside the mask: a stale payload1_ entry must
    // never survive into a later round's plane view (pinned by the
    // repeated-round duplicate-transmitter regression test).
    mask1_[u] = 0;
    payload1_[u] = kNoPayload;
  }

  out.deliveries.clear();
  out.collided_nodes.clear();
  out.transmitter_count = batch_out_.transmitter_count[0];
  out.collided_count = batch_out_.collided_count[0];
  out.active_listeners = batch_out_.active_listeners;
  for (const auto& d : batch_out_.deliveries) {
    out.deliveries.push_back({d.node, d.from, d.payload});
  }
  for (const auto& c : batch_out_.collisions) {
    out.collided_nodes.push_back(c.node);
  }
}

}  // namespace radiocast::radio
