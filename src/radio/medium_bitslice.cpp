#include "radio/medium_bitslice.hpp"

#include <bit>
#include <stdexcept>

namespace radiocast::radio {

BitsliceMedium::BitsliceMedium(const graph::Graph& g, CollisionModel model)
    : Medium(g, model) {
  const auto n = g.node_count();
  planes_.assign(n, Planes{});
  touched_.reserve(n);
  mask1_.assign(n, 0);
  payload1_.assign(n, kNoPayload);
}

void BitsliceMedium::resolve_batch(std::span<const std::uint64_t> tx_mask,
                                   PayloadPlanes payload, int lanes,
                                   BatchOutcome& out, bool with_senders) {
  const graph::NodeId n = graph_->node_count();
  if (tx_mask.size() != n || payload.plane_size() != n) {
    throw std::invalid_argument("BitsliceMedium::resolve_batch: size mismatch");
  }
  if (lanes < 1 || lanes > kMaxLanes || lanes > payload.lane_capacity()) {
    throw std::invalid_argument(
        "BitsliceMedium::resolve_batch: lanes out of range");
  }
  const std::uint64_t lane_mask = radio::lane_mask(lanes);
  out.clear();
  tx_tally_.reset();
  delivered_tally_.reset();
  collided_tally_.reset();

  // Prologue: per-lane transmitter tallies plus the traversal-volume
  // estimate that picks the dense or frontier output path below.
  std::uint64_t work = 0;
  for (graph::NodeId u = 0; u < n; ++u) {
    const std::uint64_t m = tx_mask[u] & lane_mask;
    if (m == 0) continue;
    tx_tally_.add(m);
    work += graph_->degree(u);
  }
  tx_tally_.extract(out.transmitter_count, lanes);
  const bool dense = 2 * work >= n;
  // When transmitters cover at least half of all adjacency, flip the
  // traversal to a listener-centric gather: both planes accumulate in
  // registers, so the planes array (and its output scan and re-zeroing)
  // is bypassed entirely.
  const bool gather = work >= graph_->edge_count();

  auto emit_masks = [&](const graph::NodeId v, const std::uint64_t one,
                        const std::uint64_t two) {
    const std::uint64_t not_tx = ~tx_mask[v];
    const std::uint64_t win = one & ~two & not_tx;
    const std::uint64_t coll = two & not_tx & lane_mask;
    if (win != 0) {
      out.delivered.push_back({v, win});
      delivered_tally_.add(win);
    }
    if (coll != 0) {
      if (model_ == CollisionModel::kDetection) {
        out.collisions.push_back({v, coll});
      }
      collided_tally_.add(coll);
    }
  };

  if (gather) {
    for (graph::NodeId v = 0; v < n; ++v) {
      std::uint64_t one = 0;
      std::uint64_t two = 0;
      for (const graph::NodeId u : graph_->neighbors(v)) {
        const std::uint64_t m = tx_mask[u] & lane_mask;
        two |= one & m;
        one |= m;
      }
      if (one != 0) emit_masks(v, one, two);
    }
    delivered_tally_.extract(out.delivered_count, lanes);
    collided_tally_.extract(out.collided_count, lanes);
    if (with_senders) recover_senders(tx_mask, payload, out);
    return;
  }

  // Traversal: bitwise saturating add into the >=1 / >=2 planes. Planes
  // are all-zero between rounds, so "one == 0" doubles as the untouched
  // test; on the dense path even that branch is dropped — the output scan
  // below walks every listener anyway.
  if (dense) {
    for (graph::NodeId u = 0; u < n; ++u) {
      const std::uint64_t m = tx_mask[u] & lane_mask;
      if (m == 0) continue;
      for (const graph::NodeId v : graph_->neighbors(u)) {
        Planes& p = planes_[v];
        p.two |= p.one & m;
        p.one |= m;
      }
    }
  } else {
    touched_.clear();
    for (graph::NodeId u = 0; u < n; ++u) {
      const std::uint64_t m = tx_mask[u] & lane_mask;
      if (m == 0) continue;
      for (const graph::NodeId v : graph_->neighbors(u)) {
        Planes& p = planes_[v];
        if (p.one == 0) touched_.push_back(v);
        p.two |= p.one & m;
        p.one |= m;
      }
    }
  }

  // Output: a lane delivers iff exactly one neighbour transmitted and the
  // listener was silent — pure bitplane arithmetic, one delivered-mask
  // push per winning listener no matter how many lanes it won. The plane
  // re-zeroing (the next round's invariant) is fused into the same sweep:
  // a dense sequential pass, or the touched list alone when sparse.
  if (dense) {
    for (graph::NodeId v = 0; v < n; ++v) {
      Planes& p = planes_[v];
      if (p.one == 0) continue;
      emit_masks(v, p.one, p.two);
      p = Planes{};
    }
  } else {
    for (const graph::NodeId v : touched_) {
      Planes& p = planes_[v];
      emit_masks(v, p.one, p.two);
      p = Planes{};
    }
  }
  delivered_tally_.extract(out.delivered_count, lanes);
  collided_tally_.extract(out.collided_count, lanes);
  if (with_senders) recover_senders(tx_mask, payload, out);
}

// Sender recovery on demand: scan each winning listener's row, clearing
// won lanes as their unique senders are found, so every row is visited at
// most once and only for listeners that actually won a lane. The payload
// lookup is per (lane, sender) — with per-lane planes a sender hitting
// several lanes delivers each lane's own value.
void BitsliceMedium::recover_senders(std::span<const std::uint64_t> tx_mask,
                                     PayloadPlanes payload,
                                     BatchOutcome& out) const {
  for (const auto& dm : out.delivered) {
    std::uint64_t win = dm.lanes;
    for (const graph::NodeId u : graph_->neighbors(dm.node)) {
      std::uint64_t hit = win & tx_mask[u];
      if (hit == 0) continue;
      win &= ~hit;
      do {
        const int lane = std::countr_zero(hit);
        out.deliveries.push_back({dm.node, static_cast<std::uint8_t>(lane), u,
                                  payload.at(lane, u)});
        hit &= hit - 1;
      } while (hit != 0);
      if (win == 0) break;
    }
  }
}

void BitsliceMedium::resolve_batch_max(std::span<const std::uint64_t> tx_mask,
                                       PayloadPlanes payload, int lanes,
                                       std::span<Payload> best,
                                       BatchOutcome& out) {
  const graph::NodeId n = graph_->node_count();
  if (best.size() < static_cast<std::size_t>(lanes) * n) {
    throw std::invalid_argument(
        "BitsliceMedium::resolve_batch_max: best too small");
  }
  resolve_batch(tx_mask, payload, lanes, out, /*with_senders=*/false);
  // Same row walk as recover_senders, but each found (lane, sender) pair
  // folds directly into the lane's plane instead of growing a record list.
  for (const auto& dm : out.delivered) {
    std::uint64_t win = dm.lanes;
    for (const graph::NodeId u : graph_->neighbors(dm.node)) {
      std::uint64_t hit = win & tx_mask[u];
      if (hit == 0) continue;
      win &= ~hit;
      do {
        const int lane = std::countr_zero(hit);
        Payload& b = best[static_cast<std::size_t>(lane) * n + dm.node];
        const Payload p = payload.at(lane, u);
        if (b == kNoPayload || p > b) b = p;
        hit &= hit - 1;
      } while (hit != 0);
      if (win == 0) break;
    }
  }
}

void BitsliceMedium::resolve(std::span<const graph::NodeId> transmitters,
                             std::span<const Payload> tx_payload,
                             SparseOutcome& out) {
  if (transmitters.size() != tx_payload.size()) {
    throw std::invalid_argument("BitsliceMedium::resolve: size mismatch");
  }
  // Materialise a one-lane mask; cleared sparsely afterwards so repeated
  // rounds stay proportional to the transmitter set.
  for (std::size_t i = 0; i < transmitters.size(); ++i) {
    const graph::NodeId u = transmitters[i];
    if (mask1_[u] != 0) continue;  // duplicate: first payload wins
    mask1_[u] = 1;
    payload1_[u] = tx_payload[i];
  }
  resolve_batch(mask1_, payload1_, 1, batch_out_);
  for (const graph::NodeId u : transmitters) mask1_[u] = 0;

  out.deliveries.clear();
  out.collided_nodes.clear();
  out.transmitter_count = batch_out_.transmitter_count[0];
  out.collided_count = batch_out_.collided_count[0];
  for (const auto& d : batch_out_.deliveries) {
    out.deliveries.push_back({d.node, d.from, d.payload});
  }
  for (const auto& c : batch_out_.collisions) {
    out.collided_nodes.push_back(c.node);
  }
}

}  // namespace radiocast::radio
