#include "radio/medium.hpp"

#include <chrono>
#include <stdexcept>
#include <string>

#include "radio/medium_bitslice.hpp"
#include "radio/medium_frontier.hpp"
#include "radio/medium_scalar.hpp"
#include "radio/medium_sharded.hpp"

namespace radiocast::radio {

namespace {

/// Shared "name <-> enum" plumbing for the flag-valued enums; the error
/// message lists the legal values so a typo'd flag fails usefully.
template <class Enum, std::size_t N>
Enum parse_named(std::string_view name, const char* what,
                 const std::array<std::string_view, N>& names) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (name == names[i]) return static_cast<Enum>(i);
  }
  std::string msg = "unknown ";
  msg += what;
  msg += " '" + std::string(name) + "' (expected";
  const char* sep = " ";
  for (const std::string_view n : names) {
    msg += sep;
    msg += n;
    sep = " | ";
  }
  msg += ")";
  throw std::invalid_argument(msg);
}

}  // namespace

std::string_view to_string(MediumKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < kMediumNames.size() ? kMediumNames[i] : "?";
}

MediumKind parse_medium_kind(std::string_view name) {
  return parse_named<MediumKind>(name, "medium", kMediumNames);
}

std::string_view to_string(RecoveryStrategy strategy) {
  const auto i = static_cast<std::size_t>(strategy);
  return i < kRecoveryNames.size() ? kRecoveryNames[i] : "?";
}

RecoveryStrategy parse_recovery_strategy(std::string_view name) {
  return parse_named<RecoveryStrategy>(name, "recovery strategy",
                                       kRecoveryNames);
}

std::uint64_t Medium::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void BatchOutcome::clear() {
  delivered.clear();
  deliveries.clear();
  collisions.clear();
  transmitter_count.fill(0);
  delivered_count.fill(0);
  collided_count.fill(0);
  active_listeners = 0;
}

void Medium::resolve_batch(std::span<const std::uint64_t> tx_mask,
                           PayloadPlanes payload, int lanes,
                           BatchOutcome& out, bool with_senders) {
  const graph::NodeId n = graph_->node_count();
  if (tx_mask.size() != n || payload.plane_size() != n) {
    throw std::invalid_argument("Medium::resolve_batch: size mismatch");
  }
  if (lanes < 1 || lanes > kMaxLanes || lanes > payload.lane_capacity()) {
    throw std::invalid_argument("Medium::resolve_batch: lanes out of range");
  }
  out.clear();
  if (agg_mask_.size() != n) {
    agg_mask_.assign(n, 0);
    agg_stamp_.assign(n, 0);
  }
  ++agg_epoch_;
  agg_touched_.clear();
  for (int l = 0; l < lanes; ++l) {
    lane_tx_.clear();
    lane_payload_.clear();
    const std::uint64_t bit = std::uint64_t{1} << l;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (tx_mask[v] & bit) {
        lane_tx_.push_back(v);
        lane_payload_.push_back(payload.at(l, v));
      }
    }
    resolve(lane_tx_, lane_payload_, lane_out_);
    out.transmitter_count[l] = lane_out_.transmitter_count;
    out.collided_count[l] = lane_out_.collided_count;
    out.delivered_count[l] =
        static_cast<std::uint32_t>(lane_out_.deliveries.size());
    for (const auto& d : lane_out_.deliveries) {
      if (agg_stamp_[d.node] != agg_epoch_) {
        agg_stamp_[d.node] = agg_epoch_;
        agg_mask_[d.node] = 0;
        agg_touched_.push_back(d.node);
      }
      agg_mask_[d.node] |= bit;
      if (with_senders) {
        out.deliveries.push_back(
            {d.node, static_cast<std::uint8_t>(l), d.from, d.payload});
      }
    }
    for (const graph::NodeId v : lane_out_.collided_nodes) {
      out.collisions.push_back({v, bit});
    }
  }
  for (const graph::NodeId v : agg_touched_) {
    out.delivered.push_back({v, agg_mask_[v]});
  }
}

void Medium::resolve_batch_max(std::span<const std::uint64_t> tx_mask,
                               PayloadPlanes payload, int lanes,
                               KnowledgePlanes best, BatchOutcome& out) {
  const graph::NodeId n = graph_->node_count();
  if (best.plane_size() < n || lanes > best.lane_capacity()) {
    throw std::invalid_argument("Medium::resolve_batch_max: best too small");
  }
  resolve_batch(tx_mask, payload, lanes, out, /*with_senders=*/true);
  for (const auto& d : out.deliveries) {
    Payload& b = best.at(d.lane, d.node);
    if (b == kNoPayload || d.payload > b) b = d.payload;
  }
  out.deliveries.clear();  // match the backends that never build them
}

void Medium::resolve_batch_active(std::span<const ActiveTx> tx,
                                  PayloadPlanes payload, int lanes,
                                  BatchOutcome& out, bool with_senders) {
  const graph::NodeId n = graph_->node_count();
  if (active_dense_.size() != n) active_dense_.assign(n, 0);
  for (const ActiveTx& e : tx) {
    if (e.node >= n) {
      // Un-dirty what this call already wrote before reporting the bad
      // entry — the scratch must stay all-zero for the next round.
      for (const ActiveTx& seen : tx) {
        if (&seen == &e) break;
        active_dense_[seen.node] = 0;
      }
      throw std::invalid_argument(
          "Medium::resolve_batch_active: transmitter out of range");
    }
    active_dense_[e.node] |= e.lanes;
  }
  try {
    resolve_batch(active_dense_, payload, lanes, out, with_senders);
  } catch (...) {
    for (const ActiveTx& e : tx) active_dense_[e.node] = 0;
    throw;
  }
  for (const ActiveTx& e : tx) active_dense_[e.node] = 0;
}

void Medium::resolve_batch_max_active(std::span<const ActiveTx> tx,
                                      PayloadPlanes payload, int lanes,
                                      KnowledgePlanes best,
                                      BatchOutcome& out) {
  const graph::NodeId n = graph_->node_count();
  if (best.plane_size() < n || lanes > best.lane_capacity()) {
    throw std::invalid_argument(
        "Medium::resolve_batch_max_active: best too small");
  }
  if (active_dense_.size() != n) active_dense_.assign(n, 0);
  for (const ActiveTx& e : tx) {
    if (e.node >= n) {
      for (const ActiveTx& seen : tx) {
        if (&seen == &e) break;
        active_dense_[seen.node] = 0;
      }
      throw std::invalid_argument(
          "Medium::resolve_batch_max_active: transmitter out of range");
    }
    active_dense_[e.node] |= e.lanes;
  }
  try {
    resolve_batch_max(active_dense_, payload, lanes, best, out);
  } catch (...) {
    for (const ActiveTx& e : tx) active_dense_[e.node] = 0;
    throw;
  }
  for (const ActiveTx& e : tx) active_dense_[e.node] = 0;
}

std::unique_ptr<Medium> make_medium(MediumKind kind, const graph::Graph& g,
                                    CollisionModel model, int threads,
                                    RecoveryStrategy recovery) {
  std::unique_ptr<Medium> medium;
  switch (kind) {
    case MediumKind::kScalar:
      medium = std::make_unique<ScalarMedium>(g, model);
      break;
    case MediumKind::kBitslice:
      medium = std::make_unique<BitsliceMedium>(g, model);
      break;
    case MediumKind::kSharded:
      medium = std::make_unique<ShardedMedium>(g, model, threads);
      break;
    case MediumKind::kFrontier:
      medium = std::make_unique<FrontierMedium>(g, model);
      break;
  }
  if (medium == nullptr) throw std::invalid_argument("make_medium: bad kind");
  medium->set_recovery_strategy(recovery);
  return medium;
}

}  // namespace radiocast::radio
