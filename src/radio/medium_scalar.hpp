// Scalar reference backend: the epoch-stamped collision kernel that every
// other backend is differentially tested against.
//
// resolve() adaptively dispatches between two equivalent paths on the
// estimated traversal volume (sum of transmitter degrees):
//   frontier — transmitter-centric scatter with epoch-stamped scratch;
//              touches only the listeners adjacent to a transmitter, so a
//              sparse round costs O(sum of transmitter degrees)
//   dense    — full-array counting plus a second emission traversal; no
//              per-listener stamp branches, sequential output scan, wins
//              when most of the graph is active anyway
// Both paths emit deliveries in identical first-touch order, so seeded
// protocol trajectories do not depend on which path was taken.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "radio/medium.hpp"

namespace radiocast::radio {

class ScalarMedium final : public Medium {
 public:
  ScalarMedium(const graph::Graph& g, CollisionModel model);

  std::string_view name() const override { return "scalar"; }

  void resolve(std::span<const graph::NodeId> transmitters,
               std::span<const Payload> tx_payload,
               SparseOutcome& out) override;

 private:
  void resolve_frontier(SparseOutcome& out);
  void resolve_dense(SparseOutcome& out);

  // Deduplicated transmitter list for the current round, plus the payload
  // each transmitter sends (indexed by node, valid iff tx_stamp_ == epoch_).
  std::vector<graph::NodeId> txlist_;
  std::vector<Payload> payload_of_;
  std::vector<std::uint64_t> tx_stamp_;

  // Frontier-path scratch: listener counts valid iff stamp_ == epoch_.
  std::vector<std::uint32_t> tx_count_;
  std::vector<Payload> pending_payload_;
  std::vector<graph::NodeId> tx_from_;
  std::vector<std::uint64_t> stamp_;
  std::vector<graph::NodeId> touched_;

  // Dense-path scratch: plain counters, cleared every dense round.
  std::vector<std::uint32_t> dense_count_;

  std::uint64_t epoch_ = 0;
  // Set by each path at its accumulate/emit boundary so resolve() can
  // split the phase timers without timing inside the hot loops.
  std::uint64_t output_start_ns_ = 0;
};

}  // namespace radiocast::radio
