// Carry-save per-lane tallies shared by the batch backends (bitslice,
// frontier): plane j holds bit j of every lane's count, so adding a
// 64-lane mask is a carry-save ripple (amortized ~2 word ops) instead of
// one loop iteration per set bit.
#pragma once

#include <array>
#include <cstdint>

#include "radio/medium.hpp"

namespace radiocast::radio {

struct LaneCounter {
  std::array<std::uint64_t, 32> plane{};
  std::size_t used = 0;  // planes [0, used) may be nonzero

  void add(std::uint64_t mask) {
    for (std::size_t j = 0; mask != 0; ++j) {
      if (j == used) {  // counts fit: used <= ceil(log2(adds)) <= 32
        plane[used++] = mask;
        return;
      }
      const std::uint64_t carry = plane[j] & mask;
      plane[j] ^= mask;
      mask = carry;
    }
  }
  void extract(std::array<std::uint32_t, kMaxLanes>& out, int lanes) const {
    for (std::size_t j = 0; j < used; ++j) {
      const std::uint64_t w = plane[j];
      if (w == 0) continue;
      for (int l = 0; l < lanes; ++l) {
        out[l] |= static_cast<std::uint32_t>(w >> l & 1) << j;
      }
    }
  }
  void reset() {
    for (std::size_t j = 0; j < used; ++j) plane[j] = 0;
    used = 0;
  }
};

}  // namespace radiocast::radio
