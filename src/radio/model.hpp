// Core model types for the synchronous radio network (Section 1.1 of
// Czumaj-Davies). Nodes act in discrete rounds; per round each node either
// transmits a message to all neighbours or listens. Without collision
// detection, a listener receives iff exactly one neighbour transmits and
// cannot distinguish silence from collision.
#pragma once

#include <cstdint>
#include <limits>

namespace radiocast::radio {

/// Message payload. The algorithms only compare and forward values, so a
/// 64-bit integer suffices (consistent with the paper's note that
/// O(log n)-bit messages are enough).
using Payload = std::uint64_t;

/// Sentinel for "no payload".
constexpr Payload kNoPayload = std::numeric_limits<Payload>::max();

/// Round counter.
using Round = std::uint64_t;

/// What a node does in one round.
struct Action {
  bool transmit = false;
  Payload payload = kNoPayload;

  static Action listen() { return {}; }
  static Action send(Payload p) { return {true, p}; }
};

/// What a listening node perceives in one round.
enum class Reception : std::uint8_t {
  /// Zero neighbours transmitted — or, in the no-collision-detection model,
  /// possibly more than one (indistinguishable).
  kSilence = 0,
  /// Exactly one neighbour transmitted; the message was received.
  kMessage = 1,
  /// >= 2 neighbours transmitted. Only ever reported in the
  /// collision-detection model variant; the default model maps this to
  /// kSilence before the protocol sees it.
  kCollision = 2,
};

/// Which interference model the network reports to protocols.
enum class CollisionModel : std::uint8_t {
  /// Classical model of the paper: no collision detection.
  kNoDetection,
  /// Contrast model (Ghaffari et al. [11]): collisions distinguishable.
  kDetection,
};

}  // namespace radiocast::radio
