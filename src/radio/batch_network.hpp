// Batched radio medium: one graph, up to 64 independent Monte-Carlo
// replication lanes resolved per round.
//
// BatchNetwork is the lane-parallel sibling of Network: sim::Runner's
// replicate_batched() groups a scenario's replications into lane batches
// and drives one BatchNetwork per batch, so 64 seeds share each CSR
// traversal (with the default bitslice backend) instead of re-walking the
// adjacency per seed.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>

#include "graph/graph.hpp"
#include "radio/lane_executor.hpp"
#include "radio/medium.hpp"
#include "radio/model.hpp"

namespace radiocast::radio {

class BatchNetwork : public LaneExecutor {
 public:
  explicit BatchNetwork(
      const graph::Graph& g, int lanes = kMaxLanes,
      CollisionModel model = CollisionModel::kNoDetection,
      MediumKind medium = MediumKind::kBitslice,
      RecoveryStrategy recovery = RecoveryStrategy::kAuto);
  /// The network aliases the graph; binding a temporary would dangle.
  explicit BatchNetwork(
      graph::Graph&& g, int lanes = kMaxLanes,
      CollisionModel model = CollisionModel::kNoDetection,
      MediumKind medium = MediumKind::kBitslice,
      RecoveryStrategy recovery = RecoveryStrategy::kAuto) = delete;

  const graph::Graph& topology() const override { return *graph_; }
  CollisionModel collision_model() const override { return model_; }
  graph::NodeId node_count() const { return graph_->node_count(); }
  int lanes() const override { return lanes_; }
  MediumKind medium_kind() const { return kind_; }
  /// The sender-recovery knob the medium was constructed with; see
  /// RecoveryStrategy (only the bitslice backend honours it).
  RecoveryStrategy recovery_strategy() const {
    return medium_->recovery_strategy();
  }
  Medium& medium() override { return *medium_; }

  /// Resolves one round in all lanes: bit l of tx_mask[v] says whether v
  /// transmits in lane l; `payload` is what each node sends — one shared
  /// plane or per-lane lane-major planes (see PayloadPlanes).
  /// `with_senders` opts into per-delivery sender/payload detail; the
  /// aggregate delivered masks and counters come either way.
  void step(std::span<const std::uint64_t> tx_mask, PayloadPlanes payload,
            BatchOutcome& out, bool with_senders = true);

  /// LaneExecutor entry point; identical to step().
  void step_lanes(std::span<const std::uint64_t> tx_mask,
                  PayloadPlanes payload, BatchOutcome& out,
                  bool with_senders = true) override {
    step(tx_mask, payload, out, with_senders);
  }

  /// Fold variant (see LaneExecutor): one Medium::resolve_batch_max call,
  /// counters advance like step().
  void step_lanes_max(std::span<const std::uint64_t> tx_mask,
                      PayloadPlanes payload, KnowledgePlanes best,
                      BatchOutcome& out) override;

  /// Sparse variant (see LaneExecutor): one Medium::resolve_batch_active
  /// call — the O(active-work) path on the frontier backend.
  void step_lanes_active(std::span<const ActiveTx> tx, PayloadPlanes payload,
                         BatchOutcome& out, bool with_senders = true) override;

  /// Sparse fold variant (see LaneExecutor): one
  /// Medium::resolve_batch_max_active call.
  void step_lanes_max_active(std::span<const ActiveTx> tx,
                             PayloadPlanes payload, KnowledgePlanes best,
                             BatchOutcome& out) override;

  Round rounds_elapsed() const { return rounds_; }
  const std::array<std::uint64_t, kMaxLanes>& transmissions_by_lane() const {
    return total_tx_;
  }
  const std::array<std::uint64_t, kMaxLanes>& deliveries_by_lane() const {
    return total_delivered_;
  }
  const std::array<std::uint64_t, kMaxLanes>& collisions_by_lane() const {
    return total_collided_;
  }
  std::uint64_t total_transmissions() const;
  std::uint64_t total_deliveries() const;
  std::uint64_t total_collisions() const;
  void reset_counters();

 private:
  const graph::Graph* graph_;
  CollisionModel model_;
  MediumKind kind_;
  int lanes_;
  std::unique_ptr<Medium> medium_;
  Round rounds_ = 0;
  std::array<std::uint64_t, kMaxLanes> total_tx_{};
  std::array<std::uint64_t, kMaxLanes> total_delivered_{};
  std::array<std::uint64_t, kMaxLanes> total_collided_{};
};

}  // namespace radiocast::radio
