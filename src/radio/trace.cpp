#include "radio/trace.hpp"

#include <algorithm>
#include <sstream>

#include "radio/network.hpp"

namespace radiocast::radio {

void Trace::record(Round round, const RoundOutcome& outcome) {
  RoundStats s;
  s.round = round;
  s.transmitters = outcome.transmitter_count;
  s.deliveries = outcome.delivered_count;
  s.collisions = outcome.collided_count;
  rounds_.push_back(s);
}

std::uint64_t Trace::total_transmitters() const {
  std::uint64_t t = 0;
  for (const auto& r : rounds_) t += r.transmitters;
  return t;
}

std::uint64_t Trace::total_deliveries() const {
  std::uint64_t t = 0;
  for (const auto& r : rounds_) t += r.deliveries;
  return t;
}

std::uint64_t Trace::total_collisions() const {
  std::uint64_t t = 0;
  for (const auto& r : rounds_) t += r.collisions;
  return t;
}

std::string Trace::activity_summary(std::size_t buckets) const {
  if (rounds_.empty()) return "(no rounds)";
  buckets = std::min(buckets, rounds_.size());
  std::vector<double> avg(buckets, 0.0);
  double peak = 1.0;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t lo = b * rounds_.size() / buckets;
    const std::size_t hi = (b + 1) * rounds_.size() / buckets;
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) sum += rounds_[i].transmitters;
    avg[b] = hi > lo ? sum / static_cast<double>(hi - lo) : 0.0;
    peak = std::max(peak, avg[b]);
  }
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  std::ostringstream os;
  os << "tx activity [" << rounds_.size() << " rounds, peak "
     << static_cast<std::uint64_t>(peak) << "]: ";
  for (double a : avg) {
    const std::size_t level =
        std::min<std::size_t>(7, static_cast<std::size_t>(8.0 * a / peak));
    os << kLevels[level];
  }
  return os.str();
}

}  // namespace radiocast::radio
