#include "radio/batch_network.hpp"

#include <stdexcept>

namespace radiocast::radio {

BatchNetwork::BatchNetwork(const graph::Graph& g, int lanes,
                           CollisionModel model, MediumKind medium,
                           RecoveryStrategy recovery)
    : graph_(&g),
      model_(model),
      kind_(medium),
      lanes_(lanes),
      medium_(make_medium(medium, g, model, /*threads=*/0, recovery)) {
  if (lanes < 1 || lanes > kMaxLanes) {
    throw std::invalid_argument("BatchNetwork: lanes out of range");
  }
}

void BatchNetwork::step(std::span<const std::uint64_t> tx_mask,
                        PayloadPlanes payload, BatchOutcome& out,
                        bool with_senders) {
  medium_->resolve_batch(tx_mask, payload, lanes_, out, with_senders);
  ++rounds_;
  for (int l = 0; l < lanes_; ++l) {
    total_tx_[l] += out.transmitter_count[l];
    total_delivered_[l] += out.delivered_count[l];
    total_collided_[l] += out.collided_count[l];
  }
}

void BatchNetwork::step_lanes_max(std::span<const std::uint64_t> tx_mask,
                                  PayloadPlanes payload,
                                  KnowledgePlanes best, BatchOutcome& out) {
  medium_->resolve_batch_max(tx_mask, payload, lanes_, best, out);
  ++rounds_;
  for (int l = 0; l < lanes_; ++l) {
    total_tx_[l] += out.transmitter_count[l];
    total_delivered_[l] += out.delivered_count[l];
    total_collided_[l] += out.collided_count[l];
  }
}

void BatchNetwork::step_lanes_max_active(std::span<const ActiveTx> tx,
                                         PayloadPlanes payload,
                                         KnowledgePlanes best,
                                         BatchOutcome& out) {
  medium_->resolve_batch_max_active(tx, payload, lanes_, best, out);
  ++rounds_;
  for (int l = 0; l < lanes_; ++l) {
    total_tx_[l] += out.transmitter_count[l];
    total_delivered_[l] += out.delivered_count[l];
    total_collided_[l] += out.collided_count[l];
  }
}

void BatchNetwork::step_lanes_active(std::span<const ActiveTx> tx,
                                     PayloadPlanes payload, BatchOutcome& out,
                                     bool with_senders) {
  medium_->resolve_batch_active(tx, payload, lanes_, out, with_senders);
  ++rounds_;
  for (int l = 0; l < lanes_; ++l) {
    total_tx_[l] += out.transmitter_count[l];
    total_delivered_[l] += out.delivered_count[l];
    total_collided_[l] += out.collided_count[l];
  }
}

std::uint64_t BatchNetwork::total_transmissions() const {
  std::uint64_t sum = 0;
  for (int l = 0; l < lanes_; ++l) sum += total_tx_[l];
  return sum;
}

std::uint64_t BatchNetwork::total_deliveries() const {
  std::uint64_t sum = 0;
  for (int l = 0; l < lanes_; ++l) sum += total_delivered_[l];
  return sum;
}

std::uint64_t BatchNetwork::total_collisions() const {
  std::uint64_t sum = 0;
  for (int l = 0; l < lanes_; ++l) sum += total_collided_[l];
  return sum;
}

void BatchNetwork::reset_counters() {
  rounds_ = 0;
  total_tx_.fill(0);
  total_delivered_.fill(0);
  total_collided_.fill(0);
}

}  // namespace radiocast::radio
