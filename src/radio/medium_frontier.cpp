#include "radio/medium_frontier.hpp"

#include <bit>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace radiocast::radio {

FrontierMedium::FrontierMedium(const graph::Graph& g, CollisionModel model)
    : Medium(g, model) {
  const auto n = g.node_count();
  one_.assign(n, 0);
  two_.assign(n, 0);
  stamp_.assign(n, 0);
  tx_lanes_.assign(n, 0);
  tx_stamp_.assign(n, 0);
  payload1_.assign(n, kNoPayload);
  facade_stamp_.assign(n, 0);
}

template <class Sink>
void FrontierMedium::rowscan_senders(const BatchOutcome& out,
                                     Sink&& sink) const {
  // Same clearing row scan as the bitslice backend, except transmitter
  // membership comes from the round-stamped lane words — the whole point
  // is that no dense transmit mask exists. Winning listeners' rows are
  // visited at most once each.
  for (const auto& dm : out.delivered) {
    std::uint64_t win = dm.lanes;
    for (const graph::NodeId u : graph_->neighbors(dm.node)) {
      if (tx_stamp_[u] != round_) continue;
      const std::uint64_t hit = win & tx_lanes_[u];
      if (hit == 0) continue;
      win &= ~hit;
      sink(dm.node, u, hit);
      if (win == 0) break;
    }
  }
}

void FrontierMedium::run_active(std::span<const ActiveTx> tx,
                                PayloadPlanes payload, int lanes,
                                BatchOutcome& out, FoldMode mode,
                                KnowledgePlanes best) {
  const graph::NodeId n = graph_->node_count();
  if (payload.plane_size() != n) {
    throw std::invalid_argument("FrontierMedium: size mismatch");
  }
  if (lanes < 1 || lanes > kMaxLanes || lanes > payload.lane_capacity()) {
    throw std::invalid_argument("FrontierMedium: lanes out of range");
  }
  const std::uint64_t live = radio::lane_mask(lanes);
  out.clear();
  tx_tally_.reset();
  delivered_tally_.reset();
  collided_tally_.reset();
  ++round_;
  queue_.clear();

  // Constant-plane detection for the max-fold (the bitslice shortcut): a
  // lane-invariant plane where every transmitter carries one value folds
  // with no sender identification. Gated on kAuto so a pinned strategy
  // still exercises its path.
  bool const_plane = mode == FoldMode::kMaxFold && payload.lane_invariant() &&
                     recovery_ == RecoveryStrategy::kAuto;
  Payload const_value = kNoPayload;
  bool const_seen = false;

  // Enqueue: scatter each transmitter's lanes over its row, waking
  // first-touched listeners. Lanes a duplicate entry already covered are
  // masked off before the scatter so tallies and saturation stay exact.
  const obs::TraceSpan trace_span("frontier.round", "tx", tx.size(), "lanes",
                                  static_cast<std::uint64_t>(lanes));
  const std::uint64_t t0 = now_ns();
  for (const ActiveTx& e : tx) {
    const graph::NodeId u = e.node;
    if (u >= n) {
      throw std::invalid_argument(
          "FrontierMedium: transmitter out of range");
    }
    std::uint64_t m = e.lanes & live;
    if (m == 0) continue;
    if (tx_stamp_[u] != round_) {
      tx_stamp_[u] = round_;
      tx_lanes_[u] = 0;
      if (const_plane) {
        const Payload p = payload.at(0, u);
        if (!const_seen) {
          const_value = p;
          const_seen = true;
        } else if (p != const_value) {
          const_plane = false;
        }
      }
    }
    m &= ~tx_lanes_[u];
    if (m == 0) continue;
    tx_lanes_[u] |= m;
    tx_tally_.add(m);
    for (const graph::NodeId v : graph_->neighbors(u)) {
      if (stamp_[v] != round_) {
        stamp_[v] = round_;
        one_[v] = 0;
        two_[v] = 0;
        queue_.push_back(v);
      }
      two_[v] |= one_[v] & m;
      one_[v] |= m;
    }
  }
  const std::uint64_t t1 = now_ns();
  timers_.enqueue_ns += t1 - t0;

  // Drain: every woken listener emits once, in first-touch order. The
  // half-duplex filter reads the listener's own (stamped) transmit lanes.
  for (const graph::NodeId v : queue_) {
    const std::uint64_t not_tx =
        ~(tx_stamp_[v] == round_ ? tx_lanes_[v] : std::uint64_t{0});
    const std::uint64_t win = one_[v] & ~two_[v] & not_tx;
    const std::uint64_t coll = two_[v] & not_tx;
    if (win != 0) {
      out.delivered.push_back({v, win});
      delivered_tally_.add(win);
    }
    if (coll != 0) {
      if (model_ == CollisionModel::kDetection) {
        out.collisions.push_back({v, coll});
      }
      collided_tally_.add(coll);
    }
  }
  out.active_listeners = static_cast<std::uint32_t>(queue_.size());
  timers_.active_listeners += queue_.size();
  tx_tally_.extract(out.transmitter_count, lanes);
  delivered_tally_.extract(out.delivered_count, lanes);
  collided_tally_.extract(out.collided_count, lanes);
  timers_.drain_ns += now_ns() - t1;

  static obs::Histogram& round_hist =
      obs::Metrics::global().histogram("radio.frontier.round_ns");
  if (mode == FoldMode::kMasksOnly) {
    round_hist.record(now_ns() - t0);
    ++timers_.rounds;
    return;
  }

  const std::uint64_t t2 = now_ns();
  const std::size_t bls = best.lane_stride();
  if (mode == FoldMode::kMaxFold && const_plane) {
    for (const auto& dm : out.delivered) {
      Payload* const brow = best.row(dm.node);
      std::uint64_t hit = dm.lanes;
      do {
        const int lane = std::countr_zero(hit);
        Payload& b = brow[static_cast<std::size_t>(lane) * bls];
        if (b == kNoPayload || const_value > b) b = const_value;
        hit &= hit - 1;
      } while (hit != 0);
    }
    ++timers_.constfold_rounds;
  } else {
    // Sinks take one (listener, sender, lane mask) group per call; for
    // lane-invariant planes the sender's payload is read once per group.
    const bool invariant = payload.lane_invariant();
    if (mode == FoldMode::kSenders) {
      rowscan_senders(out, [&](const graph::NodeId v, const graph::NodeId u,
                               std::uint64_t hit) {
        if (invariant) {
          const Payload p = payload.at(0, u);
          do {
            const int lane = std::countr_zero(hit);
            out.deliveries.push_back({v, static_cast<std::uint8_t>(lane), u,
                                      p});
            hit &= hit - 1;
          } while (hit != 0);
        } else {
          do {
            const int lane = std::countr_zero(hit);
            out.deliveries.push_back(
                {v, static_cast<std::uint8_t>(lane), u, payload.at(lane, u)});
            hit &= hit - 1;
          } while (hit != 0);
        }
      });
    } else {
      const std::size_t pls = payload.lane_stride();
      rowscan_senders(out, [&](const graph::NodeId v, const graph::NodeId u,
                               std::uint64_t hit) {
        Payload* const brow = best.row(v);
        if (invariant) {
          const Payload p = payload.at(0, u);
          do {
            const int lane = std::countr_zero(hit);
            Payload& b = brow[static_cast<std::size_t>(lane) * bls];
            if (b == kNoPayload || p > b) b = p;
            hit &= hit - 1;
          } while (hit != 0);
        } else {
          const Payload* const prow = payload.row(u);
          do {
            const int lane = std::countr_zero(hit);
            Payload& b = brow[static_cast<std::size_t>(lane) * bls];
            const Payload p = prow[static_cast<std::size_t>(lane) * pls];
            if (b == kNoPayload || p > b) b = p;
            hit &= hit - 1;
          } while (hit != 0);
        }
      });
    }
    ++timers_.rowscan_rounds;
  }
  timers_.recover_ns += now_ns() - t2;
  round_hist.record(now_ns() - t0);
  ++timers_.rounds;
}

void FrontierMedium::resolve_batch_active(std::span<const ActiveTx> tx,
                                          PayloadPlanes payload, int lanes,
                                          BatchOutcome& out,
                                          bool with_senders) {
  run_active(tx, payload, lanes, out,
             with_senders ? FoldMode::kSenders : FoldMode::kMasksOnly,
             KnowledgePlanes(std::span<Payload>{}));
}

void FrontierMedium::resolve_batch_max_active(std::span<const ActiveTx> tx,
                                              PayloadPlanes payload, int lanes,
                                              KnowledgePlanes best,
                                              BatchOutcome& out) {
  if (best.plane_size() < graph_->node_count() ||
      lanes > best.lane_capacity()) {
    throw std::invalid_argument(
        "FrontierMedium::resolve_batch_max_active: best too small");
  }
  run_active(tx, payload, lanes, out, FoldMode::kMaxFold, best);
}

void FrontierMedium::resolve_batch(std::span<const std::uint64_t> tx_mask,
                                   PayloadPlanes payload, int lanes,
                                   BatchOutcome& out, bool with_senders) {
  const graph::NodeId n = graph_->node_count();
  if (tx_mask.size() != n) {
    throw std::invalid_argument("FrontierMedium: size mismatch");
  }
  if (lanes < 1 || lanes > kMaxLanes) {
    throw std::invalid_argument("FrontierMedium: lanes out of range");
  }
  const std::uint64_t live = radio::lane_mask(lanes);
  active_.clear();
  for (graph::NodeId v = 0; v < n; ++v) {
    const std::uint64_t m = tx_mask[v] & live;
    if (m != 0) active_.push_back({v, m});
  }
  resolve_batch_active(active_, payload, lanes, out, with_senders);
}

void FrontierMedium::resolve_batch_max(std::span<const std::uint64_t> tx_mask,
                                       PayloadPlanes payload, int lanes,
                                       KnowledgePlanes best,
                                       BatchOutcome& out) {
  const graph::NodeId n = graph_->node_count();
  if (tx_mask.size() != n) {
    throw std::invalid_argument("FrontierMedium: size mismatch");
  }
  if (lanes < 1 || lanes > kMaxLanes) {
    throw std::invalid_argument("FrontierMedium: lanes out of range");
  }
  const std::uint64_t live = radio::lane_mask(lanes);
  active_.clear();
  for (graph::NodeId v = 0; v < n; ++v) {
    const std::uint64_t m = tx_mask[v] & live;
    if (m != 0) active_.push_back({v, m});
  }
  resolve_batch_max_active(active_, payload, lanes, best, out);
}

void FrontierMedium::resolve(std::span<const graph::NodeId> transmitters,
                             std::span<const Payload> tx_payload,
                             SparseOutcome& out) {
  if (transmitters.size() != tx_payload.size()) {
    throw std::invalid_argument("FrontierMedium::resolve: size mismatch");
  }
  const graph::NodeId n = graph_->node_count();
  // Materialise the per-node payload plane the kernel reads from; the
  // facade stamp deduplicates (first payload wins) without an O(n) clear.
  ++facade_round_;
  active_.clear();
  for (std::size_t i = 0; i < transmitters.size(); ++i) {
    const graph::NodeId u = transmitters[i];
    if (u >= n) {
      throw std::invalid_argument(
          "FrontierMedium::resolve: transmitter out of range");
    }
    if (facade_stamp_[u] == facade_round_) continue;
    facade_stamp_[u] = facade_round_;
    payload1_[u] = tx_payload[i];
    active_.push_back({u, 1});
  }
  run_active(active_, std::span<const Payload>(payload1_), 1, batch_out_,
             FoldMode::kSenders, KnowledgePlanes(std::span<Payload>{}));

  out.deliveries.clear();
  out.collided_nodes.clear();
  out.transmitter_count = batch_out_.transmitter_count[0];
  out.collided_count = batch_out_.collided_count[0];
  out.active_listeners = batch_out_.active_listeners;
  // One lane: each winning listener has exactly one sender group, and the
  // rowscan visits delivered listeners in queue (= first-touch) order, so
  // this matches the scalar reference's delivery order byte for byte.
  for (const auto& d : batch_out_.deliveries) {
    out.deliveries.push_back({d.node, d.from, d.payload});
  }
  for (const auto& c : batch_out_.collisions) {
    out.collided_nodes.push_back(c.node);
  }
}

}  // namespace radiocast::radio
