// Event-driven frontier backend: resolves a round in O(active work) by
// propagating transmissions through a wake queue instead of scanning the
// listener space.
//
// The idiom is the constraint-solver propagator/watch-list engine: nothing
// runs unless something it watches changed. Here the "change" is a
// neighbour transmitting, so the kernel has two phases:
//
//   enqueue — for each transmitter u (deduplicated by a round stamp), walk
//             u's CSR row once; each neighbour v is woken on first touch
//             (stamped, its per-listener ">=1 tx" / ">=2 tx" lane words
//             zeroed, pushed on the queue) and its saturation words are
//             updated with the same bitwise saturating add the bitslice
//             kernel uses (two |= one & m; one |= m). The wake entry
//             carries a lane mask implicitly: one_[v] accumulates exactly
//             the lanes in which some neighbour transmits, so the round
//             composes with 64-lane batching at no extra cost.
//   drain   — pop each woken listener once, in first-touch order, and emit
//             its delivered/collided lane masks from the two words. Only
//             queue.size() == |active listeners| entries are visited.
//
// All per-node state (stamps, lane words) is allocated once and reset
// lazily via round-stamp versioning — no O(n) clear ever runs, so a tail
// round with 3 transmitters costs ~3 row walks + 3 queue pops even at
// n = 10^6. Sender recovery is a row scan over winning listeners only
// (their rows are output-sized by definition of the active set); the
// RecoveryStrategy knob is accepted but does not change the path — like
// scalar/sharded, outcomes are identical under every strategy.
//
// The native entry point is resolve_batch_active (sparse transmitter
// list); the dense resolve_batch/_max adapters pay one O(n) word scan to
// recover the list and are provided for interface parity, and resolve()
// routes the single-instance facade through the same kernel with one lane.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "radio/lane_counter.hpp"
#include "radio/medium.hpp"

namespace radiocast::radio {

class FrontierMedium final : public Medium {
 public:
  FrontierMedium(const graph::Graph& g, CollisionModel model);

  std::string_view name() const override { return "frontier"; }

  /// Single-instance rounds run through the event-driven kernel with one
  /// lane; deliveries come out in the scalar reference's first-touch order.
  void resolve(std::span<const graph::NodeId> transmitters,
               std::span<const Payload> tx_payload,
               SparseOutcome& out) override;

  /// Dense-mask adapters: one O(n) word scan recovers the sparse list,
  /// then the kernel runs as usual. Callers that already hold the sparse
  /// transmitter set should use resolve_batch_active instead.
  void resolve_batch(std::span<const std::uint64_t> tx_mask,
                     PayloadPlanes payload, int lanes, BatchOutcome& out,
                     bool with_senders = true) override;
  void resolve_batch_max(std::span<const std::uint64_t> tx_mask,
                         PayloadPlanes payload, int lanes,
                         KnowledgePlanes best, BatchOutcome& out) override;

  /// The native O(active-work) entry points.
  void resolve_batch_active(std::span<const ActiveTx> tx,
                            PayloadPlanes payload, int lanes, BatchOutcome& out,
                            bool with_senders = true) override;
  void resolve_batch_max_active(std::span<const ActiveTx> tx,
                                PayloadPlanes payload, int lanes,
                                KnowledgePlanes best,
                                BatchOutcome& out) override;

 private:
  /// What the kernel does with each recovered delivery (mirrors the
  /// bitslice FoldMode).
  enum class FoldMode : std::uint8_t { kMasksOnly, kSenders, kMaxFold };

  void run_active(std::span<const ActiveTx> tx, PayloadPlanes payload,
                  int lanes, BatchOutcome& out, FoldMode mode,
                  KnowledgePlanes best);
  /// Row scan over winning listeners; transmitter membership is tested
  /// against the round-stamped tx lane words (no dense mask exists). Sink:
  /// (listener, sender, lane mask), one call per sender group.
  template <class Sink>
  void rowscan_senders(const BatchOutcome& out, Sink&& sink) const;

  // Per-listener saturation words, valid iff stamp_ == round_: one_ is the
  // ">=1 transmitting neighbour" lane set, two_ the ">=2" lane set.
  std::vector<std::uint64_t> one_;
  std::vector<std::uint64_t> two_;
  std::vector<std::uint64_t> stamp_;
  // Per-transmitter lane words, valid iff tx_stamp_ == round_: which lanes
  // the node transmits in (deduplicated union across ActiveTx entries) —
  // the half-duplex filter and the rowscan membership test read these.
  std::vector<std::uint64_t> tx_lanes_;
  std::vector<std::uint64_t> tx_stamp_;
  // Woken listeners in first-touch order; drained once per round.
  std::vector<graph::NodeId> queue_;
  std::uint64_t round_ = 0;

  LaneCounter tx_tally_;
  LaneCounter delivered_tally_;
  LaneCounter collided_tally_;

  // Scratch for the dense adapters (sparse list recovered per round) and
  // the resolve() facade (per-node payload plane + its own dedup stamps,
  // kept separate from the kernel's round stamps).
  std::vector<ActiveTx> active_;
  std::vector<Payload> payload1_;
  std::vector<std::uint64_t> facade_stamp_;
  std::uint64_t facade_round_ = 0;
  BatchOutcome batch_out_;
};

}  // namespace radiocast::radio
