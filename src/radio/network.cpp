#include "radio/network.hpp"

#include <stdexcept>

namespace radiocast::radio {

Network::Network(const graph::Graph& g, CollisionModel model,
                 MediumKind medium, int medium_threads)
    : graph_(&g),
      model_(model),
      kind_(medium),
      medium_(make_medium(medium, g, model, medium_threads)) {}

void Network::resolve(std::span<const graph::NodeId> transmitters,
                      std::span<const Payload> tx_payload,
                      SparseOutcome& out) {
  medium_->resolve(transmitters, tx_payload, out);
  ++rounds_;
  total_tx_ += out.transmitter_count;
  total_delivered_ += out.deliveries.size();
  total_collided_ += out.collided_count;
}

void Network::step_sparse(const std::vector<graph::NodeId>& transmitters,
                          const std::vector<Payload>& tx_payload,
                          SparseOutcome& out) {
  resolve(transmitters, tx_payload, out);
}

void Network::step(const std::vector<std::uint8_t>& transmit,
                   const std::vector<Payload>& payload, RoundOutcome& out) {
  const graph::NodeId n = graph_->node_count();
  if (transmit.size() != n || payload.size() != n) {
    throw std::invalid_argument("Network::step: vector size mismatch");
  }
  tx_nodes_.clear();
  tx_payload_.clear();
  for (graph::NodeId u = 0; u < n; ++u) {
    if (transmit[u]) {
      tx_nodes_.push_back(u);
      tx_payload_.push_back(payload[u]);
    }
  }
  resolve(tx_nodes_, tx_payload_, sparse_scratch_);

  out.reception.assign(n, Reception::kSilence);
  out.received_payload.assign(n, kNoPayload);
  out.transmitter_count = sparse_scratch_.transmitter_count;
  out.delivered_count =
      static_cast<std::uint32_t>(sparse_scratch_.deliveries.size());
  out.collided_count = sparse_scratch_.collided_count;
  for (const auto& d : sparse_scratch_.deliveries) {
    out.reception[d.node] = Reception::kMessage;
    out.received_payload[d.node] = d.payload;
  }
  // Without detection a collision reads as silence; collided_nodes is only
  // populated in the detection model, mirroring the enum's contract.
  for (const graph::NodeId v : sparse_scratch_.collided_nodes) {
    out.reception[v] = Reception::kCollision;
  }
}

RoundOutcome Network::step(const std::vector<std::uint8_t>& transmit,
                           const std::vector<Payload>& payload) {
  RoundOutcome out;
  step(transmit, payload, out);
  return out;
}

void Network::reset_counters() {
  rounds_ = 0;
  total_tx_ = 0;
  total_delivered_ = 0;
  total_collided_ = 0;
}

}  // namespace radiocast::radio
