#include "radio/network.hpp"

#include <stdexcept>

namespace radiocast::radio {

Network::Network(const graph::Graph& g, CollisionModel model,
                 MediumKind medium, int medium_threads)
    : graph_(&g),
      model_(model),
      kind_(medium),
      medium_(make_medium(medium, g, model, medium_threads)) {}

void Network::resolve(std::span<const graph::NodeId> transmitters,
                      std::span<const Payload> tx_payload,
                      SparseOutcome& out) {
  medium_->resolve(transmitters, tx_payload, out);
  ++rounds_;
  total_tx_ += out.transmitter_count;
  total_delivered_ += out.deliveries.size();
  total_collided_ += out.collided_count;
}

void Network::step_sparse(const std::vector<graph::NodeId>& transmitters,
                          const std::vector<Payload>& tx_payload,
                          SparseOutcome& out) {
  resolve(transmitters, tx_payload, out);
}

void Network::step(const std::vector<std::uint8_t>& transmit,
                   const std::vector<Payload>& payload, RoundOutcome& out) {
  const graph::NodeId n = graph_->node_count();
  if (transmit.size() != n || payload.size() != n) {
    throw std::invalid_argument("Network::step: vector size mismatch");
  }
  tx_nodes_.clear();
  tx_payload_.clear();
  for (graph::NodeId u = 0; u < n; ++u) {
    if (transmit[u]) {
      tx_nodes_.push_back(u);
      tx_payload_.push_back(payload[u]);
    }
  }
  resolve(tx_nodes_, tx_payload_, sparse_scratch_);

  out.reception.assign(n, Reception::kSilence);
  out.received_payload.assign(n, kNoPayload);
  out.transmitter_count = sparse_scratch_.transmitter_count;
  out.delivered_count =
      static_cast<std::uint32_t>(sparse_scratch_.deliveries.size());
  out.collided_count = sparse_scratch_.collided_count;
  for (const auto& d : sparse_scratch_.deliveries) {
    out.reception[d.node] = Reception::kMessage;
    out.received_payload[d.node] = d.payload;
  }
  // Without detection a collision reads as silence; collided_nodes is only
  // populated in the detection model, mirroring the enum's contract.
  for (const graph::NodeId v : sparse_scratch_.collided_nodes) {
    out.reception[v] = Reception::kCollision;
  }
}

RoundOutcome Network::step(const std::vector<std::uint8_t>& transmit,
                           const std::vector<Payload>& payload) {
  RoundOutcome out;
  step(transmit, payload, out);
  return out;
}

void Network::step_lanes(std::span<const std::uint64_t> tx_mask,
                         PayloadPlanes payload, BatchOutcome& out,
                         bool with_senders) {
  const graph::NodeId n = graph_->node_count();
  if (tx_mask.size() != n || payload.plane_size() != n ||
      payload.lane_capacity() < 1) {
    throw std::invalid_argument("Network::step_lanes: size mismatch");
  }
  tx_nodes_.clear();
  tx_payload_.clear();
  for (graph::NodeId v = 0; v < n; ++v) {
    if (tx_mask[v] & 1) {
      tx_nodes_.push_back(v);
      tx_payload_.push_back(payload.at(0, v));
    }
  }
  resolve(tx_nodes_, tx_payload_, sparse_scratch_);
  emit_batch(out, with_senders);
}

void Network::step_lanes_active(std::span<const ActiveTx> tx,
                                PayloadPlanes payload, BatchOutcome& out,
                                bool with_senders) {
  const graph::NodeId n = graph_->node_count();
  if (payload.plane_size() != n || payload.lane_capacity() < 1) {
    throw std::invalid_argument("Network::step_lanes_active: size mismatch");
  }
  tx_nodes_.clear();
  tx_payload_.clear();
  for (const ActiveTx& e : tx) {
    if (e.node >= n) {
      throw std::invalid_argument(
          "Network::step_lanes_active: transmitter out of range");
    }
    if (e.lanes & 1) {
      tx_nodes_.push_back(e.node);
      tx_payload_.push_back(payload.at(0, e.node));
    }
  }
  resolve(tx_nodes_, tx_payload_, sparse_scratch_);
  emit_batch(out, with_senders);
}

void Network::emit_batch(BatchOutcome& out, bool with_senders) {
  out.clear();
  out.transmitter_count[0] = sparse_scratch_.transmitter_count;
  out.delivered_count[0] =
      static_cast<std::uint32_t>(sparse_scratch_.deliveries.size());
  out.collided_count[0] = sparse_scratch_.collided_count;
  out.active_listeners = sparse_scratch_.active_listeners;
  for (const auto& d : sparse_scratch_.deliveries) {
    out.delivered.push_back({d.node, 1});
    if (with_senders) out.deliveries.push_back({d.node, 0, d.from, d.payload});
  }
  for (const graph::NodeId v : sparse_scratch_.collided_nodes) {
    out.collisions.push_back({v, 1});
  }
}

void Network::step_lanes_max(std::span<const std::uint64_t> tx_mask,
                             PayloadPlanes payload, KnowledgePlanes best,
                             BatchOutcome& out) {
  const graph::NodeId n = graph_->node_count();
  if (best.plane_size() < n || best.lane_capacity() < 1) {
    throw std::invalid_argument("Network::step_lanes_max: best too small");
  }
  step_lanes(tx_mask, payload, out, /*with_senders=*/false);
  // One lane: fold straight from the sparse deliveries of the round.
  for (const auto& d : sparse_scratch_.deliveries) {
    Payload& b = best.at(0, d.node);
    if (b == kNoPayload || d.payload > b) b = d.payload;
  }
}

void Network::step_lanes_max_active(std::span<const ActiveTx> tx,
                                    PayloadPlanes payload,
                                    KnowledgePlanes best, BatchOutcome& out) {
  const graph::NodeId n = graph_->node_count();
  if (best.plane_size() < n || best.lane_capacity() < 1) {
    throw std::invalid_argument(
        "Network::step_lanes_max_active: best too small");
  }
  step_lanes_active(tx, payload, out, /*with_senders=*/false);
  for (const auto& d : sparse_scratch_.deliveries) {
    Payload& b = best.at(0, d.node);
    if (b == kNoPayload || d.payload > b) b = d.payload;
  }
}

void Network::reset_counters() {
  rounds_ = 0;
  total_tx_ = 0;
  total_delivered_ = 0;
  total_collided_ = 0;
}

}  // namespace radiocast::radio
