#include "radio/network.hpp"

#include <cassert>
#include <stdexcept>

namespace radiocast::radio {

Network::Network(const graph::Graph& g, CollisionModel model)
    : graph_(&g), model_(model) {
  const auto n = g.node_count();
  tx_count_.assign(n, 0);
  pending_payload_.assign(n, kNoPayload);
  stamp_.assign(n, 0);
  touched_.reserve(n);
}

void Network::step(const std::vector<std::uint8_t>& transmit,
                   const std::vector<Payload>& payload, RoundOutcome& out) {
  const graph::NodeId n = graph_->node_count();
  if (transmit.size() != n || payload.size() != n) {
    throw std::invalid_argument("Network::step: vector size mismatch");
  }
  out.reception.assign(n, Reception::kSilence);
  out.received_payload.assign(n, kNoPayload);
  out.transmitter_count = 0;
  out.delivered_count = 0;
  out.collided_count = 0;

  ++epoch_;
  touched_.clear();

  // Pass 1: accumulate per-listener transmitter counts.
  for (graph::NodeId u = 0; u < n; ++u) {
    if (!transmit[u]) continue;
    ++out.transmitter_count;
    for (graph::NodeId v : graph_->neighbors(u)) {
      if (stamp_[v] != epoch_) {
        stamp_[v] = epoch_;
        tx_count_[v] = 0;
        pending_payload_[v] = kNoPayload;
        touched_.push_back(v);
      }
      ++tx_count_[v];
      pending_payload_[v] = payload[u];
    }
  }

  // Pass 2: resolve receptions at touched listeners. Transmitters are
  // half-duplex: they never receive, regardless of neighbours.
  for (graph::NodeId v : touched_) {
    if (transmit[v]) continue;
    if (tx_count_[v] == 1) {
      out.reception[v] = Reception::kMessage;
      out.received_payload[v] = pending_payload_[v];
      ++out.delivered_count;
    } else if (tx_count_[v] >= 2) {
      ++out.collided_count;
      out.reception[v] = model_ == CollisionModel::kDetection
                             ? Reception::kCollision
                             : Reception::kSilence;
    }
  }

  ++rounds_;
  total_tx_ += out.transmitter_count;
  total_delivered_ += out.delivered_count;
  total_collided_ += out.collided_count;
}

RoundOutcome Network::step(const std::vector<std::uint8_t>& transmit,
                           const std::vector<Payload>& payload) {
  RoundOutcome out;
  step(transmit, payload, out);
  return out;
}

void Network::step_sparse(const std::vector<graph::NodeId>& transmitters,
                          const std::vector<Payload>& tx_payload,
                          SparseOutcome& out) {
  if (transmitters.size() != tx_payload.size()) {
    throw std::invalid_argument("Network::step_sparse: size mismatch");
  }
  out.deliveries.clear();
  out.transmitter_count = 0;
  out.collided_count = 0;

  ++epoch_;
  touched_.clear();
  if (tx_stamp_.size() != stamp_.size()) {
    tx_stamp_.assign(stamp_.size(), 0);
    tx_from_.assign(stamp_.size(), graph::kInvalidNode);
  }
  auto& tx_stamp = tx_stamp_;
  auto& tx_from = tx_from_;
  for (std::size_t i = 0; i < transmitters.size(); ++i) {
    const graph::NodeId u = transmitters[i];
    if (tx_stamp[u] == epoch_) continue;  // duplicate entry: process once
    tx_stamp[u] = epoch_;
    ++out.transmitter_count;
    for (graph::NodeId v : graph_->neighbors(u)) {
      if (stamp_[v] != epoch_) {
        stamp_[v] = epoch_;
        tx_count_[v] = 0;
        touched_.push_back(v);
      }
      ++tx_count_[v];
      pending_payload_[v] = tx_payload[i];
      tx_from[v] = u;
    }
  }
  for (graph::NodeId v : touched_) {
    if (tx_stamp[v] == epoch_) continue;  // half-duplex
    if (tx_count_[v] == 1) {
      out.deliveries.push_back({v, tx_from[v], pending_payload_[v]});
    } else if (tx_count_[v] >= 2) {
      ++out.collided_count;
    }
  }
  ++rounds_;
  total_tx_ += out.transmitter_count;
  total_delivered_ += out.deliveries.size();
  total_collided_ += out.collided_count;
}

void Network::reset_counters() {
  rounds_ = 0;
  total_tx_ = 0;
  total_delivered_ = 0;
  total_collided_ = 0;
}

}  // namespace radiocast::radio
