// The synchronous radio medium: resolves one round of transmissions into
// per-node receptions under the chosen collision model.
//
// This is the *only* place where the interference rule is implemented; all
// algorithms (the paper's and the baselines) go through Network::step, so a
// correctness bug in collision semantics would affect every experiment
// identically — and is therefore covered by an exhaustive truth-table test.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "radio/model.hpp"

namespace radiocast::radio {

/// Outcome of a single round, from the medium's point of view.
struct RoundOutcome {
  /// Per node: what it perceived (transmitters always perceive kSilence —
  /// radios are half-duplex).
  std::vector<Reception> reception;
  /// Per node: the payload received when reception == kMessage.
  std::vector<Payload> received_payload;
  std::uint32_t transmitter_count = 0;
  std::uint32_t delivered_count = 0;   // listeners with exactly 1 tx neighbour
  std::uint32_t collided_count = 0;    // listeners with >= 2 tx neighbours
};

class Network {
 public:
  explicit Network(const graph::Graph& g,
                   CollisionModel model = CollisionModel::kNoDetection);
  /// The network aliases the graph; binding a temporary would dangle.
  explicit Network(graph::Graph&& g,
                   CollisionModel model = CollisionModel::kNoDetection) =
      delete;

  const graph::Graph& topology() const { return *graph_; }
  CollisionModel collision_model() const { return model_; }
  graph::NodeId node_count() const { return graph_->node_count(); }

  /// Resolves one round. `transmit[v]` says whether v transmits and
  /// `payload[v]` what it sends (ignored when not transmitting). The
  /// outcome's vectors are sized to node_count().
  ///
  /// Cost: O(sum of degrees of transmitters), allocation-free after the
  /// first call (scratch buffers are reused; the outcome reuses `out`).
  void step(const std::vector<std::uint8_t>& transmit,
            const std::vector<Payload>& payload, RoundOutcome& out);

  /// Convenience allocating overload.
  RoundOutcome step(const std::vector<std::uint8_t>& transmit,
                    const std::vector<Payload>& payload);

  /// One successful reception in a sparse round.
  struct SparseDelivery {
    graph::NodeId node;   // the listener
    graph::NodeId from;   // the unique transmitting neighbour
    Payload payload;
  };
  /// Sparse round outcome: only the nodes that received are listed.
  struct SparseOutcome {
    std::vector<SparseDelivery> deliveries;
    std::uint32_t transmitter_count = 0;
    std::uint32_t collided_count = 0;
  };

  /// Resolves one round given only the transmitter list (everyone else
  /// listens). Cost O(sum of transmitter degrees) — the vectors of the
  /// dense overload are never touched, so high-round-count algorithm cores
  /// stay proportional to actual radio activity.
  /// `transmitters` may contain duplicates (they are counted once).
  void step_sparse(const std::vector<graph::NodeId>& transmitters,
                   const std::vector<Payload>& tx_payload,
                   SparseOutcome& out);

  Round rounds_elapsed() const { return rounds_; }
  std::uint64_t total_transmissions() const { return total_tx_; }
  std::uint64_t total_deliveries() const { return total_delivered_; }
  std::uint64_t total_collisions() const { return total_collided_; }
  void reset_counters();

 private:
  const graph::Graph* graph_;
  CollisionModel model_;
  Round rounds_ = 0;
  std::uint64_t total_tx_ = 0;
  std::uint64_t total_delivered_ = 0;
  std::uint64_t total_collided_ = 0;

  // Epoch-stamped scratch: tx_neighbors_[v] is valid iff stamp_[v]==epoch_.
  std::vector<std::uint32_t> tx_count_;
  std::vector<Payload> pending_payload_;
  std::vector<std::uint64_t> stamp_;
  std::uint64_t epoch_ = 0;
  std::vector<graph::NodeId> touched_;
  // step_sparse scratch: transmitter marks (half-duplex) and last sender.
  std::vector<std::uint64_t> tx_stamp_;
  std::vector<graph::NodeId> tx_from_;
};

}  // namespace radiocast::radio
