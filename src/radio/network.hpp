// The synchronous radio medium: resolves one round of transmissions into
// per-node receptions under the chosen collision model.
//
// Network is the facade protocols talk to. The interference rule itself
// lives behind the pluggable radio::Medium interface (medium.hpp) with
// scalar / bitslice / sharded backends; Network owns one backend, keeps
// the cross-round counters, and offers three views of a round:
//
//   resolve()     — the unified entry point: transmitter list in, sparse
//                   outcome out (the backend adaptively picks its dense or
//                   frontier path from transmitter density)
//   step()        — dense per-node vectors in/out, for schedule-driven
//                   callers; a thin adapter over resolve()
//   step_sparse() — legacy name for resolve(), kept for callers written
//                   against the pre-backend API
//
// A correctness bug in collision semantics would affect every experiment
// identically — which is why the semantics are pinned by an exhaustive
// truth-table test plus a cross-backend differential test.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "radio/lane_executor.hpp"
#include "radio/medium.hpp"
#include "radio/model.hpp"

namespace radiocast::radio {

/// Outcome of a single round, from the medium's point of view.
struct RoundOutcome {
  /// Per node: what it perceived (transmitters always perceive kSilence —
  /// radios are half-duplex).
  std::vector<Reception> reception;
  /// Per node: the payload received when reception == kMessage.
  std::vector<Payload> received_payload;
  std::uint32_t transmitter_count = 0;
  std::uint32_t delivered_count = 0;   // listeners with exactly 1 tx neighbour
  std::uint32_t collided_count = 0;    // listeners with >= 2 tx neighbours
};

class Network : public LaneExecutor {
 public:
  explicit Network(const graph::Graph& g,
                   CollisionModel model = CollisionModel::kNoDetection,
                   MediumKind medium = MediumKind::kScalar,
                   int medium_threads = 0);
  /// The network aliases the graph; binding a temporary would dangle.
  explicit Network(graph::Graph&& g,
                   CollisionModel model = CollisionModel::kNoDetection,
                   MediumKind medium = MediumKind::kScalar,
                   int medium_threads = 0) = delete;

  const graph::Graph& topology() const override { return *graph_; }
  CollisionModel collision_model() const override { return model_; }
  graph::NodeId node_count() const { return graph_->node_count(); }
  /// LaneExecutor: a Network is the one-lane executor.
  int lanes() const override { return 1; }
  MediumKind medium_kind() const { return kind_; }
  Medium& medium() override { return *medium_; }
  const Medium& medium() const { return *medium_; }

  /// Legacy nested names; the types now live at namespace scope so the
  /// Medium interface can use them.
  using SparseDelivery = radio::SparseDelivery;
  using SparseOutcome = radio::SparseOutcome;

  /// The unified entry point: resolves one round given only the
  /// transmitter list (everyone else listens). Duplicates are counted
  /// once. Cost is O(sum of transmitter degrees) on the sparse path; the
  /// backend switches to a dense path when most of the graph is active.
  /// Under CollisionModel::kDetection, out.collided_nodes lists the
  /// listeners that perceived a collision (matching the dense path's
  /// Reception::kCollision); without detection it stays empty.
  void resolve(std::span<const graph::NodeId> transmitters,
               std::span<const Payload> tx_payload, SparseOutcome& out);

  /// Legacy name for resolve().
  void step_sparse(const std::vector<graph::NodeId>& transmitters,
                   const std::vector<Payload>& tx_payload,
                   SparseOutcome& out);

  /// Resolves one round from dense per-node vectors. `transmit[v]` says
  /// whether v transmits and `payload[v]` what it sends (ignored when not
  /// transmitting). The outcome's vectors are sized to node_count().
  /// Allocation-free after the first call (scratch is reused).
  void step(const std::vector<std::uint8_t>& transmit,
            const std::vector<Payload>& payload, RoundOutcome& out);

  /// Convenience allocating overload.
  RoundOutcome step(const std::vector<std::uint8_t>& transmit,
                    const std::vector<Payload>& payload);

  /// LaneExecutor entry point: bit 0 of tx_mask[v] (the only lane) says
  /// whether v transmits; the round resolves through resolve() and is
  /// reported in batch form (lane masks are all 1s). Cross-round counters
  /// advance exactly as they do for the other entry points.
  void step_lanes(std::span<const std::uint64_t> tx_mask,
                  PayloadPlanes payload, BatchOutcome& out,
                  bool with_senders = true) override;

  /// Fold variant (see LaneExecutor): deliveries max-combine into
  /// best.at(0, v) — one lane, so every KnowledgePlanes layout is
  /// equivalent (vectors/spans adapt implicitly).
  void step_lanes_max(std::span<const std::uint64_t> tx_mask,
                      PayloadPlanes payload, KnowledgePlanes best,
                      BatchOutcome& out) override;

  /// Sparse variant (see LaneExecutor): entries with lane bit 0 set form
  /// the round's transmitter list.
  void step_lanes_active(std::span<const ActiveTx> tx, PayloadPlanes payload,
                         BatchOutcome& out, bool with_senders = true) override;

  /// Sparse fold variant (see LaneExecutor).
  void step_lanes_max_active(std::span<const ActiveTx> tx,
                             PayloadPlanes payload, KnowledgePlanes best,
                             BatchOutcome& out) override;

  Round rounds_elapsed() const { return rounds_; }
  std::uint64_t total_transmissions() const { return total_tx_; }
  std::uint64_t total_deliveries() const { return total_delivered_; }
  std::uint64_t total_collisions() const { return total_collided_; }
  void reset_counters();

 private:
  /// Converts the round in sparse_scratch_ to batch form (single lane).
  void emit_batch(BatchOutcome& out, bool with_senders);

  const graph::Graph* graph_;
  CollisionModel model_;
  MediumKind kind_;
  std::unique_ptr<Medium> medium_;
  Round rounds_ = 0;
  std::uint64_t total_tx_ = 0;
  std::uint64_t total_delivered_ = 0;
  std::uint64_t total_collided_ = 0;

  // step() adapter scratch: the dense vectors flattened to a tx list.
  std::vector<graph::NodeId> tx_nodes_;
  std::vector<Payload> tx_payload_;
  SparseOutcome sparse_scratch_;
};

}  // namespace radiocast::radio
