// LaneExecutor: the seam that lets one protocol implementation drive
// either a single scalar replication or up to 64 batched Monte-Carlo
// lanes.
//
// A lane is one independent replication of a protocol over the shared
// topology. Network satisfies the interface with exactly one lane (bit 0
// of every mask word); BatchNetwork satisfies it with up to kMaxLanes
// lanes resolved per step (one CSR traversal for all of them on the
// bitslice backend). Protocol cores written against LaneExecutor — the
// lane-generic Decay in schedule/decay.hpp, the batched Compete drivers
// in core/compete_batched.hpp — therefore run bit-for-bit identically
// whether executed one seed at a time or 64 seeds per traversal, which is
// what the lane-by-lane differential tests pin down.
#pragma once

#include <cstdint>
#include <span>

#include "graph/graph.hpp"
#include "radio/medium.hpp"
#include "radio/model.hpp"

namespace radiocast::radio {

class LaneExecutor {
 public:
  virtual ~LaneExecutor() = default;

  virtual const graph::Graph& topology() const = 0;
  virtual CollisionModel collision_model() const = 0;
  /// Replication lanes resolved per step: 1 for Network, up to kMaxLanes
  /// for BatchNetwork.
  virtual int lanes() const = 0;
  /// The backend resolving this executor's rounds — the seam for the
  /// sender-recovery knob and the per-phase timers, so lane-generic
  /// callers (benches, tests) can reach both without knowing whether they
  /// drive a Network or a BatchNetwork.
  virtual Medium& medium() = 0;

  /// Resolves one synchronous round across all lanes: bit l of tx_mask[v]
  /// says whether v transmits in lane l (bits >= lanes() are ignored);
  /// `payload` supplies what each node sends per lane (shared or
  /// lane-major, see PayloadPlanes). `with_senders` opts into per-delivery
  /// sender/payload detail; delivered masks and counters come either way.
  /// Implementations keep their cross-round counters, so a protocol can
  /// read totals off the concrete executor afterwards.
  virtual void step_lanes(std::span<const std::uint64_t> tx_mask,
                          PayloadPlanes payload, BatchOutcome& out,
                          bool with_senders = true) = 0;

  /// Fold variant for max-relay protocols: deliveries max-combine into the
  /// knowledge planes `best` (any KnowledgePlanes layout; the batched
  /// protocol cores use node-major so each listener's folded lane words
  /// are one contiguous run) instead of materializing out.deliveries —
  /// see Medium::resolve_batch_max. Counters and delivered masks come in
  /// `out` as usual.
  virtual void step_lanes_max(std::span<const std::uint64_t> tx_mask,
                              PayloadPlanes payload, KnowledgePlanes best,
                              BatchOutcome& out) = 0;

  /// Sparse variant: the transmitter set as (node, lane mask) entries
  /// instead of an n-word dense mask (see Medium::resolve_batch_active).
  /// Semantics and counters match step_lanes over the equivalent mask;
  /// protocols with small active sets use it so round cost can follow the
  /// active work instead of n (the frontier backend's native entry point —
  /// the others materialise the mask internally).
  virtual void step_lanes_active(std::span<const ActiveTx> tx,
                                 PayloadPlanes payload, BatchOutcome& out,
                                 bool with_senders = true) = 0;

  /// Sparse fold variant: step_lanes_max over a sparse transmitter list
  /// (see Medium::resolve_batch_max_active) — how a max-relay protocol's
  /// sparse tail rounds reach the O(active-work) path without giving up
  /// the in-medium fold.
  virtual void step_lanes_max_active(std::span<const ActiveTx> tx,
                                     PayloadPlanes payload,
                                     KnowledgePlanes best,
                                     BatchOutcome& out) = 0;

  graph::NodeId node_count() const { return topology().node_count(); }
};

}  // namespace radiocast::radio
