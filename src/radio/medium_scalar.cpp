#include "radio/medium_scalar.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace radiocast::radio {

ScalarMedium::ScalarMedium(const graph::Graph& g, CollisionModel model)
    : Medium(g, model) {
  const auto n = g.node_count();
  payload_of_.assign(n, kNoPayload);
  tx_stamp_.assign(n, 0);
  tx_count_.assign(n, 0);
  pending_payload_.assign(n, kNoPayload);
  tx_from_.assign(n, graph::kInvalidNode);
  stamp_.assign(n, 0);
  touched_.reserve(n);
}

void ScalarMedium::resolve(std::span<const graph::NodeId> transmitters,
                           std::span<const Payload> tx_payload,
                           SparseOutcome& out) {
  if (transmitters.size() != tx_payload.size()) {
    throw std::invalid_argument("ScalarMedium::resolve: size mismatch");
  }
  out.deliveries.clear();
  out.collided_nodes.clear();
  out.transmitter_count = 0;
  out.collided_count = 0;
  out.active_listeners = 0;

  ++epoch_;
  txlist_.clear();
  std::uint64_t work = 0;
  for (std::size_t i = 0; i < transmitters.size(); ++i) {
    const graph::NodeId u = transmitters[i];
    if (tx_stamp_[u] == epoch_) continue;  // duplicate entry: process once
    tx_stamp_[u] = epoch_;
    payload_of_[u] = tx_payload[i];
    txlist_.push_back(u);
    work += graph_->degree(u);
  }
  out.transmitter_count = static_cast<std::uint32_t>(txlist_.size());

  const obs::TraceSpan trace_span("scalar.round", "tx", txlist_.size());
  const std::uint64_t t0 = now_ns();
  const graph::NodeId n = graph_->node_count();
  if (2 * work >= n) {
    resolve_dense(out);
  } else {
    resolve_frontier(out);
  }
  // The scalar kernel identifies senders during its traversal, so the
  // whole round is traverse + output with no recovery phase; each path
  // accounts for its own output sweep.
  const std::uint64_t t_end = now_ns();
  timers_.traverse_ns += output_start_ns_ - t0;
  timers_.output_ns += t_end - output_start_ns_;
  timers_.active_listeners += out.active_listeners;
  static obs::Histogram& round_hist =
      obs::Metrics::global().histogram("radio.scalar.round_ns");
  round_hist.record(t_end - t0);
  ++timers_.rounds;
}

void ScalarMedium::resolve_frontier(SparseOutcome& out) {
  touched_.clear();
  for (const graph::NodeId u : txlist_) {
    const Payload p = payload_of_[u];
    for (const graph::NodeId v : graph_->neighbors(u)) {
      if (stamp_[v] != epoch_) {
        stamp_[v] = epoch_;
        tx_count_[v] = 0;
        touched_.push_back(v);
      }
      ++tx_count_[v];
      pending_payload_[v] = p;
      tx_from_[v] = u;
    }
  }
  output_start_ns_ = now_ns();
  out.active_listeners = static_cast<std::uint32_t>(touched_.size());
  for (const graph::NodeId v : touched_) {
    if (tx_stamp_[v] == epoch_) continue;  // half-duplex
    if (tx_count_[v] == 1) {
      out.deliveries.push_back({v, tx_from_[v], pending_payload_[v]});
    } else {
      ++out.collided_count;
      if (model_ == CollisionModel::kDetection) {
        out.collided_nodes.push_back(v);
      }
    }
  }
}

void ScalarMedium::resolve_dense(SparseOutcome& out) {
  const graph::NodeId n = graph_->node_count();
  dense_count_.assign(n, 0);
  for (const graph::NodeId u : txlist_) {
    for (const graph::NodeId v : graph_->neighbors(u)) ++dense_count_[v];
  }
  output_start_ns_ = now_ns();
  // A delivered listener has exactly one transmitting neighbour, so this
  // second traversal emits it exactly once — and in the same first-touch
  // order the frontier path produces.
  for (const graph::NodeId u : txlist_) {
    const Payload p = payload_of_[u];
    for (const graph::NodeId v : graph_->neighbors(u)) {
      if (dense_count_[v] == 1 && tx_stamp_[v] != epoch_) {
        out.deliveries.push_back({v, u, p});
      }
    }
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    // Same "woken" definition as the frontier path: any node with >= 1
    // transmitting neighbour, transmitters included.
    if (dense_count_[v] != 0) ++out.active_listeners;
    if (dense_count_[v] >= 2 && tx_stamp_[v] != epoch_) {
      ++out.collided_count;
      if (model_ == CollisionModel::kDetection) {
        out.collided_nodes.push_back(v);
      }
    }
  }
}

}  // namespace radiocast::radio
