// Node-local protocol interface.
//
// A Protocol is instantiated once per node and sees ONLY what the model
// allows: the global parameters n and D, its own id, its private random
// stream, and the messages it successfully receives. It never sees the
// topology. All distributed algorithms in examples/tests implement this
// interface; the heavily-vectorised algorithm cores in src/core and
// src/baselines are semantically equivalent per-node state machines that
// drive Network::step directly for speed (their equivalence on small
// instances is asserted by tests).
#pragma once

#include <cstdint>
#include <memory>

#include "radio/model.hpp"
#include "util/rng.hpp"

namespace radiocast::radio {

/// Knowledge available to a node (the model's "nodes know n and D").
struct NodeInfo {
  std::uint32_t node_id = 0;  // unique O(log n)-bit label
  std::uint32_t n = 0;        // number of nodes in the network
  std::uint32_t diameter = 0; // (an upper bound on) the diameter D
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Called once before round 0.
  virtual void start(const NodeInfo& info, util::Rng rng) = 0;

  /// Called at the beginning of every round; returns the node's action.
  virtual Action on_round(Round round) = 0;

  /// Called after a round in which this node listened and received.
  virtual void on_message(Round round, Payload payload) = 0;

  /// Called after a round with a detected collision; only invoked under
  /// CollisionModel::kDetection. Default: ignore.
  virtual void on_collision(Round round) { (void)round; }

  /// Optional termination signal: a protocol may report local completion;
  /// the engine can stop when all nodes report done.
  virtual bool done() const { return false; }
};

/// Creates a fresh protocol instance for each node.
using ProtocolFactory = std::unique_ptr<Protocol> (*)();

}  // namespace radiocast::radio
