#include "radio/engine.hpp"

#include <stdexcept>

namespace radiocast::radio {

Engine::Engine(const graph::Graph& g, std::uint32_t diameter_hint,
               CollisionModel model)
    : graph_(&g), network_(g, model), diameter_hint_(diameter_hint) {
  const auto n = g.node_count();
  transmit_.assign(n, 0);
  payload_.assign(n, kNoPayload);
}

void Engine::install(
    const std::function<std::unique_ptr<Protocol>(graph::NodeId)>& make,
    util::Rng& seed_rng) {
  const graph::NodeId n = graph_->node_count();
  protocols_.clear();
  protocols_.reserve(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    protocols_.push_back(make(v));
    if (!protocols_.back()) {
      throw std::invalid_argument("Engine::install: factory returned null");
    }
    NodeInfo info;
    info.node_id = v;
    info.n = n;
    info.diameter = diameter_hint_;
    protocols_.back()->start(info, seed_rng.fork(v));
  }
  round_ = 0;
  network_.reset_counters();
}

const RoundOutcome& Engine::step_once() {
  const graph::NodeId n = graph_->node_count();
  if (protocols_.size() != n) {
    throw std::logic_error("Engine::step_once: protocols not installed");
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    const Action a = protocols_[v]->on_round(round_);
    transmit_[v] = a.transmit ? 1 : 0;
    payload_[v] = a.payload;
  }
  network_.step(transmit_, payload_, outcome_);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (outcome_.reception[v] == Reception::kMessage) {
      protocols_[v]->on_message(round_, outcome_.received_payload[v]);
    } else if (outcome_.reception[v] == Reception::kCollision) {
      protocols_[v]->on_collision(round_);
    }
  }
  if (trace_ != nullptr) trace_->record(round_, outcome_);
  ++round_;
  return outcome_;
}

EngineResult Engine::run(Round max_rounds,
                         const std::function<bool(const Engine&)>& stop) {
  EngineResult r;
  const graph::NodeId n = graph_->node_count();
  while (round_ < max_rounds) {
    step_once();
    bool all_done = true;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!protocols_[v]->done()) {
        all_done = false;
        break;
      }
    }
    if (all_done) {
      r.all_done = true;
      break;
    }
    if (stop && stop(*this)) break;
  }
  r.rounds = round_;
  r.hit_round_limit = (round_ >= max_rounds) && !r.all_done;
  r.transmissions = network_.total_transmissions();
  r.deliveries = network_.total_deliveries();
  r.collisions = network_.total_collisions();
  return r;
}

}  // namespace radiocast::radio
