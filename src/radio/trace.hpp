// Per-round activity traces: how many nodes transmitted, how many
// receptions succeeded / collided. Used by examples to show algorithm
// phases and by tests asserting activity profiles (e.g. Decay's
// exponentially decreasing density).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "radio/model.hpp"

namespace radiocast::radio {

struct RoundOutcome;  // from network.hpp

struct RoundStats {
  Round round = 0;
  std::uint32_t transmitters = 0;
  std::uint32_t deliveries = 0;
  std::uint32_t collisions = 0;
};

class Trace {
 public:
  void record(Round round, const RoundOutcome& outcome);
  const std::vector<RoundStats>& rounds() const { return rounds_; }
  void clear() { rounds_.clear(); }

  std::uint64_t total_transmitters() const;
  std::uint64_t total_deliveries() const;
  std::uint64_t total_collisions() const;

  /// Sparkline-ish summary of transmitter counts over time, bucketed into
  /// `buckets` segments (for console output).
  std::string activity_summary(std::size_t buckets = 60) const;

 private:
  std::vector<RoundStats> rounds_;
};

}  // namespace radiocast::radio
