// Round-driving engine: owns one Protocol instance per node, queries
// actions, resolves the medium via Network, and delivers receptions.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "radio/model.hpp"
#include "radio/network.hpp"
#include "radio/protocol.hpp"
#include "radio/trace.hpp"
#include "util/rng.hpp"

namespace radiocast::radio {

struct EngineResult {
  Round rounds = 0;
  bool all_done = false;            // every protocol reported done()
  bool hit_round_limit = false;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;
};

class Engine {
 public:
  /// `diameter_hint` is the D value passed to protocols (the model assumes
  /// nodes know D; pass the true diameter or an upper bound).
  Engine(const graph::Graph& g, std::uint32_t diameter_hint,
         CollisionModel model = CollisionModel::kNoDetection);

  /// Installs one protocol per node. `make` is called with the node id so
  /// heterogeneous roles (e.g. a designated source) are expressible.
  void install(
      const std::function<std::unique_ptr<Protocol>(graph::NodeId)>& make,
      util::Rng& seed_rng);

  /// Runs until `max_rounds` or all protocols report done().
  /// `stop` (optional) is evaluated after each round with the engine and
  /// can end the run early (used by tests asserting global predicates).
  EngineResult run(Round max_rounds,
                   const std::function<bool(const Engine&)>& stop = nullptr);

  /// Runs exactly one round; returns the medium outcome.
  const RoundOutcome& step_once();

  const Network& network() const { return network_; }
  Protocol& protocol(graph::NodeId v) { return *protocols_.at(v); }
  const Protocol& protocol(graph::NodeId v) const { return *protocols_.at(v); }
  Round round() const { return round_; }

  /// Optional per-round trace recording (disabled by default).
  void attach_trace(Trace* trace) { trace_ = trace; }

 private:
  const graph::Graph* graph_;
  Network network_;
  std::uint32_t diameter_hint_;
  std::vector<std::unique_ptr<Protocol>> protocols_;
  std::vector<std::uint8_t> transmit_;
  std::vector<Payload> payload_;
  RoundOutcome outcome_;
  Round round_ = 0;
  Trace* trace_ = nullptr;
};

}  // namespace radiocast::radio
