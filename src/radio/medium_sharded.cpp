#include "radio/medium_sharded.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "radio/simd.hpp"
#include "util/parse.hpp"

namespace radiocast::radio {

namespace {

// Worker count when the caller passes threads == 0: the
// RADIOCAST_SHARD_THREADS environment variable when set, else a
// hardware-derived default. The env override matters on hosts where
// hardware_concurrency() lies (containers and CI runners often report 1,
// silently degrading the backend to single-threaded). A set-but-invalid
// value (non-numeric, zero, negative) throws instead of silently falling
// back — a typo'd override must never quietly change the worker count.
int default_threads() {
  if (const char* env = std::getenv("RADIOCAST_SHARD_THREADS")) {
    const int v = util::parse_positive_int(env, "RADIOCAST_SHARD_THREADS");
    return std::min(v, 64);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 8u));
}

// ~16k adjacency entries per slice keeps a slice several L2-resident row
// walks big (steal overhead amortized) while giving every realistic worker
// count plenty of steal granularity.
constexpr std::uint64_t kAdjPerSlice = 16384;
constexpr int kMaxSlices = 4096;

// Slice count when the caller passes slices == 0: the
// RADIOCAST_SHARD_SLICES environment variable when set (same
// throw-on-invalid contract as the thread override), else one slice per
// ~kAdjPerSlice adjacency entries. Deliberately a function of the GRAPH
// only — never of the worker count — so the outcome of a round cannot
// depend on how many workers happen to execute it.
int default_slices(std::uint64_t total_adjacency) {
  if (const char* env = std::getenv("RADIOCAST_SHARD_SLICES")) {
    const int v = util::parse_positive_int(env, "RADIOCAST_SHARD_SLICES");
    return std::min(v, kMaxSlices);
  }
  const std::uint64_t want = total_adjacency / kAdjPerSlice;
  return static_cast<int>(std::clamp<std::uint64_t>(want, 1, 512));
}

// Number of online NUMA nodes, parsed from the kernel's cpu-list syntax
// ("0", "0-1", "0,2-3"). 1 when sysfs is unavailable (non-Linux, sandbox)
// — the steal order then degrades to plain cyclic.
int numa_group_count() {
  std::ifstream f("/sys/devices/system/node/online");
  if (!f) return 1;
  std::string s;
  std::getline(f, s);
  int count = 0;
  std::size_t i = 0;
  while (i < s.size()) {
    char* end = nullptr;
    const long lo = std::strtol(s.c_str() + i, &end, 10);
    if (end == s.c_str() + i) break;
    i = static_cast<std::size_t>(end - s.c_str());
    long hi = lo;
    if (i < s.size() && s[i] == '-') {
      hi = std::strtol(s.c_str() + i + 1, &end, 10);
      i = static_cast<std::size_t>(end - s.c_str());
    }
    if (hi >= lo) count += static_cast<int>(hi - lo + 1);
    if (i < s.size() && s[i] == ',') {
      ++i;
    } else {
      break;
    }
  }
  return std::max(1, count);
}

}  // namespace

ShardedMedium::ShardedMedium(const graph::Graph& g, CollisionModel model,
                             int threads, int slices)
    : Medium(g, model) {
  const graph::NodeId n = g.node_count();
  tx_stamp_.assign(n, 0);
  payload_of_.assign(n, kNoPayload);
  stamp_.assign(n, 0);
  tx_count_.assign(n, 0);
  tx_from_.assign(n, graph::kInvalidNode);
  pending_payload_.assign(n, kNoPayload);
  one_.assign(n, 0);
  two_.assign(n, 0);

  const auto prefix = g.degree_prefix();
  const std::uint64_t total = n == 0 ? 0 : prefix[n];

  int want_slices = slices == 0 ? default_slices(total) : std::max(1, slices);
  want_slices = std::min<int>(want_slices, kMaxSlices);
  want_slices = std::min<int>(want_slices, std::max<graph::NodeId>(1, n));

  // Cut the listener space so every slice owns ~the same adjacency volume
  // (degree_prefix is the CSR offset array: offsets[v] = sum of degrees of
  // nodes < v). The cuts depend only on the graph and the slice count.
  slices_.resize(static_cast<std::size_t>(want_slices));
  node_slice_.assign(n, 0);
  graph::NodeId cut = 0;
  for (int s = 0; s < want_slices; ++s) {
    slices_[static_cast<std::size_t>(s)].lo = cut;
    if (s + 1 == want_slices) {
      cut = n;
    } else {
      const std::uint64_t target =
          total * static_cast<std::uint64_t>(s + 1) /
          static_cast<std::uint64_t>(want_slices);
      const auto it = std::lower_bound(prefix.begin(), prefix.end(), target);
      cut = std::max(cut, static_cast<graph::NodeId>(
                              std::min<std::ptrdiff_t>(it - prefix.begin(),
                                                       n)));
    }
    slices_[static_cast<std::size_t>(s)].hi = cut;
    for (graph::NodeId v = slices_[static_cast<std::size_t>(s)].lo; v < cut;
         ++v) {
      node_slice_[v] = static_cast<std::uint32_t>(s);
    }
  }

  int want = threads == 0 ? default_threads() : std::max(1, threads);
  want = std::min<int>(want, std::max<graph::NodeId>(1, n));
  worker_count_ = want;

  if (want > 1) {
    const std::size_t w_count = static_cast<std::size_t>(want);
    ranges_ = std::vector<std::atomic<std::uint64_t>>(w_count);
    worker_stats_.assign(w_count, {});
    // Victim order: same NUMA group first (slices assigned to nearby
    // workers share memory locality), then the rest — each tier cyclic
    // from the thief's own index so contention spreads.
    const int groups = numa_group_count();
    const auto group_of = [&](std::size_t w) {
      return w * static_cast<std::size_t>(groups) / w_count;
    };
    steal_order_.assign(w_count, {});
    for (std::size_t w = 0; w < w_count; ++w) {
      auto& order = steal_order_[w];
      for (std::size_t k = 1; k < w_count; ++k) {
        const std::size_t v = (w + k) % w_count;
        if (group_of(v) == group_of(w)) order.push_back(v);
      }
      for (std::size_t k = 1; k < w_count; ++k) {
        const std::size_t v = (w + k) % w_count;
        if (group_of(v) != group_of(w)) order.push_back(v);
      }
    }
    workers_.reserve(w_count);
    for (std::size_t w = 0; w < w_count; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }
}

ShardedMedium::~ShardedMedium() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

bool ShardedMedium::pop_front(std::atomic<std::uint64_t>& range,
                              std::uint32_t& idx) {
  std::uint64_t cur = range.load(std::memory_order_acquire);
  for (;;) {
    const std::uint32_t lo = static_cast<std::uint32_t>(cur >> 32);
    const std::uint32_t hi = static_cast<std::uint32_t>(cur);
    if (lo >= hi) return false;
    const std::uint64_t next =
        (static_cast<std::uint64_t>(lo + 1) << 32) | hi;
    if (range.compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      idx = lo;
      return true;
    }
  }
}

bool ShardedMedium::steal_back(std::atomic<std::uint64_t>& range,
                               std::uint32_t& idx) {
  std::uint64_t cur = range.load(std::memory_order_acquire);
  for (;;) {
    const std::uint32_t lo = static_cast<std::uint32_t>(cur >> 32);
    const std::uint32_t hi = static_cast<std::uint32_t>(cur);
    if (lo >= hi) return false;
    const std::uint64_t next =
        (static_cast<std::uint64_t>(lo) << 32) | (hi - 1);
    if (range.compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      idx = hi - 1;
      return true;
    }
  }
}

void ShardedMedium::worker_loop(std::size_t w) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_work_.wait(lock, [&] { return stop_ || job_gen_ != seen; });
    if (stop_) return;
    seen = job_gen_;
    lock.unlock();
    if (obs::tracing_enabled()) {
      obs::set_thread_name(
          ("sharded-worker-" + std::to_string(w)).c_str());
    }
    std::uint32_t idx = 0;
    std::uint64_t attempts = 0;
    std::uint64_t steals = 0;
    {
      obs::TraceSpan span("sharded.round", "worker", w, "gen", seen);
      // Drain my own deque from the front, then steal from the back of the
      // other workers' deques. Every slice index is claimed by exactly one
      // CAS, so each slice runs exactly once regardless of interleaving.
      while (pop_front(ranges_[w], idx)) run_slice(idx);
      for (const std::size_t victim : steal_order_[w]) {
        for (;;) {
          ++attempts;
          if (!steal_back(ranges_[victim], idx)) break;
          ++steals;
          run_slice(idx);
        }
      }
    }
    const std::uint64_t finish = now_ns();
    lock.lock();
    WorkerStats& stats = worker_stats_[w];
    stats.steal_attempts += attempts;
    stats.steals += steals;
    stats.finish_ns = finish;
    if (++done_workers_ == workers_.size()) cv_done_.notify_one();
  }
}

void ShardedMedium::kick_and_wait() {
  const std::size_t slice_total = slices_.size();
  if (workers_.empty()) {
    for (std::size_t si = 0; si < slice_total; ++si) run_slice(si);
    return;
  }
  const std::size_t w_count = workers_.size();
  for (std::size_t w = 0; w < w_count; ++w) {
    const std::uint64_t lo = slice_total * w / w_count;
    const std::uint64_t hi = slice_total * (w + 1) / w_count;
    ranges_[w].store(lo << 32 | hi, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    done_workers_ = 0;
    ++job_gen_;
  }
  cv_work_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return done_workers_ == workers_.size(); });
  // Fold each worker's round accounting into the timers. A worker's idle
  // tail is the gap between its own finish and the round's last finisher —
  // the imbalance stealing could not absorb.
  const std::uint64_t round_end = now_ns();
  std::uint64_t round_steals = 0;
  for (WorkerStats& stats : worker_stats_) {
    timers_.steal_attempts += stats.steal_attempts;
    timers_.steals += stats.steals;
    round_steals += stats.steals;
    if (stats.finish_ns != 0 && round_end > stats.finish_ns) {
      timers_.idle_ns += round_end - stats.finish_ns;
    }
    stats = WorkerStats{};
  }
  static obs::Histogram& steals_hist =
      obs::Metrics::global().histogram("radio.sharded.steals_per_round");
  steals_hist.record(round_steals);
}

void ShardedMedium::build_slice_tx() {
  for (auto& s : slices_) s.tx.clear();
  // Rows are sorted and slices are contiguous node intervals, so each
  // row decomposes into runs of equal slice index — one O(degree) walk
  // per transmitter, no binary searches, and each slice's list arrives
  // in txlist_ order (worker-independent by construction).
  for (const graph::NodeId u : txlist_) {
    const auto row = graph_->neighbors(u);
    std::uint32_t start = 0;
    const std::uint32_t len = static_cast<std::uint32_t>(row.size());
    while (start < len) {
      const std::uint32_t si = node_slice_[row[start]];
      std::uint32_t end = start + 1;
      while (end < len && node_slice_[row[end]] == si) ++end;
      slices_[si].tx.push_back({u, start, end});
      start = end;
    }
  }
}

void ShardedMedium::run_slice(std::size_t si) {
  Slice& s = slices_[si];
  s.active = 0;
  switch (mode_) {
    case RoundMode::kScalarDense:
    case RoundMode::kScalarScatter:
      s.deliveries.clear();
      s.collided.clear();
      s.collided_count = 0;
      if (mode_ == RoundMode::kScalarDense) {
        run_slice_scalar_dense(s);
      } else {
        run_slice_scalar_scatter(s);
      }
      break;
    case RoundMode::kBatchGather:
    case RoundMode::kBatchScatter:
      s.delivered_b.clear();
      s.deliveries_b.clear();
      s.collisions_b.clear();
      s.delivered_tally.reset();
      s.collided_tally.reset();
      if (mode_ == RoundMode::kBatchGather) {
        run_slice_batch_gather(s);
      } else {
        run_slice_batch_scatter(s);
      }
      break;
  }
}

void ShardedMedium::run_slice_scalar_dense(Slice& s) {
  // Listener-centric gather: scan my listeners' rows against the
  // transmitter stamps; early-exit once the outcome is certain (a
  // transmitting listener only needs to know whether it was woken).
  for (graph::NodeId v = s.lo; v < s.hi; ++v) {
    const bool is_tx = tx_stamp_[v] == epoch_;
    const std::uint32_t stop = is_tx ? 1u : 2u;
    std::uint32_t count = 0;
    graph::NodeId from = graph::kInvalidNode;
    for (const graph::NodeId u : graph_->neighbors(v)) {
      if (tx_stamp_[u] != epoch_) continue;
      from = u;
      if (++count >= stop) break;
    }
    if (count != 0) ++s.active;
    if (is_tx) continue;  // half-duplex
    if (count == 1) {
      s.deliveries.push_back({v, from, payload_of_[from]});
    } else if (count >= 2) {
      ++s.collided_count;
      if (model_ == CollisionModel::kDetection) {
        s.collided.push_back(v);
      }
    }
  }
}

void ShardedMedium::run_slice_scalar_scatter(Slice& s) {
  // Scatter each transmitter's pre-segmented row run into my listener
  // interval; listeners reset lazily by epoch stamp.
  s.touched.clear();
  for (const SliceTx& t : s.tx) {
    const auto row = graph_->neighbors(t.u);
    const Payload p = payload_of_[t.u];
    for (std::uint32_t i = t.begin; i < t.end; ++i) {
      const graph::NodeId v = row[i];
      if (stamp_[v] != epoch_) {
        stamp_[v] = epoch_;
        tx_count_[v] = 0;
        s.touched.push_back(v);
      }
      ++tx_count_[v];
      pending_payload_[v] = p;
      tx_from_[v] = t.u;
    }
  }
  s.active = static_cast<std::uint32_t>(s.touched.size());
  for (const graph::NodeId v : s.touched) {
    if (tx_stamp_[v] == epoch_) continue;  // half-duplex
    if (tx_count_[v] == 1) {
      s.deliveries.push_back({v, tx_from_[v], pending_payload_[v]});
    } else {
      ++s.collided_count;
      if (model_ == CollisionModel::kDetection) {
        s.collided.push_back(v);
      }
    }
  }
}

std::uint64_t ShardedMedium::emit_batch_listener(Slice& s, graph::NodeId v,
                                                 std::uint64_t one,
                                                 std::uint64_t two) {
  ++s.active;
  const std::uint64_t not_tx = ~round_mask_[v];
  const std::uint64_t win = one & ~two & not_tx;
  const std::uint64_t coll = two & not_tx & round_live_;
  if (win != 0) {
    s.delivered_b.push_back({v, win});
    s.delivered_tally.add(win);
  }
  if (coll != 0) {
    if (model_ == CollisionModel::kDetection) {
      s.collisions_b.push_back({v, coll});
    }
    s.collided_tally.add(coll);
  }
  return win;
}

void ShardedMedium::fold_const_batch(graph::NodeId v, std::uint64_t win) {
  Payload* const brow = round_best_.row(v);
  const std::size_t bls = round_best_.lane_stride();
  do {
    const int lane = std::countr_zero(win);
    Payload& b = brow[static_cast<std::size_t>(lane) * bls];
    if (b == kNoPayload || const_value_ > b) b = const_value_;
    win &= win - 1;
  } while (win != 0);
}

void ShardedMedium::sink_batch(Slice& s, graph::NodeId v, graph::NodeId u,
                               std::uint64_t hit) {
  const bool invariant = round_payload_.lane_invariant();
  if (fold_ == FoldMode::kSenders) {
    if (invariant) {
      const Payload p = round_payload_.at(0, u);
      do {
        const int lane = std::countr_zero(hit);
        s.deliveries_b.push_back({v, static_cast<std::uint8_t>(lane), u, p});
        hit &= hit - 1;
      } while (hit != 0);
    } else {
      do {
        const int lane = std::countr_zero(hit);
        s.deliveries_b.push_back({v, static_cast<std::uint8_t>(lane), u,
                                  round_payload_.at(lane, u)});
        hit &= hit - 1;
      } while (hit != 0);
    }
    return;
  }
  // kMaxFold: max-combine straight into the knowledge planes — slices own
  // disjoint listener intervals, so v's lane run is only ever touched by
  // the worker running this slice.
  Payload* const brow = round_best_.row(v);
  const std::size_t bls = round_best_.lane_stride();
  if (invariant) {
    const Payload p = round_payload_.at(0, u);
    do {
      const int lane = std::countr_zero(hit);
      Payload& b = brow[static_cast<std::size_t>(lane) * bls];
      if (b == kNoPayload || p > b) b = p;
      hit &= hit - 1;
    } while (hit != 0);
  } else {
    const Payload* const prow = round_payload_.row(u);
    const std::size_t pls = round_payload_.lane_stride();
    do {
      const int lane = std::countr_zero(hit);
      Payload& b = brow[static_cast<std::size_t>(lane) * bls];
      const Payload p = prow[static_cast<std::size_t>(lane) * pls];
      if (b == kNoPayload || p > b) b = p;
      hit &= hit - 1;
    } while (hit != 0);
  }
}

void ShardedMedium::rowscan_batch(Slice& s, graph::NodeId v,
                                  std::uint64_t win) {
  // Clearing row scan: each won lane's unique sender is the only
  // transmitting neighbour in it, so lanes clear as senders are found.
  std::uint64_t left = win;
  for (const graph::NodeId u : graph_->neighbors(v)) {
    const std::uint64_t hit = left & round_mask_[u];
    if (hit == 0) continue;
    left &= ~hit;
    sink_batch(s, v, u, hit);
    if (left == 0) break;
  }
}

void ShardedMedium::run_slice_batch_gather(Slice& s) {
  // Listener-centric 64-lane gather over my interval: the bitslice kernel
  // shape, one slice per work-stealing unit. Sender recovery (when the
  // fold needs it) is fused — the re-walked row is L1-hot.
  const std::uint64_t* const mask = round_mask_;
  const std::uint64_t live = round_live_;
  for (graph::NodeId v = s.lo; v < s.hi; ++v) {
    std::uint64_t one = 0;
    std::uint64_t two = 0;
    const auto row = graph_->neighbors(v);
    simd::gather_row(row.data(), row.size(), mask, live, one, two);
    if (one == 0) continue;
    const std::uint64_t win = emit_batch_listener(s, v, one, two);
    if (win == 0 || fold_ == FoldMode::kMasksOnly) continue;
    if (const_fold_) {
      fold_const_batch(v, win);
    } else {
      rowscan_batch(s, v, win);
    }
  }
}

void ShardedMedium::run_slice_batch_scatter(Slice& s) {
  // Saturating bitplane scatter from my pre-segmented row runs, then a
  // drain over the touched listeners (first-touch order, which is
  // txlist-row order — worker-independent). one_/two_ are all-zero
  // between rounds; the drain restores that invariant.
  const std::uint64_t live = round_live_;
  s.touched.clear();
  for (const SliceTx& t : s.tx) {
    const std::uint64_t m = round_mask_[t.u] & live;
    const auto row = graph_->neighbors(t.u);
    for (std::uint32_t i = t.begin; i < t.end; ++i) {
      const graph::NodeId v = row[i];
      if (one_[v] == 0) s.touched.push_back(v);
      two_[v] |= one_[v] & m;
      one_[v] |= m;
    }
  }
  for (const graph::NodeId v : s.touched) {
    const std::uint64_t one = one_[v];
    const std::uint64_t two = two_[v];
    one_[v] = 0;
    two_[v] = 0;
    const std::uint64_t win = emit_batch_listener(s, v, one, two);
    if (win == 0 || fold_ == FoldMode::kMasksOnly) continue;
    if (const_fold_) {
      fold_const_batch(v, win);
    } else {
      rowscan_batch(s, v, win);
    }
  }
}

void ShardedMedium::run_batch(std::span<const std::uint64_t> tx_mask,
                              PayloadPlanes payload, int lanes,
                              BatchOutcome& out, FoldMode mode,
                              KnowledgePlanes best) {
  const graph::NodeId n = graph_->node_count();
  if (tx_mask.size() != n || payload.plane_size() != n) {
    throw std::invalid_argument("ShardedMedium: size mismatch");
  }
  if (lanes < 1 || lanes > kMaxLanes || lanes > payload.lane_capacity()) {
    throw std::invalid_argument("ShardedMedium: lanes out of range");
  }
  const std::uint64_t live = radio::lane_mask(lanes);
  out.clear();
  tx_tally_.reset();

  const obs::TraceSpan trace_span("sharded.batch_round", "lanes",
                                  static_cast<std::uint64_t>(lanes));
  const std::uint64_t t0 = now_ns();
  // Serial prologue: transmitter list, per-lane tallies, the
  // traversal-volume estimate that picks the gather/scatter shape, and —
  // for a lane-invariant max-fold — the constant-payload check that lets
  // deliveries fold with no sender identification (see the bitslice
  // backend's const-fold).
  txlist_.clear();
  std::uint64_t work = 0;
  bool const_plane = mode == FoldMode::kMaxFold && payload.lane_invariant() &&
                     recovery_ == RecoveryStrategy::kAuto;
  Payload const_value = kNoPayload;
  bool const_seen = false;
  for (graph::NodeId u = 0; u < n; ++u) {
    const std::uint64_t m = tx_mask[u] & live;
    if (m == 0) continue;
    tx_tally_.add(m);
    txlist_.push_back(u);
    work += graph_->degree(u);
    if (const_plane) {
      const Payload p = payload.at(0, u);
      if (!const_seen) {
        const_value = p;
        const_seen = true;
      } else if (p != const_value) {
        const_plane = false;
      }
    }
  }
  tx_tally_.extract(out.transmitter_count, lanes);

  const bool gather = work >= graph_->edge_count();
  mode_ = gather ? RoundMode::kBatchGather : RoundMode::kBatchScatter;
  fold_ = mode;
  const_fold_ = const_plane;
  const_value_ = const_value;
  round_mask_ = tx_mask.data();
  round_payload_ = payload;
  round_best_ = best;
  round_lanes_ = lanes;
  round_live_ = live;
  if (!gather) build_slice_tx();
  kick_and_wait();
  // Slices fuse accumulation, emission, and recovery, so the prologue and
  // the whole parallel section count as traversal; only the slice-ordered
  // merge below is attributable to the output phase.
  const std::uint64_t t1 = now_ns();
  timers_.traverse_ns += t1 - t0;

  // Deterministic merge: slice-index order, regardless of which worker ran
  // which slice. Per-slice tallies extract into a zeroed scratch and SUM
  // (LaneCounter::extract ORs bits, so it must not target the aggregate).
  std::array<std::uint32_t, kMaxLanes> scratch;
  std::uint32_t active = 0;
  for (const auto& s : slices_) {
    out.delivered.insert(out.delivered.end(), s.delivered_b.begin(),
                         s.delivered_b.end());
    if (mode == FoldMode::kSenders) {
      out.deliveries.insert(out.deliveries.end(), s.deliveries_b.begin(),
                            s.deliveries_b.end());
    }
    out.collisions.insert(out.collisions.end(), s.collisions_b.begin(),
                          s.collisions_b.end());
    active += s.active;
    scratch.fill(0);
    s.delivered_tally.extract(scratch, lanes);
    for (int l = 0; l < lanes; ++l) out.delivered_count[l] += scratch[l];
    scratch.fill(0);
    s.collided_tally.extract(scratch, lanes);
    for (int l = 0; l < lanes; ++l) out.collided_count[l] += scratch[l];
  }
  out.active_listeners = active;
  timers_.active_listeners += active;
  const std::uint64_t t2 = now_ns();
  timers_.output_ns += t2 - t1;
  static obs::Histogram& round_hist =
      obs::Metrics::global().histogram("radio.sharded.round_ns");
  round_hist.record(t2 - t0);
  if (mode != FoldMode::kMasksOnly) {
    if (const_fold_) {
      ++timers_.constfold_rounds;
    } else {
      ++timers_.rowscan_rounds;
    }
  }
  ++timers_.rounds;
}

void ShardedMedium::resolve_batch(std::span<const std::uint64_t> tx_mask,
                                  PayloadPlanes payload, int lanes,
                                  BatchOutcome& out, bool with_senders) {
  run_batch(tx_mask, payload, lanes, out,
            with_senders ? FoldMode::kSenders : FoldMode::kMasksOnly,
            KnowledgePlanes(std::span<Payload>{}));
}

void ShardedMedium::resolve_batch_max(std::span<const std::uint64_t> tx_mask,
                                      PayloadPlanes payload, int lanes,
                                      KnowledgePlanes best,
                                      BatchOutcome& out) {
  if (best.plane_size() < graph_->node_count() ||
      lanes > best.lane_capacity()) {
    throw std::invalid_argument(
        "ShardedMedium::resolve_batch_max: best too small");
  }
  run_batch(tx_mask, payload, lanes, out, FoldMode::kMaxFold, best);
}

void ShardedMedium::resolve(std::span<const graph::NodeId> transmitters,
                            std::span<const Payload> tx_payload,
                            SparseOutcome& out) {
  if (transmitters.size() != tx_payload.size()) {
    throw std::invalid_argument("ShardedMedium::resolve: size mismatch");
  }
  out.deliveries.clear();
  out.collided_nodes.clear();
  out.transmitter_count = 0;
  out.collided_count = 0;
  out.active_listeners = 0;

  const obs::TraceSpan trace_span("sharded.round_scalar", "tx",
                                  transmitters.size());
  const std::uint64_t t0 = now_ns();
  ++epoch_;
  txlist_.clear();
  std::uint64_t work = 0;
  for (std::size_t i = 0; i < transmitters.size(); ++i) {
    const graph::NodeId u = transmitters[i];
    if (tx_stamp_[u] == epoch_) continue;
    tx_stamp_[u] = epoch_;
    payload_of_[u] = tx_payload[i];
    txlist_.push_back(u);
    work += graph_->degree(u);
  }
  out.transmitter_count = static_cast<std::uint32_t>(txlist_.size());
  // The dense gather scans every listener's full row (2m edge visits in
  // total), so it only beats the scatter's sum-of-transmitter-degrees
  // volume once transmitters cover at least half of all adjacency.
  const bool dense = work >= graph_->edge_count();
  mode_ = dense ? RoundMode::kScalarDense : RoundMode::kScalarScatter;
  if (!dense) build_slice_tx();
  kick_and_wait();

  // Slice resolution fuses accumulation and emission per slice, so the
  // whole parallel section counts as traversal; only the merge below is
  // attributable to the output phase.
  const std::uint64_t t1 = now_ns();
  timers_.traverse_ns += t1 - t0;

  // Deterministic merge: slice-index order, regardless of which worker
  // ran which slice.
  for (const auto& s : slices_) {
    out.deliveries.insert(out.deliveries.end(), s.deliveries.begin(),
                          s.deliveries.end());
    out.collided_nodes.insert(out.collided_nodes.end(), s.collided.begin(),
                              s.collided.end());
    out.collided_count += s.collided_count;
    out.active_listeners += s.active;
  }
  timers_.active_listeners += out.active_listeners;
  const std::uint64_t t2 = now_ns();
  timers_.output_ns += t2 - t1;
  static obs::Histogram& round_hist =
      obs::Metrics::global().histogram("radio.sharded.round_ns");
  round_hist.record(t2 - t0);
  ++timers_.rounds;
}

}  // namespace radiocast::radio
