#include "radio/medium_sharded.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "util/parse.hpp"

namespace radiocast::radio {

namespace {

// Worker count when the caller passes threads == 0: the
// RADIOCAST_SHARD_THREADS environment variable when set, else a
// hardware-derived default. The env override matters on hosts where
// hardware_concurrency() lies (containers and CI runners often report 1,
// silently degrading the backend to single-threaded). A set-but-invalid
// value (non-numeric, zero, negative) throws instead of silently falling
// back — a typo'd override must never quietly change the worker count.
int default_threads() {
  if (const char* env = std::getenv("RADIOCAST_SHARD_THREADS")) {
    const int v = util::parse_positive_int(env, "RADIOCAST_SHARD_THREADS");
    return std::min(v, 64);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 8u));
}

}  // namespace

ShardedMedium::ShardedMedium(const graph::Graph& g, CollisionModel model,
                             int threads)
    : Medium(g, model) {
  const graph::NodeId n = g.node_count();
  tx_stamp_.assign(n, 0);
  payload_of_.assign(n, kNoPayload);
  stamp_.assign(n, 0);
  tx_count_.assign(n, 0);
  tx_from_.assign(n, graph::kInvalidNode);
  pending_payload_.assign(n, kNoPayload);

  int want = threads == 0 ? default_threads() : std::max(1, threads);
  want = std::min<int>(want, std::max<graph::NodeId>(1, n));

  // Cut the listener space so every shard owns ~the same adjacency volume
  // (degree_prefix is the CSR offset array: offsets[v] = sum of degrees of
  // nodes < v).
  const auto prefix = g.degree_prefix();
  const std::uint64_t total = n == 0 ? 0 : prefix[n];
  shards_.resize(static_cast<std::size_t>(want));
  graph::NodeId cut = 0;
  for (int s = 0; s < want; ++s) {
    shards_[s].lo = cut;
    if (s + 1 == want) {
      cut = n;
    } else {
      const std::uint64_t target =
          total * static_cast<std::uint64_t>(s + 1) / want;
      const auto it =
          std::lower_bound(prefix.begin(), prefix.end(), target);
      cut = std::max(cut, static_cast<graph::NodeId>(
                              std::min<std::ptrdiff_t>(it - prefix.begin(),
                                                       n)));
    }
    shards_[s].hi = cut;
  }

  if (want > 1) {
    workers_.reserve(static_cast<std::size_t>(want));
    for (int w = 0; w < want; ++w) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

ShardedMedium::~ShardedMedium() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

void ShardedMedium::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_work_.wait(lock, [&] { return stop_ || job_gen_ != seen; });
    if (stop_) return;
    seen = job_gen_;
    while (next_shard_ < shards_.size()) {
      Shard& shard = shards_[next_shard_++];
      const bool dense = dense_round_;
      lock.unlock();
      run_shard(shard, dense);
      lock.lock();
    }
    if (++done_workers_ == workers_.size()) cv_done_.notify_one();
  }
}

void ShardedMedium::run_shard(Shard& shard, bool dense) {
  shard.deliveries.clear();
  shard.collided.clear();
  shard.collided_count = 0;
  if (dense) {
    // Listener-centric gather: scan my listeners' rows against the
    // transmitter stamps; early-exit once a collision is certain.
    for (graph::NodeId v = shard.lo; v < shard.hi; ++v) {
      if (tx_stamp_[v] == epoch_) continue;  // half-duplex
      std::uint32_t count = 0;
      graph::NodeId from = graph::kInvalidNode;
      for (const graph::NodeId u : graph_->neighbors(v)) {
        if (tx_stamp_[u] != epoch_) continue;
        from = u;
        if (++count >= 2) break;
      }
      if (count == 1) {
        shard.deliveries.push_back({v, from, payload_of_[from]});
      } else if (count >= 2) {
        ++shard.collided_count;
        if (model_ == CollisionModel::kDetection) {
          shard.collided.push_back(v);
        }
      }
    }
    return;
  }
  // Frontier: intersect each transmitter's row with my listener interval.
  shard.touched.clear();
  for (const graph::NodeId u : txlist_) {
    const auto row = graph_->neighbors(u);
    const Payload p = payload_of_[u];
    auto it = std::lower_bound(row.begin(), row.end(), shard.lo);
    for (; it != row.end() && *it < shard.hi; ++it) {
      const graph::NodeId v = *it;
      if (stamp_[v] != epoch_) {
        stamp_[v] = epoch_;
        tx_count_[v] = 0;
        shard.touched.push_back(v);
      }
      ++tx_count_[v];
      pending_payload_[v] = p;
      tx_from_[v] = u;
    }
  }
  for (const graph::NodeId v : shard.touched) {
    if (tx_stamp_[v] == epoch_) continue;
    if (tx_count_[v] == 1) {
      shard.deliveries.push_back({v, tx_from_[v], pending_payload_[v]});
    } else {
      ++shard.collided_count;
      if (model_ == CollisionModel::kDetection) {
        shard.collided.push_back(v);
      }
    }
  }
}

void ShardedMedium::resolve(std::span<const graph::NodeId> transmitters,
                            std::span<const Payload> tx_payload,
                            SparseOutcome& out) {
  if (transmitters.size() != tx_payload.size()) {
    throw std::invalid_argument("ShardedMedium::resolve: size mismatch");
  }
  out.deliveries.clear();
  out.collided_nodes.clear();
  out.transmitter_count = 0;
  out.collided_count = 0;
  // Not tracked: the dense gather early-exits rows and skips transmitting
  // listeners, so the woken-set size the other backends report is not
  // available without extra work per shard.
  out.active_listeners = 0;

  const std::uint64_t t0 = now_ns();
  ++epoch_;
  txlist_.clear();
  std::uint64_t work = 0;
  for (std::size_t i = 0; i < transmitters.size(); ++i) {
    const graph::NodeId u = transmitters[i];
    if (tx_stamp_[u] == epoch_) continue;
    tx_stamp_[u] = epoch_;
    payload_of_[u] = tx_payload[i];
    txlist_.push_back(u);
    work += graph_->degree(u);
  }
  out.transmitter_count = static_cast<std::uint32_t>(txlist_.size());
  // The dense gather scans every listener's full row (2m edge visits in
  // total), so it only beats the frontier's sum-of-transmitter-degrees
  // scatter once transmitters cover at least half of all adjacency.
  const bool dense = work >= graph_->edge_count();

  if (workers_.empty()) {
    for (auto& shard : shards_) run_shard(shard, dense);
  } else {
    {
      std::lock_guard<std::mutex> lock(mu_);
      next_shard_ = 0;
      done_workers_ = 0;
      dense_round_ = dense;
      ++job_gen_;
    }
    cv_work_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return done_workers_ == workers_.size(); });
  }

  // Shard resolution fuses accumulation and emission per shard, so the
  // whole parallel section counts as traversal; only the merge below is
  // attributable to the output phase.
  const std::uint64_t t1 = now_ns();
  timers_.traverse_ns += t1 - t0;

  // Deterministic merge: shard-index order, regardless of which worker ran
  // which shard.
  for (const auto& shard : shards_) {
    out.deliveries.insert(out.deliveries.end(), shard.deliveries.begin(),
                          shard.deliveries.end());
    out.collided_nodes.insert(out.collided_nodes.end(),
                              shard.collided.begin(), shard.collided.end());
    out.collided_count += shard.collided_count;
  }
  timers_.output_ns += now_ns() - t1;
  ++timers_.rounds;
}

}  // namespace radiocast::radio
