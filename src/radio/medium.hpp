// Pluggable interference-resolution backends for the synchronous radio
// medium.
//
// Medium is the seam between protocol logic and the collision kernel:
// every round a transmitter set goes in and the successful receptions
// (plus collision evidence) come out. Four backends implement it:
//
//   scalar   — epoch-stamped reference kernel; resolve() adaptively picks a
//              frontier (transmitter-scatter) or dense (full-array) path
//              from the transmitter density
//   bitslice — 64-replication-wide batch kernel: per-listener ">=1 tx" and
//              ">=2 tx" bitplanes updated with bitwise saturating adds, so
//              one CSR traversal resolves a round for up to 64 independent
//              Monte-Carlo lanes at once
//   sharded  — thread-pooled kernel that cuts the listener space into
//              contiguous CSR shards (balanced by the degree prefix sum)
//              and resolves them in parallel with a deterministic merge
//   frontier — event-driven propagation-queue kernel (the constraint-solver
//              watch-list idiom): transmitters enqueue only the listeners
//              adjacent to them, per-listener state is reset lazily by
//              round stamps, so a round costs O(active work) — never O(n).
//              Its native entry point is resolve_batch_active, which takes
//              the sparse transmitter list directly
//
// All backends implement identical interference semantics — the
// cross-backend differential test (tests/test_medium_backends.cpp) holds
// them to it on random instances under both collision models. Determinism
// guarantees: for a fixed backend and input, the outcome is always
// byte-identical (the sharded backend's merge is ordered by shard index,
// independent of OS scheduling). Delivery order within an outcome is
// "first touch" order for scalar/bitslice and shard-major first-touch
// order for sharded; consumers must not depend on it beyond determinism.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "radio/model.hpp"

namespace radiocast::radio {

/// One successful reception in a round.
struct SparseDelivery {
  graph::NodeId node;  // the listener
  graph::NodeId from;  // the unique transmitting neighbour
  Payload payload;

  bool operator==(const SparseDelivery&) const = default;
};

/// Round outcome in sparse form: only the nodes that received (or, under
/// collision detection, detectably collided) are listed.
struct SparseOutcome {
  std::vector<SparseDelivery> deliveries;
  /// Listeners that perceived >= 2 transmitting neighbours. Filled only
  /// under CollisionModel::kDetection — mirroring Reception::kCollision on
  /// the dense path — since without detection a collision is
  /// indistinguishable from silence and must not leak to protocols.
  std::vector<graph::NodeId> collided_nodes;
  std::uint32_t transmitter_count = 0;
  std::uint32_t collided_count = 0;
  /// Distinct listeners adjacent to >= 1 transmitter this round (the
  /// "woken" set — transmitters themselves included when a neighbour also
  /// transmits). A cost diagnostic, NOT part of the semantic outcome:
  /// backends that don't track it report 0, and differential equality is
  /// never asserted on it across backends that do.
  std::uint32_t active_listeners = 0;
};

/// Which backend resolves interference. kScalar is the reference; the
/// others trade generality for throughput (see the file comment).
enum class MediumKind : std::uint8_t { kScalar, kBitslice, kSharded,
                                       kFrontier };

/// Canonical backend names, indexed by MediumKind — the single source of
/// truth for to_string, parse_medium_kind, and flag validation.
inline constexpr std::array<std::string_view, 4> kMediumNames{
    "scalar", "bitslice", "sharded", "frontier"};

std::string_view to_string(MediumKind kind);
/// Parses a kMediumNames entry; throws std::invalid_argument otherwise
/// (message lists the legal values).
MediumKind parse_medium_kind(std::string_view name);

/// How a backend that defers sender identification (the bitslice batch
/// kernel) recovers, for each delivered (listener, lane), WHO transmitted:
///
///   kRowScan  — re-walk each winning listener's CSR row against the
///               transmit masks until every won lane names its sender
///               (output-sized, but random reads over the whole adjacency
///               when most listeners win somewhere)
///   kIdPlanes — accumulate ceil(log2 n) sender-id XOR planes per touched
///               listener during the traversal itself; on a won lane the
///               XOR of the transmitted ids IS the unique sender's id, so
///               recovery reads it back in O(idbits) with no second CSR pass
///   kAuto     — predict the cheaper one per round: id planes cost
///               ~idbits x traversal volume, the row scan ~the delivered
///               row volume of the previous sender-recovering round
///
/// Results are identical under every strategy (and on backends that
/// identify senders inline and ignore the knob entirely); only the cost
/// moves. Pinned by the recovery differential tests.
enum class RecoveryStrategy : std::uint8_t { kAuto, kRowScan, kIdPlanes };

/// Canonical strategy names, indexed by RecoveryStrategy — the single
/// source of truth for to_string, parse_recovery_strategy, and the
/// --recovery= flag validation.
inline constexpr std::array<std::string_view, 3> kRecoveryNames{
    "auto", "rowscan", "idplanes"};

std::string_view to_string(RecoveryStrategy strategy);
/// Parses a kRecoveryNames entry; throws std::invalid_argument otherwise
/// (message lists the legal values).
RecoveryStrategy parse_recovery_strategy(std::string_view name);

/// Cumulative wall-time breakdown of a medium's resolve calls, split along
/// the batch kernel's phases so "where does a round go" is measured, not
/// asserted. Backends attribute what they can cleanly separate (fused
/// phases count toward the phase they are fused into) and leave the rest
/// zero; the rowscan/idplane round counters say which recovery path ran.
struct PhaseTimers {
  std::uint64_t traverse_ns = 0;  // plane accumulation / kernel traversal
  std::uint64_t output_ns = 0;    // output scan: masks, tallies, re-zeroing
  std::uint64_t recover_ns = 0;   // sender recovery (row scan or id planes)
  /// Event-driven phases (the frontier backend): transmitter-scatter wake
  /// pass and woken-queue drain. Frontier rounds report these instead of
  /// traverse_ns/output_ns — the backend never runs a full-array pass.
  std::uint64_t enqueue_ns = 0;
  std::uint64_t drain_ns = 0;
  /// Cumulative woken-listener count across rounds (sum of each round's
  /// SparseOutcome/BatchOutcome active_listeners); 0 on backends that
  /// don't track the active set.
  std::uint64_t active_listeners = 0;
  std::uint64_t rounds = 0;       // resolve calls accumulated
  std::uint64_t rowscan_rounds = 0;   // rounds recovered by row scan
  std::uint64_t idplane_rounds = 0;   // rounds recovered from id planes
  /// Rounds where the max-fold proved every transmitter carried one
  /// payload value, so deliveries folded with no sender identification.
  std::uint64_t constfold_rounds = 0;
  /// Work-stealing pool behaviour (the sharded backend; all zero elsewhere
  /// and in single-worker mode): steal_back attempts against other
  /// workers' deques, the subset that claimed a slice, and the cumulative
  /// ns workers sat finished while the round's slowest worker was still
  /// running (the load-imbalance tail stealing could not absorb).
  std::uint64_t steal_attempts = 0;
  std::uint64_t steals = 0;
  std::uint64_t idle_ns = 0;
  void reset() { *this = PhaseTimers{}; }
};

/// Lane capacity of the batch entry point (width of the bitplane words).
constexpr int kMaxLanes = 64;

/// Mask with the low `lanes` bits set — the "every lane" word for a batch
/// of that width (shift-by-64 safe). Requires 1 <= lanes <= kMaxLanes.
constexpr std::uint64_t lane_mask(int lanes) {
  return lanes >= kMaxLanes ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << lanes) - 1;
}

/// Per-lane payload view for the batched entry points: entry (lane, node)
/// is what the node transmits in that lane. Three layouts, all expressed
/// through one dual-stride address function
///
///   at(lane, v) = data[lane * lane_stride + v * node_stride]
///
///   * shared — one node_count-sized plane broadcast to every lane
///     (lane_stride 0). The original lane-invariant contract, still the
///     natural fit for floods where every lane relays the same constant.
///   * lane-major — a lanes x node_count buffer where plane l occupies
///     [l * node_count, (l+1) * node_count). Kept as a view adapter for
///     scalar facades and per-lane extraction.
///   * node-major — a node_count x lanes buffer where node v's lane words
///     occupy [v * lanes, (v+1) * lanes): one contiguous cache-line run
///     per listener. This is the layout protocol knowledge planes (best[])
///     use, so the max-fold's per-listener writes are sequential instead
///     of strided across planes.
///
/// The view is non-owning; the buffer must outlive the call it is passed
/// to (media never retain it across calls).
class PayloadPlanes {
 public:
  /// Lane-invariant plane, shared by every lane. Implicit on purpose:
  /// existing span/vector call sites keep working unchanged.
  PayloadPlanes(std::span<const Payload> plane)
      : data_(plane.data()), plane_size_(plane.size()) {}
  PayloadPlanes(const std::vector<Payload>& plane)
      : PayloadPlanes(std::span<const Payload>(plane)) {}

  /// Lane-major planes over a (lanes x node_count) buffer; the number of
  /// lanes served is data.size() / node_count.
  static PayloadPlanes lane_major(std::span<const Payload> data,
                                  std::size_t node_count) {
    const int capacity = capacity_for(data.size(), node_count);
    return PayloadPlanes(data.data(), node_count, node_count, 1, capacity);
  }

  /// Node-major planes over a (node_count x lanes) buffer: node v's lane
  /// words are the contiguous run data[v * lanes .. v * lanes + lanes).
  static PayloadPlanes node_major(std::span<const Payload> data,
                                  std::size_t node_count) {
    const int capacity = capacity_for(data.size(), node_count);
    return PayloadPlanes(data.data(), node_count, 1,
                         static_cast<std::size_t>(capacity), capacity);
  }

  /// What `v` transmits in lane `lane`.
  Payload at(int lane, graph::NodeId v) const {
    return data_[lane_stride_ * static_cast<std::size_t>(lane) +
                 node_stride_ * static_cast<std::size_t>(v)];
  }
  /// Base pointer of node `v`'s lane run; lane l lives at
  /// row(v)[l * lane_stride()]. Hot loops hoist this so one generic code
  /// path covers every layout with no branches.
  const Payload* row(graph::NodeId v) const {
    return data_ + node_stride_ * static_cast<std::size_t>(v);
  }
  std::size_t lane_stride() const { return lane_stride_; }
  std::size_t node_stride() const { return node_stride_; }
  /// Nodes covered by each plane.
  std::size_t plane_size() const { return plane_size_; }
  /// Lanes the buffer can serve (kMaxLanes when shared).
  int lane_capacity() const { return lane_capacity_; }
  bool lane_invariant() const { return lane_stride_ == 0; }

 private:
  static int capacity_for(std::size_t size, std::size_t node_count) {
    return node_count == 0
               ? kMaxLanes
               : static_cast<int>(
                     std::min<std::size_t>(kMaxLanes, size / node_count));
  }

  PayloadPlanes(const Payload* data, std::size_t plane_size,
                std::size_t lane_stride, std::size_t node_stride,
                int lane_capacity)
      : data_(data),
        plane_size_(plane_size),
        lane_stride_(lane_stride),
        node_stride_(node_stride),
        lane_capacity_(lane_capacity) {}

  const Payload* data_;
  std::size_t plane_size_;
  std::size_t lane_stride_ = 0;
  std::size_t node_stride_ = 1;
  int lane_capacity_ = kMaxLanes;
};

/// Mutable per-lane knowledge-plane view — the fold target of the
/// resolve_batch_max entry points. Same dual-stride address function as
/// PayloadPlanes (shared / lane-major / node-major); node-major is the
/// layout the batched protocol cores use, so each listener's up-to-64
/// folded lane words land in one contiguous cache-line run instead of the
/// old strided best[lane * n + v] scatter.
class KnowledgePlanes {
 public:
  /// Single shared plane — the scalar facades' adapter (1 lane, so the
  /// layout distinction is vacuous). Implicit on purpose: span/vector
  /// call sites that fold one lane keep working unchanged.
  KnowledgePlanes(std::span<Payload> plane)
      : data_(plane.data()), plane_size_(plane.size()), lane_capacity_(1) {}
  KnowledgePlanes(std::vector<Payload>& plane)
      : KnowledgePlanes(std::span<Payload>(plane)) {}

  /// Lane-major planes over a (lanes x node_count) buffer (view adapter
  /// for consumers that still want plane-contiguous extraction).
  static KnowledgePlanes lane_major(std::span<Payload> data,
                                    std::size_t node_count) {
    const int capacity = capacity_for(data.size(), node_count);
    return KnowledgePlanes(data.data(), node_count, node_count, 1, capacity);
  }

  /// Node-major planes over a (node_count x lanes) buffer: node v's lane
  /// words are the contiguous run data[v * lanes .. v * lanes + lanes).
  static KnowledgePlanes node_major(std::span<Payload> data,
                                    std::size_t node_count) {
    const int capacity = capacity_for(data.size(), node_count);
    return KnowledgePlanes(data.data(), node_count, 1,
                           static_cast<std::size_t>(capacity), capacity);
  }

  Payload& at(int lane, graph::NodeId v) const {
    return data_[lane_stride_ * static_cast<std::size_t>(lane) +
                 node_stride_ * static_cast<std::size_t>(v)];
  }
  /// Base pointer of node `v`'s lane run; lane l lives at
  /// row(v)[l * lane_stride()].
  Payload* row(graph::NodeId v) const {
    return data_ + node_stride_ * static_cast<std::size_t>(v);
  }
  std::size_t lane_stride() const { return lane_stride_; }
  std::size_t node_stride() const { return node_stride_; }
  std::size_t plane_size() const { return plane_size_; }
  int lane_capacity() const { return lane_capacity_; }

 private:
  static int capacity_for(std::size_t size, std::size_t node_count) {
    return node_count == 0
               ? kMaxLanes
               : static_cast<int>(
                     std::min<std::size_t>(kMaxLanes, size / node_count));
  }

  KnowledgePlanes(Payload* data, std::size_t plane_size,
                  std::size_t lane_stride, std::size_t node_stride,
                  int lane_capacity)
      : data_(data),
        plane_size_(plane_size),
        lane_stride_(lane_stride),
        node_stride_(node_stride),
        lane_capacity_(lane_capacity) {}

  Payload* data_;
  std::size_t plane_size_;
  std::size_t lane_stride_ = 0;
  std::size_t node_stride_ = 1;
  int lane_capacity_ = 1;
};

/// One transmitter of a batched round in sparse form: the node plus the
/// lane set it transmits in. The native input of the event-driven frontier
/// backend — handing the medium the transmitter list directly lets a round
/// cost O(sum of active degrees) with no O(n) mask scan. Entries with the
/// same node are allowed; their lane masks OR together (the payload comes
/// from the PayloadPlanes view, so there is nothing else to merge).
struct ActiveTx {
  graph::NodeId node;
  std::uint64_t lanes;

  bool operator==(const ActiveTx&) const = default;
};

/// One successful reception in one lane of a batched round.
struct BatchDelivery {
  graph::NodeId node;
  std::uint8_t lane;
  graph::NodeId from;
  Payload payload;

  bool operator==(const BatchDelivery&) const = default;
};

/// Aggregate view of one listener's receptions: the lane set in which it
/// had exactly one transmitting neighbour. The bit-sliced counterpart of
/// SparseDelivery — 64 lanes of delivery evidence in one word.
struct BatchDeliveredMask {
  graph::NodeId node;
  std::uint64_t lanes;

  bool operator==(const BatchDeliveredMask&) const = default;
};

/// Listener that detectably collided, with the lane set it collided in.
/// Entries for the same node may be split across several records (the
/// per-lane fallback emits one per lane); consumers should OR the masks.
struct BatchCollision {
  graph::NodeId node;
  std::uint64_t lanes;
};

/// Outcome of one batched round across up to kMaxLanes lanes.
struct BatchOutcome {
  /// Always filled: one entry per listener that received in >= 1 lane.
  /// Listeners appear at most once; entries cover every delivery.
  std::vector<BatchDeliveredMask> delivered;
  /// Per-delivery sender + payload detail. Filled only when resolve_batch
  /// runs with_senders — recovering the unique sender costs an extra row
  /// scan per delivered listener, which mask-only consumers (Monte-Carlo
  /// counting, flood frontiers) don't want to pay.
  std::vector<BatchDelivery> deliveries;
  /// Filled only under CollisionModel::kDetection (see SparseOutcome).
  std::vector<BatchCollision> collisions;
  std::array<std::uint32_t, kMaxLanes> transmitter_count{};
  std::array<std::uint32_t, kMaxLanes> delivered_count{};
  std::array<std::uint32_t, kMaxLanes> collided_count{};
  /// Distinct listeners adjacent to >= 1 transmitter in >= 1 lane (see
  /// SparseOutcome::active_listeners): a cost diagnostic, 0 on backends
  /// that don't track it, never part of outcome equality.
  std::uint32_t active_listeners = 0;

  void clear();
};

/// Interference-resolution backend interface. Implementations own their
/// scratch state (so they are not thread-safe per instance, matching the
/// old Network) and alias the graph — the graph must outlive the medium.
class Medium {
 public:
  Medium(const graph::Graph& g, CollisionModel model)
      : graph_(&g), model_(model) {}
  virtual ~Medium() = default;
  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  virtual std::string_view name() const = 0;
  const graph::Graph& topology() const { return *graph_; }
  CollisionModel collision_model() const { return model_; }

  /// Sender-recovery strategy knob (see RecoveryStrategy). Only honoured
  /// by backends that defer sender identification (bitslice); the others
  /// identify senders inline and produce identical results regardless.
  RecoveryStrategy recovery_strategy() const { return recovery_; }
  void set_recovery_strategy(RecoveryStrategy strategy) {
    recovery_ = strategy;
  }

  /// Per-phase timing accumulated since construction / the last reset.
  /// Zeroed fields mean the backend does not instrument that phase.
  const PhaseTimers& phase_timers() const { return timers_; }
  void reset_phase_timers() { timers_.reset(); }

  /// Unified single-instance entry point: resolves one round given only
  /// the transmitter list (everyone else listens). Duplicate transmitters
  /// are counted once (first occurrence's payload wins); transmitters are
  /// half-duplex and never receive. Overwrites `out`. Counters are the
  /// caller's job (Network aggregates across rounds).
  virtual void resolve(std::span<const graph::NodeId> transmitters,
                       std::span<const Payload> tx_payload,
                       SparseOutcome& out) = 0;

  /// Batched entry point: bit l of tx_mask[v] says whether v transmits in
  /// replication lane l (bits >= `lanes` are ignored); `payload` supplies
  /// what each node sends per lane — either one shared plane (the original
  /// lane-invariant contract) or lane-major per-lane planes, so batched
  /// protocols can relay lane-local state (see PayloadPlanes).
  /// `with_senders` opts into the per-delivery sender/payload detail
  /// (out.deliveries); the aggregate delivered masks and all counters are
  /// produced either way. The default implementation decomposes into
  /// per-lane resolve() calls; the bitslice backend overrides it with the
  /// one-traversal bitplane kernel.
  virtual void resolve_batch(std::span<const std::uint64_t> tx_mask,
                             PayloadPlanes payload, int lanes,
                             BatchOutcome& out, bool with_senders = true);

  /// Fold variant of resolve_batch for max-relay protocols (Decay,
  /// Compete): every delivery (v, lane) max-combines its payload straight
  /// into the knowledge planes — best.at(lane, v) = max(best, delivered)
  /// with kNoPayload as "nothing yet" — instead of materializing
  /// per-delivery records. The view accepts any KnowledgePlanes layout;
  /// node-major is the fast path (each listener's folded lane words are
  /// one contiguous run). `out` carries the delivered masks and counters;
  /// out.deliveries is left empty (the whole point is not to build it:
  /// for a 64-lane batch that is millions of records per replication
  /// sweep). Results are identical to running resolve_batch with senders
  /// and folding the deliveries afterwards.
  virtual void resolve_batch_max(std::span<const std::uint64_t> tx_mask,
                                 PayloadPlanes payload, int lanes,
                                 KnowledgePlanes best, BatchOutcome& out);

  /// Sparse batched entry point: the transmitter set arrives as a list of
  /// (node, lane mask) entries instead of an n-word dense mask, so a
  /// backend that can exploit sparsity (frontier) resolves the round in
  /// O(active work) with no per-node scan. Duplicate nodes OR their lane
  /// masks; entries must satisfy node < node_count (throws otherwise).
  /// Semantics are identical to resolve_batch over the equivalent dense
  /// mask — the default implementation materialises that mask into
  /// lazily-cleared scratch and delegates, so every backend accepts the
  /// sparse form and differential tests can drive them all through it.
  virtual void resolve_batch_active(std::span<const ActiveTx> tx,
                                    PayloadPlanes payload, int lanes,
                                    BatchOutcome& out,
                                    bool with_senders = true);

  /// Fold variant of resolve_batch_active (see resolve_batch_max).
  virtual void resolve_batch_max_active(std::span<const ActiveTx> tx,
                                        PayloadPlanes payload, int lanes,
                                        KnowledgePlanes best,
                                        BatchOutcome& out);

 protected:
  /// Monotonic nanosecond clock for the phase timers.
  static std::uint64_t now_ns();

  const graph::Graph* graph_;
  CollisionModel model_;
  RecoveryStrategy recovery_ = RecoveryStrategy::kAuto;
  PhaseTimers timers_;

 private:
  // Scratch for the default per-lane resolve_batch decomposition.
  std::vector<graph::NodeId> lane_tx_;
  std::vector<Payload> lane_payload_;
  std::vector<std::uint64_t> agg_mask_;
  std::vector<std::uint64_t> agg_stamp_;
  std::vector<graph::NodeId> agg_touched_;
  std::uint64_t agg_epoch_ = 0;
  SparseOutcome lane_out_;
  // Dense-mask scratch for the default resolve_batch_active adapter,
  // cleared sparsely after each call so repeated sparse rounds never pay
  // an O(n) wipe (the adapter itself still delegates to the dense kernel).
  std::vector<std::uint64_t> active_dense_;
};

/// Factory. `threads` only matters for kSharded: the shard/worker count,
/// 0 meaning a hardware-derived default. `recovery` seeds the
/// sender-recovery knob (only the bitslice backend honours it).
std::unique_ptr<Medium> make_medium(
    MediumKind kind, const graph::Graph& g, CollisionModel model,
    int threads = 0, RecoveryStrategy recovery = RecoveryStrategy::kAuto);

}  // namespace radiocast::radio
