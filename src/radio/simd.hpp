// Tiny SIMD layer for the bitplane batch kernel (radio/medium_bitslice.*).
//
// Everything here is a leaf bit-kernel over 64-bit plane words with a
// portable scalar fallback. The AVX2 paths are compiled with a per-function
// target attribute — no global -mavx2 flag — and selected once per process
// via __builtin_cpu_supports, so one binary runs correctly on any x86-64
// host and picks up 256-bit vectors where the hardware has them.
#pragma once

#include <array>
#include <cstdint>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RADIOCAST_SIMD_AVX2 1
#include <immintrin.h>
#else
#define RADIOCAST_SIMD_AVX2 0
#endif

namespace radiocast::radio::simd {

/// One-time CPU feature probe (cached after the first call).
inline bool has_avx2() {
#if RADIOCAST_SIMD_AVX2
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
#else
  return false;
#endif
}

namespace detail {

inline void xor_id_scalar(std::uint64_t* dst, std::uint64_t uid,
                          std::uint64_t m, std::uint32_t idbits) {
  for (std::uint32_t b = 0; b < idbits; ++b) {
    dst[b] ^= (-(uid >> b & 1)) & m;
  }
}

#if RADIOCAST_SIMD_AVX2
__attribute__((target("avx2"))) inline void xor_id_avx2(
    std::uint64_t* dst, std::uint64_t uid, std::uint64_t m,
    std::uint32_t idbits) {
  const __m256i vu = _mm256_set1_epi64x(static_cast<long long>(uid));
  const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(m));
  const __m256i vone = _mm256_set1_epi64x(1);
  __m256i shift = _mm256_setr_epi64x(0, 1, 2, 3);
  const __m256i four = _mm256_set1_epi64x(4);
  std::uint32_t b = 0;
  for (; b + 4 <= idbits; b += 4) {
    // -(bit b of uid) & m per word: shift the id right by the plane index,
    // widen the low bit to an all-ones mask, gate the lane word.
    const __m256i bits =
        _mm256_and_si256(_mm256_srlv_epi64(vu, shift), vone);
    const __m256i gate = _mm256_cmpeq_epi64(bits, vone);
    const __m256i x = _mm256_and_si256(gate, vm);
    const __m256i* src = reinterpret_cast<const __m256i*>(dst + b);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + b),
        _mm256_xor_si256(_mm256_loadu_si256(src), x));
    shift = _mm256_add_epi64(shift, four);
  }
  for (; b < idbits; ++b) dst[b] ^= (-(uid >> b & 1)) & m;
}
#endif

}  // namespace detail

/// Accumulates transmitter `uid` into a listener's sender-id XOR planes:
/// dst[b] ^= m for every set bit b of uid, i.e. lane l of plane b picks up
/// bit b of uid wherever lane l of the transmit mask m is set. XOR makes
/// the planes self-cancelling: on a lane with exactly one transmitter the
/// accumulated value IS that transmitter's id.
inline void xor_id_accumulate(std::uint64_t* dst, std::uint64_t uid,
                              std::uint64_t m, std::uint32_t idbits) {
#if RADIOCAST_SIMD_AVX2
  if (idbits >= 8 && has_avx2()) {
    detail::xor_id_avx2(dst, uid, m, idbits);
    return;
  }
#endif
  detail::xor_id_scalar(dst, uid, m, idbits);
}

namespace detail {

inline void gather_row_scalar(const std::uint32_t* row, std::size_t len,
                              const std::uint64_t* tx_mask,
                              std::uint64_t lane_mask, std::uint64_t& one_out,
                              std::uint64_t& two_out) {
  std::uint64_t one = 0;
  std::uint64_t two = 0;
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint64_t m = tx_mask[row[i]] & lane_mask;
    two |= one & m;
    one |= m;
  }
  one_out = one;
  two_out = two;
}

#if RADIOCAST_SIMD_AVX2
__attribute__((target("avx2"))) inline void gather_row_avx2(
    const std::uint32_t* row, std::size_t len, const std::uint64_t* tx_mask,
    std::uint64_t lane_mask, std::uint64_t& one_out, std::uint64_t& two_out) {
  // Four independent saturating-OR accumulators, one per gather slot; the
  // add is associative under the combine rule
  //   two = a.two | b.two | (a.one & b.one);  one = a.one | b.one
  // so slots merge after the loop. vpgatherqq keeps four transmit-mask
  // loads in flight per step — the scalar loop is latency-bound on them.
  __m256i vone = _mm256_setzero_si256();
  __m256i vtwo = _mm256_setzero_si256();
  const __m256i vlm = _mm256_set1_epi64x(static_cast<long long>(lane_mask));
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + i));
    const __m256i m = _mm256_and_si256(
        _mm256_i32gather_epi64(
            reinterpret_cast<const long long*>(tx_mask), idx, 8),
        vlm);
    vtwo = _mm256_or_si256(vtwo, _mm256_and_si256(vone, m));
    vone = _mm256_or_si256(vone, m);
  }
  const __m128i one_lo = _mm256_castsi256_si128(vone);
  const __m128i one_hi = _mm256_extracti128_si256(vone, 1);
  const __m128i two_lo = _mm256_castsi256_si128(vtwo);
  const __m128i two_hi = _mm256_extracti128_si256(vtwo, 1);
  const __m128i one2 = _mm_or_si128(one_lo, one_hi);
  const __m128i two2 = _mm_or_si128(_mm_or_si128(two_lo, two_hi),
                                    _mm_and_si128(one_lo, one_hi));
  const std::uint64_t o0 = static_cast<std::uint64_t>(_mm_extract_epi64(one2, 0));
  const std::uint64_t o1 = static_cast<std::uint64_t>(_mm_extract_epi64(one2, 1));
  std::uint64_t one =
      o0 | o1;
  std::uint64_t two =
      static_cast<std::uint64_t>(_mm_extract_epi64(two2, 0)) |
      static_cast<std::uint64_t>(_mm_extract_epi64(two2, 1)) | (o0 & o1);
  for (; i < len; ++i) {
    const std::uint64_t m = tx_mask[row[i]] & lane_mask;
    two |= one & m;
    one |= m;
  }
  one_out = one;
  two_out = two;
}
#endif

}  // namespace detail

/// Accumulates one listener's ">= 1 tx" / ">= 2 tx" lane words over its
/// adjacency row (the gather-shaped bitplane traversal): a bitwise
/// saturating add of tx_mask[u] & lane_mask over the row. The AVX2 path
/// runs four gather slots in parallel; rows shorter than `kGatherRowMin`
/// stay scalar (measured: the slot-combine overhead cancels the gain below
/// ~two cache lines of row).
constexpr std::size_t kGatherRowMin = 16;

inline void gather_row(const std::uint32_t* row, std::size_t len,
                       const std::uint64_t* tx_mask, std::uint64_t lane_mask,
                       std::uint64_t& one_out, std::uint64_t& two_out) {
#if RADIOCAST_SIMD_AVX2
  if (len >= kGatherRowMin && has_avx2()) {
    detail::gather_row_avx2(row, len, tx_mask, lane_mask, one_out, two_out);
    return;
  }
#endif
  detail::gather_row_scalar(row, len, tx_mask, lane_mask, one_out, two_out);
}

/// Reconstructs the id accumulated for `lane` from the sender-id planes:
/// bit b of the result is bit `lane` of id[b]. Meaningful only for lanes
/// with exactly one accumulated transmitter (XOR of one id is the id).
inline std::uint64_t extract_id(const std::uint64_t* id, std::uint32_t idbits,
                                int lane) {
  std::uint64_t uid = 0;
  for (std::uint32_t b = 0; b < idbits; ++b) {
    uid |= (id[b] >> lane & 1) << b;
  }
  return uid;
}

/// In-place 64x64 bit-matrix transpose about the anti-diagonal (Hacker's
/// Delight kernel with LSB-first rows and bits): afterwards bit (63-i) of
/// a[63-j] equals bit j of the original a[i]. Callers flip both indices —
/// load row 63-r, read row 63-c — to get the main-diagonal transpose for
/// free; the lane-generic Decay coin transpose and the id-plane batch
/// extraction both use it that way.
inline void transpose64(std::array<std::uint64_t, 64>& a) {
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = (a[k] ^ (a[k + j] >> j)) & m;
      a[k] ^= t;
      a[k + j] ^= t << j;
    }
  }
}

}  // namespace radiocast::radio::simd
