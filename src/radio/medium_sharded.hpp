// Sharded parallel backend: two-level parallelism over the listener space
// — slices across worker threads x up to 64 Monte-Carlo lanes per slice.
//
// The listener space is cut into SLICES (contiguous CSR intervals balanced
// by the degree prefix sum). The slice layout is a pure function of the
// graph (plus the optional RADIOCAST_SHARD_SLICES override) — never of the
// worker count — and per-slice outputs are merged in slice-index order, so
// the outcome is byte-identical for ANY worker count and ANY steal
// interleaving (pinned by tests/test_medium_sharded.cpp).
//
// Workers run a Chase-Lev-style work-stealing scheme over the slice index
// space: each worker owns a deque (a contiguous range of slice indices,
// packed into one atomic word), pops work from its front, and steals from
// the back of other workers' deques once its own is dry — victims ordered
// topology-aware (same NUMA group first, detected from
// /sys/devices/system/node when available, plain cyclic otherwise). Load
// skew from uneven shard density is absorbed by stealing instead of
// stalling the round on the slowest static shard.
//
// Each slice resolves all 64 lanes at once with the bitslice kernel shapes
// (radio/simd.hpp gather rows, saturating bitplane adds, clearing row-scan
// sender recovery), so the batch entry points no longer fall back to the
// per-lane decomposition: one worker's slice pass is itself 64-way
// bit-parallel. Scalar resolve() runs the same slice machinery with the
// classic scalar kernels. RecoveryStrategy is accepted but, like the
// frontier backend, does not change the path (senders are recovered by row
// scan); outcomes are identical under every strategy.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "radio/lane_counter.hpp"
#include "radio/medium.hpp"

namespace radiocast::radio {

class ShardedMedium final : public Medium {
 public:
  /// `threads` is the worker count; 0 defers to the
  /// RADIOCAST_SHARD_THREADS environment variable when set (for hosts
  /// where hardware_concurrency() misreports, e.g. CI containers), else a
  /// hardware-derived default. `slices` is the steal-granularity slice
  /// count; 0 defers to RADIOCAST_SHARD_SLICES when set, else an
  /// adjacency-volume-derived default. The slice layout never depends on
  /// the worker count, so results are a pure function of
  /// (graph, model, slices, input) — the worker count only moves cost.
  ShardedMedium(const graph::Graph& g, CollisionModel model, int threads = 0,
                int slices = 0);
  ~ShardedMedium() override;

  std::string_view name() const override { return "sharded"; }
  /// Worker count (the historical name: one static shard per worker in the
  /// pre-stealing design; tests pin it to the threads knob).
  int shard_count() const { return worker_count_; }
  int worker_count() const { return worker_count_; }
  /// Steal-granularity slice count (worker-count independent).
  int slice_count() const { return static_cast<int>(slices_.size()); }

  void resolve(std::span<const graph::NodeId> transmitters,
               std::span<const Payload> tx_payload,
               SparseOutcome& out) override;

  /// Batched entry points: every slice runs the 64-lane bitplane kernel,
  /// so a round is slices-across-workers x lanes-per-slice parallel.
  void resolve_batch(std::span<const std::uint64_t> tx_mask,
                     PayloadPlanes payload, int lanes, BatchOutcome& out,
                     bool with_senders = true) override;
  void resolve_batch_max(std::span<const std::uint64_t> tx_mask,
                         PayloadPlanes payload, int lanes,
                         KnowledgePlanes best, BatchOutcome& out) override;

 private:
  /// One transmitter's row segment inside a slice: row indices
  /// [begin, end) of u's adjacency fall in the slice's listener interval.
  /// Built serially per round (scatter-shaped rounds only) by walking each
  /// transmitter's row once, so the parallel phase never binary-searches.
  struct SliceTx {
    graph::NodeId u;
    std::uint32_t begin;
    std::uint32_t end;
  };

  struct Slice {
    graph::NodeId lo = 0;  // listener interval [lo, hi)
    graph::NodeId hi = 0;
    std::vector<SliceTx> tx;  // this round's transmitters touching me
    std::vector<graph::NodeId> touched;
    std::uint32_t active = 0;
    // Scalar outputs.
    std::vector<SparseDelivery> deliveries;
    std::vector<graph::NodeId> collided;
    std::uint32_t collided_count = 0;
    // Batch outputs.
    std::vector<BatchDeliveredMask> delivered_b;
    std::vector<BatchDelivery> deliveries_b;
    std::vector<BatchCollision> collisions_b;
    LaneCounter delivered_tally;
    LaneCounter collided_tally;
  };

  /// What this round's slices execute.
  enum class RoundMode : std::uint8_t {
    kScalarDense,    // scalar gather over own listeners
    kScalarScatter,  // scalar scatter from slice tx lists
    kBatchGather,    // 64-lane gather (simd::gather_row per listener)
    kBatchScatter    // 64-lane saturating scatter + drain
  };
  enum class FoldMode : std::uint8_t { kMasksOnly, kSenders, kMaxFold };

  void run_slice(std::size_t si);
  void run_slice_scalar_dense(Slice& s);
  void run_slice_scalar_scatter(Slice& s);
  void run_slice_batch_gather(Slice& s);
  void run_slice_batch_scatter(Slice& s);
  /// Emits one listener's lane words into the slice buffers; returns the
  /// win mask (counts the listener as active when one != 0).
  std::uint64_t emit_batch_listener(Slice& s, graph::NodeId v,
                                    std::uint64_t one, std::uint64_t two);
  /// Folds one recovered (listener, sender, lane-hit) group per FoldMode.
  void sink_batch(Slice& s, graph::NodeId v, graph::NodeId u,
                  std::uint64_t hit);
  /// Clearing row scan over v's row for its won lanes (deferred recovery
  /// on the scatter shape).
  void rowscan_batch(Slice& s, graph::NodeId v, std::uint64_t win);
  /// Const-payload shortcut: fold const_value_ into v's won lanes with no
  /// sender identification (see the bitslice const-fold).
  void fold_const_batch(graph::NodeId v, std::uint64_t win);

  /// Shared prologue of the batch entry points + the parallel phase + the
  /// slice-ordered merge.
  void run_batch(std::span<const std::uint64_t> tx_mask, PayloadPlanes payload,
                 int lanes, BatchOutcome& out, FoldMode mode,
                 KnowledgePlanes best);

  /// Builds each slice's SliceTx list by walking txlist_ rows once
  /// (node_slice_ gives O(1) slice lookup; segments emerge from slice
  /// transitions along the sorted row).
  void build_slice_tx();

  /// Runs all slices across the pool (or inline when single-worker) and
  /// waits for completion.
  void kick_and_wait();
  void worker_loop(std::size_t w);
  /// Own-deque pop (front) / steal (back) over the packed {lo,hi} range.
  static bool pop_front(std::atomic<std::uint64_t>& range, std::uint32_t& idx);
  static bool steal_back(std::atomic<std::uint64_t>& range,
                         std::uint32_t& idx);

  std::vector<Slice> slices_;
  std::vector<std::uint32_t> node_slice_;  // node -> slice index
  int worker_count_ = 1;

  // Round context: written serially before the parallel phase, read-only
  // inside it.
  RoundMode mode_ = RoundMode::kScalarDense;
  FoldMode fold_ = FoldMode::kMasksOnly;
  const std::uint64_t* round_mask_ = nullptr;
  PayloadPlanes round_payload_{std::span<const Payload>{}};
  KnowledgePlanes round_best_{std::span<Payload>{}};
  std::uint64_t round_live_ = 0;
  bool const_fold_ = false;
  Payload const_value_ = kNoPayload;

  // Scalar round state (stamp-versioned, listener-indexed; slices touch
  // disjoint intervals, so workers share the arrays without locks).
  std::vector<graph::NodeId> txlist_;
  std::vector<std::uint64_t> tx_stamp_;
  std::vector<Payload> payload_of_;
  std::vector<std::uint64_t> stamp_;
  std::vector<std::uint32_t> tx_count_;
  std::vector<graph::NodeId> tx_from_;
  std::vector<Payload> pending_payload_;
  std::uint64_t epoch_ = 0;

  // Batch round state: per-listener saturation words, all-zero between
  // rounds (each slice's drain re-zeroes what its scatter dirtied).
  std::vector<std::uint64_t> one_;
  std::vector<std::uint64_t> two_;
  LaneCounter tx_tally_;
  int round_lanes_ = 1;

  // Work-stealing state: per-worker packed {next, end} slice ranges plus
  // the steal order (same topology group first).
  std::vector<std::atomic<std::uint64_t>> ranges_;
  std::vector<std::vector<std::size_t>> steal_order_;

  // Per-worker steal/finish accounting for one round, written under mu_
  // when a worker finishes and folded into timers_ (steal_attempts /
  // steals / idle_ns) by kick_and_wait after the generation completes.
  struct WorkerStats {
    std::uint64_t steal_attempts = 0;
    std::uint64_t steals = 0;
    std::uint64_t finish_ns = 0;
  };
  std::vector<WorkerStats> worker_stats_;

  // Pool synchronisation: kick_and_wait bumps job_gen_ and waits until
  // every worker has drained every deque for that generation.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t job_gen_ = 0;
  std::size_t done_workers_ = 0;
  bool stop_ = false;
};

}  // namespace radiocast::radio
