// Sharded parallel backend: partitions the listener space into contiguous
// CSR shards and resolves one round's receptions shard-by-shard across a
// persistent worker pool.
//
// Shard cuts are chosen once, from the graph's degree prefix sum, so each
// shard owns roughly the same adjacency volume. Listener-indexed scratch
// (stamps, counts, pending payloads) is disjoint across shards, so workers
// share the arrays without synchronisation; per-shard outputs are merged
// in shard-index order, making the outcome byte-identical no matter how
// the OS schedules the workers. Like the scalar backend, each round
// adaptively picks a transmitter-centric frontier path (rows intersected
// with the shard interval by binary search) or a listener-centric dense
// gather (scan your own listeners' rows, early-exit at two transmitters).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "radio/medium.hpp"

namespace radiocast::radio {

class ShardedMedium final : public Medium {
 public:
  /// `threads` is the shard/worker count; 0 defers to the
  /// RADIOCAST_SHARD_THREADS environment variable when set (for hosts
  /// where hardware_concurrency() misreports, e.g. CI containers), else a
  /// hardware-derived default. The shard layout is fixed at construction,
  /// so results are a pure function of (graph, model, threads, input).
  ShardedMedium(const graph::Graph& g, CollisionModel model, int threads = 0);
  ~ShardedMedium() override;

  std::string_view name() const override { return "sharded"; }
  int shard_count() const { return static_cast<int>(shards_.size()); }

  void resolve(std::span<const graph::NodeId> transmitters,
               std::span<const Payload> tx_payload,
               SparseOutcome& out) override;

 private:
  struct Shard {
    graph::NodeId lo = 0;  // listener interval [lo, hi)
    graph::NodeId hi = 0;
    std::vector<SparseDelivery> deliveries;
    std::vector<graph::NodeId> collided;
    std::uint32_t collided_count = 0;
    std::vector<graph::NodeId> touched;
  };

  void run_shard(Shard& shard, bool dense);
  void worker_loop();

  std::vector<Shard> shards_;

  // Round state, written serially before the parallel phase.
  std::vector<graph::NodeId> txlist_;
  std::vector<std::uint64_t> tx_stamp_;
  std::vector<Payload> payload_of_;
  std::vector<std::uint64_t> stamp_;
  std::vector<std::uint32_t> tx_count_;
  std::vector<graph::NodeId> tx_from_;
  std::vector<Payload> pending_payload_;
  std::uint64_t epoch_ = 0;
  bool dense_round_ = false;

  // Pool synchronisation: resolve() bumps job_gen_ and waits until every
  // worker has drained the shard queue for that generation.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t job_gen_ = 0;
  std::size_t next_shard_ = 0;
  std::size_t done_workers_ = 0;
  bool stop_ = false;
};

}  // namespace radiocast::radio
