#include "baselines/le_binary_search.hpp"

#include <algorithm>
#include <cmath>

#include "core/theory.hpp"
#include "schedule/decay.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace radiocast::baselines {

BinarySearchLeResult binary_search_leader_election(
    const graph::Graph& g, std::uint32_t diameter,
    const BinarySearchLeParams& params, std::uint64_t seed) {
  const graph::NodeId n = g.node_count();
  BinarySearchLeResult out;
  if (n == 0) return out;
  util::Rng rng(util::mix_seed(seed, 0xB15EC7));

  const double log_n = util::safe_log2(static_cast<double>(n));
  const double p = std::min(
      1.0, params.candidate_c * log_n / static_cast<double>(n));
  const std::uint32_t bits =
      params.id_bits != 0
          ? std::min<std::uint32_t>(params.id_bits, 30)
          : std::min<std::uint32_t>(30, 2 * std::max<std::uint32_t>(
                                            4, util::clog2(n)));

  // Candidate self-selection + random IDs (retry on an empty draw, as a
  // deployment would after a silent timeout).
  std::vector<graph::NodeId> cand_node;
  std::vector<std::uint64_t> cand_id;
  for (std::uint32_t attempt = 0; attempt < 64 && cand_node.empty();
       ++attempt) {
    for (graph::NodeId v = 0; v < n; ++v) {
      if (rng.bernoulli(p)) {
        cand_node.push_back(v);
        cand_id.push_back(rng.uniform(std::uint64_t{1} << bits));
      }
    }
  }
  out.candidate_count = static_cast<std::uint32_t>(cand_node.size());
  if (cand_node.empty()) return out;

  // Per-phase broadcast budget: enough for a CR/KP broadcast whp.
  const std::uint64_t budget = static_cast<std::uint64_t>(
      params.phase_c * core::theory::bound_crkp(n, std::max<std::uint32_t>(
                                                       2, diameter)));

  DecayBroadcastParams bp =
      params.use_bgi ? bgi_params(n) : cr_params(n, diameter);
  bp.max_rounds = budget;

  // Every node tracks the prefix it believes won so far; candidates track
  // whether their own ID still matches their local prefix.
  std::vector<std::uint64_t> prefix(n, 0);
  std::vector<std::uint8_t> alive(cand_node.size(), 1);

  for (std::uint32_t phase = 0; phase < bits; ++phase) {
    const std::uint32_t b = bits - 1 - phase;
    std::vector<BroadcastSource> sources;
    for (std::size_t c = 0; c < cand_node.size(); ++c) {
      if (alive[c] && ((cand_id[c] >> b) & 1u)) {
        sources.push_back({cand_node[c], 1});
      }
    }
    std::vector<std::uint8_t> heard(n, 0);
    if (!sources.empty()) {
      const DecayBroadcastResult r =
          decay_broadcast(g, diameter, sources, bp, rng());
      for (graph::NodeId v = 0; v < n; ++v) {
        heard[v] = r.best[v] != radio::kNoPayload;
      }
    }
    // The protocol is oblivious: the full budget elapses either way.
    out.rounds += budget;
    ++out.phases;
    for (graph::NodeId v = 0; v < n; ++v) {
      prefix[v] = (prefix[v] << 1) | (heard[v] ? 1u : 0u);
    }
    for (std::size_t c = 0; c < cand_node.size(); ++c) {
      if (!alive[c]) continue;
      // A candidate survives iff its ID prefix equals the prefix its own
      // node observed.
      const std::uint64_t own_prefix = cand_id[c] >> b;
      if (own_prefix != prefix[cand_node[c]]) alive[c] = 0;
    }
    if (out.rounds > params.max_rounds) break;
  }

  // Winners announce (ID, node); everyone adopts what they hear.
  std::vector<BroadcastSource> winners;
  for (std::size_t c = 0; c < cand_node.size(); ++c) {
    if (alive[c] && cand_id[c] == prefix[cand_node[c]]) {
      winners.push_back(
          {cand_node[c],
           (cand_id[c] << 32) | static_cast<radio::Payload>(cand_node[c])});
    }
  }
  std::uint32_t agreeing = 0;
  if (!winners.empty()) {
    const DecayBroadcastResult fin =
        decay_broadcast(g, diameter, winners, bp, rng());
    out.rounds += budget;
    out.leader = static_cast<graph::NodeId>(fin.winner & 0xFFFFFFFFu);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (fin.best[v] == fin.winner) ++agreeing;
    }
  }
  out.success = winners.size() == 1 && agreeing == n;
  return out;
}

}  // namespace radiocast::baselines
