// Classical leader election by network-wide binary search over the ID
// space, using (multi-source) broadcast as a subroutine — the reduction of
// Bar-Yehuda-Goldreich-Itai [2] the paper describes in Section 1.3:
// O(T_BC log n) rounds where T_BC is the broadcast time.
//
// Protocol: candidates self-select w.p. Theta(log n / n) and draw random
// B = Theta(log n)-bit IDs. For bit b = B-1 .. 0 the network tests "does a
// surviving candidate exist whose ID has bit b set?" by having exactly
// those candidates run a multi-source Decay broadcast for a fixed budget of
// T_BC rounds; every node that hears anything records '1' for that bit.
// Candidates whose bit disagrees with the outcome drop out. After B phases
// all nodes hold the maximum candidate ID and exactly one candidate
// recognises it as its own.
#pragma once

#include <cstdint>

#include "baselines/decay_broadcast.hpp"
#include "graph/graph.hpp"

namespace radiocast::baselines {

struct BinarySearchLeParams {
  /// Candidate probability multiplier (Theta(log n / n)).
  double candidate_c = 2.0;
  /// ID bit width (0 = auto: 2*ceil(log2 n), capped at 30).
  std::uint32_t id_bits = 0;
  /// Per-phase broadcast budget multiplier: budget = phase_c * bound_crkp.
  double phase_c = 3.0;
  /// Which Decay preset carries each phase (CR by default; BGI optional).
  bool use_bgi = false;
  std::uint64_t max_rounds = 100'000'000;
};

struct BinarySearchLeResult {
  bool success = false;          // unique leader + global agreement
  std::uint64_t rounds = 0;
  graph::NodeId leader = graph::kInvalidNode;
  std::uint32_t candidate_count = 0;
  std::uint32_t phases = 0;
};

BinarySearchLeResult binary_search_leader_election(
    const graph::Graph& g, std::uint32_t diameter,
    const BinarySearchLeParams& params, std::uint64_t seed);

}  // namespace radiocast::baselines
