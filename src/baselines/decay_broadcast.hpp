// Decay-based broadcasting baselines, simulated fully physically (every
// transmission goes through the exact collision rule).
//
//  * BGI (Bar-Yehuda-Goldreich-Itai 1992): informed nodes run synchronized
//    Decay with densities cycling over 2^-1 .. 2^-ceil(log2 n).
//    O((D + log n) log n) rounds whp. The classical yardstick.
//
//  * CR/KP (Czumaj-Rytter 2003 / Kowalski-Pelc 2005 style): densities cycle
//    only over 2^-1 .. 2^-(ceil(log2(n/D)) + 2) — the expected per-layer
//    congestion is n/D, so deeper densities are wasted — plus periodically
//    a full-depth cycle to handle congested spots. O(D log(n/D) + log^2 n)
//    rounds whp. The best possible without spontaneous transmissions
//    (matches the Kushilevitz-Mansour / ABLP lower bound).
//
// Both support multiple sources (needed by binary-search leader election);
// with k sources every informed node relays the highest message it knows,
// which is exactly the Compete semantics restricted to Decay relaying.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "radio/model.hpp"

namespace radiocast::baselines {

struct DecayBroadcastParams {
  /// Density cycle depth: ceil(log2 n) for BGI; ceil(log2(n/D))+2 for CR.
  /// 0 = auto (BGI rule).
  std::uint32_t cycle_depth = 0;
  /// Every `full_cycle_every` cycles, run one full-depth cycle (CR's
  /// handling of congested spots; 0 = never).
  std::uint32_t full_cycle_every = 0;
  /// Stop after this many rounds even if nodes remain uninformed.
  std::uint64_t max_rounds = 50'000'000;
  /// Completion-scan cadence (measurement only).
  std::uint32_t check_interval = 64;
};

struct DecayBroadcastResult {
  bool success = false;
  std::uint64_t rounds = 0;
  std::uint32_t informed = 0;
  radio::Payload winner = radio::kNoPayload;
  std::uint64_t transmissions = 0;
  std::uint64_t collisions = 0;
  std::vector<radio::Payload> best;
};

struct BroadcastSource {
  graph::NodeId node = 0;
  radio::Payload value = 0;
};

/// BGI-style Decay broadcast (multi-source). Deterministic in the seed.
DecayBroadcastResult decay_broadcast(const graph::Graph& g,
                                     std::uint32_t diameter,
                                     const std::vector<BroadcastSource>& src,
                                     const DecayBroadcastParams& params,
                                     std::uint64_t seed);

/// Parameter presets.
DecayBroadcastParams bgi_params(std::uint32_t n);
DecayBroadcastParams cr_params(std::uint32_t n, std::uint32_t diameter);

}  // namespace radiocast::baselines
