#include "baselines/hw_broadcast.hpp"

namespace radiocast::baselines {

core::CompeteParams hw_params() {
  core::CompeteParams p;
  p.hw_curtail = true;
  return p;
}

core::BroadcastResult hw_broadcast(const graph::Graph& g,
                                   std::uint32_t diameter,
                                   graph::NodeId source,
                                   radio::Payload message,
                                   std::uint64_t seed) {
  return core::broadcast(g, diameter, source, message, hw_params(), seed);
}

}  // namespace radiocast::baselines
