// Haeupler-Wajc (PODC 2016) broadcast baseline.
//
// HW is the algorithm Czumaj-Davies improve on: the same
// clustering-and-schedules pipeline, but with a per-clustering progress
// guarantee weaker by a log log n factor (their expected distance to the
// cluster centre is O(log n log log n / (beta log D)) versus Theorem 2.2's
// O(log n / (beta log D))). We therefore realise HW as the Compete engine
// with the curtail inflated by exactly log log n (params.hw_curtail), which
// is the honest algorithmic difference the paper identifies in Section 2.3.
#pragma once

#include <cstdint>

#include "core/broadcast.hpp"

namespace radiocast::baselines {

/// Czumaj-Davies parameter pack configured to emulate Haeupler-Wajc.
core::CompeteParams hw_params();

/// HW broadcast: O(D log n log log n / log D + polylog n) whp.
core::BroadcastResult hw_broadcast(const graph::Graph& g,
                                   std::uint32_t diameter,
                                   graph::NodeId source,
                                   radio::Payload message, std::uint64_t seed);

}  // namespace radiocast::baselines
