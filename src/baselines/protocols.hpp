// Reference per-node protocol implementations against the node-local
// Protocol interface (what a real radio would run).
//
// The algorithm cores in src/core and src/baselines drive Network::step
// directly with vectorised state for speed; the classes here are the same
// algorithms written as honest per-node state machines. Tests cross-check
// the two styles (same success behaviour and round-complexity shape), and
// the examples use these to show how a downstream user writes protocols.
#pragma once

#include <cstdint>
#include <vector>

#include "radio/protocol.hpp"

namespace radiocast::baselines::protocols {

using radio::Action;
using radio::kNoPayload;
using radio::NodeInfo;
using radio::Payload;
using radio::Protocol;
using radio::Round;

/// Bar-Yehuda-Goldreich-Itai broadcast: every informed node runs
/// synchronized Decay (density 2^-(1 + round mod ceil(log2 n))) forever.
/// O((D + log n) log n) rounds whp.
class DecayBroadcast final : public Protocol {
 public:
  /// `initial` is kNoPayload for non-sources.
  explicit DecayBroadcast(Payload initial = kNoPayload);

  void start(const NodeInfo& info, util::Rng rng) override;
  Action on_round(Round round) override;
  void on_message(Round round, Payload payload) override;
  bool done() const override { return best_ != kNoPayload; }

  Payload best() const { return best_; }

 private:
  Payload best_;
  util::Rng rng_{0};
  std::uint32_t lambda_ = 1;
};

/// Czumaj-Rytter / Kowalski-Pelc style broadcast: densities cycle only to
/// 2^-(ceil(log2(n/D)) + 2), with a periodic full-depth cycle.
/// O(D log(n/D) + log^2 n) rounds whp.
class ShallowDecayBroadcast final : public Protocol {
 public:
  explicit ShallowDecayBroadcast(Payload initial = kNoPayload,
                                 std::uint32_t full_cycle_every = 8);

  void start(const NodeInfo& info, util::Rng rng) override;
  Action on_round(Round round) override;
  void on_message(Round round, Payload payload) override;
  bool done() const override { return best_ != kNoPayload; }

 private:
  Payload best_;
  std::uint32_t full_cycle_every_;
  util::Rng rng_{0};
  std::uint32_t shallow_ = 1;
  std::uint32_t full_ = 1;
  // Position within the current cycle, and the current cycle's depth.
  std::uint32_t step_ = 0;
  std::uint32_t cycle_ = 0;
  std::uint32_t cycle_len_ = 1;
};

/// Deterministic round-robin broadcast: in round r, the node with id
/// (r mod n) transmits iff informed. Collision-free by construction, so
/// the frontier provably advances >= 1 hop per n rounds: O(n D) worst
/// case, the folklore deterministic yardstick (the best known
/// deterministic algorithms reach O(n log D); see DESIGN.md).
class RoundRobinBroadcast final : public Protocol {
 public:
  explicit RoundRobinBroadcast(Payload initial = kNoPayload);

  void start(const NodeInfo& info, util::Rng rng) override;
  Action on_round(Round round) override;
  void on_message(Round round, Payload payload) override;
  bool done() const override { return best_ != kNoPayload; }

 private:
  Payload best_;
  NodeInfo info_{};
};

/// Beep-wave layering (collision-detection model only): the source beeps
/// in round 0; every node that first perceives ANY energy (message or
/// collision) in round t-1 beeps in round t. After D+1 rounds each node
/// knows its BFS layer = the round it first heard energy. This is the
/// classic CD-model synchronization primitive the paper's related work
/// ([11]) builds on; it has no no-CD analogue (energy detection IS
/// collision detection).
class BeepWave final : public Protocol {
 public:
  explicit BeepWave(bool is_source);

  void start(const NodeInfo& info, util::Rng rng) override;
  Action on_round(Round round) override;
  void on_message(Round round, Payload payload) override;
  void on_collision(Round round) override;
  bool done() const override { return layer_ != kNoLayer; }

  static constexpr std::uint32_t kNoLayer = static_cast<std::uint32_t>(-1);
  std::uint32_t layer() const { return layer_; }

 private:
  void heard(Round round);
  bool is_source_;
  std::uint32_t layer_ = kNoLayer;
  bool beeped_ = false;
};

/// Layered broadcast for the collision-detection model: first a BeepWave
/// establishes layers, then informed nodes of layer L run Decay only in
/// rounds ≡ L (mod 3), eliminating cross-layer collisions (same-layer
/// collisions remain and are handled by Decay). The layer schedule gives a
/// constant-factor improvement over plain BGI and demonstrates the CD
/// model; the asymptotically optimal O(D + log^6 n) algorithm of Ghaffari
/// et al. [11] is out of scope (analytic curve reported in the bench).
class LayeredCdBroadcast final : public Protocol {
 public:
  explicit LayeredCdBroadcast(Payload initial = kNoPayload);

  void start(const NodeInfo& info, util::Rng rng) override;
  Action on_round(Round round) override;
  void on_message(Round round, Payload payload) override;
  void on_collision(Round round) override;
  bool done() const override;

 private:
  Payload best_;
  bool is_source_ = false;
  util::Rng rng_{0};
  std::uint32_t lambda_ = 1;
  Round wave_rounds_ = 0;  // rounds reserved for the beep wave
  std::uint32_t layer_ = BeepWave::kNoLayer;
  bool beeped_ = false;
  void heard_energy(Round round);
};

}  // namespace radiocast::baselines::protocols
