#include "baselines/protocols.hpp"

#include <algorithm>
#include <cmath>

#include "schedule/decay.hpp"
#include "util/math.hpp"

namespace radiocast::baselines::protocols {

// ---- DecayBroadcast --------------------------------------------------------

DecayBroadcast::DecayBroadcast(Payload initial) : best_(initial) {}

void DecayBroadcast::start(const NodeInfo& info, util::Rng rng) {
  rng_ = rng;
  lambda_ = schedule::decay_round_length(info.n);
}

Action DecayBroadcast::on_round(Round round) {
  if (best_ == kNoPayload) return Action::listen();
  const auto step = static_cast<std::uint32_t>(round % lambda_) + 1;
  if (rng_.bernoulli(schedule::decay_probability(step))) {
    return Action::send(best_);
  }
  return Action::listen();
}

void DecayBroadcast::on_message(Round, Payload payload) {
  if (best_ == kNoPayload || payload > best_) best_ = payload;
}

// ---- ShallowDecayBroadcast -------------------------------------------------

ShallowDecayBroadcast::ShallowDecayBroadcast(Payload initial,
                                             std::uint32_t full_cycle_every)
    : best_(initial), full_cycle_every_(full_cycle_every) {}

void ShallowDecayBroadcast::start(const NodeInfo& info, util::Rng rng) {
  rng_ = rng;
  full_ = schedule::decay_round_length(info.n);
  const double ratio =
      std::max(2.0, static_cast<double>(info.n) /
                        std::max<double>(1.0, info.diameter));
  shallow_ = std::min<std::uint32_t>(
      full_, static_cast<std::uint32_t>(std::ceil(std::log2(ratio))) + 2);
  cycle_len_ = shallow_;
  step_ = 0;
  cycle_ = 0;
}

Action ShallowDecayBroadcast::on_round(Round) {
  // Advance the shared cycle clock first so all nodes stay in lockstep
  // (the cycle structure depends only on (n, D) which everyone knows).
  const std::uint32_t step = step_ + 1;  // 1-based density index
  if (++step_ >= cycle_len_) {
    step_ = 0;
    ++cycle_;
    cycle_len_ = (full_cycle_every_ != 0 && cycle_ % full_cycle_every_ == 0)
                     ? full_
                     : shallow_;
  }
  if (best_ == kNoPayload) return Action::listen();
  if (rng_.bernoulli(schedule::decay_probability(step))) {
    return Action::send(best_);
  }
  return Action::listen();
}

void ShallowDecayBroadcast::on_message(Round, Payload payload) {
  if (best_ == kNoPayload || payload > best_) best_ = payload;
}

// ---- RoundRobinBroadcast ---------------------------------------------------

RoundRobinBroadcast::RoundRobinBroadcast(Payload initial) : best_(initial) {}

void RoundRobinBroadcast::start(const NodeInfo& info, util::Rng) {
  info_ = info;
}

Action RoundRobinBroadcast::on_round(Round round) {
  if (best_ == kNoPayload) return Action::listen();
  if (round % info_.n == info_.node_id) return Action::send(best_);
  return Action::listen();
}

void RoundRobinBroadcast::on_message(Round, Payload payload) {
  if (best_ == kNoPayload || payload > best_) best_ = payload;
}

// ---- BeepWave ---------------------------------------------------------------

BeepWave::BeepWave(bool is_source) : is_source_(is_source) {}

void BeepWave::start(const NodeInfo&, util::Rng) {
  if (is_source_) layer_ = 0;
}

void BeepWave::heard(Round round) {
  if (layer_ == kNoLayer) {
    layer_ = static_cast<std::uint32_t>(round) + 1;
  }
}

Action BeepWave::on_round(Round round) {
  // A node of layer L beeps exactly once, in round L.
  if (layer_ != kNoLayer && !beeped_ && round == layer_) {
    beeped_ = true;
    return Action::send(1);  // content-free beep
  }
  return Action::listen();
}

void BeepWave::on_message(Round round, Payload) { heard(round); }
void BeepWave::on_collision(Round round) { heard(round); }

// ---- LayeredCdBroadcast ----------------------------------------------------

LayeredCdBroadcast::LayeredCdBroadcast(Payload initial) : best_(initial) {
  is_source_ = initial != kNoPayload;
}

void LayeredCdBroadcast::start(const NodeInfo& info, util::Rng rng) {
  rng_ = rng;
  lambda_ = schedule::decay_round_length(info.n);
  wave_rounds_ = static_cast<Round>(info.diameter) + 2;
  if (is_source_) layer_ = 0;
}

void LayeredCdBroadcast::heard_energy(Round round) {
  if (round < wave_rounds_ && layer_ == BeepWave::kNoLayer) {
    layer_ = static_cast<std::uint32_t>(round) + 1;
  }
}

Action LayeredCdBroadcast::on_round(Round round) {
  if (round < wave_rounds_) {
    // Phase 1: the beep wave (content-free, uses collisions as energy).
    if (layer_ != BeepWave::kNoLayer && !beeped_ && round == layer_) {
      beeped_ = true;
      return Action::send(1);
    }
    return Action::listen();
  }
  // Phase 2: layered Decay. Layer L transmits only in rounds ≡ L (mod 3):
  // neighbouring layers never collide, so the only contention is among
  // same-layer neighbours, which Decay handles.
  if (best_ == kNoPayload || layer_ == BeepWave::kNoLayer) {
    return Action::listen();
  }
  const Round t = round - wave_rounds_;
  if (t % 3 != layer_ % 3) return Action::listen();
  const auto step = static_cast<std::uint32_t>((t / 3) % lambda_) + 1;
  if (rng_.bernoulli(schedule::decay_probability(step))) {
    return Action::send(best_);
  }
  return Action::listen();
}

void LayeredCdBroadcast::on_message(Round round, Payload payload) {
  if (round < wave_rounds_) {
    heard_energy(round);
    return;
  }
  if (best_ == kNoPayload || payload > best_) best_ = payload;
}

void LayeredCdBroadcast::on_collision(Round round) { heard_energy(round); }

bool LayeredCdBroadcast::done() const { return best_ != kNoPayload; }

}  // namespace radiocast::baselines::protocols
