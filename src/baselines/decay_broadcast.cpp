#include "baselines/decay_broadcast.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "radio/network.hpp"
#include "schedule/decay.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace radiocast::baselines {

DecayBroadcastParams bgi_params(std::uint32_t n) {
  DecayBroadcastParams p;
  p.cycle_depth = schedule::decay_round_length(n);
  p.full_cycle_every = 0;
  return p;
}

DecayBroadcastParams cr_params(std::uint32_t n, std::uint32_t diameter) {
  DecayBroadcastParams p;
  const double ratio =
      std::max(2.0, static_cast<double>(n) /
                        static_cast<double>(std::max<std::uint32_t>(1, diameter)));
  p.cycle_depth = static_cast<std::uint32_t>(std::ceil(std::log2(ratio))) + 2;
  p.cycle_depth = std::min(p.cycle_depth, schedule::decay_round_length(n));
  p.full_cycle_every = 8;  // periodic full-depth cycle for congested spots
  return p;
}

DecayBroadcastResult decay_broadcast(const graph::Graph& g,
                                     std::uint32_t diameter,
                                     const std::vector<BroadcastSource>& src,
                                     const DecayBroadcastParams& params,
                                     std::uint64_t seed) {
  const graph::NodeId n = g.node_count();
  if (n == 0) throw std::invalid_argument("decay_broadcast: empty graph");
  DecayBroadcastResult out;
  out.best.assign(n, radio::kNoPayload);
  for (const auto& s : src) {
    if (s.node >= n) throw std::out_of_range("decay_broadcast: source OOR");
    if (out.best[s.node] == radio::kNoPayload || s.value > out.best[s.node]) {
      out.best[s.node] = s.value;
    }
    if (out.winner == radio::kNoPayload || s.value > out.winner) {
      out.winner = s.value;
    }
  }
  if (src.empty()) {
    out.success = true;
    return out;
  }

  const std::uint32_t full_depth = schedule::decay_round_length(n);
  const std::uint32_t depth = params.cycle_depth == 0
                                  ? full_depth
                                  : std::max<std::uint32_t>(1, params.cycle_depth);
  (void)diameter;

  radio::Network net(g);
  util::Rng rng(seed);

  // Informed nodes relay their best value; we track them in a compact list
  // so a round costs O(#informed coin flips + transmitter degrees).
  std::vector<graph::NodeId> informed_list;
  std::vector<std::uint8_t> informed(n, 0);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (out.best[v] != radio::kNoPayload) {
      informed[v] = 1;
      informed_list.push_back(v);
    }
  }

  std::vector<graph::NodeId> tx_nodes;
  std::vector<radio::Payload> tx_payload;
  radio::SparseOutcome sparse;

  std::uint64_t round = 0;
  std::uint32_t cycle = 0;       // completed density cycles
  std::uint32_t step = 1;        // 1-based density index within the cycle
  std::uint32_t cycle_len = depth;
  std::uint32_t since_check = 0;
  auto all_informed = [&]() {
    for (graph::NodeId v = 0; v < n; ++v) {
      if (out.best[v] != out.winner) return false;
    }
    return true;
  };
  bool done = all_informed();
  while (!done && round < params.max_rounds) {
    const double p = schedule::decay_probability(step);
    tx_nodes.clear();
    tx_payload.clear();
    for (graph::NodeId v : informed_list) {
      if (rng.bernoulli(p)) {
        tx_nodes.push_back(v);
        tx_payload.push_back(out.best[v]);
      }
    }
    net.resolve(tx_nodes, tx_payload, sparse);
    for (const auto& d : sparse.deliveries) {
      if (out.best[d.node] == radio::kNoPayload ||
          d.payload > out.best[d.node]) {
        out.best[d.node] = d.payload;
      }
      if (!informed[d.node]) {
        informed[d.node] = 1;
        informed_list.push_back(d.node);
      }
    }
    ++round;
    if (++step > cycle_len) {
      step = 1;
      ++cycle;
      // CR's periodic full-depth cycle.
      cycle_len = (params.full_cycle_every != 0 &&
                   cycle % params.full_cycle_every == 0)
                      ? full_depth
                      : depth;
    }
    if (++since_check >= params.check_interval) {
      since_check = 0;
      done = all_informed();
    }
  }
  if (!done) done = all_informed();

  out.success = done;
  out.rounds = round;
  out.transmissions = net.total_transmissions();
  out.collisions = net.total_collisions();
  out.informed = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (out.best[v] == out.winner) ++out.informed;
  }
  return out;
}

}  // namespace radiocast::baselines
