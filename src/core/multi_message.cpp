#include "core/multi_message.hpp"

#include <stdexcept>

#include "cluster/exponential_shifts.hpp"
#include "graph/algorithms.hpp"
#include "radio/network.hpp"
#include "schedule/bfs_schedule.hpp"
#include "util/rng.hpp"

namespace radiocast::core {

MultiMessageResult multi_message_broadcast(
    const graph::Graph& g, const std::vector<radio::Payload>& messages,
    const MultiMessageParams& params, std::uint64_t seed) {
  (void)seed;  // the pipeline is deterministic; seed kept for API symmetry
  const graph::NodeId n = g.node_count();
  MultiMessageResult out;
  if (n == 0 || params.root >= n) {
    throw std::invalid_argument("multi_message_broadcast: bad root/graph");
  }
  const std::uint32_t k = static_cast<std::uint32_t>(messages.size());
  if (k == 0) {
    out.success = true;
    return out;
  }

  // One cluster covering the graph: the BFS tree from the root, presented
  // as a Partition so TreeSchedule can colour it.
  const auto bfs = graph::bfs_tree(g, params.root);
  cluster::Partition p;
  p.beta = 1.0;
  p.center.assign(n, params.root);
  p.dist_to_center = bfs.dist;
  p.parent = bfs.parent;
  p.delta.assign(n, 0.0);
  std::uint32_t depth = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (bfs.dist[v] == graph::kUnreachable) {
      throw std::invalid_argument("multi_message_broadcast: disconnected");
    }
    depth = std::max(depth, bfs.dist[v]);
  }
  const schedule::TreeSchedule sched(g, p, schedule::ScheduleMode::kColored);
  out.period = sched.period();

  radio::Network net(g);
  // Per node: messages received so far (they arrive in order along the
  // tree) and the index of the next one to forward.
  std::vector<std::uint32_t> have(n, 0), sent(n, 0);
  have[params.root] = k;

  std::vector<graph::NodeId> tx_nodes;
  std::vector<radio::Payload> tx_payload;
  radio::SparseOutcome sparse;
  std::uint32_t done_nodes = 1;  // the root holds everything already

  std::uint64_t round = 0;
  while (done_nodes < n && round < params.max_rounds) {
    const std::uint32_t slot =
        static_cast<std::uint32_t>(round % out.period);
    tx_nodes.clear();
    tx_payload.clear();
    for (graph::NodeId v = 0; v < n; ++v) {
      if (sched.color(v) != slot) continue;
      if (sent[v] >= have[v]) continue;       // nothing pending
      const std::uint32_t id = sent[v];
      tx_nodes.push_back(v);
      tx_payload.push_back((static_cast<radio::Payload>(id) << 32) |
                           (messages[id] & 0xFFFFFFFFu));
      ++sent[v];
    }
    if (!tx_nodes.empty()) {
      net.resolve(tx_nodes, tx_payload, sparse);
      for (const auto& d : sparse.deliveries) {
        // Accept only from the tree parent (others are overheard noise).
        if (d.from != p.parent[d.node] || d.node == params.root) continue;
        const auto id = static_cast<std::uint32_t>(d.payload >> 32);
        if (id == have[d.node]) {  // in-order pipeline
          if (++have[d.node] == k) ++done_nodes;
        }
      }
    }
    ++round;
  }
  out.rounds = round;
  out.success = done_nodes == n;
  const double ideal =
      static_cast<double>(out.period) * (static_cast<double>(depth) + k);
  out.pipeline_ratio = ideal > 0 ? static_cast<double>(round) / ideal : 0.0;
  return out;
}

}  // namespace radiocast::core
