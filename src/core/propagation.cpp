#include "core/propagation.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "schedule/decay.hpp"
#include "util/math.hpp"

namespace radiocast::core {

PropagationEngine::PropagationEngine(const Config& cfg)
    : g_(cfg.graph),
      regions_(cfg.regions),
      scheds_(cfg.scheds),
      choose_(cfg.choose),
      icp_background_(cfg.icp_background),
      seed_(cfg.seed),
      net_(*cfg.graph),
      lambda_(schedule::decay_round_length(cfg.graph->node_count())) {
  if (g_ == nullptr || regions_ == nullptr || scheds_.empty() || !choose_) {
    throw std::invalid_argument("PropagationEngine: incomplete config");
  }
  for (std::size_t s = 1; s < scheds_.size(); ++s) {
    if (scheds_[s]->mode() != scheds_[0]->mode()) {
      throw std::invalid_argument(
          "PropagationEngine: schedules must share one mode");
    }
  }
  const NodeId n = g_->node_count();
  reached_.assign(n, 0);
  upval_.assign(n, radio::kNoPayload);
  snap_.assign(n, radio::kNoPayload);
  foreign_at_.assign(n, 0);
  tx_at_.assign(n, 0);
  in_list_.assign(n, 0);

  build_region_structures();
  index_.resize(scheds_.size());
  for (std::size_t s = 0; s < scheds_.size(); ++s) build_sched_index(s);
  rstate_.assign(region_count_, RegionState{});
}

void PropagationEngine::build_region_structures() {
  const NodeId n = g_->node_count();
  const auto dense = regions_->dense_ids();
  region_count_ = static_cast<std::uint32_t>(dense.center_of_id.size());
  region_of_ = dense.id_of_node;
  region_center_ = dense.center_of_id;
  member_off_.assign(region_count_ + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (region_of_[v] != graph::kInvalidNode) ++member_off_[region_of_[v] + 1];
  }
  for (std::size_t i = 1; i < member_off_.size(); ++i) {
    member_off_[i] += member_off_[i - 1];
  }
  member_.resize(member_off_.back());
  std::vector<std::uint32_t> cursor(member_off_.begin(),
                                    member_off_.end() - 1);
  for (NodeId v = 0; v < n; ++v) {
    if (region_of_[v] != graph::kInvalidNode) member_[cursor[region_of_[v]]++] = v;
  }
}

void PropagationEngine::build_sched_index(std::size_t s) {
  const schedule::TreeSchedule& sched = *scheds_[s];
  SchedIndex& idx = index_[s];
  const NodeId n = g_->node_count();

  // Per region: max depth present.
  std::vector<std::uint32_t> max_depth(region_count_, 0);
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t r = region_of_[v];
    if (r == graph::kInvalidNode || !sched.in_scope(v)) continue;
    max_depth[r] = std::max(max_depth[r], sched.depth(v));
  }
  idx.region_start.assign(region_count_ + 1, 0);
  idx.depth_start.assign(region_count_ + 1, 0);
  for (std::uint32_t r = 0; r < region_count_; ++r) {
    idx.depth_start[r + 1] = idx.depth_start[r] + max_depth[r] + 2;
  }
  idx.off.assign(idx.depth_start.back(), 0);

  // Counting sort members of each region by depth.
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t r = region_of_[v];
    if (r == graph::kInvalidNode || !sched.in_scope(v)) continue;
    ++idx.region_start[r + 1];
    ++idx.off[idx.depth_start[r] + sched.depth(v) + 1];
  }
  for (std::uint32_t r = 0; r < region_count_; ++r) {
    idx.region_start[r + 1] += idx.region_start[r];
    const std::uint32_t base = idx.depth_start[r];
    const std::uint32_t levels = max_depth[r] + 1;
    for (std::uint32_t d = 0; d < levels; ++d) {
      idx.off[base + d + 1] += idx.off[base + d];
    }
  }
  idx.nodes.resize(idx.region_start.back());
  std::vector<std::uint32_t> cursor(idx.off);  // copy as write cursors
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t r = region_of_[v];
    if (r == graph::kInvalidNode || !sched.in_scope(v)) continue;
    const std::uint32_t slot =
        idx.region_start[r] + cursor[idx.depth_start[r] + sched.depth(v)]++;
    idx.nodes[slot] = v;
  }
}

void PropagationEngine::mark_reached(NodeId v) {
  reached_[v] = 1;
  if (!in_list_[v]) {
    in_list_[v] = 1;
    reached_list_.push_back(v);
  }
}

void PropagationEngine::start_window(std::uint32_t region,
                                     std::vector<Payload>& best) {
  RegionState& st = rstate_[region];
  st.choice = choose_(region_center_[region], st.seq_pos);
  if (st.choice.sched_index >= scheds_.size()) {
    throw std::out_of_range("PropagationEngine: choice.sched_index OOR");
  }
  st.span = std::max<std::uint32_t>(1, st.choice.pass_hops);
  const schedule::TreeSchedule& sched = *scheds_[st.choice.sched_index];
  st.pass_len = sched.mode() == schedule::ScheduleMode::kColored
                    ? st.span * sched.period()
                    : st.span;
  st.phase = Phase::kOutA;
  st.phase_round = 0;
  ++stats_.windows_started;
  begin_phase(region, Phase::kOutA, best);
}

void PropagationEngine::begin_phase(std::uint32_t region, Phase phase,
                                    std::vector<Payload>& best) {
  RegionState& st = rstate_[region];
  const schedule::TreeSchedule& sched = *scheds_[st.choice.sched_index];
  const auto lo = member_off_[region], hi = member_off_[region + 1];
  switch (phase) {
    case Phase::kOutA:
      // Fresh window: reset wave state, snapshot centre values, seed the
      // wave at the centres (Algorithm 3 step 1).
      for (std::uint32_t i = lo; i < hi; ++i) {
        const NodeId v = member_[i];
        reached_[v] = 0;
        upval_[v] = radio::kNoPayload;
        if (sched.center(v) == v) {
          snap_[v] = best[v];
          if (best[v] != radio::kNoPayload) mark_reached(v);
        }
      }
      break;
    case Phase::kInward:
      // Algorithm 3 step 2: nodes within the hop budget knowing something
      // higher than their centre's snapshot converge-cast it.
      for (std::uint32_t i = lo; i < hi; ++i) {
        const NodeId v = member_[i];
        upval_[v] = radio::kNoPayload;
        if (sched.depth(v) > st.span) continue;
        const Payload csnap = snap_[sched.center(v)];
        if (best[v] != radio::kNoPayload &&
            (csnap == radio::kNoPayload || best[v] > csnap)) {
          upval_[v] = best[v];
        }
      }
      break;
    case Phase::kOutC:
      // Algorithm 3 step 3: fresh outward wave with the updated centre
      // value.
      for (std::uint32_t i = lo; i < hi; ++i) {
        const NodeId v = member_[i];
        reached_[v] = 0;
        if (sched.center(v) == v && best[v] != radio::kNoPayload) {
          mark_reached(v);
        }
      }
      break;
  }
}

void PropagationEngine::finish_inward(std::uint32_t region,
                                      std::vector<Payload>& best) {
  // Centres adopt the converge-cast maximum. Centres are exactly the
  // depth-0 bucket of this region's schedule index.
  const RegionState& st = rstate_[region];
  const SchedIndex& idx = index_[st.choice.sched_index];
  const std::uint32_t base = idx.depth_start[region];
  const std::uint32_t start = idx.region_start[region] + idx.off[base + 0];
  const std::uint32_t end = idx.region_start[region] + idx.off[base + 1];
  for (std::uint32_t i = start; i < end; ++i) {
    const NodeId c = idx.nodes[i];
    if (upval_[c] != radio::kNoPayload &&
        (best[c] == radio::kNoPayload || upval_[c] > best[c])) {
      best[c] = upval_[c];
    }
  }
}

std::uint32_t PropagationEngine::transmit_depth(const RegionState& st) const {
  if (st.phase == Phase::kInward) {
    // Convergecast: deepest curtailed layer first, depth 1 last.
    return st.span - st.phase_round;
  }
  return st.phase_round;  // outward wave time == transmitting depth
}

void PropagationEngine::wave_round(std::vector<Payload>& best) {
  ++round_id_;
  tx_nodes_.clear();
  tx_payload_.clear();
  const bool colored =
      scheds_[0]->mode() == schedule::ScheduleMode::kColored;

  // ---- collect transmitters ---------------------------------------------
  for (std::uint32_t r = 0; r < region_count_; ++r) {
    const RegionState& st = rstate_[r];
    const schedule::TreeSchedule& sched = *scheds_[st.choice.sched_index];
    const SchedIndex& idx = index_[st.choice.sched_index];
    const bool inward = st.phase == Phase::kInward;
    if (!colored) {
      const std::uint32_t d = transmit_depth(st);
      const std::uint32_t levels = idx.levels(r);
      if (d == kNoDepth || d >= levels) continue;
      if (inward && d == 0) continue;  // centres don't converge-cast up
      const std::uint32_t base = idx.depth_start[r];
      const std::uint32_t start = idx.region_start[r] + idx.off[base + d];
      const std::uint32_t end = idx.region_start[r] + idx.off[base + d + 1];
      for (std::uint32_t i = start; i < end; ++i) {
        const NodeId v = idx.nodes[i];
        if (inward) {
          if (upval_[v] != radio::kNoPayload) {
            tx_nodes_.push_back(v);
            tx_payload_.push_back(upval_[v]);
          }
        } else if (reached_[v] && best[v] != radio::kNoPayload) {
          tx_nodes_.push_back(v);
          tx_payload_.push_back(best[v]);
        }
      }
    } else {
      // Colored mode: reached / participating members transmit in their
      // colour slot; physical flooding, one hop per period.
      const std::uint32_t slot = st.phase_round % sched.period();
      for (std::uint32_t i = member_off_[r]; i < member_off_[r + 1]; ++i) {
        const NodeId v = member_[i];
        if (!sched.in_scope(v) || sched.depth(v) > st.span) continue;
        if (sched.color(v) != slot) continue;
        if (inward) {
          if (sched.depth(v) > 0 && upval_[v] != radio::kNoPayload) {
            tx_nodes_.push_back(v);
            tx_payload_.push_back(upval_[v]);
          }
        } else if (reached_[v] && best[v] != radio::kNoPayload) {
          tx_nodes_.push_back(v);
          tx_payload_.push_back(best[v]);
        }
      }
    }
  }

  if (!colored) {
    // ---- pipelined resolution: honest inter-cluster blocking -------------
    for (std::size_t i = 0; i < tx_nodes_.size(); ++i) {
      tx_at_[tx_nodes_[i]] = round_id_;
    }
    for (std::size_t i = 0; i < tx_nodes_.size(); ++i) {
      const NodeId u = tx_nodes_[i];
      const std::uint32_t ru = region_of_[u];
      const schedule::TreeSchedule& su = *scheds_[rstate_[ru].choice.sched_index];
      for (NodeId w : g_->neighbors(u)) {
        // Foreign to w: different region (fine clusters never span
        // regions), or a different fine cluster of the shared schedule.
        if (region_of_[w] != ru || su.center(w) != su.center(u)) {
          foreign_at_[w] = round_id_;
        }
      }
    }
    for (std::size_t i = 0; i < tx_nodes_.size(); ++i) {
      const NodeId u = tx_nodes_[i];
      const std::uint32_t ru = region_of_[u];
      const RegionState& st = rstate_[ru];
      const schedule::TreeSchedule& sched = *scheds_[st.choice.sched_index];
      if (st.phase == Phase::kInward) {
        const NodeId p = sched.parent(u);
        if (p == u) continue;
        if (foreign_at_[p] == round_id_ || tx_at_[p] == round_id_) {
          ++stats_.wave_blocked;
          continue;
        }
        if (upval_[p] == radio::kNoPayload || tx_payload_[i] > upval_[p]) {
          upval_[p] = tx_payload_[i];
        }
        ++stats_.wave_deliveries;
      } else {
        for (NodeId v : sched.children(u)) {
          if (sched.depth(v) > st.span) continue;
          if (foreign_at_[v] == round_id_ || tx_at_[v] == round_id_) {
            ++stats_.wave_blocked;
            continue;
          }
          if (best[v] == radio::kNoPayload || tx_payload_[i] > best[v]) {
            best[v] = tx_payload_[i];
          }
          if (!reached_[v]) {
            mark_reached(v);
            ++stats_.wave_deliveries;
          }
        }
      }
    }
  } else {
    // ---- colored resolution: the physical medium decides ------------------
    net_.resolve(tx_nodes_, tx_payload_, sparse_out_);
    for (std::size_t i = 0; i < tx_nodes_.size(); ++i) {
      tx_at_[tx_nodes_[i]] = round_id_;
    }
    for (const auto& d : sparse_out_.deliveries) {
      const NodeId v = d.node;
      if (best[v] == radio::kNoPayload || d.payload > best[v]) {
        best[v] = d.payload;
      }
      const std::uint32_t rv = region_of_[v];
      if (rv == graph::kInvalidNode || region_of_[d.from] != rv) continue;
      const RegionState& st = rstate_[rv];
      const schedule::TreeSchedule& sched = *scheds_[st.choice.sched_index];
      if (sched.center(d.from) != sched.center(v)) continue;
      if (st.phase == Phase::kInward) {
        if (sched.depth(d.from) == sched.depth(v) + 1 &&
            (upval_[v] == radio::kNoPayload || d.payload > upval_[v])) {
          upval_[v] = d.payload;
          ++stats_.wave_deliveries;
        }
      } else if (reached_[d.from] && !reached_[v]) {
        mark_reached(v);
        ++stats_.wave_deliveries;
      }
    }
  }
  ++stats_.main_rounds;

  // ---- advance window clocks ---------------------------------------------
  for (std::uint32_t r = 0; r < region_count_; ++r) {
    RegionState& st = rstate_[r];
    if (++st.phase_round < st.pass_len) continue;
    st.phase_round = 0;
    switch (st.phase) {
      case Phase::kOutA:
        st.phase = Phase::kInward;
        begin_phase(r, Phase::kInward, best);
        break;
      case Phase::kInward:
        finish_inward(r, best);
        st.phase = Phase::kOutC;
        begin_phase(r, Phase::kOutC, best);
        break;
      case Phase::kOutC:
        ++st.seq_pos;
        start_window(r, best);
        break;
    }
  }
}

void PropagationEngine::background_round(std::vector<Payload>& best,
                                         util::Rng& rng) {
  // Algorithm 4 clock: epochs of lambda iterations, iteration i being one
  // Decay round (lambda steps) run by each cluster independently with the
  // coordinated probability 2^-i.
  const std::uint64_t iter_len = lambda_;
  const std::uint64_t epoch_len =
      static_cast<std::uint64_t>(lambda_) * lambda_;
  const std::uint64_t epoch = bg_clock_ / epoch_len;
  const std::uint32_t i =
      static_cast<std::uint32_t>((bg_clock_ % epoch_len) / iter_len) + 1;
  const std::uint32_t step_in_round =
      static_cast<std::uint32_t>(bg_clock_ % iter_len) + 1;
  ++bg_clock_;

  tx_nodes_.clear();
  tx_payload_.clear();
  const double cluster_p = schedule::decay_probability(i);
  const double node_p = schedule::decay_probability(step_in_round);

  // Compact the reached list lazily while collecting participants.
  std::size_t w = 0;
  for (std::size_t r = 0; r < reached_list_.size(); ++r) {
    const NodeId v = reached_list_[r];
    if (!reached_[v]) {
      in_list_[v] = 0;  // stale entry from an earlier window
      continue;
    }
    reached_list_[w++] = v;
    if (best[v] == radio::kNoPayload) continue;
    const std::uint32_t rv = region_of_[v];
    const schedule::TreeSchedule& sched =
        *scheds_[rstate_[rv].choice.sched_index];
    // Coordinated per-cluster coin.
    std::uint64_t h = util::mix_seed(seed_, epoch * 64 + i);
    h = util::mix_seed(h, sched.center(v));
    const double u01 = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u01 >= cluster_p) continue;
    if (!rng.bernoulli(node_p)) continue;
    tx_nodes_.push_back(v);
    tx_payload_.push_back(best[v]);
  }
  reached_list_.resize(w);

  if (!tx_nodes_.empty()) {
    net_.resolve(tx_nodes_, tx_payload_, sparse_out_);
    stats_.decay_deliveries += sparse_out_.deliveries.size();
    for (const auto& d : sparse_out_.deliveries) {
      const NodeId v = d.node;
      if (best[v] == radio::kNoPayload || d.payload > best[v]) {
        best[v] = d.payload;
      }
      const std::uint32_t rv = region_of_[v];
      if (rv == graph::kInvalidNode || region_of_[d.from] != rv) continue;
      const schedule::TreeSchedule& sched =
          *scheds_[rstate_[rv].choice.sched_index];
      if (sched.center(d.from) != sched.center(v)) continue;
      // Same fine cluster: v now holds its cluster's message — the rescue
      // of Lemma 4.2 — and can also relay it up during inward passes.
      if (!reached_[v]) {
        mark_reached(v);
        ++stats_.rescued;
      }
      if (upval_[v] == radio::kNoPayload || d.payload > upval_[v]) {
        upval_[v] = d.payload;
      }
    }
  }
  ++stats_.background_rounds;
}

std::uint32_t PropagationEngine::step(std::vector<Payload>& best,
                                      util::Rng& rng) {
  if (!started_) {
    started_ = true;
    for (std::uint32_t r = 0; r < region_count_; ++r) start_window(r, best);
  }
  wave_round(best);
  if (icp_background_) {
    background_round(best, rng);
    return 2;
  }
  return 1;
}

}  // namespace radiocast::core
