#include "core/compete.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "cluster/hierarchy.hpp"
#include "core/theory.hpp"
#include "schedule/bfs_schedule.hpp"
#include "util/math.hpp"

namespace radiocast::core {

namespace {

/// Trivial one-region partition (everything in the cluster of node 0) used
/// as the "coarse" layer of the background process — see propagation.hpp.
cluster::Partition trivial_partition(const graph::Graph& g) {
  cluster::Partition p;
  const NodeId n = g.node_count();
  p.beta = 1.0;
  p.center.assign(n, 0);
  p.dist_to_center.assign(n, 0);
  p.parent.assign(n, 0);
  p.delta.assign(n, 0.0);
  return p;
}

}  // namespace

CompeteResult compete(const graph::Graph& g, std::uint32_t diameter,
                      const std::vector<CompeteSource>& sources,
                      const CompeteParams& params, std::uint64_t seed) {
  const NodeId n = g.node_count();
  if (n == 0) throw std::invalid_argument("compete: empty graph");
  CompeteResult result;
  result.best.assign(n, radio::kNoPayload);
  for (const auto& s : sources) {
    if (s.node >= n) throw std::out_of_range("compete: source out of range");
    if (result.best[s.node] == radio::kNoPayload ||
        s.value > result.best[s.node]) {
      result.best[s.node] = s.value;
    }
    if (result.winner == radio::kNoPayload || s.value > result.winner) {
      result.winner = s.value;
    }
  }
  if (sources.empty()) {
    result.success = true;  // vacuous: nothing to propagate
    return result;
  }

  util::Rng rng(seed);
  const double d = static_cast<double>(std::max<std::uint32_t>(2, diameter));
  const double log_n = util::safe_log2(static_cast<double>(n));
  const double log_d = util::safe_log2(d);

  // ---- Algorithm 1 steps 1-6: hierarchy + schedules (charged) -------------
  cluster::Hierarchy hierarchy(g, diameter, params.hierarchy, rng);
  hierarchy.set_randomize(params.randomize_beta);
  result.precompute_rounds_charged += hierarchy.charged_precompute_rounds();

  std::vector<std::unique_ptr<schedule::TreeSchedule>> main_scheds;
  std::vector<const schedule::TreeSchedule*> main_sched_ptrs;
  for (std::size_t ji = 0; ji < hierarchy.j_values().size(); ++ji) {
    for (std::uint32_t r = 0; r < hierarchy.reps_per_j(); ++r) {
      main_scheds.push_back(std::make_unique<schedule::TreeSchedule>(
          g, hierarchy.fine(ji, r), params.mode));
      main_sched_ptrs.push_back(main_scheds.back().get());
    }
  }

  // Main-process curtail: ell(j) = c * log n * 2^j / log D  (Theorem 2.2's
  // O(log n / (beta log D)) with beta = 2^-j). The HW ablation multiplies
  // by log log n — exactly the factor Theorem 2.2 removes.
  const double hw_factor =
      params.hw_curtail ? std::max(1.0, std::log2(log_n)) : 1.0;
  const double curtail_c = params.curtail_constant * hw_factor;
  auto choose_main = [&hierarchy, curtail_c, log_n, log_d](
                         NodeId center, std::uint64_t pos) -> WindowChoice {
    const auto c = hierarchy.sequence_choice(center, pos);
    WindowChoice w;
    w.sched_index = static_cast<std::uint32_t>(
        c.j_index * hierarchy.reps_per_j() + c.rep);
    w.pass_hops = static_cast<std::uint32_t>(
        std::ceil(curtail_c * log_n / (c.beta * log_d)));
    return w;
  };

  PropagationEngine::Config main_cfg;
  main_cfg.graph = &g;
  main_cfg.regions = &hierarchy.coarse();
  main_cfg.scheds = main_sched_ptrs;
  main_cfg.choose = choose_main;
  main_cfg.icp_background = params.enable_icp_background;
  main_cfg.seed = rng();
  PropagationEngine main_engine(main_cfg);

  // ---- Algorithm 2: background process ------------------------------------
  std::unique_ptr<cluster::Partition> bg_regions;
  std::vector<std::unique_ptr<cluster::Partition>> bg_parts;
  std::vector<std::unique_ptr<schedule::TreeSchedule>> bg_scheds;
  std::vector<const schedule::TreeSchedule*> bg_sched_ptrs;
  std::unique_ptr<PropagationEngine> bg_engine;
  if (params.enable_background) {
    bg_regions = std::make_unique<cluster::Partition>(trivial_partition(g));
    const double bg_beta = util::fpow(d, params.bg_beta_exponent);
    const std::uint32_t bg_reps = std::min<std::uint32_t>(
        params.max_bg_clusterings,
        static_cast<std::uint32_t>(
            std::max(1.0, std::ceil(util::fpow(d, params.bg_reps_exponent)))));
    for (std::uint32_t r = 0; r < bg_reps; ++r) {
      // TreeSchedule keeps a pointer to its partition; give the partition
      // stable storage for the lifetime of the run.
      bg_parts.push_back(std::make_unique<cluster::Partition>(
          cluster::partition(g, bg_beta, rng)));
      result.precompute_rounds_charged +=
          cluster::precompute_rounds(n, bg_beta);
      bg_scheds.push_back(std::make_unique<schedule::TreeSchedule>(
          g, *bg_parts.back(), params.mode));
      bg_sched_ptrs.push_back(bg_scheds.back().get());
    }
    const std::uint32_t bg_hops = static_cast<std::uint32_t>(
        std::ceil(params.bg_curtail_constant * log_n / bg_beta));
    auto choose_bg = [bg_reps, bg_hops](NodeId, std::uint64_t pos) {
      WindowChoice w;
      w.sched_index = static_cast<std::uint32_t>(pos % bg_reps);
      w.pass_hops = bg_hops;
      return w;
    };
    PropagationEngine::Config bg_cfg;
    bg_cfg.graph = &g;
    bg_cfg.regions = bg_regions.get();
    bg_cfg.scheds = bg_sched_ptrs;
    bg_cfg.choose = choose_bg;
    bg_cfg.icp_background = params.enable_icp_background;
    bg_cfg.seed = rng();
    bg_engine = std::make_unique<PropagationEngine>(bg_cfg);
  }

  // ---- run, interleaving the two processes 1:1 ----------------------------
  const double bound =
      theory::bound_compete(n, std::max<std::uint32_t>(2, diameter),
                            sources.size());
  const std::uint64_t budget = std::min<std::uint64_t>(
      params.max_rounds_abs,
      static_cast<std::uint64_t>(params.round_budget_factor * bound));

  util::Rng main_rng = rng.fork(1);
  util::Rng bg_rng = rng.fork(2);
  std::uint64_t rounds = 0;
  std::uint32_t since_check = 0;
  auto all_informed = [&]() {
    for (NodeId v = 0; v < n; ++v) {
      if (result.best[v] != result.winner) return false;
    }
    return true;
  };
  bool done = all_informed();
  while (!done && rounds < budget) {
    rounds += main_engine.step(result.best, main_rng);
    if (bg_engine) rounds += bg_engine->step(result.best, bg_rng);
    if (++since_check >= params.check_interval) {
      since_check = 0;
      done = all_informed();
    }
  }
  if (!done) done = all_informed();

  result.rounds = rounds;
  result.success = done;
  result.informed = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (result.best[v] == result.winner) ++result.informed;
  }
  result.main_stats = main_engine.stats();
  if (bg_engine) result.background_stats = bg_engine->stats();
  return result;
}

}  // namespace radiocast::core
