#include "core/leader_election.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/math.hpp"
#include "util/rng.hpp"

namespace radiocast::core {

LeaderElectionResult elect_leader(const graph::Graph& g,
                                  std::uint32_t diameter,
                                  const LeaderElectionParams& params,
                                  std::uint64_t seed) {
  const NodeId n = g.node_count();
  LeaderElectionResult out;
  util::Rng rng(util::mix_seed(seed, 0xE1EC7));

  // Algorithm 6 step 1: self-selection with probability Theta(log n / n).
  const double log_n = util::safe_log2(static_cast<double>(n));
  const double p = std::min(1.0, params.candidate_c * log_n /
                                     static_cast<double>(std::max<NodeId>(1, n)));
  // Step 2: random Theta(log n)-bit IDs.
  // Random-ID width: Theta(log n) bits, capped at 31 so the (id, node)
  // encoding below fits one 64-bit payload.
  const double bits =
      std::clamp(params.id_bits_c * log_n, 8.0, 31.0);
  const std::uint64_t id_space = std::uint64_t{1}
                                 << static_cast<std::uint32_t>(std::ceil(bits));

  std::vector<CompeteSource> candidates;
  std::unordered_set<radio::Payload> seen;
  for (NodeId v = 0; v < n; ++v) {
    if (!rng.bernoulli(p)) continue;
    // Encode (random id, node) so the winning message identifies its
    // holder; the random id dominates the comparison (the node id is a
    // tiebreak, exactly the "IDs unique whp" event the paper conditions
    // on — we track whether it held).
    const std::uint64_t rand_id = rng.uniform(id_space);
    if (!seen.insert(rand_id).second) out.ids_unique = false;
    const radio::Payload msg =
        (rand_id << 32) | static_cast<radio::Payload>(v);
    candidates.push_back({v, msg});
  }
  // Degenerate (tiny n or unlucky draw): the paper's whp guarantee assumes
  // |C| >= 1; we retry the self-selection, as a real deployment would after
  // a silent timeout.
  std::uint32_t retries = 0;
  while (candidates.empty() && retries < 64) {
    ++retries;
    for (NodeId v = 0; v < n; ++v) {
      if (!rng.bernoulli(p)) continue;
      const std::uint64_t rand_id = rng.uniform(id_space);
      const radio::Payload msg =
          (rand_id << 32) | static_cast<radio::Payload>(v);
      candidates.push_back({v, msg});
    }
  }
  out.candidate_count = static_cast<std::uint32_t>(candidates.size());
  if (candidates.empty()) return out;

  // Step 3: Compete(C).
  const CompeteResult r =
      compete(g, diameter, candidates, params.compete, rng());
  out.rounds = r.rounds;
  out.precompute_rounds_charged = r.precompute_rounds_charged;
  out.leader = static_cast<NodeId>(r.winner & 0xFFFFFFFFu);
  out.agreeing = r.informed;
  out.success = r.success && out.leader < n;
  return out;
}

}  // namespace radiocast::core
