#include "core/broadcast.hpp"

namespace radiocast::core {

BroadcastResult broadcast(const graph::Graph& g, std::uint32_t diameter,
                          graph::NodeId source, radio::Payload message,
                          const CompeteParams& params, std::uint64_t seed) {
  const CompeteResult r =
      compete(g, diameter, {{source, message}}, params, seed);
  BroadcastResult out;
  out.success = r.success;
  out.rounds = r.rounds;
  out.precompute_rounds_charged = r.precompute_rounds_charged;
  out.informed = r.informed;
  out.message = message;
  return out;
}

BroadcastResult broadcast(const graph::Graph& g, std::uint32_t diameter,
                          graph::NodeId source, const CompeteParams& params,
                          std::uint64_t seed) {
  return broadcast(g, diameter, source,
                   static_cast<radio::Payload>(source) + 1, params, seed);
}

}  // namespace radiocast::core
