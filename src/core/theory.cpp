#include "core/theory.hpp"

#include <algorithm>
#include <cmath>

#include "util/math.hpp"

namespace radiocast::core::theory {

namespace {
double dlog(std::uint64_t x) {
  return util::safe_log2(static_cast<double>(x));
}
double polylog3(std::uint64_t n) {
  const double l = dlog(n);
  return l * l * l;
}
}  // namespace

double bound_cd(std::uint64_t n, std::uint64_t d) {
  return static_cast<double>(d) * dlog(n) / dlog(d) + polylog3(n);
}

double bound_compete(std::uint64_t n, std::uint64_t d, std::uint64_t sources) {
  return bound_cd(n, d) +
         static_cast<double>(sources) *
             util::fpow(static_cast<double>(d), 0.125);
}

double bound_hw(std::uint64_t n, std::uint64_t d) {
  return static_cast<double>(d) * dlog(n) * util::safe_log2(dlog(n)) /
             dlog(d) +
         polylog3(n);
}

double bound_bgi(std::uint64_t n, std::uint64_t d) {
  return (static_cast<double>(d) + dlog(n)) * dlog(n);
}

double bound_crkp(std::uint64_t n, std::uint64_t d) {
  const double ratio = std::max(2.0, static_cast<double>(n) /
                                         std::max<double>(1.0, static_cast<double>(d)));
  return static_cast<double>(d) * std::log2(ratio) + dlog(n) * dlog(n);
}

double lower_bound_no_spontaneous(std::uint64_t n, std::uint64_t d) {
  return bound_crkp(n, d);
}

double lower_bound_spontaneous(std::uint64_t n, std::uint64_t d) {
  return static_cast<double>(d) + dlog(n) * dlog(n);
}

double bound_gh_le(std::uint64_t n, std::uint64_t d) {
  const double ratio = std::max(2.0, static_cast<double>(n) /
                                         std::max<double>(1.0, static_cast<double>(d)));
  const double base = static_cast<double>(d) * std::log2(ratio) + polylog3(n);
  const double factor =
      std::min(util::safe_log2(dlog(n)), std::log2(ratio));
  return base * std::max(1.0, factor);
}

double bound_binary_search_le(std::uint64_t n, std::uint64_t d) {
  return bound_crkp(n, d) * dlog(n);
}

double bound_cluster_distance(std::uint64_t n, std::uint64_t d, double beta) {
  return dlog(n) / (beta * dlog(d));
}

double bound_strong_diameter(std::uint64_t n, double beta) {
  return dlog(n) / beta;
}

double bound_bad_subpaths(std::uint64_t d) {
  return util::fpow(static_cast<double>(d), 0.63);
}

double bound_subpath_badness(std::uint64_t d) {
  return util::fpow(static_cast<double>(d), -0.26);
}

}  // namespace radiocast::core::theory
