// Leader election (Algorithm 6 / Theorem 5.2): nodes self-select as
// candidates with probability Theta(log n / n), candidates draw random
// Theta(log n)-bit IDs, and Compete(C) propagates the highest ID; the node
// holding it is the leader. O(D log n / log D + polylog n) rounds whp —
// matching broadcast, the paper's headline for leader election.
#pragma once

#include <cstdint>
#include <vector>

#include "core/compete.hpp"

namespace radiocast::core {

struct LeaderElectionParams {
  CompeteParams compete{};
  /// Candidate probability multiplier: P[candidate] = candidate_c*log2(n)/n
  /// (clamped to 1). The paper's Theta(log n / n).
  double candidate_c = 2.0;
  /// Candidate ID bit width multiplier: IDs uniform in [0, n^id_bits_c)
  /// (Theta(log n) bits).
  double id_bits_c = 3.0;
};

struct LeaderElectionResult {
  bool success = false;           // all nodes agree & leader is a candidate
  std::uint64_t rounds = 0;
  std::uint64_t precompute_rounds_charged = 0;
  graph::NodeId leader = graph::kInvalidNode;
  std::uint32_t candidate_count = 0;
  bool ids_unique = true;         // all candidate IDs distinct (whp event)
  std::uint32_t agreeing = 0;     // nodes knowing the winning ID at the end
};

LeaderElectionResult elect_leader(const graph::Graph& g,
                                  std::uint32_t diameter,
                                  const LeaderElectionParams& params,
                                  std::uint64_t seed);

}  // namespace radiocast::core
