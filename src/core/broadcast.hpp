// Broadcasting via Compete({s}) — Theorem 5.1: O(D log n / log D +
// polylog n) rounds with high probability.
#pragma once

#include <cstdint>

#include "core/compete.hpp"

namespace radiocast::core {

struct BroadcastResult {
  bool success = false;            // every node learnt the source message
  std::uint64_t rounds = 0;        // propagation rounds
  std::uint64_t precompute_rounds_charged = 0;
  std::uint32_t informed = 0;      // nodes informed at termination
  radio::Payload message = 0;
};

/// Broadcasts `message` from `source` to every node (Compete with S={s}).
BroadcastResult broadcast(const graph::Graph& g, std::uint32_t diameter,
                          graph::NodeId source, radio::Payload message,
                          const CompeteParams& params, std::uint64_t seed);

/// Convenience: default message (the source's id).
BroadcastResult broadcast(const graph::Graph& g, std::uint32_t diameter,
                          graph::NodeId source, const CompeteParams& params,
                          std::uint64_t seed);

}  // namespace radiocast::core
