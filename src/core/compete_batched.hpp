// Lane-batched Monte-Carlo drivers for the Decay-relay Compete primitive:
// run N independent seeded replications of the full protocol through the
// lanes of one radio::LaneExecutor, so (with a BatchNetwork on the
// bitslice backend) up to 64 seeds share every CSR traversal instead of
// re-walking the adjacency once per seed.
//
// The protocol is the Compete semantics restricted to Decay relaying
// (exactly baselines::decay_broadcast's rule set, the BGI yardstick):
// every informed node relays the highest message it knows via
// synchronized Decay, densities cycling over 2^-1 .. 2^-cycle_depth,
// until every node knows max(S) or the round budget runs out. Each lane
// carries its own knowledge plane (best), its own RNG stream, and its own
// termination clock; per-lane payload planes let a node relay different
// values in different lanes, which is what lifted the medium's old
// lane-invariant-payload contract.
//
// Determinism contract (pinned by tests/test_protocol_lanes.cpp): lane l
// of compete_batched(..., seeds) is byte-identical — success, rounds,
// informed count, transmission/delivery counters, and the whole best[]
// plane — to a 1-lane run over a scalar Network with seeds[l]. The
// paper's clustering-based Compete main process (core/compete.hpp)
// remains scalar; batching its per-seed hierarchies is future work on the
// ROADMAP.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/compete.hpp"
#include "graph/graph.hpp"
#include "radio/lane_executor.hpp"
#include "radio/medium.hpp"

namespace radiocast::core {

struct BatchedCompeteParams {
  /// Decay density cycle depth: probabilities cycle over 2^-1 ..
  /// 2^-cycle_depth. 0 = auto (ceil(log2 n), the BGI rule).
  std::uint32_t cycle_depth = 0;
  /// Stop a lane after this many rounds even if nodes remain uninformed.
  std::uint64_t max_rounds = 1'000'000;
  /// Completion-scan cadence (measurement only, like the scalar cores).
  std::uint32_t check_interval = 16;
};

/// One lane's (= one seed's) replication result.
struct CompeteLaneResult {
  bool success = false;      // every node knew max(S) at termination
  std::uint64_t rounds = 0;  // physical rounds this lane executed
  std::uint32_t informed = 0;
  radio::Payload winner = radio::kNoPayload;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  /// Final per-node knowledge (kNoPayload where nothing was learnt).
  std::vector<radio::Payload> best;
};

/// Runs seeds.size() independent replications of Decay-relay Compete(S)
/// through the lanes of `net` (seeds.size() must be in [1, net.lanes()]).
/// Lane l is fully determined by (topology, sources, params, seeds[l]).
std::vector<CompeteLaneResult> compete_batched(
    radio::LaneExecutor& net, const std::vector<CompeteSource>& sources,
    const BatchedCompeteParams& params, std::span<const std::uint64_t> seeds);

/// Convenience: owns a BatchNetwork over `g` with seeds.size() lanes on
/// the given backend (bitslice = one traversal per round for all seeds);
/// `recovery` pins the backend's sender-recovery path (results are
/// identical for every setting — only the cost moves).
std::vector<CompeteLaneResult> compete_batched(
    const graph::Graph& g, const std::vector<CompeteSource>& sources,
    const BatchedCompeteParams& params, std::span<const std::uint64_t> seeds,
    radio::MediumKind medium = radio::MediumKind::kBitslice,
    radio::RecoveryStrategy recovery = radio::RecoveryStrategy::kAuto);

/// Broadcast = Compete with S = {source}: N seeded replications of the
/// Decay-relay broadcast of `message` from `source`.
std::vector<CompeteLaneResult> broadcast_batched(
    const graph::Graph& g, graph::NodeId source, radio::Payload message,
    const BatchedCompeteParams& params, std::span<const std::uint64_t> seeds,
    radio::MediumKind medium = radio::MediumKind::kBitslice,
    radio::RecoveryStrategy recovery = radio::RecoveryStrategy::kAuto);

}  // namespace radiocast::core
