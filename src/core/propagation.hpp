// PropagationEngine: the windowed Intra-Cluster Propagation machinery that
// realises BOTH processes of Compete (Section 3).
//
// The observation that lets one engine serve both: Algorithm 2 (the
// background process) is exactly Algorithm 1 (the main process) with a
// trivial coarse clustering (one coarse cluster covering V), a fixed beta
// (D^-0.1) instead of a random one, a round-robin instead of a random
// sequence, and a longer curtail (log n / beta instead of
// log n / (beta log D)). So the engine is parameterised by:
//
//   * a "coarse" region partition (nodes of different regions never share
//     fine clusters; their window clocks are independent),
//   * a grid of fine TreeSchedules (clusterings computed inside regions),
//   * a choice function (coarse centre, sequence position) -> (schedule,
//     hop budget) implementing step 5's shared-randomness sequence or the
//     background's round-robin,
//
// and Compete instantiates it twice, interleaving their steps 1:1.
//
// Each engine step runs one round of the scheduled wave (Algorithm 3's
// current pass, per-region desynchronised) and — when enabled — one round
// of the engine's own Decay background stream (Algorithm 4), so one step
// consumes 2 physical rounds, 4 per Compete step across both engines,
// matching the paper's alternating construction.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/exponential_shifts.hpp"
#include "graph/graph.hpp"
#include "radio/network.hpp"
#include "schedule/bfs_schedule.hpp"
#include "util/rng.hpp"

namespace radiocast::core {

using graph::NodeId;
using radio::Payload;

/// What a region runs in its next window.
struct WindowChoice {
  std::uint32_t sched_index = 0;  // into Config::scheds
  std::uint32_t pass_hops = 1;    // the curtail ell
};

struct PropagationStats {
  std::uint64_t main_rounds = 0;       // scheduled-wave rounds
  std::uint64_t background_rounds = 0; // Algorithm 4 rounds
  std::uint64_t windows_started = 0;
  std::uint64_t wave_deliveries = 0;   // successful scheduled hops
  std::uint64_t wave_blocked = 0;      // hops lost to foreign transmitters
  std::uint64_t decay_deliveries = 0;
  std::uint64_t rescued = 0;           // risky nodes re-attached by decay
};

class PropagationEngine {
 public:
  struct Config {
    const graph::Graph* graph = nullptr;
    /// Region partition ("coarse" clustering). Fine schedules must have
    /// been computed with partition_regions over this partition's centres
    /// (or over the whole graph when this partition is trivial).
    const cluster::Partition* regions = nullptr;
    std::vector<const schedule::TreeSchedule*> scheds;
    std::function<WindowChoice(NodeId region_center, std::uint64_t pos)>
        choose;
    bool icp_background = true;  // Algorithm 4 stream
    std::uint64_t seed = 0;
  };

  explicit PropagationEngine(const Config& cfg);

  /// Advances the engine by one step over the shared knowledge vector
  /// `best` (node -> highest message known, radio::kNoPayload if none).
  /// Returns physical rounds consumed (1, or 2 with the background stream).
  std::uint32_t step(std::vector<Payload>& best, util::Rng& rng);

  const PropagationStats& stats() const { return stats_; }

 private:
  // ---- static structure --------------------------------------------------
  const graph::Graph* g_;
  const cluster::Partition* regions_;
  std::vector<const schedule::TreeSchedule*> scheds_;
  std::function<WindowChoice(NodeId, std::uint64_t)> choose_;
  bool icp_background_;
  std::uint64_t seed_;
  radio::Network net_;  // physical medium for the Decay background stream

  std::uint32_t region_count_ = 0;
  std::vector<std::uint32_t> region_of_;     // dense region id per node
  std::vector<NodeId> region_center_;        // per dense id
  std::vector<std::uint32_t> member_off_;    // CSR: region -> member nodes
  std::vector<NodeId> member_;

  /// Per schedule: members of each region sorted by tree depth, with
  /// per-depth offsets, enabling O(#transmitters) wave rounds.
  struct SchedIndex {
    std::vector<NodeId> nodes;                // grouped by region, by depth
    std::vector<std::uint32_t> region_start;  // size region_count+1
    std::vector<std::uint32_t> depth_start;   // per region: start into off_
    std::vector<std::uint32_t> off;           // flattened depth offsets
    std::uint32_t levels(std::uint32_t r) const {
      return depth_start[r + 1] - depth_start[r] - 1;
    }
  };
  std::vector<SchedIndex> index_;

  // ---- per-region window state -------------------------------------------
  enum class Phase : std::uint8_t { kOutA = 0, kInward = 1, kOutC = 2 };
  struct RegionState {
    std::uint64_t seq_pos = 0;
    WindowChoice choice{};
    Phase phase = Phase::kOutA;
    std::uint32_t phase_round = 0;
    std::uint32_t pass_len = 1;  // rounds per pass (hops, or hops*period)
    std::uint32_t span = 1;      // hop budget
  };
  std::vector<RegionState> rstate_;

  // ---- per-node wave state -----------------------------------------------
  std::vector<std::uint8_t> reached_;
  std::vector<Payload> upval_;
  std::vector<Payload> snap_;  // centre snapshot (entry used at centres)
  std::vector<NodeId> reached_list_;  // compacted lazily (decay stream)
  std::vector<std::uint8_t> in_list_; // membership flags for reached_list_
  bool started_ = false;

  // round-stamped scratch
  std::vector<std::uint64_t> foreign_at_;
  std::vector<std::uint64_t> tx_at_;
  std::uint64_t round_id_ = 0;

  std::vector<NodeId> tx_nodes_;
  std::vector<Payload> tx_payload_;
  radio::SparseOutcome sparse_out_;

  // decay background clock
  std::uint64_t bg_clock_ = 0;
  std::uint32_t lambda_;

  PropagationStats stats_;

  // ---- helpers ------------------------------------------------------------
  void build_region_structures();
  void build_sched_index(std::size_t s);
  void start_window(std::uint32_t region, std::vector<Payload>& best);
  void begin_phase(std::uint32_t region, Phase phase,
                   std::vector<Payload>& best);
  void finish_inward(std::uint32_t region, std::vector<Payload>& best);
  void wave_round(std::vector<Payload>& best);
  void background_round(std::vector<Payload>& best, util::Rng& rng);
  void mark_reached(NodeId v);

  /// Transmitting depth for a region this round, or kNoDepth when idle.
  static constexpr std::uint32_t kNoDepth = static_cast<std::uint32_t>(-1);
  std::uint32_t transmit_depth(const RegionState& st) const;
};

}  // namespace radiocast::core
