#include "core/bfs_tree.hpp"

#include <stdexcept>

#include "graph/algorithms.hpp"
#include "radio/network.hpp"
#include "schedule/decay.hpp"
#include "util/math.hpp"

namespace radiocast::core {

BfsTreeResult build_bfs_tree(const graph::Graph& g, std::uint32_t diameter,
                             const BfsTreeParams& params, std::uint64_t seed) {
  const graph::NodeId n = g.node_count();
  BfsTreeResult out;
  if (n == 0) return out;
  out.parent.assign(n, graph::kInvalidNode);
  out.layer.assign(n, graph::kUnreachable);

  // Phase 1: a root. Either supplied or elected (Algorithm 6).
  if (params.root_hint != graph::kInvalidNode) {
    if (params.root_hint >= n) {
      throw std::out_of_range("build_bfs_tree: root_hint out of range");
    }
    out.root = params.root_hint;
  } else {
    const auto le = elect_leader(g, diameter, params.election, seed);
    out.election_rounds = le.rounds;
    if (!le.success) return out;
    out.root = le.leader;
  }
  out.parent[out.root] = out.root;
  out.layer[out.root] = 0;

  // Phase 2: layer-synchronized growth. Time is divided into phases of
  // Theta(log^2 n) rounds; during phase h ONLY the nodes attached at layer
  // h run Decay, so a listener attaching in phase h provably sits at BFS
  // distance h+1 (its parent is at true distance h, inductively). An
  // unsynchronized relay would be faster but can mis-assign layers (a node
  // may first hear a non-shortest-path neighbour); layering is what makes
  // the result a genuine BFS tree whp, at O(D log^2 n) total cost.
  radio::Network net(g);
  util::Rng rng(util::mix_seed(seed, 0xBF5));
  std::vector<graph::NodeId> tx_nodes;
  std::vector<radio::Payload> tx_payload;
  radio::SparseOutcome sparse;
  const std::uint32_t lambda = schedule::decay_round_length(n);
  // c * log n Decay rounds per phase: each frontier-adjacent node is
  // informed with constant probability per Decay round (Lemma 3.1), so it
  // fails a whole phase with probability n^-Theta(c).
  const std::uint64_t phase_len = std::uint64_t{4} * lambda * lambda;

  std::vector<std::vector<graph::NodeId>> by_layer(
      static_cast<std::size_t>(diameter) + 2);
  by_layer[0].push_back(out.root);
  std::uint32_t attached_count = 1;
  std::uint64_t round = 0;
  for (std::uint32_t h = 0; h + 1 < by_layer.size() && attached_count < n;
       ++h) {
    const auto& frontier = by_layer[h];
    if (frontier.empty()) break;
    for (std::uint64_t t = 0; t < phase_len && round < params.max_growth_rounds;
         ++t, ++round) {
      const auto step = static_cast<std::uint32_t>(t % lambda) + 1;
      const double p = schedule::decay_probability(step);
      tx_nodes.clear();
      tx_payload.clear();
      for (const graph::NodeId v : frontier) {
        if (rng.bernoulli(p)) {
          tx_nodes.push_back(v);
          tx_payload.push_back(
              (static_cast<radio::Payload>(h) << 32) | v);
        }
      }
      if (tx_nodes.empty()) continue;
      net.resolve(tx_nodes, tx_payload, sparse);
      for (const auto& d : sparse.deliveries) {
        if (out.parent[d.node] != graph::kInvalidNode) continue;
        const auto sender =
            static_cast<graph::NodeId>(d.payload & 0xFFFFFFFFu);
        out.parent[d.node] = sender;
        out.layer[d.node] = h + 1;
        by_layer[h + 1].push_back(d.node);
        ++attached_count;
      }
      if (attached_count == n) break;
    }
  }
  out.growth_rounds = round;
  out.success = attached_count == n && is_valid_bfs_tree(g, out);
  return out;
}

bool is_valid_bfs_tree(const graph::Graph& g, const BfsTreeResult& tree) {
  const graph::NodeId n = g.node_count();
  if (tree.root >= n) return false;
  if (tree.parent.size() != n || tree.layer.size() != n) return false;
  if (tree.parent[tree.root] != tree.root || tree.layer[tree.root] != 0) {
    return false;
  }
  const auto dist = graph::bfs_distances(g, tree.root);
  for (graph::NodeId v = 0; v < n; ++v) {
    const graph::NodeId p = tree.parent[v];
    if (p == graph::kInvalidNode) return false;
    if (v == tree.root) continue;
    if (!g.has_edge(v, p)) return false;
    if (tree.layer[v] != tree.layer[p] + 1) return false;
    // Layered-Decay attachment guarantees shortest-path layers: a node can
    // only ever hear from an attached neighbour, and the first hearing
    // fixes the layer — but collisions could in principle delay a node
    // past its BFS distance while a deeper neighbour attaches it. The BFS
    // validity check below is therefore a real assertion about the
    // algorithm, not a tautology.
    if (tree.layer[v] < dist[v]) return false;
  }
  // For a *BFS* tree we require exact distances.
  for (graph::NodeId v = 0; v < n; ++v) {
    if (tree.layer[v] != dist[v]) return false;
  }
  return true;
}

}  // namespace radiocast::core
