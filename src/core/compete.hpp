// Compete(S) — the paper's central primitive (Section 3, Theorem 4.1).
//
// Input: a source set S, each source holding an integer message. Guarantee:
// with high probability, upon completion every node knows the highest
// message in S, within O(D log n / log D + |S| D^0.125 + polylog n) rounds.
//
// The implementation runs the two concurrent processes of Section 3:
//   * main process (Algorithm 1): coarse clustering (beta = D^-0.5) for
//     shared randomness, D^0.2 fine clusterings per j (beta = 2^-j,
//     j random in [0.01 log D, 0.1 log D]), per-coarse-cluster random
//     sequences of fine clusterings, Intra-Cluster Propagation curtailed at
//     O(log n / (beta log D)) hops;
//   * background process (Algorithm 2): fixed beta = D^-0.1 fine
//     clusterings over the whole network, round-robin, curtailed at
//     O(log n / beta) hops — "papering over the cracks" at coarse-cluster
//     boundaries;
// interleaved 1:1, each with its own Algorithm 4 Decay background stream
// for risky boundary nodes.
//
// Round accounting: `rounds` counts the simulated propagation rounds across
// all interleaved streams; the distributed precomputation (clusterings,
// schedules, sequence dissemination — Algorithm 1 steps 1-6) is charged
// analytically in `precompute_rounds_charged` (DESIGN.md fidelity note 1).
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "core/propagation.hpp"
#include "graph/graph.hpp"
#include "radio/model.hpp"

namespace radiocast::core {

struct CompeteSource {
  graph::NodeId node = 0;
  radio::Payload value = 0;
};

struct CompeteResult {
  /// True iff every node knew the highest source message at termination.
  bool success = false;
  /// Propagation rounds simulated (all four interleaved streams).
  std::uint64_t rounds = 0;
  /// Analytically charged precomputation cost (Lemma 2.1 + Lemma 2.3).
  std::uint64_t precompute_rounds_charged = 0;
  /// The highest source message (the value everyone must learn).
  radio::Payload winner = radio::kNoPayload;
  /// Nodes that knew the winner at termination.
  std::uint32_t informed = 0;
  /// Final per-node knowledge (kNoPayload where nothing was learnt).
  std::vector<radio::Payload> best;
  /// Main and background engine statistics.
  PropagationStats main_stats;
  PropagationStats background_stats;
};

/// Runs Compete(S) on `g` (connected; `diameter` is the D the nodes know).
/// The run is deterministic in (g, sources, params, seed).
CompeteResult compete(const graph::Graph& g, std::uint32_t diameter,
                      const std::vector<CompeteSource>& sources,
                      const CompeteParams& params, std::uint64_t seed);

}  // namespace radiocast::core
