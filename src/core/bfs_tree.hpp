// Distributed BFS-tree construction — the application Section 1.2 uses to
// motivate leader election: "many fast multi-message communication
// protocols require construction of a breadth-first search tree, which in
// turn requires a single node to act as source".
//
// Pipeline: (1) elect a leader with Algorithm 6, (2) grow a BFS tree from
// the leader by layered Decay: every node that first hears a message
// carrying hop count h adopts the sender as parent and layer h+1, then
// joins the Decay relay announcing h+1. Runs fully physically over the
// medium. Cost: leader election + O((D + log n) log n) for the growth.
#pragma once

#include <cstdint>
#include <vector>

#include "core/leader_election.hpp"
#include "graph/graph.hpp"

namespace radiocast::core {

struct BfsTreeParams {
  LeaderElectionParams election{};
  /// If a valid node id, skip the election and root the tree here
  /// (kInvalidNode = elect).
  graph::NodeId root_hint = graph::kInvalidNode;
  std::uint64_t max_growth_rounds = 20'000'000;
};

struct BfsTreeResult {
  bool success = false;  // every node attached, layers consistent
  graph::NodeId root = graph::kInvalidNode;
  std::uint64_t election_rounds = 0;
  std::uint64_t growth_rounds = 0;
  /// Per node: tree parent (root points to itself) and BFS layer.
  std::vector<graph::NodeId> parent;
  std::vector<std::uint32_t> layer;
};

/// Builds a BFS tree over the radio medium. Deterministic in the seed.
BfsTreeResult build_bfs_tree(const graph::Graph& g, std::uint32_t diameter,
                             const BfsTreeParams& params, std::uint64_t seed);

/// Validation helper: parents are edges, layers increase by exactly one
/// along parent links, and the layer equals the true BFS distance from the
/// root (i.e. the tree is a genuine BFS tree, not just spanning).
bool is_valid_bfs_tree(const graph::Graph& g, const BfsTreeResult& tree);

}  // namespace radiocast::core
