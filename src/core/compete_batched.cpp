#include "core/compete_batched.hpp"

#include <bit>
#include <stdexcept>

#include "radio/batch_network.hpp"
#include "schedule/decay.hpp"
#include "util/rng.hpp"

namespace radiocast::core {

std::vector<CompeteLaneResult> compete_batched(
    radio::LaneExecutor& net, const std::vector<CompeteSource>& sources,
    const BatchedCompeteParams& params, std::span<const std::uint64_t> seeds) {
  const NodeId n = net.node_count();
  if (n == 0) throw std::invalid_argument("compete_batched: empty graph");
  const int lanes = static_cast<int>(seeds.size());
  if (lanes < 1 || lanes > net.lanes()) {
    throw std::invalid_argument(
        "compete_batched: seeds.size() must be in [1, net.lanes()]");
  }
  const std::uint64_t lane_mask = radio::lane_mask(lanes);

  std::vector<CompeteLaneResult> results(static_cast<std::size_t>(lanes));
  radio::Payload winner = radio::kNoPayload;
  // Node-major knowledge planes: node v owns best[v*lanes, (v+1)*lanes),
  // so the medium's max-fold writes each listener's lane words as one
  // contiguous run (see KnowledgePlanes).
  std::vector<radio::Payload> best(static_cast<std::size_t>(lanes) * n,
                                   radio::kNoPayload);
  const radio::KnowledgePlanes bestk =
      radio::KnowledgePlanes::node_major(best, n);
  // Bit l of informed[v]: v knows something in lane l (and so relays).
  std::vector<std::uint64_t> informed(n, 0);
  for (const auto& s : sources) {
    if (s.node >= n) {
      throw std::out_of_range("compete_batched: source out of range");
    }
    for (int l = 0; l < lanes; ++l) {
      radio::Payload& b = bestk.at(l, s.node);
      if (b == radio::kNoPayload || s.value > b) b = s.value;
    }
    informed[s.node] = lane_mask;
    if (winner == radio::kNoPayload || s.value > winner) winner = s.value;
  }
  auto finish_lane = [&](int l, bool success, std::uint64_t rounds) {
    CompeteLaneResult& r = results[static_cast<std::size_t>(l)];
    r.success = success;
    r.rounds = rounds;
    r.winner = winner;
  };
  if (sources.empty()) {
    // Vacuous: nothing to propagate (mirrors compete()).
    for (int l = 0; l < lanes; ++l) {
      finish_lane(l, true, 0);
      results[static_cast<std::size_t>(l)].best.assign(n, radio::kNoPayload);
      results[static_cast<std::size_t>(l)].informed = 0;
    }
    return results;
  }

  std::vector<util::Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(lanes));
  for (const std::uint64_t seed : seeds) rngs.emplace_back(seed);

  const std::uint32_t depth =
      params.cycle_depth == 0
          ? schedule::decay_round_length(n)
          : std::max<std::uint32_t>(1, params.cycle_depth);

  auto lane_done = [&](int l) {
    for (NodeId v = 0; v < n; ++v) {
      if (bestk.at(l, v) != winner) return false;
    }
    return true;
  };

  std::uint64_t active = lane_mask;
  for (int l = 0; l < lanes; ++l) {
    if (lane_done(l)) {
      finish_lane(l, true, 0);
      active &= ~(std::uint64_t{1} << l);
    }
  }

  std::vector<std::uint64_t> participates(n, 0);
  radio::BatchOutcome out;
  const radio::PayloadPlanes planes = radio::PayloadPlanes::node_major(best, n);
  std::uint64_t round = 0;
  std::uint32_t since_check = 0;
  while (active != 0 && round < params.max_rounds) {
    const std::uint32_t step = static_cast<std::uint32_t>(round % depth) + 1;
    // Done lanes stop transmitting: their planes and counters are frozen
    // at the values a standalone run would have terminated with (the coin
    // words their streams keep yielding can no longer influence anything).
    for (NodeId v = 0; v < n; ++v) participates[v] = informed[v] & active;
    schedule::decay_step_lanes(net, participates, planes, step, bestk, rngs,
                               out);
    for (const auto& dm : out.delivered) {
      informed[dm.node] |= dm.lanes;  // delivered lanes are active lanes
    }
    for (std::uint64_t scan = active; scan != 0; scan &= scan - 1) {
      const int l = std::countr_zero(scan);
      results[static_cast<std::size_t>(l)].transmissions +=
          out.transmitter_count[l];
      results[static_cast<std::size_t>(l)].deliveries +=
          out.delivered_count[l];
    }
    ++round;
    if (++since_check >= params.check_interval) {
      since_check = 0;
      for (std::uint64_t scan = active; scan != 0; scan &= scan - 1) {
        const int l = std::countr_zero(scan);
        if (lane_done(l)) {
          finish_lane(l, true, round);
          active &= ~(std::uint64_t{1} << l);
        }
      }
    }
  }
  // Lanes that ran out of budget: final completion scan (a lane may have
  // finished between checks), mirroring the scalar cores.
  for (std::uint64_t scan = active; scan != 0; scan &= scan - 1) {
    const int l = std::countr_zero(scan);
    finish_lane(l, lane_done(l), round);
  }

  for (int l = 0; l < lanes; ++l) {
    CompeteLaneResult& r = results[static_cast<std::size_t>(l)];
    r.best.resize(n);
    r.informed = 0;
    for (NodeId v = 0; v < n; ++v) {
      r.best[v] = bestk.at(l, v);
      if (r.best[v] == winner) ++r.informed;
    }
  }
  return results;
}

std::vector<CompeteLaneResult> compete_batched(
    const graph::Graph& g, const std::vector<CompeteSource>& sources,
    const BatchedCompeteParams& params, std::span<const std::uint64_t> seeds,
    radio::MediumKind medium, radio::RecoveryStrategy recovery) {
  radio::BatchNetwork net(g, static_cast<int>(seeds.size()),
                          radio::CollisionModel::kNoDetection, medium,
                          recovery);
  return compete_batched(net, sources, params, seeds);
}

std::vector<CompeteLaneResult> broadcast_batched(
    const graph::Graph& g, graph::NodeId source, radio::Payload message,
    const BatchedCompeteParams& params, std::span<const std::uint64_t> seeds,
    radio::MediumKind medium, radio::RecoveryStrategy recovery) {
  return compete_batched(g, {{source, message}}, params, seeds, medium,
                         recovery);
}

}  // namespace radiocast::core
