// k-message one-to-all broadcast — the full interface of the Lemma 2.3
// schedule substrate ("one-to-all broadcast of k messages in O(D + k log n
// + log^6 n) rounds"), realised as a physically-simulated pipelined tree
// broadcast: a BFS tree rooted at the source is given a 2-hop conflict-free
// colouring (period P); every node forwards its oldest pending message in
// its colour slot, so message i reaches depth d at time ~P*(d + i). Total
// ~P*(D + k), matching the lemma's shape with P playing the polylog role.
//
// This is both an extension feature (multi-message dissemination on the
// public API) and the substrate validation for the "+ k log n" term.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "radio/model.hpp"

namespace radiocast::core {

struct MultiMessageParams {
  graph::NodeId root = 0;
  std::uint64_t max_rounds = 50'000'000;
};

struct MultiMessageResult {
  bool success = false;      // every node received every message, in order
  std::uint64_t rounds = 0;
  std::uint32_t period = 0;  // colouring period of the schedule
  /// rounds / (period * (depth + k)) — the pipelining efficiency; ~1 for a
  /// perfect pipeline.
  double pipeline_ratio = 0.0;
};

/// Broadcasts `messages` (in order) from `params.root` to every node.
/// Fully physical: every transmission goes through the collision rule; the
/// colouring guarantees no intra-tree collisions.
MultiMessageResult multi_message_broadcast(
    const graph::Graph& g, const std::vector<radio::Payload>& messages,
    const MultiMessageParams& params, std::uint64_t seed);

}  // namespace radiocast::core
