// Closed-form reference curves for every bound the paper states or cites.
// The bench harness prints measured values next to these so EXPERIMENTS.md
// can record paper-vs-measured shape comparisons. All formulas drop
// constant factors (they return the bound's growth term, with polylog
// additives spelled out where the paper states them).
#pragma once

#include <cstdint>

namespace radiocast::core::theory {

/// Czumaj-Davies broadcast / leader election (Theorems 5.1, 5.2):
/// D log n / log D + polylog n  (we use log^3 n for the additive term).
double bound_cd(std::uint64_t n, std::uint64_t d);

/// Compete (Theorem 4.1): D log n / log D + |S| D^0.125 + polylog n.
double bound_compete(std::uint64_t n, std::uint64_t d, std::uint64_t sources);

/// Haeupler-Wajc broadcast: D log n log log n / log D + polylog n.
double bound_hw(std::uint64_t n, std::uint64_t d);

/// Bar-Yehuda-Goldreich-Itai Decay broadcast: (D + log n) log n.
double bound_bgi(std::uint64_t n, std::uint64_t d);

/// Czumaj-Rytter / Kowalski-Pelc broadcast: D log(n/D) + log^2 n.
double bound_crkp(std::uint64_t n, std::uint64_t d);

/// Lower bound without spontaneous transmissions: D log(n/D) + log^2 n.
double lower_bound_no_spontaneous(std::uint64_t n, std::uint64_t d);

/// Lower bound with spontaneous transmissions: D + log^2 n.
double lower_bound_spontaneous(std::uint64_t n, std::uint64_t d);

/// Ghaffari-Haeupler leader election:
/// (D log(n/D) + log^3 n) * min(log log n, log(n/D)).
double bound_gh_le(std::uint64_t n, std::uint64_t d);

/// Binary-search leader election: T_BC * log n with T_BC = bound_crkp.
double bound_binary_search_le(std::uint64_t n, std::uint64_t d);

/// Theorem 2.2 distance-to-centre bound: log n / (beta log D).
double bound_cluster_distance(std::uint64_t n, std::uint64_t d, double beta);

/// Lemma 2.1 strong diameter bound: log n / beta.
double bound_strong_diameter(std::uint64_t n, double beta);

/// Lemma 4.4: O(D^0.63) bad subpaths per shortest path.
double bound_bad_subpaths(std::uint64_t d);

/// Lemma 4.3 badness probability of a length-D^0.12 subpath: D^-0.26.
double bound_subpath_badness(std::uint64_t d);

}  // namespace radiocast::core::theory
