// Umbrella header: the public API of the radiocast library.
//
//   #include <core/radiocast.hpp>
//   using namespace radiocast;
//
//   graph::Graph g = graph::random_geometric(5000, 0.03, rng);
//   auto r = core::broadcast(g, diameter, /*source=*/0,
//                            core::CompeteParams{}, seed);
//   auto le = core::elect_leader(g, diameter, {}, seed);
#pragma once

#include "cluster/exponential_shifts.hpp"
#include "cluster/hierarchy.hpp"
#include "cluster/partition_stats.hpp"
#include "core/bfs_tree.hpp"
#include "core/broadcast.hpp"
#include "core/compete.hpp"
#include "core/leader_election.hpp"
#include "core/multi_message.hpp"
#include "core/params.hpp"
#include "core/theory.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "radio/engine.hpp"
#include "radio/network.hpp"
#include "radio/protocol.hpp"
#include "schedule/bfs_schedule.hpp"
#include "schedule/decay.hpp"
#include "schedule/intra_cluster.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
