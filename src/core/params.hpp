// All tunable constants of the Czumaj-Davies algorithm in one place.
//
// The paper fixes exponents (D^-0.5 coarse beta, 2^-j fine beta for j in
// [0.01 log D, 0.1 log D], D^0.2 fine clusterings, D^0.99 sequence length,
// curtail O(log n / (beta log D))) that only separate asymptotically; the
// defaults below keep the paper's values, and every experiment that scales
// them down documents the substitution (DESIGN.md fidelity note 3).
#pragma once

#include <cstdint>

#include "cluster/hierarchy.hpp"
#include "schedule/bfs_schedule.hpp"

namespace radiocast::core {

struct CompeteParams {
  /// Coarse + fine clustering structure (Algorithm 1 steps 1, 3, 5).
  cluster::HierarchyParams hierarchy{};

  /// Background process (Algorithm 2): beta = D^bg_beta_exponent and
  /// ceil(D^bg_reps_exponent) clusterings used round-robin.
  double bg_beta_exponent = -0.1;
  double bg_reps_exponent = 0.2;
  std::uint32_t max_bg_clusterings = 64;

  /// Main-process curtail constant: Intra-Cluster Propagation passes are
  /// cut after pass_hops = ceil(curtail_constant * log2(n) * 2^j / log2(D))
  /// hops (the paper's O(log n / (beta log D))).
  double curtail_constant = 2.0;

  /// Background-process curtail: pass_hops = ceil(bg_curtail_constant *
  /// log2(n) / beta_bg) (the paper's O(log n / beta)).
  double bg_curtail_constant = 1.0;

  /// Haeupler-Wajc emulation (baseline E9a): multiply the main curtail by
  /// log2(log2 n) — HW's per-clustering progress guarantee is weaker by
  /// exactly that factor (their expected distance to centre bound).
  bool hw_curtail = false;

  /// Ablation switches (E9).
  bool randomize_beta = true;        // false: fixed j = j_max, round-robin
  bool enable_background = true;     // Algorithm 2 stream on/off
  bool enable_icp_background = true; // Algorithm 4 stream on/off

  /// Schedule realisation (DESIGN.md fidelity note 2).
  schedule::ScheduleMode mode = schedule::ScheduleMode::kPipelined;

  /// Round budget: stop after round_budget_factor * (theory bound) rounds
  /// even if not everyone is informed (prevents pathological runs from
  /// hanging benches); also an absolute cap.
  double round_budget_factor = 60.0;
  std::uint64_t max_rounds_abs = 200'000'000;

  /// Completion-scan cadence (central termination detection, measurement
  /// only — the algorithm itself is oblivious).
  std::uint32_t check_interval = 32;
};

}  // namespace radiocast::core
