// Per-grid-point statistics for the sweep subsystem.
//
// One Accumulator summarises every Monte-Carlo replication that landed on
// one grid point (one (family, param, n, protocol, medium, recovery)
// combination): streaming Welford mean/stddev over round counts, order
// statistics (min/median/p95/max), success rates with Wilson score
// intervals, auxiliary per-replication metrics (deliveries, transmissions,
// informed counts), the per-phase radio::PhaseTimers rollup, and the
// core/theory bound overlay evaluated at the grid point. Scenarios outside
// the sweep (broadcast-vs-n, broadcast-vs-d) fold their replications
// through the same type so every long-format row in bench_out means the
// same thing.
//
// Round statistics are computed over SUCCESSFUL replications only —
// a failed replication's round count is just its budget, which would
// poison the curve the paper's bounds are compared against. Failures still
// count toward trials() and therefore widen the Wilson interval.
#pragma once

#include <cstddef>
#include <limits>

#include "radio/medium.hpp"
#include "util/stats.hpp"

namespace radiocast::exp {

class Accumulator {
 public:
  /// "This replication did not report the metric" (mirrors the Runner's
  /// NaN-means-absent convention).
  static constexpr double kAbsent = std::numeric_limits<double>::quiet_NaN();

  /// One replication outcome. `rounds` is folded into the round statistics
  /// only when success is true; NaN auxiliary metrics are skipped (scalar
  /// cores that do not report them).
  void add(bool success, double rounds, double deliveries = kAbsent,
           double transmissions = kAbsent, double informed = kAbsent);

  /// Rolls up a lane batch's medium phase breakdown (whole-batch numbers;
  /// call once per batch, not per lane).
  void add_phases(const radio::PhaseTimers& phases);
  /// Wall time attributed to this grid point (whole-batch, like phases).
  void add_wall_ms(double wall_ms);

  /// Theory overlay: the core/theory bound evaluated at this grid point.
  void set_theory_bound(double bound) { theory_bound_ = bound; }

  // ---- totals
  std::size_t trials() const { return trials_; }
  std::size_t successes() const { return successes_; }
  double success_rate() const;
  util::WilsonInterval wilson(double z = 1.96) const;

  // ---- round statistics (successful replications only)
  /// Welford mean/stddev/min/max.
  const util::OnlineStats& rounds() const { return rounds_stats_; }
  double rounds_median() const { return rounds_sample_.empty() ? 0.0 : rounds_sample_.median(); }
  double rounds_p95() const { return rounds_sample_.empty() ? 0.0 : rounds_sample_.quantile(0.95); }

  // ---- auxiliary metrics
  const util::OnlineStats& deliveries() const { return deliveries_; }
  const util::OnlineStats& transmissions() const { return transmissions_; }
  const util::OnlineStats& informed() const { return informed_; }

  // ---- overlay
  double theory_bound() const { return theory_bound_; }
  /// mean rounds / bound — the paper-shape column; 0 when no bound or no
  /// successful replication.
  double rounds_over_bound() const;

  // ---- timing rollups (measurement, excluded from deterministic output)
  const radio::PhaseTimers& phases() const { return phases_; }
  double wall_ms() const { return wall_ms_; }

 private:
  std::size_t trials_ = 0;
  std::size_t successes_ = 0;
  util::OnlineStats rounds_stats_;
  util::Sample rounds_sample_;
  util::OnlineStats deliveries_;
  util::OnlineStats transmissions_;
  util::OnlineStats informed_;
  double theory_bound_ = 0.0;
  radio::PhaseTimers phases_;
  double wall_ms_ = 0.0;
};

}  // namespace radiocast::exp
