#include "exp/fault.hpp"

#include "exp/checkpoint.hpp"
#include "util/parse.hpp"

#include <stdexcept>

namespace radiocast::exp {

namespace {

[[noreturn]] void bad_fault(std::string_view text) {
  throw std::invalid_argument(
      "RADIOCAST_FAULT '" + std::string(text) +
      "': expected kill@<task>, abort@<n>, io-fail@<n>, "
      "task-throw@<task>[x<k>], task-hang@<task>, or sigint@<task>");
}

}  // namespace

FaultSpec FaultSpec::parse(std::string_view text) {
  const std::size_t at = text.find('@');
  if (at == std::string_view::npos || at == 0 || at + 1 >= text.size()) {
    bad_fault(text);
  }
  const std::string_view name = text.substr(0, at);
  std::string_view arg = text.substr(at + 1);

  FaultSpec spec;
  if (name == "kill") {
    spec.kind = Kind::kKill;
  } else if (name == "abort") {
    spec.kind = Kind::kAbort;
  } else if (name == "io-fail") {
    spec.kind = Kind::kIoFail;
  } else if (name == "task-throw") {
    spec.kind = Kind::kTaskThrow;
  } else if (name == "task-hang") {
    spec.kind = Kind::kTaskHang;
  } else if (name == "sigint") {
    spec.kind = Kind::kSigint;
  } else {
    bad_fault(text);
  }

  if (spec.kind == Kind::kTaskThrow) {
    const std::size_t x = arg.find('x');
    if (x != std::string_view::npos) {
      spec.times = util::parse_positive_int(arg.substr(x + 1),
                                            "RADIOCAST_FAULT repeat count");
      arg = arg.substr(0, x);
    }
  }
  if (spec.kind == Kind::kAbort || spec.kind == Kind::kIoFail) {
    // Operation ordinals are 1-based: "the n-th append/write fails".
    spec.index = static_cast<std::size_t>(
        util::parse_positive_int(arg, "RADIOCAST_FAULT operation ordinal"));
  } else {
    spec.index = static_cast<std::size_t>(
        util::parse_uint(arg, "RADIOCAST_FAULT task index"));
  }
  return spec;
}

FaultInjector& FaultInjector::global() {
  // Leaked on purpose: watchdog-abandoned (task-hang) threads may still
  // be blocked on hang_cv_ while the process exits, and must never race
  // a static destructor.
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::configure(const FaultSpec& spec) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    spec_ = spec;
    io_ops_ = 0;
    appends_ = 0;
    hang_cancelled_ = false;
  }
  hang_cv_.notify_all();
}

FaultSpec FaultInjector::spec() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spec_;
}

bool FaultInjector::take_io_fault() {
  std::lock_guard<std::mutex> lock(mu_);
  if (spec_.kind != FaultSpec::Kind::kIoFail) return false;
  return ++io_ops_ == spec_.index;
}

bool FaultInjector::abort_on_append() {
  std::lock_guard<std::mutex> lock(mu_);
  if (spec_.kind != FaultSpec::Kind::kAbort) return false;
  return ++appends_ == spec_.index;
}

bool FaultInjector::kill_after_task(std::size_t task_index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return spec_.kind == FaultSpec::Kind::kKill && spec_.index == task_index;
}

void FaultInjector::on_task_attempt(std::size_t task_index, int attempt) {
  FaultSpec spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spec = spec_;
  }
  switch (spec.kind) {
    case FaultSpec::Kind::kTaskThrow:
      if (task_index == spec.index && attempt < spec.times) {
        throw std::runtime_error(
            "injected transient task failure (RADIOCAST_FAULT task-throw), "
            "attempt " + std::to_string(attempt));
      }
      break;
    case FaultSpec::Kind::kTaskHang:
      if (task_index == spec.index && attempt < spec.times) {
        std::unique_lock<std::mutex> lock(mu_);
        hang_cv_.wait(lock, [this] {
          return hang_cancelled_ || spec_.kind != FaultSpec::Kind::kTaskHang;
        });
        // Abort the attempt quickly so a watchdog-abandoned thread
        // finishes instead of re-running the whole task.
        throw std::runtime_error("injected hang cancelled");
      }
      break;
    case FaultSpec::Kind::kSigint:
      if (task_index == spec.index) request_shutdown();
      break;
    default:
      break;
  }
}

void FaultInjector::cancel_hangs() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    hang_cancelled_ = true;
  }
  hang_cv_.notify_all();
}

}  // namespace radiocast::exp
