#include "exp/checkpoint.hpp"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <atomic>

#include "exp/fault.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace radiocast::exp {

// ----------------------------------------------------------- shutdown

namespace {

std::atomic<bool> g_shutdown{false};

extern "C" void on_drain_signal(int) { g_shutdown.store(true); }

}  // namespace

void install_signal_handlers() {
  struct sigaction action{};
  action.sa_handler = on_drain_signal;
  sigemptyset(&action.sa_mask);
  // One-shot: the handler resets to default, so a second ^C kills a
  // sweep that is stuck inside a task instead of being swallowed.
  action.sa_flags = SA_RESETHAND;
  (void)sigaction(SIGINT, &action, nullptr);
  (void)sigaction(SIGTERM, &action, nullptr);
}

bool shutdown_requested() { return g_shutdown.load(); }
void request_shutdown() { g_shutdown.store(true); }
void clear_shutdown() { g_shutdown.store(false); }

// -------------------------------------------------------- journal text

namespace {

// v2: the positional phases array grew the work-stealing pool counters
// (steal_attempts, steals, idle_ns). Version mismatches reject loudly —
// a journal is transient state, never migrated in place.
constexpr int kJournalVersion = 2;
constexpr std::size_t kPhaseCounters = 13;

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

/// NaN-tolerant double field: Json dumps NaN as null, so read null back
/// as the Accumulator's "absent" NaN.
double json_as_metric(const util::Json& value) {
  if (value.is_null()) return Accumulator::kAbsent;
  return value.as_number();
}

const util::Json& field(const util::Json& j, const char* key) {
  const util::Json* value = j.find(key);
  if (value == nullptr) {
    throw std::invalid_argument("missing field '" + std::string(key) + "'");
  }
  return *value;
}

util::Json outcome_to_json(std::size_t task, const TaskOutcome& out) {
  util::Json j = util::Json::object();
  j.set("task", util::json_uint(task));
  if (out.quarantined) {
    j.set("quarantined", util::Json(true));
    j.set("error", util::Json(out.error));
    return j;
  }
  j.set("n", util::json_uint(out.n_actual));
  j.set("diameter", util::json_uint(out.diameter));
  j.set("gen_ns", util::json_uint(out.gen_ns));
  j.set("wall_ms", util::Json(out.wall_ms));
  util::Json phases = util::Json::array();
  const std::uint64_t counters[kPhaseCounters] = {
      out.phases.traverse_ns,  out.phases.output_ns,
      out.phases.recover_ns,   out.phases.enqueue_ns,
      out.phases.drain_ns,     out.phases.active_listeners,
      out.phases.rounds,       out.phases.rowscan_rounds,
      out.phases.idplane_rounds, out.phases.constfold_rounds,
      out.phases.steal_attempts, out.phases.steals,
      out.phases.idle_ns};
  for (const std::uint64_t c : counters) phases.push_back(util::json_uint(c));
  j.set("phases", std::move(phases));
  util::Json lanes = util::Json::array();
  for (const LaneOutcome& lane : out.lanes) {
    util::Json row = util::Json::array();
    row.push_back(util::Json(lane.success));
    row.push_back(util::Json(lane.rounds));
    row.push_back(util::Json(lane.informed));
    row.push_back(util::Json(lane.deliveries));
    row.push_back(util::Json(lane.transmissions));
    lanes.push_back(std::move(row));
  }
  j.set("lanes", std::move(lanes));
  return j;
}

TaskOutcome outcome_from_json(const util::Json& j, std::size_t& task) {
  if (!j.is_object()) throw std::invalid_argument("record is not an object");
  task = static_cast<std::size_t>(util::json_as_uint(field(j, "task"), "task"));
  TaskOutcome out;
  if (j.find("quarantined") != nullptr) {
    out.quarantined = field(j, "quarantined").as_bool();
    out.error = field(j, "error").as_string();
    return out;
  }
  out.n_actual =
      static_cast<std::uint32_t>(util::json_as_uint(field(j, "n"), "n"));
  out.diameter = static_cast<std::uint32_t>(
      util::json_as_uint(field(j, "diameter"), "diameter"));
  out.gen_ns = util::json_as_uint(field(j, "gen_ns"), "gen_ns");
  out.wall_ms = field(j, "wall_ms").as_number();
  const util::Json& phases = field(j, "phases");
  if (!phases.is_array() || phases.items().size() != kPhaseCounters) {
    throw std::invalid_argument("bad phases array");
  }
  std::uint64_t* counters[kPhaseCounters] = {
      &out.phases.traverse_ns,  &out.phases.output_ns,
      &out.phases.recover_ns,   &out.phases.enqueue_ns,
      &out.phases.drain_ns,     &out.phases.active_listeners,
      &out.phases.rounds,       &out.phases.rowscan_rounds,
      &out.phases.idplane_rounds, &out.phases.constfold_rounds,
      &out.phases.steal_attempts, &out.phases.steals,
      &out.phases.idle_ns};
  for (std::size_t i = 0; i < kPhaseCounters; ++i) {
    *counters[i] = util::json_as_uint(phases.items()[i], "phase counter");
  }
  for (const util::Json& row : field(j, "lanes").items()) {
    if (!row.is_array() || row.items().size() != 5) {
      throw std::invalid_argument("bad lane row");
    }
    LaneOutcome lane;
    lane.success = row.items()[0].as_bool();
    lane.rounds = row.items()[1].as_number();
    lane.informed = json_as_metric(row.items()[2]);
    lane.deliveries = json_as_metric(row.items()[3]);
    lane.transmissions = json_as_metric(row.items()[4]);
    out.lanes.push_back(lane);
  }
  return out;
}

std::string journal_line(char tag, const std::string& json) {
  std::string line(1, tag);
  line += ' ';
  line += hex16(fnv1a64(json));
  line += ' ';
  line += json;
  line += '\n';
  return line;
}

/// Splits "X <crc> <json>", verifying the crc. Returns false (instead of
/// throwing) so the caller can apply the torn-final-line tolerance.
bool parse_line(std::string_view line, char& tag, std::string& json) {
  if (line.size() < 19 || line[1] != ' ' || line[18] != ' ') return false;
  tag = line[0];
  const std::string_view crc = line.substr(2, 16);
  json.assign(line.substr(19));
  return hex16(fnv1a64(json)) == crc;
}

util::Json journal_header(const SweepSpec& spec, std::size_t task_count) {
  util::Json j = util::Json::object();
  j.set("kind", util::Json(std::string("sweep-journal")));
  j.set("version", util::Json(kJournalVersion));
  j.set("fingerprint", util::Json(spec_fingerprint(spec)));
  j.set("tasks", util::json_uint(task_count));
  return j;
}

}  // namespace

std::string spec_fingerprint(const SweepSpec& spec) {
  return hex16(fnv1a64(spec.to_json().dump(-1)));
}

// ----------------------------------------------------------- Checkpoint

std::string Checkpoint::journal_path(const std::string& dir) {
  return dir + "/sweep.journal";
}

std::unique_ptr<Checkpoint> Checkpoint::start(const std::string& dir,
                                              const SweepSpec& spec,
                                              std::size_t task_count) {
  auto cp = std::unique_ptr<Checkpoint>(new Checkpoint());
  cp->path_ = journal_path(dir);
  cp->replayed_.resize(task_count);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("checkpoint: cannot create " + dir + ": " +
                             ec.message());
  }
  std::string error;
  if (!cp->file_.open(cp->path_, /*truncate=*/true, error)) {
    throw std::runtime_error("checkpoint: cannot open journal " + cp->path_ +
                             ": " + error);
  }
  const std::string line =
      journal_line('H', journal_header(spec, task_count).dump(-1));
  if (!cp->file_.append_fsync(line, error)) {
    throw std::runtime_error("checkpoint: cannot write journal header: " +
                             error);
  }
  return cp;
}

std::unique_ptr<Checkpoint> Checkpoint::resume(const std::string& dir,
                                               const SweepSpec& spec,
                                               std::size_t task_count) {
  auto cp = std::unique_ptr<Checkpoint>(new Checkpoint());
  cp->path_ = journal_path(dir);
  cp->replayed_.resize(task_count);

  std::ifstream in(cp->path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error(
        "checkpoint: no journal at " + cp->path_ +
        " — was this sweep started with reports enabled (--out)?");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  // Complete lines only: a crash mid-append leaves an unterminated tail,
  // which is exactly the data the dead run never counted as done.
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      lines.push_back(std::string_view(text).substr(start, i - start));
      start = i + 1;
    }
  }

  bool saw_header = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const bool last = i + 1 == lines.size();
    char tag = 0;
    std::string json;
    const auto reject = [&](const std::string& why) -> bool {
      // A damaged FINAL line is a torn append (no fsync ran): drop it,
      // the task will simply re-run. Interior damage is real corruption.
      if (last && saw_header) return true;
      throw std::runtime_error("checkpoint: corrupt journal " + cp->path_ +
                               " line " + std::to_string(i + 1) + ": " + why);
    };
    if (!parse_line(lines[i], tag, json)) {
      if (reject("bad checksum or framing")) break;
    }
    try {
      const util::Json doc = util::Json::parse(json);
      if (i == 0) {
        if (tag != 'H') throw std::invalid_argument("missing header");
        if (field(doc, "kind").as_string() != "sweep-journal" ||
            util::json_as_uint(field(doc, "version"), "version") !=
                static_cast<std::uint64_t>(kJournalVersion)) {
          throw std::invalid_argument(
              "not a version-" + std::to_string(kJournalVersion) +
              " sweep journal");
        }
        if (field(doc, "fingerprint").as_string() != spec_fingerprint(spec)) {
          throw std::runtime_error(
              "checkpoint: journal " + cp->path_ +
              " was written by a different sweep spec — refusing to mix "
              "outcomes (use a fresh --out directory or rerun the original "
              "spec)");
        }
        if (util::json_as_uint(field(doc, "tasks"), "tasks") != task_count) {
          throw std::runtime_error(
              "checkpoint: journal task count does not match this grid");
        }
        saw_header = true;
      } else {
        if (tag != 'R') throw std::invalid_argument("unexpected tag");
        std::size_t task = 0;
        TaskOutcome out = outcome_from_json(doc, task);
        if (task >= task_count) {
          throw std::invalid_argument("task index out of range");
        }
        cp->replayed_[task] = std::move(out);
      }
    } catch (const std::runtime_error&) {
      throw;  // spec/task-count mismatches are always fatal
    } catch (const std::exception& e) {
      if (reject(e.what())) break;
    }
  }
  if (!saw_header) {
    throw std::runtime_error("checkpoint: journal " + cp->path_ +
                             " has no valid header");
  }

  std::string error;
  if (!cp->file_.open(cp->path_, /*truncate=*/false, error)) {
    throw std::runtime_error("checkpoint: cannot reopen journal " +
                             cp->path_ + ": " + error);
  }
  return cp;
}

void Checkpoint::record(std::size_t task, const TaskOutcome& outcome) {
  const std::string line =
      journal_line('R', outcome_to_json(task, outcome).dump(-1));
  std::lock_guard<std::mutex> lock(mu_);
  FaultInjector& faults = FaultInjector::global();
  if (faults.abort_on_append()) {
    // Simulated crash mid-append: half the record, no fsync, die the way
    // SIGABRT would be reported.
    file_.append_torn(line, line.size() / 2);
    std::_Exit(kFaultAbortExit);
  }
  std::string error;
  {
    const obs::TraceSpan span("journal.fsync", "task", task, "bytes",
                              line.size());
    if (!file_.append_fsync(line, error)) {
      throw std::runtime_error("checkpoint: journal append failed: " + error);
    }
  }
  if (task < replayed_.size()) replayed_[task] = outcome;
  if (faults.kill_after_task(task)) {
    // Record is durable; die before anything else happens — the
    // SIGKILL-at-a-task-boundary the resume tests replay everywhere.
    std::_Exit(kFaultKillExit);
  }
}

bool Checkpoint::completed(std::size_t task) const {
  std::lock_guard<std::mutex> lock(mu_);
  return task < replayed_.size() && replayed_[task].has_value();
}

std::size_t Checkpoint::completed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t count = 0;
  for (const auto& r : replayed_) count += r.has_value() ? 1 : 0;
  return count;
}

const TaskOutcome* Checkpoint::outcome(std::size_t task) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (task >= replayed_.size() || !replayed_[task].has_value()) return nullptr;
  return &*replayed_[task];
}

void Checkpoint::remove_journal() {
  std::lock_guard<std::mutex> lock(mu_);
  file_.close();
  (void)std::remove(path_.c_str());
}

}  // namespace radiocast::exp
