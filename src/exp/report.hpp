// The one bench_out sink: every file the harness emits — per-scenario CSV
// tables, the per-scenario replication JSON, and the sweep grid reports —
// goes through Report, so directory handling, schema versioning, and key
// order are decided in exactly one place.
//
// JSON payloads are emitted with a leading "version" field
// (kSchemaVersion) and insertion-ordered keys (util::Json), so files are
// diffable and downstream consumers can check the schema before parsing.
// The long-format helpers render one grid point per row — the shared
// shape for the sweep subcommand and the scenarios ported to
// exp::Accumulator — with the timing columns (wall clock, medium phase
// rollups) split out behind a flag: everything except timing is
// byte-deterministic for a fixed spec, and `--timing=off` produces fully
// byte-identical files across thread counts and machines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/accumulator.hpp"
#include "exp/planner.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace radiocast::exp {

/// Schema version stamped into every emitted JSON document.
/// v2: timing blocks gained the event-driven frontier backend's counters
/// (enqueue_ns, drain_ns, active_listeners); per-replication rows gained
/// active_listeners.
/// v3: timing blocks gained the work-stealing pool counters
/// (steal_attempts, steals, idle_ns); timing-enabled sweep documents
/// gained the grid-wide "pool" rollup and the obs::Metrics "metrics"
/// snapshot. --timing=off output is unchanged from v2 except the version
/// stamp.
inline constexpr int kSchemaVersion = 3;

class Report {
 public:
  /// `out_dir` empty constructs a DISABLED report: write_* return ""
  /// without touching the filesystem. Callers that require durable
  /// output (the sweep checkpoint path) must check enabled() up front
  /// instead of discovering "" afterwards.
  explicit Report(std::string out_dir) : out_dir_(std::move(out_dir)) {}

  bool enabled() const { return !out_dir_.empty(); }
  const std::string& out_dir() const { return out_dir_; }

  /// Writes <out_dir>/<name>.csv atomically (<path>.tmp + fsync +
  /// rename — a crash never leaves a torn report); logs "[csv] path" to
  /// `log`. Returns the path, or "" when disabled. THROWS
  /// std::runtime_error on I/O failure: a report the harness claims to
  /// have written must exist, so failures surface as a nonzero driver
  /// exit, not a log line.
  std::string write_csv(const std::string& name, const util::Table& table,
                        std::ostream& log) const;

  /// Writes <out_dir>/<name>.json atomically (same contract as
  /// write_csv). `payload` must be an object; a "version": kSchemaVersion
  /// field is prepended (an existing "version" member is overridden).
  /// Taken by value — move it in; large sweep documents are stamped in
  /// place, not cloned. Logs "[json] path" to `log`; throws
  /// std::runtime_error on I/O failure.
  std::string write_json(const std::string& name, util::Json payload,
                         std::ostream& log) const;

 private:
  std::string out_dir_;
};

/// Identity of one long-format row (sweep grid point, or a ported
/// scenario's (instance, algorithm) pair).
struct PointMeta {
  std::string family;
  std::string param_name;  // "" = parameterless
  double param = 0.0;
  std::uint32_t n = 0;
  std::uint32_t diameter = 0;
  std::string protocol;
  std::string medium = "scalar";
  std::string recovery;  // "" = not applicable
  int lanes = 1;
};

/// Long-format column set; `timing` appends the wall/phase columns plus
/// the instance-generation columns (gen_ms, gen_hits, gen_miss).
std::vector<std::string> long_headers(bool timing);
/// Renders one accumulator as a long-format row (table and CSV share it).
/// `gen` fills the generation columns when timing is on (scenarios without
/// generation stats pass nullptr and get zeros).
void add_long_row(util::Table& table, const PointMeta& meta,
                  const Accumulator& acc, bool timing,
                  const GenStats* gen = nullptr);
/// One grid point as a JSON object (same fields as the row, nested). With
/// timing on and `gen` given, the timing block carries gen_ns /
/// cache_hits / cache_misses.
util::Json point_json(const PointMeta& meta, const Accumulator& acc,
                      bool timing, const GenStats* gen = nullptr);

/// PointResult conveniences for the sweep subcommand.
PointMeta point_meta(const PointResult& point);
/// The sweep report document: {kind, spec echo, points[]} (version is
/// prepended by Report::write_json). When `quarantined` is non-null and
/// non-empty, a "quarantined" array records every poisoned task's grid
/// coordinate and error — the sweep completed around them, and the
/// document says so instead of silently thinning the statistics.
util::Json sweep_json(const SweepSpec& spec,
                      const std::vector<PointResult>& results, bool timing,
                      const std::vector<QuarantinedTask>* quarantined =
                          nullptr);

}  // namespace radiocast::exp
