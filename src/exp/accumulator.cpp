#include "exp/accumulator.hpp"

#include <cmath>

namespace radiocast::exp {

void Accumulator::add(bool success, double rounds, double deliveries,
                      double transmissions, double informed) {
  ++trials_;
  if (success) {
    ++successes_;
    rounds_stats_.add(rounds);
    rounds_sample_.add(rounds);
  }
  if (!std::isnan(deliveries)) deliveries_.add(deliveries);
  if (!std::isnan(transmissions)) transmissions_.add(transmissions);
  if (!std::isnan(informed)) informed_.add(informed);
}

void Accumulator::add_phases(const radio::PhaseTimers& phases) {
  phases_.traverse_ns += phases.traverse_ns;
  phases_.output_ns += phases.output_ns;
  phases_.recover_ns += phases.recover_ns;
  phases_.enqueue_ns += phases.enqueue_ns;
  phases_.drain_ns += phases.drain_ns;
  phases_.active_listeners += phases.active_listeners;
  phases_.rounds += phases.rounds;
  phases_.rowscan_rounds += phases.rowscan_rounds;
  phases_.idplane_rounds += phases.idplane_rounds;
  phases_.constfold_rounds += phases.constfold_rounds;
  phases_.steal_attempts += phases.steal_attempts;
  phases_.steals += phases.steals;
  phases_.idle_ns += phases.idle_ns;
}

void Accumulator::add_wall_ms(double wall_ms) { wall_ms_ += wall_ms; }

double Accumulator::success_rate() const {
  return trials_ == 0
             ? 0.0
             : static_cast<double>(successes_) / static_cast<double>(trials_);
}

util::WilsonInterval Accumulator::wilson(double z) const {
  return util::wilson_interval(successes_, trials_, z);
}

double Accumulator::rounds_over_bound() const {
  if (theory_bound_ <= 0.0 || rounds_stats_.count() == 0) return 0.0;
  return rounds_stats_.mean() / theory_bound_;
}

}  // namespace radiocast::exp
