#include "exp/report.hpp"

#include <filesystem>
#include <ostream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/fsio.hpp"

namespace radiocast::exp {

namespace {

/// Resolves <out_dir>/<filename>, creating the directory; throws on
/// failure (an unwritable report directory is a run-fatal condition).
std::string prepare_path(const std::string& out_dir,
                         const std::string& filename) {
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    throw std::runtime_error("report: cannot create " + out_dir + ": " +
                             ec.message());
  }
  return (std::filesystem::path(out_dir) / filename).string();
}

/// Atomic durable write shared by both emitters; throws so a failed
/// report surfaces as a nonzero driver exit instead of a log line.
void commit_file(const std::string& path, std::string_view content) {
  std::string error;
  if (!util::atomic_write_file(path, content, error)) {
    throw std::runtime_error("report: cannot write " + path + ": " + error);
  }
}

}  // namespace

std::string Report::write_csv(const std::string& name,
                              const util::Table& table,
                              std::ostream& log) const {
  if (!enabled()) return "";
  const std::string path = prepare_path(out_dir_, name + ".csv");
  commit_file(path, table.to_csv());
  log << "[csv] " << path << "\n";
  return path;
}

std::string Report::write_json(const std::string& name, util::Json payload,
                               std::ostream& log) const {
  if (!enabled()) return "";
  util::Json document = std::move(payload);
  document.prepend("version", kSchemaVersion);
  const std::string path = prepare_path(out_dir_, name + ".json");
  commit_file(path, document.dump(2));
  log << "[json] " << path << "\n";
  return path;
}

// ------------------------------------------------------------ long format

namespace {

std::string param_cell(const PointMeta& meta) {
  if (meta.param_name.empty()) return "-";
  return meta.param_name + "=" + util::json_number(meta.param);
}

}  // namespace

std::vector<std::string> long_headers(bool timing) {
  std::vector<std::string> headers{
      "family",      "param",      "n",          "D",
      "protocol",    "medium",     "recovery",   "lanes",
      "reps",        "ok",         "rate",       "wilson_lo",
      "wilson_hi",   "rounds",     "sd",         "min",
      "med",         "p95",        "max",        "deliv",
      "bound",       "x_bound"};
  if (timing) {
    headers.insert(headers.end(),
                   {"wall_ms", "traverse_ms", "output_ms", "recover_ms",
                    "gen_ms", "gen_hits", "gen_miss"});
  }
  return headers;
}

void add_long_row(util::Table& table, const PointMeta& meta,
                  const Accumulator& acc, bool timing, const GenStats* gen) {
  const util::WilsonInterval wilson = acc.wilson();
  auto& row = table.row()
                  .add(meta.family)
                  .add(param_cell(meta))
                  .add(std::uint64_t{meta.n})
                  .add(std::uint64_t{meta.diameter})
                  .add(meta.protocol)
                  .add(meta.medium)
                  .add(meta.recovery.empty() ? "-" : meta.recovery)
                  .add(meta.lanes)
                  .add(static_cast<std::uint64_t>(acc.trials()))
                  .add(static_cast<std::uint64_t>(acc.successes()))
                  .add(acc.success_rate(), 3)
                  .add(wilson.lo, 3)
                  .add(wilson.hi, 3)
                  .add(acc.rounds().mean(), 1)
                  .add(acc.rounds().stddev(), 1)
                  .add(acc.rounds().min(), 0)
                  .add(acc.rounds_median(), 1)
                  .add(acc.rounds_p95(), 1)
                  .add(acc.rounds().max(), 0)
                  .add(acc.deliveries().count() > 0 ? acc.deliveries().mean()
                                                    : 0.0,
                       0)
                  .add(acc.theory_bound(), 0)
                  .add(acc.rounds_over_bound(), 3);
  if (timing) {
    row.add(acc.wall_ms(), 1)
        .add(static_cast<double>(acc.phases().traverse_ns) / 1e6, 1)
        .add(static_cast<double>(acc.phases().output_ns) / 1e6, 1)
        .add(static_cast<double>(acc.phases().recover_ns) / 1e6, 1)
        .add(gen ? static_cast<double>(gen->gen_ns) / 1e6 : 0.0, 1)
        .add(gen ? gen->cache_hits : 0)
        .add(gen ? gen->cache_misses : 0);
  }
}

util::Json point_json(const PointMeta& meta, const Accumulator& acc,
                      bool timing, const GenStats* gen) {
  const util::WilsonInterval wilson = acc.wilson();
  util::Json j = util::Json::object();
  j.set("family", meta.family);
  j.set("param_name", meta.param_name);
  j.set("param", meta.param);
  j.set("n", std::uint64_t{meta.n});
  j.set("diameter", std::uint64_t{meta.diameter});
  j.set("protocol", meta.protocol);
  j.set("medium", meta.medium);
  j.set("recovery", meta.recovery);
  j.set("lanes", meta.lanes);
  j.set("reps", static_cast<std::uint64_t>(acc.trials()));
  j.set("successes", static_cast<std::uint64_t>(acc.successes()));
  j.set("success_rate", acc.success_rate());
  j.set("wilson_lo", wilson.lo);
  j.set("wilson_hi", wilson.hi);
  util::Json rounds = util::Json::object();
  rounds.set("mean", acc.rounds().mean());
  rounds.set("stddev", acc.rounds().stddev());
  rounds.set("min", acc.rounds().min());
  rounds.set("median", acc.rounds_median());
  rounds.set("p95", acc.rounds_p95());
  rounds.set("max", acc.rounds().max());
  j.set("rounds", std::move(rounds));
  j.set("deliveries_mean",
        acc.deliveries().count() > 0 ? acc.deliveries().mean() : 0.0);
  j.set("transmissions_mean",
        acc.transmissions().count() > 0 ? acc.transmissions().mean() : 0.0);
  j.set("informed_mean",
        acc.informed().count() > 0 ? acc.informed().mean() : 0.0);
  util::Json theory = util::Json::object();
  theory.set("bound", acc.theory_bound());
  theory.set("rounds_over_bound", acc.rounds_over_bound());
  j.set("theory", std::move(theory));
  if (timing) {
    util::Json t = util::Json::object();
    t.set("wall_ms", acc.wall_ms());
    t.set("traverse_ns", static_cast<std::uint64_t>(acc.phases().traverse_ns));
    t.set("output_ns", static_cast<std::uint64_t>(acc.phases().output_ns));
    t.set("recover_ns", static_cast<std::uint64_t>(acc.phases().recover_ns));
    t.set("enqueue_ns", static_cast<std::uint64_t>(acc.phases().enqueue_ns));
    t.set("drain_ns", static_cast<std::uint64_t>(acc.phases().drain_ns));
    t.set("active_listeners",
          static_cast<std::uint64_t>(acc.phases().active_listeners));
    t.set("rowscan_rounds",
          static_cast<std::uint64_t>(acc.phases().rowscan_rounds));
    t.set("idplane_rounds",
          static_cast<std::uint64_t>(acc.phases().idplane_rounds));
    t.set("constfold_rounds",
          static_cast<std::uint64_t>(acc.phases().constfold_rounds));
    t.set("steal_attempts",
          static_cast<std::uint64_t>(acc.phases().steal_attempts));
    t.set("steals", static_cast<std::uint64_t>(acc.phases().steals));
    t.set("idle_ns", static_cast<std::uint64_t>(acc.phases().idle_ns));
    if (gen != nullptr) {
      t.set("gen_ns", gen->gen_ns);
      t.set("cache_hits", gen->cache_hits);
      t.set("cache_misses", gen->cache_misses);
    }
    j.set("timing", std::move(t));
  }
  return j;
}

PointMeta point_meta(const PointResult& point) {
  PointMeta meta;
  meta.family = point.job.family;
  meta.param_name = point.job.param_name;
  meta.param = point.job.param;
  meta.n = point.n_actual;
  meta.diameter = point.diameter;
  meta.protocol = point.job.protocol;
  meta.medium = std::string(radio::to_string(point.job.medium));
  meta.recovery = point.job.lane_width > 1
                      ? std::string(radio::to_string(point.job.recovery))
                      : "";
  meta.lanes = point.job.lane_width;
  return meta;
}

util::Json sweep_json(const SweepSpec& spec,
                      const std::vector<PointResult>& results, bool timing,
                      const std::vector<QuarantinedTask>* quarantined) {
  util::Json j = util::Json::object();
  j.set("kind", "sweep");
  j.set("spec", spec.to_json());
  if (quarantined != nullptr && !quarantined->empty()) {
    util::Json list = util::Json::array();
    for (const QuarantinedTask& q : *quarantined) {
      util::Json entry = util::Json::object();
      entry.set("task", util::json_uint(q.task));
      entry.set("job", q.job_label);
      entry.set("first_rep", q.first_rep);
      entry.set("reps", q.count);
      entry.set("error", q.error);
      list.push_back(std::move(entry));
    }
    j.set("quarantined", std::move(list));
  }
  if (timing) {
    // Grid-wide instance-cache rollup: one glance says whether generation
    // was amortised (hits) or on the critical path (misses).
    std::uint64_t hits = 0, misses = 0;
    for (const PointResult& point : results) {
      hits += point.gen.cache_hits;
      misses += point.gen.cache_misses;
    }
    util::Json cache = util::Json::object();
    cache.set("hits", hits);
    cache.set("misses", misses);
    j.set("cache", std::move(cache));
    // Grid-wide work-stealing rollup (sharded points only contribute):
    // how much imbalance the pool absorbed (steals) vs ate (idle_ns).
    std::uint64_t steal_attempts = 0, steals = 0, idle_ns = 0;
    for (const PointResult& point : results) {
      steal_attempts += point.acc.phases().steal_attempts;
      steals += point.acc.phases().steals;
      idle_ns += point.acc.phases().idle_ns;
    }
    util::Json pool = util::Json::object();
    pool.set("steal_attempts", util::json_uint(steal_attempts));
    pool.set("steals", util::json_uint(steals));
    pool.set("idle_ns", util::json_uint(idle_ns));
    j.set("pool", std::move(pool));
    j.set("metrics", obs::Metrics::global().snapshot_json());
  }
  util::Json points = util::Json::array();
  for (const PointResult& point : results) {
    points.push_back(
        point_json(point_meta(point), point.acc, timing, &point.gen));
  }
  j.set("points", std::move(points));
  return j;
}

}  // namespace radiocast::exp
