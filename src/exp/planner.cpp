#include "exp/planner.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include <cmath>

#include "exp/checkpoint.hpp"
#include "exp/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

#include "core/broadcast.hpp"
#include "core/compete_batched.hpp"
#include "core/theory.hpp"
#include "graph/generators.hpp"
#include "radio/batch_network.hpp"
#include "sim/runner.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace radiocast::exp {

namespace {

constexpr radio::Payload kBroadcastMessage = 7;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The family's parameter axis (display name + values); parameterless
/// families sweep one dimensionless point.
void family_params(const SweepSpec& spec, const std::string& family,
                   std::string& name, std::vector<double>& values) {
  if (family == "gnp") {
    name = spec.p_is_degree ? "deg" : "p";
    values = spec.p;
  } else if (family == "rgg") {
    name = "radius";
    values = spec.radius;
  } else if (family == "ba") {
    name = "m";
    values.assign(spec.ba_m.begin(), spec.ba_m.end());
  } else if (family == "powerlaw") {
    name = "exp";
    values = spec.exponent;
  } else if (family == "cliquepath") {
    name = "d";
    values.assign(spec.d.begin(), spec.d.end());
  } else {  // grid
    name = "";
    values = {0.0};
  }
}

}  // namespace

std::string Job::label() const {
  std::string out = family;
  if (!param_name.empty()) {
    out += '[';
    out += param_name;
    out += '=';
    out += util::json_number(param);
    out += ']';
  }
  out += "/n=";
  out += std::to_string(n);
  out += '/';
  out += protocol;
  out += '/';
  out += radio::to_string(medium);
  if (lane_width > 1) {
    out += '/';
    out += radio::to_string(recovery);
    out += "/lanes=";
    out += std::to_string(lane_width);
  }
  return out;
}

namespace {

/// Replication/instance seed base for one grid point: a hash chain over
/// the INSTANCE coordinates (family, parameter, n) — not the enumeration
/// index — so the same coordinates draw the same randomness in any grid
/// shape (adding an n value or a family to a sweep does not move every
/// other point's outcomes), and every medium/recovery/protocol job on a
/// point replays the same graph and per-replication streams.
std::uint64_t point_seed_for(std::uint64_t base, const std::string& family,
                             double param, std::uint32_t n) {
  std::uint64_t seed = base;
  for (const char c : family) {
    seed = util::mix_seed(seed, static_cast<unsigned char>(c));
  }
  seed = util::mix_seed(seed, std::bit_cast<std::uint64_t>(param));
  return util::mix_seed(seed, n);
}

}  // namespace

std::vector<Job> expand(const SweepSpec& spec) {
  spec.validate();
  std::vector<Job> jobs;
  for (const std::string& family : spec.families) {
    std::string param_name;
    std::vector<double> params;
    family_params(spec, family, param_name, params);
    for (const double param : params) {
      for (const std::uint32_t n : spec.n) {
        const std::uint64_t point_seed =
            point_seed_for(spec.seed, family, param, n);
        for (const std::string& protocol : spec.protocols) {
          const bool batched = protocol != "cd";
          // Scalar cores identify no execution axes: collapse them so the
          // grid never reruns identical work under different labels.
          const std::size_t medium_count = batched ? spec.mediums.size() : 1;
          const std::size_t recovery_count =
              batched ? spec.recoveries.size() : 1;
          for (std::size_t mi = 0; mi < medium_count; ++mi) {
            for (std::size_t ri = 0; ri < recovery_count; ++ri) {
              Job job;
              job.index = static_cast<int>(jobs.size());
              job.family = family;
              job.param_name = param_name;
              job.param = param;
              job.n = n;
              job.protocol = protocol;
              job.medium =
                  batched ? spec.mediums[mi] : radio::MediumKind::kScalar;
              job.recovery = batched ? spec.recoveries[ri]
                                     : radio::RecoveryStrategy::kAuto;
              job.lane_width = batched ? spec.lanes : 1;
              job.reps = spec.reps;
              job.sources = spec.sources;
              job.max_rounds = spec.max_rounds;
              job.seed = point_seed;
              job.instance_seed = util::mix_seed(point_seed, 0xA11CEu);
              job.pl_deg = spec.pl_deg;
              jobs.push_back(std::move(job));
            }
          }
        }
      }
    }
  }
  return jobs;
}

sim::Instance build_instance(const Job& job, int gen_threads) {
  if (job.family == "gnp") {
    const double p = job.param_name == "deg"
                         ? std::min(1.0, job.param / job.n)
                         : job.param;
    return sim::make_gnp_instance(job.n, p, job.instance_seed, gen_threads);
  }
  if (job.family == "rgg") {
    return sim::make_rgg_instance(job.n, job.param, job.instance_seed,
                                  gen_threads);
  }
  if (job.family == "ba") {
    return sim::make_ba_instance(job.n,
                                 static_cast<std::uint32_t>(job.param),
                                 job.instance_seed, gen_threads);
  }
  if (job.family == "powerlaw") {
    return sim::make_powerlaw_instance(job.n, job.param, job.pl_deg,
                                       job.instance_seed, gen_threads);
  }
  if (job.family == "cliquepath") {
    return sim::make_cliquepath_instance(
        job.n, static_cast<graph::NodeId>(job.param));
  }
  if (job.family == "grid") {
    const auto rows = static_cast<graph::NodeId>(
        std::max(1.0, std::floor(std::sqrt(static_cast<double>(job.n)))));
    const graph::NodeId cols = (job.n + rows - 1) / rows;
    return sim::make_grid_instance(rows, cols);
  }
  throw std::invalid_argument("unknown graph family '" + job.family + "'");
}

double theory_bound(const std::string& protocol, std::uint32_t n,
                    std::uint32_t diameter, int sources) {
  if (protocol == "decay") return core::theory::bound_bgi(n, diameter);
  if (protocol == "compete") {
    return core::theory::bound_compete(
        n, diameter, static_cast<std::uint64_t>(sources));
  }
  if (protocol == "cd") return core::theory::bound_cd(n, diameter);
  throw std::invalid_argument("unknown protocol '" + protocol + "'");
}

namespace {

/// Generous per-replication round budget when the spec leaves max_rounds
/// at 0: a w.h.p. run terminates well inside it, a stuck one is bounded.
std::uint64_t auto_budget(const Job& job, std::uint32_t n,
                          std::uint32_t diameter) {
  const double bound = theory_bound(job.protocol, n, diameter, job.sources);
  return 2000 + static_cast<std::uint64_t>(8.0 * bound);
}

std::vector<core::CompeteSource> make_sources(const Job& job,
                                              std::uint32_t n) {
  if (job.protocol == "decay") return {{0, kBroadcastMessage}};
  std::vector<core::CompeteSource> sources;
  const auto count = static_cast<std::uint32_t>(job.sources);
  sources.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    // Sources spread evenly, descending payloads: source 0 (node 0) wins.
    sources.push_back({static_cast<graph::NodeId>(
                           (static_cast<std::uint64_t>(i) * n) / count),
                       radio::Payload{1'000'000} - i});
  }
  return sources;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// `shared` non-null = the Planner cache's prebuilt instance; null = build
/// here (cache off) and report the cost in out.gen_ns. Either way wall_ms
/// covers the protocol replications only — generation cost is accounted
/// separately so the two are comparable across cache modes.
TaskOutcome run_task(const Job& job, int first_rep, int count,
                     const sim::Instance* shared, int gen_threads) {
  TaskOutcome out;
  sim::Instance local;
  if (shared == nullptr) {
    const std::uint64_t g0 = now_ns();
    local = build_instance(job, gen_threads);
    out.gen_ns = now_ns() - g0;
    shared = &local;
  }
  const sim::Instance& inst = *shared;
  const double t0 = now_ms();
  out.n_actual = inst.g.node_count();
  out.diameter = inst.diameter;
  out.lanes.reserve(static_cast<std::size_t>(count));

  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(count));
  for (int l = 0; l < count; ++l) {
    seeds[static_cast<std::size_t>(l)] =
        util::mix_seed(job.seed, static_cast<std::uint64_t>(first_rep + l));
  }

  if (job.protocol == "cd") {
    for (const std::uint64_t seed : seeds) {
      const auto r = core::broadcast(inst.g, inst.diameter, 0,
                                     kBroadcastMessage, core::CompeteParams{},
                                     seed);
      LaneOutcome lane;
      lane.success = r.success;
      lane.rounds = static_cast<double>(r.rounds);
      lane.informed = static_cast<double>(r.informed);
      out.lanes.push_back(lane);
    }
  } else {
    radio::BatchNetwork bn(inst.g, count, radio::CollisionModel::kNoDetection,
                           job.medium, job.recovery);
    core::BatchedCompeteParams params;
    params.max_rounds = job.max_rounds != 0
                            ? job.max_rounds
                            : auto_budget(job, out.n_actual, out.diameter);
    const auto results = core::compete_batched(
        bn, make_sources(job, out.n_actual), params, seeds);
    out.phases = bn.medium().phase_timers();
    for (const auto& r : results) {
      LaneOutcome lane;
      lane.success = r.success;
      lane.rounds = static_cast<double>(r.rounds);
      lane.informed = static_cast<double>(r.informed);
      lane.deliveries = static_cast<double>(r.deliveries);
      lane.transmissions = static_cast<double>(r.transmissions);
      out.lanes.push_back(lane);
    }
  }
  out.wall_ms = now_ms() - t0;
  return out;
}

}  // namespace

namespace {

/// Instance identity for the Planner cache: every field the generated
/// graph is a function of. Jobs differing only in protocol / medium /
/// recovery / reps map to the same key by construction (expand() derives
/// instance_seed from the instance coordinates alone).
std::string instance_key(const Job& job) {
  std::string key = job.family;
  key += '|';
  key += job.param_name;
  key += '|';
  key += util::json_number(job.param);
  key += '|';
  key += std::to_string(job.n);
  key += '|';
  key += util::json_number(job.pl_deg);
  key += '|';
  key += std::to_string(job.instance_seed);
  return key;
}

struct BuiltInstance {
  std::shared_ptr<const sim::Instance> instance;
  std::uint64_t gen_ns = 0;
};

/// One task attempt, optionally under the watchdog. The worker thread
/// captures the Job by VALUE and the instance by shared_ptr: a timed-out
/// attempt is abandoned (detached), and must never dangle into Planner
/// locals that the rest of the run goes on to destroy.
TaskOutcome attempt_task(const Job& job, const TaskRef& task,
                         std::shared_ptr<const sim::Instance> shared,
                         int gen_threads, std::size_t task_index, int attempt,
                         int timeout_ms) {
  if (timeout_ms <= 0) {
    FaultInjector::global().on_task_attempt(task_index, attempt);
    return run_task(job, task.first_rep, task.count, shared.get(),
                    gen_threads);
  }
  auto promise = std::make_shared<std::promise<TaskOutcome>>();
  auto future = promise->get_future();
  std::thread worker([promise, job, task, shared = std::move(shared),
                      gen_threads, task_index, attempt] {
    try {
      FaultInjector::global().on_task_attempt(task_index, attempt);
      promise->set_value(run_task(job, task.first_rep, task.count,
                                  shared.get(), gen_threads));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  if (future.wait_for(std::chrono::milliseconds(timeout_ms)) ==
      std::future_status::ready) {
    worker.join();
    return future.get();
  }
  worker.detach();
  obs::trace_instant("sweep.watchdog_fire");
  static obs::Counter& watchdog_fires =
      obs::Metrics::global().counter("sweep.watchdog_fires");
  watchdog_fires.add();
  throw std::runtime_error("watchdog: task attempt still running after " +
                           std::to_string(timeout_ms) + "ms");
}

/// Retry/quarantine policy around attempt_task. Config errors
/// (invalid_argument/logic_error — unknown family, bad protocol) rethrow
/// immediately: retrying cannot fix them and quarantining would hide
/// them. Everything else (protocol runtime failures, watchdog timeouts,
/// injected transient faults) is retried with exponential backoff, then
/// quarantined.
TaskOutcome execute_guarded(const Job& job, const TaskRef& task,
                            const std::shared_ptr<const sim::Instance>& shared,
                            const Planner::Options& options,
                            std::size_t task_index) {
  for (int attempt = 0;; ++attempt) {
    try {
      return attempt_task(job, task, shared, options.gen_threads, task_index,
                          attempt, options.task_timeout_ms);
    } catch (const std::logic_error&) {
      throw;
    } catch (const std::exception& e) {
      if (attempt < options.retries) {
        obs::trace_instant("sweep.retry");
        static obs::Counter& retries =
            obs::Metrics::global().counter("sweep.retries");
        retries.add();
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min(1000, 25 << std::min(attempt, 5))));
        continue;
      }
      obs::trace_instant("sweep.quarantine");
      static obs::Counter& quarantined =
          obs::Metrics::global().counter("sweep.quarantined");
      quarantined.add();
      TaskOutcome out;
      out.quarantined = true;
      out.error = e.what();
      return out;
    }
  }
}

}  // namespace

std::vector<TaskRef> flatten_tasks(std::span<const Job> jobs) {
  // Flatten jobs into (job, lane-batch) tasks so small per-job batch
  // counts still saturate the pool across the whole grid.
  std::vector<TaskRef> tasks;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const Job& job = jobs[j];
    for (int first = 0; first < job.reps; first += job.lane_width) {
      tasks.push_back({static_cast<int>(j), first,
                       std::min(job.lane_width, job.reps - first)});
    }
  }
  return tasks;
}

std::vector<PointResult> Planner::run(std::span<const Job> jobs,
                                      sim::Runner& runner) const {
  RunOutcome outcome = run_durable(jobs, runner, nullptr);
  if (outcome.interrupted) {
    throw ResumableInterrupt(
        "sweep interrupted before completion (resume to finish)");
  }
  if (!outcome.quarantined.empty()) {
    const QuarantinedTask& q = outcome.quarantined.front();
    throw std::runtime_error(q.job_label + ": " + q.error);
  }
  return std::move(outcome.points);
}

RunOutcome Planner::run_durable(std::span<const Job> jobs,
                                sim::Runner& runner,
                                Checkpoint* checkpoint) const {
  const std::vector<TaskRef> tasks = flatten_tasks(jobs);
  RunOutcome outcome;
  outcome.tasks_total = tasks.size();

  // Resume: tasks the journal already holds are replayed, not re-run.
  std::vector<char> pending(tasks.size(), 1);
  if (checkpoint != nullptr) {
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (checkpoint->completed(t)) pending[t] = 0;
    }
  }

  // Instance cache: deduplicate jobs by instance identity, build each
  // unique instance ONCE (over the runner pool; the pargen chunk scheme
  // additionally parallelises inside a build), and hand every task a
  // shared_ptr. Grids where only execution axes or replication batches
  // vary regenerate nothing — and a resumed sweep builds ONLY the
  // instances its still-pending tasks touch. All built instances stay
  // resident for the run — the cost profile the million-node acceptance
  // sweep wants (one point at a time dominates memory anyway).
  std::vector<int> job_instance(jobs.size(), -1);
  std::vector<int> representative;  // unique instance -> first job index
  std::vector<BuiltInstance> built;
  if (options_.cache) {
    std::unordered_map<std::string, int> keys;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const auto [it, inserted] = keys.try_emplace(
          instance_key(jobs[j]), static_cast<int>(representative.size()));
      if (inserted) representative.push_back(static_cast<int>(j));
      job_instance[j] = it->second;
    }
    built.resize(representative.size());
    std::vector<int> to_build;
    {
      std::vector<char> needed(representative.size(), 0);
      for (std::size_t t = 0; t < tasks.size(); ++t) {
        if (pending[t] != 0) {
          needed[static_cast<std::size_t>(
              job_instance[static_cast<std::size_t>(tasks[t].job)])] = 1;
        }
      }
      for (std::size_t i = 0; i < representative.size(); ++i) {
        if (needed[i] != 0) to_build.push_back(static_cast<int>(i));
      }
    }
    auto builds = runner.map(static_cast<int>(to_build.size()), [&](int b) {
      const auto inst = static_cast<std::size_t>(
          to_build[static_cast<std::size_t>(b)]);
      const obs::TraceSpan span("sweep.build_instance", "instance", inst);
      const std::uint64_t g0 = now_ns();
      auto instance = std::make_shared<const sim::Instance>(build_instance(
          jobs[static_cast<std::size_t>(
              representative[inst])],
          options_.gen_threads));
      const std::uint64_t gen_ns = now_ns() - g0;
      static obs::Histogram& gen_hist =
          obs::Metrics::global().histogram("sweep.instance_gen_ns");
      gen_hist.record(gen_ns);
      return BuiltInstance{std::move(instance), gen_ns};
    });
    for (std::size_t b = 0; b < to_build.size(); ++b) {
      built[static_cast<std::size_t>(to_build[b])] = std::move(builds[b]);
    }
  }

  // Execute the pending tasks. Each worker checks the drain flag before
  // STARTING a task (in-flight tasks always finish and journal — that is
  // the graceful part), quarantines through execute_guarded, and records
  // into the journal before the task counts as done.
  std::vector<std::optional<TaskOutcome>> outs(tasks.size());
  if (checkpoint != nullptr) {
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (pending[t] == 0) outs[t] = *checkpoint->outcome(t);
    }
  }
  std::vector<int> pending_list;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    if (pending[t] != 0) pending_list.push_back(static_cast<int>(t));
  }
  if (options_.progress != nullptr) {
    std::uint64_t replayed_reps = 0;
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (pending[t] == 0) {
        replayed_reps += static_cast<std::uint64_t>(tasks[t].count);
      }
    }
    options_.progress->add_replayed(tasks.size() - pending_list.size(),
                                    replayed_reps);
  }
  auto executed = runner.map(
      static_cast<int>(pending_list.size()),
      [&](int i) -> std::optional<TaskOutcome> {
        const auto t = static_cast<std::size_t>(
            pending_list[static_cast<std::size_t>(i)]);
        if (shutdown_requested()) return std::nullopt;
        const TaskRef& task = tasks[t];
        const obs::TraceSpan span("sweep.task", "task", t, "job",
                                  static_cast<std::uint64_t>(task.job));
        std::shared_ptr<const sim::Instance> shared =
            options_.cache ? built[static_cast<std::size_t>(job_instance[
                                 static_cast<std::size_t>(task.job)])]
                                 .instance
                           : nullptr;
        const bool cache_hit = shared != nullptr;
        TaskOutcome out = execute_guarded(
            jobs[static_cast<std::size_t>(task.job)], task, shared, options_,
            t);
        if (!out.quarantined) {
          static obs::Histogram& wall_hist =
              obs::Metrics::global().histogram("sweep.task_wall_ms");
          wall_hist.record(static_cast<std::uint64_t>(
              std::max(0.0, out.wall_ms)));
        }
        if (checkpoint != nullptr) checkpoint->record(t, out);
        if (options_.progress != nullptr) {
          options_.progress->task_done(
              static_cast<std::uint64_t>(task.count), cache_hit,
              out.quarantined);
        }
        return out;
      });
  for (std::size_t i = 0; i < pending_list.size(); ++i) {
    const auto t = static_cast<std::size_t>(pending_list[i]);
    if (executed[i].has_value()) {
      outs[t] = std::move(executed[i]);
      ++outcome.tasks_run;
    } else {
      outcome.interrupted = true;
    }
  }
  outcome.tasks_replayed = tasks.size() - pending_list.size();

  // Fold strictly in task order: the accumulators (and therefore every
  // emitted statistic) are independent of how the map was scheduled AND
  // of how many earlier runs contributed journal records. Quarantined
  // tasks contribute nothing to the statistics — they surface in the
  // quarantine list instead.
  outcome.points.resize(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    outcome.points[j].job = jobs[j];
  }
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    if (!outs[t].has_value()) continue;  // drained before start
    const TaskOutcome& out = *outs[t];
    const TaskRef& task = tasks[t];
    if (out.quarantined) {
      outcome.quarantined.push_back(
          {t, jobs[static_cast<std::size_t>(task.job)].label(),
           task.first_rep, task.count, out.error});
      continue;
    }
    PointResult& point = outcome.points[static_cast<std::size_t>(task.job)];
    point.n_actual = out.n_actual;
    point.diameter = out.diameter;
    point.gen.gen_ns += out.gen_ns;
    for (const LaneOutcome& lane : out.lanes) {
      point.acc.add(lane.success, lane.rounds, lane.deliveries,
                    lane.transmissions, lane.informed);
    }
    point.acc.add_phases(out.phases);
    point.acc.add_wall_ms(out.wall_ms);
  }

  // Hit/miss attribution is STATIC — derived from the deterministic task
  // list, not from which worker touched the cache first (or which run a
  // record came from) — so the counters are byte-stable across thread
  // counts and resume boundaries: the first task (in task order) of each
  // unique instance is the miss, every later task a hit.
  if (options_.cache) {
    std::vector<bool> missed(built.size(), false);
    for (const TaskRef& task : tasks) {
      const auto inst =
          static_cast<std::size_t>(job_instance[static_cast<std::size_t>(
              task.job)]);
      PointResult& point =
          outcome.points[static_cast<std::size_t>(task.job)];
      if (!missed[inst]) {
        missed[inst] = true;
        ++point.gen.cache_misses;
      } else {
        ++point.gen.cache_hits;
      }
    }
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      outcome.points[j].gen.gen_ns =
          built[static_cast<std::size_t>(job_instance[j])].gen_ns;
    }
  } else {
    // Cache off: every task built its own instance; each build is a miss.
    for (const TaskRef& task : tasks) {
      ++outcome.points[static_cast<std::size_t>(task.job)].gen.cache_misses;
    }
  }

  for (PointResult& point : outcome.points) {
    // A point whose every batch was quarantined or drained never
    // materialised an instance; bounds over n = 0 are meaningless.
    if (point.n_actual == 0) continue;
    point.acc.set_theory_bound(theory_bound(
        point.job.protocol, point.n_actual, point.diameter, point.job.sources));
  }
  return outcome;
}

}  // namespace radiocast::exp
