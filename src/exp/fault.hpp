// Deterministic fault injection for the crash-safe sweep harness.
//
// RADIOCAST_FAULT turns "what if the process dies here?" into a
// reproducible test input. The driver parses the knob once at startup
// and arms the process-wide FaultInjector; the Planner and the
// Checkpoint journal then consult it at the exact boundaries a real
// crash would hit:
//
//   kill@<task>         _Exit(137) right after task <task>'s journal
//                       record is fsynced — a SIGKILL at a task boundary.
//   abort@<n>           on the n-th journal append (1-based), write a
//                       torn half-record without fsync and _Exit(134) —
//                       a crash mid-append.
//   io-fail@<n>         the n-th fsio write operation (journal append or
//                       report write, 1-based) fails as if the kernel
//                       returned EIO.
//   task-throw@<t>[x<k>] task <t> throws on its first k attempts
//                       (default 1) — a transient failure the retry
//                       policy should absorb, or quarantine past k.
//   task-hang@<t>       task <t> blocks until cancel_hangs() — drives
//                       the watchdog timeout path deterministically.
//   sigint@<t>          request graceful shutdown while task <t> runs —
//                       a deterministic SIGINT for drain tests.
//
// Exactly one fault per process; parse() rejects anything else.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>

namespace radiocast::exp {

/// Exit statuses the crash-safety harness distinguishes.
/// kResumableExit is EX_TEMPFAIL: the sweep drained gracefully after
/// SIGINT/SIGTERM and `--resume` will finish it. The fault exits mirror
/// how a shell reports SIGKILL (128+9) and SIGABRT (128+6) deaths, so
/// CI scripts can assert the simulated crash looks like a real one.
inline constexpr int kResumableExit = 75;
inline constexpr int kFaultKillExit = 137;
inline constexpr int kFaultAbortExit = 134;

/// One parsed RADIOCAST_FAULT directive.
struct FaultSpec {
  enum class Kind {
    kNone,
    kKill,       // kill@<task>
    kAbort,      // abort@<n>
    kIoFail,     // io-fail@<n>
    kTaskThrow,  // task-throw@<task>[x<k>]
    kTaskHang,   // task-hang@<task>
    kSigint,     // sigint@<task>
  };

  Kind kind = Kind::kNone;
  /// Task index (0-based) for kill/task-*/sigint; operation ordinal
  /// (1-based) for abort/io-fail.
  std::size_t index = 0;
  /// task-throw only: number of consecutive failing attempts.
  int times = 1;

  /// Strict parse of the RADIOCAST_FAULT grammar above; throws
  /// std::invalid_argument (listing the grammar) on anything else.
  static FaultSpec parse(std::string_view text);
};

/// Process-wide injection point. Disarmed (Kind::kNone) by default; the
/// bench driver arms it from RADIOCAST_FAULT before the sweep starts,
/// and tests arm it directly. All methods are thread-safe.
class FaultInjector {
 public:
  static FaultInjector& global();

  /// Arms `spec` and resets all counters and hang-cancel state.
  void configure(const FaultSpec& spec);
  FaultSpec spec() const;

  /// fsio hook body (io-fail@): counts one write operation, true when
  /// this one is the injected failure.
  bool take_io_fault();

  /// Journal-append hook (abort@): counts one append, true when the
  /// caller must tear this record and die with kFaultAbortExit.
  bool abort_on_append();

  /// kill@: true right after `task_index`'s record is durable — the
  /// caller must _Exit(kFaultKillExit) without touching the journal
  /// again.
  bool kill_after_task(std::size_t task_index) const;

  /// Called by the Planner at the start of every task attempt
  /// (0-based `attempt`): task-throw throws std::runtime_error,
  /// task-hang blocks until cancel_hangs(), sigint@ requests graceful
  /// shutdown.
  void on_task_attempt(std::size_t task_index, int attempt);

  /// Wakes any task-hang blockers (they abort their attempt by
  /// throwing). Tests call this so watchdog-abandoned threads finish.
  void cancel_hangs();

 private:
  FaultInjector() = default;

  mutable std::mutex mu_;
  FaultSpec spec_;
  std::size_t io_ops_ = 0;
  std::size_t appends_ = 0;
  bool hang_cancelled_ = false;
  std::condition_variable hang_cv_;
};

}  // namespace radiocast::exp
