// Grid expansion and deterministic execution for the sweep subsystem.
//
// expand() turns a SweepSpec into a flat, deterministic job list — one Job
// per grid point, enumerated family -> family-parameter -> n -> protocol
// -> medium -> recovery. Replication seeds are derived from the INSTANCE
// coordinates only (family, parameter, n — not medium or recovery), so
// two jobs that differ only in execution axes run byte-identical
// protocol replications: the medium/recovery columns of a sweep isolate
// execution cost, never outcome. Scalar protocol cores (cd) collapse the
// execution axes entirely (one job per instance point, medium = scalar).
//
// Planner::run() flattens jobs into (job, lane-batch) tasks, maps them
// over the sim::Runner pool, and folds the outcomes into per-job
// Accumulators strictly in task order — the sweep's output is
// byte-identical for any --threads, the same contract Runner::replicate
// gives single scenarios.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "exp/accumulator.hpp"
#include "exp/spec.hpp"
#include "radio/medium.hpp"
#include "sim/instances.hpp"

namespace radiocast::sim {
class Runner;
}

namespace radiocast::obs {
class ProgressMeter;
}

namespace radiocast::exp {

class Checkpoint;

/// One grid point, fully determined by the spec: running a Job twice (any
/// thread count, any machine) yields identical protocol outcomes.
struct Job {
  int index = 0;
  std::string family;
  /// Family-parameter display name ("p", "deg", "radius", "d"; "" when
  /// the family is parameterless) and value.
  std::string param_name;
  double param = 0.0;
  std::uint32_t n = 0;
  std::string protocol;  // kProtocolNames entry
  radio::MediumKind medium = radio::MediumKind::kScalar;
  radio::RecoveryStrategy recovery = radio::RecoveryStrategy::kAuto;
  /// Lanes per batch (1 for scalar cores).
  int lane_width = 1;
  int reps = 1;
  int sources = 1;
  /// 0 = auto budget (resolved against the instance's theory bound).
  std::uint64_t max_rounds = 0;
  /// Base replication seed; replication r uses mix_seed(seed, r). Shared
  /// across execution axes (see file comment).
  std::uint64_t seed = 0;
  /// Seed the graph instance is generated from (shared likewise).
  std::uint64_t instance_seed = 0;
  /// powerlaw only: target average degree (the spec's pl-deg knob).
  double pl_deg = 12.0;

  /// "gnp[deg=12]/n=1024/decay/bitslice/auto" — the human job id used by
  /// --dry-run listings and error messages.
  std::string label() const;
};

/// Expands the grid (validates the spec first). Deterministic: the same
/// spec always yields the same jobs in the same order.
std::vector<Job> expand(const SweepSpec& spec);

/// Instance-generation cost/caching statistics for one grid point. All of
/// it is wall-clock-derived or scheduling-describing metadata, so reports
/// only surface it behind the timing flag (`--timing=off` byte-stability).
struct GenStats {
  /// Wall time spent generating this point's instance ONCE. Points that
  /// share a cached instance report the same build's time.
  std::uint64_t gen_ns = 0;
  /// How many of this point's lane-batch tasks reused the cached instance
  /// vs triggered (or, cache off, repeated) a build.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

/// One executed grid point: the job, the instance it materialised
/// (n_actual can differ from job.n for the grid family; diameter is
/// measured), and the folded replication statistics with the theory
/// overlay already evaluated.
struct PointResult {
  Job job;
  std::uint32_t n_actual = 0;
  std::uint32_t diameter = 0;
  GenStats gen;
  Accumulator acc;
};

/// Builds the graph instance a job runs on — deterministic from the job
/// alone (and independent of gen_threads), so every lane batch of a job
/// sees the same topology.
sim::Instance build_instance(const Job& job, int gen_threads = 0);

/// The core/theory bound overlaid at a grid point: bound_bgi for decay,
/// bound_compete for compete, bound_cd for cd.
double theory_bound(const std::string& protocol, std::uint32_t n,
                    std::uint32_t diameter, int sources);

/// One (job, lane-batch) execution unit. A task's index in the
/// flatten_tasks() vector IS its durable identity — the checkpoint
/// journal records task indices, so the flattening must stay a pure
/// function of the job list.
struct TaskRef {
  int job = 0;
  int first_rep = 0;
  int count = 0;
};

/// Flattens jobs into lane-batch tasks in job order (deterministic; the
/// task list every Planner entry point and the journal share).
std::vector<TaskRef> flatten_tasks(std::span<const Job> jobs);

/// A poisoned task: every attempt failed, so the grid recorded the
/// failing coordinate and moved on instead of dying or hanging.
struct QuarantinedTask {
  std::size_t task = 0;
  std::string job_label;
  int first_rep = 0;
  int count = 0;
  std::string error;
};

/// What a durable run produced beyond the points themselves.
struct RunOutcome {
  std::vector<PointResult> points;
  std::vector<QuarantinedTask> quarantined;
  std::size_t tasks_total = 0;
  /// Tasks replayed from the checkpoint journal instead of re-executed.
  std::size_t tasks_replayed = 0;
  std::size_t tasks_run = 0;
  /// Graceful drain: a shutdown request stopped the run before every
  /// task was done. Completed work is journaled; reports must NOT be
  /// written (they would be partial).
  bool interrupted = false;
};

class Planner {
 public:
  struct Options {
    /// Generation pool width per instance build (pargen::resolve_threads
    /// semantics; 0 = env/auto). Never affects output bytes.
    int gen_threads = 0;
    /// When true (default), jobs sharing an instance seed — medium and
    /// recovery execution axes, and every replication batch of a job —
    /// reuse ONE graph build held via shared_ptr. Off exists for the
    /// cache-correctness tests and A/B cost measurements; outcomes (and,
    /// with timing off, report bytes) are identical either way.
    bool cache = true;
    /// Per-task watchdog: a task attempt exceeding this wall budget is
    /// abandoned and treated as a transient failure (retried, then
    /// quarantined). 0 disables the watchdog.
    int task_timeout_ms = 0;
    /// Transient-failure retries per task before quarantine, with
    /// exponential backoff. Config errors (std::invalid_argument /
    /// std::logic_error) are never retried — they rethrow immediately.
    int retries = 0;
    /// Live heartbeat sink (nullable). run_durable ticks it once per task
    /// — replayed tasks up front, live tasks as they complete. Purely
    /// observational: never touches outcomes or report bytes.
    obs::ProgressMeter* progress = nullptr;
  };

  Planner() = default;
  explicit Planner(Options options) : options_(options) {}

  /// Runs every job's replications over the runner pool; results are
  /// byte-identical for any runner thread count. Throws what the protocol
  /// cores throw (first task error wins, like Runner::map — quarantined
  /// tasks rethrow their recorded error here, and a graceful-shutdown
  /// drain rethrows as ResumableInterrupt).
  std::vector<PointResult> run(std::span<const Job> jobs,
                               sim::Runner& runner) const;

  /// The crash-safe entry point behind `sweep`: honors a shutdown
  /// request between tasks (drains in-flight work, leaves the rest
  /// pending), journals every completed task into `checkpoint` (nullable
  /// = no journaling), skips tasks the journal already holds, applies
  /// the watchdog/retry/quarantine policy, and consults the process
  /// fault injector at every task boundary. The folded points are
  /// byte-identical to an uninterrupted run whenever
  /// outcome.interrupted is false.
  RunOutcome run_durable(std::span<const Job> jobs, sim::Runner& runner,
                         Checkpoint* checkpoint) const;

 private:
  Options options_;
};

}  // namespace radiocast::exp
