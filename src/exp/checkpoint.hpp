// Crash-safe sweep execution: the checkpoint journal and graceful
// shutdown.
//
// The Planner's determinism contract (coordinate-derived seeds,
// task-order fold) means a (job, lane-batch) task's outcome is a pure
// function of the spec — so a sweep that died can finish later, on any
// thread count, and emit byte-identical reports. The Checkpoint journal
// makes that operational: one fsynced record per completed task, so
// after SIGKILL/OOM/CI-timeout `sweep --resume=<dir>` replays the
// journal, skips the recorded tasks, and runs only the remainder.
//
// Journal format (<out_dir>/sweep.journal, line-oriented, append-only):
//
//   H <crc> {"kind":"sweep-journal","version":1,
//            "fingerprint":"<16-hex spec digest>","tasks":<count>}
//   R <crc> {"task":<idx>,"n":...,"diameter":...,"gen_ns":...,
//            "wall_ms":...,"phases":[...10 counters...],
//            "lanes":[[success,rounds,informed,deliveries,
//                      transmissions],...]}
//
// Each <crc> is the fnv1a-64 of the JSON text on that line, in 16 hex
// digits. Every append is fsynced before the task counts as done, so a
// crash can tear at most the line being written: replay drops an
// unterminated tail and tolerates a corrupt FINAL line (both are what a
// real torn append leaves), but a corrupt interior line — which fsync
// ordering makes impossible without external damage — is an error.
// The fingerprint pins the journal to the exact SweepSpec, so resuming
// with a different grid is refused instead of silently mixing outcomes.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/accumulator.hpp"
#include "exp/spec.hpp"
#include "radio/medium.hpp"
#include "util/fsio.hpp"

namespace radiocast::exp {

/// Thrown when a sweep drains after SIGINT/SIGTERM with tasks still
/// pending: the driver maps it to kResumableExit (75) so wrappers can
/// tell "interrupted but resumable" from real failures.
class ResumableInterrupt : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Installs SIGINT/SIGTERM handlers that request a graceful drain (the
/// Planner stops STARTING tasks; in-flight ones finish and journal).
/// One-shot per signal: a second SIGINT kills the process the default
/// way, so a wedged sweep can still be stopped.
void install_signal_handlers();
/// True once a drain was requested (signal or request_shutdown()).
bool shutdown_requested();
/// Programmatic drain request — what the sigint@ fault knob and the
/// signal handlers call.
void request_shutdown();
/// Re-arms after a drain (tests run many sweeps in one process).
void clear_shutdown();

/// One replication's outcome inside a task (absent metrics = NaN,
/// mirroring Accumulator::kAbsent).
struct LaneOutcome {
  bool success = false;
  double rounds = 0.0;
  double informed = Accumulator::kAbsent;
  double deliveries = Accumulator::kAbsent;
  double transmissions = Accumulator::kAbsent;
};

/// One executed (job, lane-batch) task — exactly what the journal
/// persists and the Planner folds.
struct TaskOutcome {
  std::vector<LaneOutcome> lanes;
  radio::PhaseTimers phases;
  double wall_ms = 0.0;
  /// Time this task spent generating its own instance (0 when it ran on
  /// a cached one).
  std::uint64_t gen_ns = 0;
  std::uint32_t n_actual = 0;
  std::uint32_t diameter = 0;
  /// Poisoned task: every retry failed. The task contributes nothing to
  /// the fold; `error` records why (surfaced in the report's quarantine
  /// list instead of hanging or killing the grid).
  bool quarantined = false;
  std::string error;
};

/// 16-hex digest of spec.to_json() — the journal/spec compatibility key.
std::string spec_fingerprint(const SweepSpec& spec);

/// The append-only task journal. All methods are thread-safe; record()
/// is called concurrently from Planner workers.
class Checkpoint {
 public:
  static std::string journal_path(const std::string& dir);

  /// Starts a FRESH journal at <dir>/sweep.journal (truncating any
  /// previous one) with a header pinning `spec` and `task_count`.
  /// Throws std::runtime_error on I/O failure.
  static std::unique_ptr<Checkpoint> start(const std::string& dir,
                                           const SweepSpec& spec,
                                           std::size_t task_count);

  /// Opens an EXISTING journal for resume: replays its records, then
  /// reopens it for appending. Throws std::runtime_error when the
  /// journal is missing, its header does not match `spec`/`task_count`
  /// (stale-spec rejection), or an interior record is corrupt.
  static std::unique_ptr<Checkpoint> resume(const std::string& dir,
                                            const SweepSpec& spec,
                                            std::size_t task_count);

  /// Appends + fsyncs one completed task. Honors the fault harness:
  /// abort@ tears this record and dies, kill@ dies right after the
  /// fsync. Throws std::runtime_error when the append fails (journal
  /// durability lost — the sweep must not pretend the task is safe).
  void record(std::size_t task, const TaskOutcome& outcome);

  /// True when `task` was replayed from the journal (resume path).
  bool completed(std::size_t task) const;
  std::size_t completed_count() const;
  /// The replayed outcome for a completed task (nullptr otherwise).
  const TaskOutcome* outcome(std::size_t task) const;

  /// Deletes the journal file — called after reports are written, so a
  /// finished sweep leaves no stale journal for a later --resume.
  void remove_journal();

 private:
  Checkpoint() = default;

  std::string path_;
  util::AppendFile file_;
  mutable std::mutex mu_;
  std::vector<std::optional<TaskOutcome>> replayed_;
};

}  // namespace radiocast::exp
