// Declarative sweep specification: the grid of experiment axes the
// `radiocast_bench sweep` subcommand expands and executes.
//
// A sweep is a cartesian grid over instance axes (graph family + the
// family's parameter, n), protocol cores, and execution axes (medium
// backend, sender-recovery strategy), with a replication count, lane
// width, and base seed. The spec is declarative — it can be read from CLI
// flags (`--n=512,1024,2048 --p=geom:0.001..0.1:5`) or a JSON manifest
// file (`--manifest=grid.json`), and echoes itself back into the emitted
// report so a sweep is reproducible from its own output.
//
// Numeric axis expressions (parse_double_axis / parse_int_axis):
//   3                 one value
//   512,1024,2048     explicit comma list
//   lin:16..64:4      4 linearly spaced points over [16, 64]
//   geom:0.001..0.1:5 5 geometrically spaced points (endpoints included)
// The p axis additionally accepts a deg: prefix (`--p=deg:12`), meaning
// the values are target AVERAGE DEGREES: each grid point uses p = deg/n,
// which keeps density constant across an n sweep — the comparison the
// paper's curves want.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "radio/medium.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace radiocast::exp {

/// Expands a numeric axis expression (see file comment). Throws
/// std::invalid_argument naming `what` on malformed syntax, non-positive
/// geometric endpoints, inverted ranges, or zero-point ranges.
std::vector<double> parse_double_axis(std::string_view text,
                                      std::string_view what);
/// Integer form: values are rounded to the nearest integer and
/// consecutive duplicates (from coarse geometric spacing) are dropped.
std::vector<std::uint64_t> parse_int_axis(std::string_view text,
                                          std::string_view what);

/// Graph families the sweep can instantiate. Family parameters:
///   gnp        — p (edge probability, or deg: average degree)
///   rgg        — radius (unit-disk connection radius)
///   ba         — m (Barabasi-Albert attachment count per node)
///   powerlaw   — exp (Chung-Lu power-law exponent, > 2), plus the scalar
///                --pl-deg knob (target average degree, default 12)
///   cliquepath — d (target diameter of the path-of-cliques instance)
///   grid       — none (near-square rows x cols grid covering >= n nodes)
inline constexpr std::array<std::string_view, 6> kFamilyNames{
    "gnp", "rgg", "ba", "powerlaw", "cliquepath", "grid"};

/// Protocol cores the sweep can drive:
///   decay   — Decay-relay broadcast (core::broadcast_batched; BGI rule
///             set), lane-batched through BatchNetwork
///   compete — Decay-relay Compete with |S| = sources (lane-batched)
///   cd      — the paper's Czumaj-Davies broadcast (core::broadcast;
///             scalar core, one lane per replication)
inline constexpr std::array<std::string_view, 3> kProtocolNames{
    "decay", "compete", "cd"};

struct SweepSpec {
  std::vector<std::string> families{"gnp", "cliquepath"};
  std::vector<std::uint32_t> n{512, 1024, 2048};
  /// gnp parameter axis; interpreted as average degrees when p_is_degree.
  std::vector<double> p{12.0};
  bool p_is_degree = true;
  std::vector<double> radius{0.06};
  /// ba parameter axis: attachment edges per node (`--m=2,4`).
  std::vector<std::uint32_t> ba_m{2};
  /// powerlaw parameter axis: Chung-Lu exponents (`--exp=2.2,2.5,3`).
  std::vector<double> exponent{2.5};
  /// powerlaw scalar knob: target average degree shared by every exponent
  /// grid point (`--pl-deg=16`); a knob, not an axis, like lanes/reps.
  double pl_deg = 12.0;
  std::vector<std::uint32_t> d{64};
  std::vector<std::string> protocols{"decay"};
  std::vector<radio::MediumKind> mediums{radio::MediumKind::kScalar};
  std::vector<radio::RecoveryStrategy> recoveries{
      radio::RecoveryStrategy::kAuto};
  /// Lane batch width for the batched protocol cores (1..kMaxLanes).
  int lanes = radio::kMaxLanes;
  /// Monte-Carlo replications per grid point.
  int reps = 8;
  std::uint64_t seed = 17;
  /// Compete's |S| (>= 1).
  int sources = 2;
  /// Round budget per replication; 0 = auto (a generous multiple of the
  /// point's theory bound, so w.h.p. runs terminate and genuinely stuck
  /// ones are bounded).
  std::uint64_t max_rounds = 0;

  /// Builds the spec from CLI flags layered over the defaults (and over
  /// --manifest=FILE when given: manifest values replace defaults,
  /// explicit flags override the manifest). `quick` shrinks the default
  /// grid to smoke-test size when the axes are not explicitly given.
  static SweepSpec from_cli(const util::Cli& cli, bool quick);

  /// Reads a JSON manifest. Recognised keys mirror the CLI flags:
  /// family, n, p, radius, d, protocol, medium, recovery (arrays of
  /// strings/numbers or a single axis-expression string), lanes, reps,
  /// seed, sources, max-rounds (numbers). Unknown keys are rejected so a
  /// typo'd axis never silently vanishes.
  static SweepSpec from_json(const util::Json& manifest);
  static SweepSpec from_manifest_file(const std::string& path);

  /// Manifest echo: to_json() round-trips through from_json() to an
  /// equivalent spec, and is embedded in the sweep report.
  util::Json to_json() const;

  /// Throws std::invalid_argument on empty axes, unknown family/protocol
  /// names, out-of-range lanes/reps/sources, or non-positive parameters.
  void validate() const;
};

}  // namespace radiocast::exp
