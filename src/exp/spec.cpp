#include "exp/spec.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/parse.hpp"

namespace radiocast::exp {

namespace {

[[noreturn]] void axis_fail(std::string_view what, const std::string& why) {
  throw std::invalid_argument(std::string(what) + ": " + why);
}

/// Parses "a..b:k" (the tail of lin:/geom:) into endpoints and a count.
void parse_range(std::string_view text, std::string_view what, double& lo,
                 double& hi, int& count) {
  const std::size_t dots = text.find("..");
  const std::size_t colon = text.rfind(':');
  if (dots == std::string_view::npos || colon == std::string_view::npos ||
      colon < dots + 2) {
    axis_fail(what, "range must look like lo..hi:count, got '" +
                        std::string(text) + "'");
  }
  lo = util::parse_double(text.substr(0, dots), what);
  hi = util::parse_double(text.substr(dots + 2, colon - dots - 2), what);
  count = util::parse_positive_int(text.substr(colon + 1), what);
  if (hi < lo) {
    axis_fail(what, "inverted range " + std::string(text));
  }
}

}  // namespace

std::vector<double> parse_double_axis(std::string_view text,
                                      std::string_view what) {
  std::vector<double> out;
  if (text.rfind("lin:", 0) == 0 || text.rfind("geom:", 0) == 0) {
    const bool geometric = text[0] == 'g';
    double lo = 0.0, hi = 0.0;
    int count = 0;
    parse_range(text.substr(geometric ? 5 : 4), what, lo, hi, count);
    if (geometric && lo <= 0.0) {
      axis_fail(what, "geometric range needs a positive lower endpoint");
    }
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      const double t =
          count == 1 ? 0.0
                     : static_cast<double>(i) / static_cast<double>(count - 1);
      out.push_back(geometric ? lo * std::pow(hi / lo, t)
                              : lo + (hi - lo) * t);
    }
    return out;
  }
  // Comma list; empty positions are loud errors, not silently dropped.
  for (const std::string& item : util::split_csv(text, /*keep_empty=*/true)) {
    if (item.empty()) {
      axis_fail(what, "empty value in list '" + std::string(text) + "'");
    }
    out.push_back(util::parse_double(item, what));
  }
  if (out.empty()) axis_fail(what, "empty axis");
  return out;
}

std::vector<std::uint64_t> parse_int_axis(std::string_view text,
                                          std::string_view what) {
  std::vector<std::uint64_t> out;
  for (const double v : parse_double_axis(text, what)) {
    if (v < 0.0) axis_fail(what, "negative value " + util::json_number(v));
    const auto rounded = static_cast<std::uint64_t>(std::llround(v));
    if (out.empty() || out.back() != rounded) out.push_back(rounded);
  }
  return out;
}

namespace {

bool known_name(std::span<const std::string_view> names,
                std::string_view candidate) {
  return std::find(names.begin(), names.end(), candidate) != names.end();
}

std::string joined(std::span<const std::string_view> names) {
  std::string out;
  const char* sep = "";
  for (const std::string_view n : names) {
    out += sep;
    out += n;
    sep = ", ";
  }
  return out;
}

std::vector<std::uint32_t> to_u32(const std::vector<std::uint64_t>& values,
                                  std::string_view what) {
  std::vector<std::uint32_t> out;
  out.reserve(values.size());
  for (const std::uint64_t v : values) {
    if (v == 0 || v > 0xFFFFFFFFull) {
      axis_fail(what, "value " + std::to_string(v) + " out of range");
    }
    out.push_back(static_cast<std::uint32_t>(v));
  }
  return out;
}

/// The p axis accepts a deg: prefix; returns whether it was present.
bool split_degree_prefix(std::string& text) {
  if (text.rfind("deg:", 0) != 0) return false;
  text.erase(0, 4);
  return true;
}

}  // namespace

// ----------------------------------------------------------------- layers

namespace {

/// Applies one textual axis assignment to the spec; shared by the CLI and
/// manifest layers so both speak exactly the same axis language.
void apply_axis(SweepSpec& spec, const std::string& key,
                const std::string& value) {
  const std::string what = "axis " + key;
  if (key == "family") {
    spec.families = util::split_csv(value);
  } else if (key == "n") {
    spec.n = to_u32(parse_int_axis(value, what), what);
  } else if (key == "p") {
    std::string text = value;
    spec.p_is_degree = split_degree_prefix(text);
    spec.p = parse_double_axis(text, what);
  } else if (key == "radius") {
    spec.radius = parse_double_axis(value, what);
  } else if (key == "m") {
    spec.ba_m = to_u32(parse_int_axis(value, what), what);
  } else if (key == "exp") {
    spec.exponent = parse_double_axis(value, what);
  } else if (key == "d") {
    spec.d = to_u32(parse_int_axis(value, what), what);
  } else if (key == "protocol") {
    spec.protocols = util::split_csv(value);
  } else if (key == "medium") {
    spec.mediums.clear();
    for (const auto& name : util::split_csv(value)) {
      spec.mediums.push_back(radio::parse_medium_kind(name));
    }
  } else if (key == "recovery") {
    spec.recoveries.clear();
    for (const auto& name : util::split_csv(value)) {
      spec.recoveries.push_back(radio::parse_recovery_strategy(name));
    }
  } else {
    axis_fail(what, "unknown axis");
  }
}

}  // namespace

SweepSpec SweepSpec::from_cli(const util::Cli& cli, bool quick) {
  SweepSpec spec;
  if (quick) {
    spec.n = {192, 256, 384};
    spec.d = {24};
    spec.reps = 4;
  }
  if (cli.has("manifest")) {
    spec = from_manifest_file(cli.get_string("manifest", ""));
  }
  for (const char* axis : {"family", "n", "p", "radius", "m", "exp", "d",
                           "protocol", "medium", "recovery"}) {
    if (!cli.has(axis)) continue;
    // Join repeated occurrences so `--family gnp --family rgg` works like
    // `--family=gnp,rgg`; range expressions are single-occurrence anyway.
    std::string joined_items;
    const char* sep = "";
    for (const auto& item : cli.get_list(axis)) {
      joined_items += sep;
      joined_items += item;
      sep = ",";
    }
    apply_axis(spec, axis, joined_items);
  }
  if (cli.has("lanes")) {
    spec.lanes = util::parse_positive_int(cli.get_string("lanes", ""),
                                          "flag --lanes");
  }
  if (cli.has("reps")) {
    spec.reps =
        util::parse_positive_int(cli.get_string("reps", ""), "flag --reps");
  }
  if (cli.has("pl-deg")) {
    spec.pl_deg =
        util::parse_double(cli.get_string("pl-deg", ""), "flag --pl-deg");
  }
  if (cli.has("seed")) spec.seed = cli.get_uint("seed", spec.seed);
  if (cli.has("sources")) {
    spec.sources = util::parse_positive_int(cli.get_string("sources", ""),
                                            "flag --sources");
  }
  if (cli.has("max-rounds")) {
    spec.max_rounds = util::parse_uint(cli.get_string("max-rounds", ""),
                                       "flag --max-rounds");
  }
  spec.validate();
  return spec;
}

namespace {

/// A manifest axis value may be a single number, an axis-expression
/// string, or an array of numbers/strings; normalise to the textual axis
/// language and reuse apply_axis.
std::string manifest_value_to_axis_text(const util::Json& value,
                                        const std::string& key) {
  if (value.is_string()) return value.as_string();
  if (value.is_number()) return util::json_number(value.as_number());
  if (value.is_array()) {
    std::string out;
    const char* sep = "";
    for (const util::Json& item : value.items()) {
      out += sep;
      if (item.is_string()) {
        out += item.as_string();
      } else if (item.is_number()) {
        out += util::json_number(item.as_number());
      } else {
        throw std::invalid_argument("manifest axis '" + key +
                                    "': array items must be numbers or "
                                    "strings");
      }
      sep = ",";
    }
    return out;
  }
  throw std::invalid_argument("manifest axis '" + key +
                              "': expected a number, string, or array");
}

/// Seeds and round budgets are full uint64s: manifests accept them as
/// numbers OR strings, and the echo emits a string whenever the number
/// form would lose precision (util::json_uint / json_as_uint carry the
/// same convention into the checkpoint journal).
std::uint64_t manifest_uint(const util::Json& value, const std::string& key) {
  return util::json_as_uint(value, "manifest '" + key + "'");
}

util::Json uint_json(std::uint64_t v) { return util::json_uint(v); }

}  // namespace

SweepSpec SweepSpec::from_json(const util::Json& manifest) {
  if (!manifest.is_object()) {
    throw std::invalid_argument("sweep manifest must be a JSON object");
  }
  SweepSpec spec;
  for (const auto& [key, value] : manifest.members()) {
    if (key == "version") {
      if (value.as_number() != 1.0) {
        throw std::invalid_argument("sweep manifest version " +
                                    util::json_number(value.as_number()) +
                                    " unsupported (this build reads 1)");
      }
    } else if (key == "lanes") {
      spec.lanes = static_cast<int>(manifest_uint(value, key));
    } else if (key == "reps") {
      spec.reps = static_cast<int>(manifest_uint(value, key));
    } else if (key == "seed") {
      spec.seed = manifest_uint(value, key);
    } else if (key == "sources") {
      spec.sources = static_cast<int>(manifest_uint(value, key));
    } else if (key == "pl-deg") {
      if (value.is_string()) {
        spec.pl_deg = util::parse_double(value.as_string(), "manifest 'pl-deg'");
      } else {
        spec.pl_deg = value.as_number();
      }
    } else if (key == "max-rounds") {
      spec.max_rounds = manifest_uint(value, key);
    } else {
      apply_axis(spec, key, manifest_value_to_axis_text(value, key));
    }
  }
  spec.validate();
  return spec;
}

SweepSpec SweepSpec::from_manifest_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    throw std::invalid_argument("cannot read sweep manifest '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << f.rdbuf();
  try {
    return from_json(util::Json::parse(buffer.str()));
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("manifest '" + path + "': " + e.what());
  }
}

util::Json SweepSpec::to_json() const {
  util::Json j = util::Json::object();
  j.set("version", 1);
  util::Json fam = util::Json::array();
  for (const auto& f : families) fam.push_back(f);
  j.set("family", std::move(fam));
  util::Json ns = util::Json::array();
  for (const auto v : n) ns.push_back(std::uint64_t{v});
  j.set("n", std::move(ns));
  if (p_is_degree) {
    // Keep the deg: marker so the round trip preserves the semantics.
    std::string axis = "deg:";
    const char* sep = "";
    for (const double v : p) {
      axis += sep;
      axis += util::json_number(v);
      sep = ",";
    }
    j.set("p", axis);
  } else {
    util::Json ps = util::Json::array();
    for (const double v : p) ps.push_back(v);
    j.set("p", std::move(ps));
  }
  util::Json rs = util::Json::array();
  for (const double v : radius) rs.push_back(v);
  j.set("radius", std::move(rs));
  util::Json ms = util::Json::array();
  for (const auto v : ba_m) ms.push_back(std::uint64_t{v});
  j.set("m", std::move(ms));
  util::Json exps = util::Json::array();
  for (const double v : exponent) exps.push_back(v);
  j.set("exp", std::move(exps));
  j.set("pl-deg", pl_deg);
  util::Json ds = util::Json::array();
  for (const auto v : d) ds.push_back(std::uint64_t{v});
  j.set("d", std::move(ds));
  util::Json protos = util::Json::array();
  for (const auto& pr : protocols) protos.push_back(pr);
  j.set("protocol", std::move(protos));
  util::Json meds = util::Json::array();
  for (const auto m : mediums) meds.push_back(radio::to_string(m));
  j.set("medium", std::move(meds));
  util::Json recs = util::Json::array();
  for (const auto r : recoveries) recs.push_back(radio::to_string(r));
  j.set("recovery", std::move(recs));
  j.set("lanes", lanes);
  j.set("reps", reps);
  j.set("seed", uint_json(seed));
  j.set("sources", sources);
  j.set("max-rounds", uint_json(max_rounds));
  return j;
}

void SweepSpec::validate() const {
  const auto check_nonempty = [](bool empty, const char* axis) {
    if (empty) {
      throw std::invalid_argument(std::string("sweep axis '") + axis +
                                  "' is empty");
    }
  };
  check_nonempty(families.empty(), "family");
  check_nonempty(n.empty(), "n");
  check_nonempty(protocols.empty(), "protocol");
  check_nonempty(mediums.empty(), "medium");
  check_nonempty(recoveries.empty(), "recovery");
  for (const auto& f : families) {
    if (!known_name(std::span<const std::string_view>(kFamilyNames), f)) {
      throw std::invalid_argument(
          "unknown graph family '" + f + "'; known families: " +
          joined(std::span<const std::string_view>(kFamilyNames)));
    }
  }
  for (const auto& pr : protocols) {
    if (!known_name(std::span<const std::string_view>(kProtocolNames), pr)) {
      throw std::invalid_argument(
          "unknown protocol '" + pr + "'; known protocols: " +
          joined(std::span<const std::string_view>(kProtocolNames)));
    }
  }
  const bool needs_p =
      std::find(families.begin(), families.end(), "gnp") != families.end();
  const bool needs_radius =
      std::find(families.begin(), families.end(), "rgg") != families.end();
  const bool needs_d = std::find(families.begin(), families.end(),
                                 "cliquepath") != families.end();
  const bool needs_m =
      std::find(families.begin(), families.end(), "ba") != families.end();
  const bool needs_exp =
      std::find(families.begin(), families.end(), "powerlaw") !=
      families.end();
  if (needs_p) {
    check_nonempty(p.empty(), "p");
    for (const double v : p) {
      if (v <= 0.0 || (!p_is_degree && v > 1.0)) {
        throw std::invalid_argument(
            "axis p: value " + util::json_number(v) +
            (p_is_degree ? " must be a positive degree"
                         : " must be a probability in (0, 1]"));
      }
    }
  }
  if (needs_radius) {
    check_nonempty(radius.empty(), "radius");
    for (const double v : radius) {
      if (v <= 0.0) {
        throw std::invalid_argument("axis radius: value " +
                                    util::json_number(v) +
                                    " must be positive");
      }
    }
  }
  if (needs_m) {
    check_nonempty(ba_m.empty(), "m");
    for (const auto v : ba_m) {
      if (v < 1) {
        throw std::invalid_argument("axis m: attachment count must be >= 1");
      }
    }
  }
  if (needs_exp) {
    check_nonempty(exponent.empty(), "exp");
    for (const double v : exponent) {
      if (v <= 2.0) {
        throw std::invalid_argument(
            "axis exp: power-law exponent must be > 2 (finite mean degree), "
            "got " +
            util::json_number(v));
      }
    }
    if (pl_deg <= 0.0) {
      throw std::invalid_argument("pl-deg must be positive, got " +
                                  util::json_number(pl_deg));
    }
  }
  if (needs_d) {
    check_nonempty(d.empty(), "d");
    for (const auto v : d) {
      if (v < 3) {
        throw std::invalid_argument(
            "axis d: diameter target must be >= 3, got " + std::to_string(v));
      }
    }
  }
  if (lanes < 1 || lanes > radio::kMaxLanes) {
    throw std::invalid_argument("lanes must be in [1, " +
                                std::to_string(radio::kMaxLanes) + "], got " +
                                std::to_string(lanes));
  }
  if (reps < 1) {
    throw std::invalid_argument("reps must be >= 1, got " +
                                std::to_string(reps));
  }
  if (sources < 1) {
    throw std::invalid_argument("sources must be >= 1, got " +
                                std::to_string(sources));
  }
}

}  // namespace radiocast::exp
