// Replication runner: the one sweep x replication loop shared by every
// scenario.
//
// Scenarios describe a sweep point as `reps` independent replications,
// each fully determined by (base_seed, rep index); the runner executes
// them across a thread pool and merges results *in replication order*, so
// the output is byte-identical for any --threads=N. The only contract a
// replication body must honour is: no state shared between replications
// (derive a fresh Rng from the seed argument).
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <vector>

#include "util/stats.hpp"

namespace radiocast::sim {

class Runner {
 public:
  /// threads <= 1 means run everything inline on the caller's thread.
  explicit Runner(int threads = 1);

  int threads() const { return threads_; }

  /// Deterministic parallel map: invokes fn(i) for i in [0, count), using
  /// up to threads() workers, and returns the results ordered by index.
  /// Results are independent of the thread count provided fn(i) depends
  /// only on i. The first exception thrown by any fn(i) is rethrown.
  template <typename Fn>
  auto map(int count, Fn&& fn) -> std::vector<decltype(fn(0))> {
    std::vector<decltype(fn(0))> results(
        static_cast<std::size_t>(count < 0 ? 0 : count));
    run_indexed(count, [&](int i) { results[static_cast<std::size_t>(i)] =
                                        fn(i); });
    return results;
  }

  /// Replication sweep: runs `reps` replications of `body`, each handed
  /// its index and the derived seed mix_seed(base_seed, rep). The body
  /// returns one double per metric (NaN = metric absent this replication,
  /// e.g. a failed run); the vectors are merged into per-metric
  /// OnlineStats in replication order.
  std::vector<util::OnlineStats> replicate(
      int reps, std::uint64_t base_seed, std::size_t metric_count,
      const std::function<std::vector<double>(int rep, std::uint64_t seed)>&
          body);

  /// Lane-batched replication sweep: groups `reps` into batches of up to
  /// `lane_width` consecutive replications and invokes `batch_body(first,
  /// seeds)` once per batch, where seeds[l] is the derived seed of
  /// replication first + l (the same mix_seed(base_seed, rep) stream
  /// replicate() uses, so a scenario can switch between the two without
  /// changing per-replication seeds). Batches are distributed over the
  /// thread pool; the body returns one metric vector per lane and the
  /// merge is in replication order, preserving the byte-determinism
  /// contract. Built for radio::BatchNetwork (lane_width up to 64), but
  /// any lane_width >= 1 is accepted.
  std::vector<util::OnlineStats> replicate_batched(
      int reps, std::uint64_t base_seed, std::size_t metric_count,
      int lane_width,
      const std::function<std::vector<std::vector<double>>(
          int first_rep, const std::vector<std::uint64_t>& seeds)>&
          batch_body);

 private:
  /// Runs task(i) for i in [0, count) over the worker pool; rethrows the
  /// first captured exception after all workers join.
  void run_indexed(int count, const std::function<void(int)>& task);

  int threads_;
};

}  // namespace radiocast::sim
