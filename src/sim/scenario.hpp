// Scenario registry for the unified experiment driver.
//
// Every experiment ("scenario") registers itself by name with a one-line
// description and a run function; the `radiocast_bench` binary dispatches
// `radiocast_bench <scenario> [flags]` through the registry, so adding a
// workload is a ~50-line registration in bench/ instead of a new binary.
// Registration happens at static-initialisation time via the
// RADIOCAST_SCENARIO macro; scenarios are compiled directly into the
// driver executable so no linker tricks are needed to keep them alive.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "radio/medium.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace radiocast::sim {

class Runner;

/// One replication's machine-readable result, recorded by scenarios that
/// opt into the JSON perf trajectory (bench_out/<scenario>.json).
struct ReplicationRecord {
  std::string label;  // sweep point / backend the replication belongs to
  int rep = 0;
  double rounds = 0.0;
  double deliveries = 0.0;
  double wall_ms = 0.0;
  std::string medium;  // radio backend that resolved it ("" = unspecified)
  int lanes = 1;       // replication lanes it shared its traversals with
  /// Sender-recovery strategy the medium ran with ("" = not applicable,
  /// e.g. mask-only workloads or backends without the knob).
  std::string recovery;
  /// Per-phase medium time attributed to this replication (its share of
  /// the batch's radio::PhaseTimers), so the JSON trajectory shows where
  /// a round goes: kernel traversal vs output scan vs sender recovery.
  double phase_traverse_ns = 0.0;
  double phase_output_ns = 0.0;
  double phase_recover_ns = 0.0;
};

/// Everything a scenario needs at run time: parsed flags, the shared
/// replication runner, and the output sinks (stdout stream + CSV dir).
/// Tests substitute their own stream / disable CSV by leaving out_dir
/// empty.
struct ScenarioContext {
  ScenarioContext(const util::Cli& cli, Runner& runner);

  const util::Cli& cli;
  Runner& runner;
  /// Destination for tables and notes (defaults to std::cout).
  std::ostream* out;
  /// Directory for CSV dumps; empty disables CSV emission.
  std::string out_dir = "bench_out";

  bool quick() const;
  /// --seed, or `fallback` when absent (scenarios keep their historical
  /// per-experiment default seeds).
  std::uint64_t seed(std::uint64_t fallback) const;
  /// --reps, or the quick/full default.
  int reps(int quick_default, int full_default) const;

  /// --medium flag: which radio backend medium-aware scenarios should
  /// drive (scalar when absent). Throws on an unknown name, listing the
  /// valid backends.
  radio::MediumKind medium_kind() const;

  /// --medium-threads flag: worker count for the sharded backend. Absent
  /// = 0 (backend default: RADIOCAST_SHARD_THREADS env, else hardware);
  /// when given it must be a positive integer — non-numeric or zero
  /// values throw instead of silently degrading to the default.
  int medium_threads() const;

  /// --recovery flag: sender-recovery strategy for batch media (auto when
  /// absent). Throws on an unknown name, listing the valid strategies.
  radio::RecoveryStrategy recovery_strategy() const;

  /// Prints the table with a title banner and, when out_dir is non-empty,
  /// writes `<out_dir>/<csv_name>.csv` through the exp::Report sink.
  void emit(const util::Table& table, const std::string& title,
            const std::string& csv_name);
  /// Writes `<out_dir>/<name>.json` through the exp::Report sink (schema
  /// "version" field prepended; no-op returning "" when out_dir is
  /// empty). For scenarios that build structured documents beyond the
  /// per-replication records. Taken by value — move it in.
  std::string emit_json(const std::string& name, util::Json payload);
  /// Prints a free-form note line after a table.
  void note(const std::string& line);

  /// Thread-safe: replication bodies running on the Runner pool call this
  /// to add a row to the scenario's JSON dump.
  void record(ReplicationRecord r);

  /// Writes `<out_dir>/<scenario>.json` with the driver-measured total
  /// wall time and all recorded replications (sorted by label then rep, so
  /// the file is deterministic for any --threads). Called by the driver
  /// after the scenario returns; no-op returning "" when out_dir is empty
  /// or when the scenario already emitted a document under that name via
  /// emit_json (sweep owns bench_out/sweep.json; the driver must not
  /// clobber it).
  std::string write_json(const std::string& scenario_name,
                         double wall_ms_total);

 private:
  std::mutex record_mutex_;
  std::vector<ReplicationRecord> records_;
  /// JSON names already written through emit_json this run.
  std::vector<std::string> emitted_json_;
};

using ScenarioFn = std::function<void(ScenarioContext&)>;

struct Scenario {
  std::string name;
  std::string description;
  ScenarioFn run;
};

/// Name -> scenario map. Instantiable for tests; the driver and the
/// RADIOCAST_SCENARIO macro use the process-wide global() instance.
class ScenarioRegistry {
 public:
  static ScenarioRegistry& global();

  /// Throws std::invalid_argument on empty/duplicate names or missing run
  /// function.
  void add(Scenario scenario);
  /// nullptr when absent.
  const Scenario* find(const std::string& name) const;
  /// All scenarios, name-sorted.
  std::vector<const Scenario*> list() const;
  std::size_t size() const { return scenarios_.size(); }

  /// Dispatches to the named scenario; throws std::invalid_argument with
  /// the list of known names on an unknown scenario.
  void run(const std::string& name, ScenarioContext& ctx) const;

 private:
  std::map<std::string, Scenario> scenarios_;
};

/// Registers into ScenarioRegistry::global() at static-init time.
struct ScenarioRegistration {
  ScenarioRegistration(std::string name, std::string description,
                       ScenarioFn fn);
};

}  // namespace radiocast::sim

/// Defines and registers a scenario run function:
///   RADIOCAST_SCENARIO(my_exp, "my-exp", "what it measures") {
///     ctx.emit(...);
///   }
#define RADIOCAST_SCENARIO(ident, name, description)                        \
  static void radiocast_scenario_##ident(::radiocast::sim::ScenarioContext& \
                                             ctx);                          \
  static const ::radiocast::sim::ScenarioRegistration                       \
      radiocast_scenario_reg_##ident{name, description,                     \
                                     &radiocast_scenario_##ident};          \
  static void radiocast_scenario_##ident(                                   \
      [[maybe_unused]] ::radiocast::sim::ScenarioContext& ctx)
