// Named benchmark instances: a graph plus its measured diameter, built
// from the generator families the experiments sweep over. Absorbed from
// the old per-binary bench/common.hpp so scenarios and tests share one
// set of builders.
#pragma once

#include <cstdint>
#include <string>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace radiocast::sim {

/// A graph together with its measured diameter.
struct Instance {
  graph::Graph g;
  std::uint32_t diameter = 0;
  std::string name;
};

/// n-node, roughly-D-diameter instance from the path-of-cliques family —
/// the "D polynomial in n" regime the paper targets.
Instance make_cliquepath_instance(graph::NodeId n, graph::NodeId d_target);

Instance make_grid_instance(graph::NodeId rows, graph::NodeId cols);

Instance make_rgg_instance(graph::NodeId n, double radius, util::Rng& rng);

// Seed-based builders on the graph::pargen facade: the instance is a pure
// function of its arguments (byte-identical for any gen_threads value), so
// sweep grid points can rebuild or cache instances freely. gen_threads
// follows pargen::resolve_threads (0 = env/auto).

Instance make_gnp_instance(graph::NodeId n, double p, std::uint64_t seed,
                           int gen_threads = 0);

Instance make_rgg_instance(graph::NodeId n, double radius, std::uint64_t seed,
                           int gen_threads = 0);

/// Barabasi-Albert with `attach` edges per arriving node.
Instance make_ba_instance(graph::NodeId n, std::uint32_t attach,
                          std::uint64_t seed, int gen_threads = 0);

/// Chung-Lu power-law with the given exponent (> 2) and target average
/// degree.
Instance make_powerlaw_instance(graph::NodeId n, double exponent,
                                double avg_deg, std::uint64_t seed,
                                int gen_threads = 0);

}  // namespace radiocast::sim
