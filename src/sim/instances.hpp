// Named benchmark instances: a graph plus its measured diameter, built
// from the generator families the experiments sweep over. Absorbed from
// the old per-binary bench/common.hpp so scenarios and tests share one
// set of builders.
#pragma once

#include <cstdint>
#include <string>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace radiocast::sim {

/// A graph together with its measured diameter.
struct Instance {
  graph::Graph g;
  std::uint32_t diameter = 0;
  std::string name;
};

/// n-node, roughly-D-diameter instance from the path-of-cliques family —
/// the "D polynomial in n" regime the paper targets.
Instance make_cliquepath_instance(graph::NodeId n, graph::NodeId d_target);

Instance make_grid_instance(graph::NodeId rows, graph::NodeId cols);

Instance make_rgg_instance(graph::NodeId n, double radius, util::Rng& rng);

}  // namespace radiocast::sim
