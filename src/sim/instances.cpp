#include "sim/instances.hpp"

#include "graph/pargen.hpp"
#include "util/json.hpp"

namespace radiocast::sim {

Instance make_cliquepath_instance(graph::NodeId n, graph::NodeId d_target) {
  Instance inst;
  inst.g = graph::diameter_controlled(n, d_target);
  inst.diameter = graph::diameter_double_sweep(inst.g);
  inst.name = "cliquepath(n=" + std::to_string(n) +
              ",D=" + std::to_string(inst.diameter) + ")";
  return inst;
}

Instance make_grid_instance(graph::NodeId rows, graph::NodeId cols) {
  Instance inst;
  inst.g = graph::grid(rows, cols);
  inst.diameter = rows + cols - 2;
  inst.name = "grid(" + std::to_string(rows) + "x" + std::to_string(cols) + ")";
  return inst;
}

Instance make_rgg_instance(graph::NodeId n, double radius, util::Rng& rng) {
  Instance inst;
  inst.g = graph::random_geometric(n, radius, rng);
  inst.diameter = graph::diameter_double_sweep(inst.g);
  inst.name = "rgg(n=" + std::to_string(n) +
              ",D=" + std::to_string(inst.diameter) + ")";
  return inst;
}

namespace {

Instance finish(graph::Graph g, std::string name) {
  Instance inst;
  inst.g = std::move(g);
  inst.diameter = graph::diameter_double_sweep(inst.g);
  inst.name = std::move(name);
  return inst;
}

}  // namespace

Instance make_gnp_instance(graph::NodeId n, double p, std::uint64_t seed,
                           int gen_threads) {
  return finish(
      graph::pargen::gnp(n, p, seed, {.threads = gen_threads}),
      "gnp(n=" + std::to_string(n) + ",p=" + util::json_number(p) + ")");
}

Instance make_rgg_instance(graph::NodeId n, double radius, std::uint64_t seed,
                           int gen_threads) {
  return finish(graph::pargen::random_geometric(n, radius, seed,
                                                {.threads = gen_threads}),
                "rgg(n=" + std::to_string(n) +
                    ",r=" + util::json_number(radius) + ")");
}

Instance make_ba_instance(graph::NodeId n, std::uint32_t attach,
                          std::uint64_t seed, int gen_threads) {
  return finish(graph::pargen::barabasi_albert(n, attach, seed,
                                               {.threads = gen_threads}),
                "ba(n=" + std::to_string(n) +
                    ",m=" + std::to_string(attach) + ")");
}

Instance make_powerlaw_instance(graph::NodeId n, double exponent,
                                double avg_deg, std::uint64_t seed,
                                int gen_threads) {
  return finish(graph::pargen::chung_lu(n, exponent, avg_deg, seed,
                                        {.threads = gen_threads}),
                "powerlaw(n=" + std::to_string(n) +
                    ",exp=" + util::json_number(exponent) +
                    ",deg=" + util::json_number(avg_deg) + ")");
}

}  // namespace radiocast::sim
