#include "sim/instances.hpp"

namespace radiocast::sim {

Instance make_cliquepath_instance(graph::NodeId n, graph::NodeId d_target) {
  Instance inst;
  inst.g = graph::diameter_controlled(n, d_target);
  inst.diameter = graph::diameter_double_sweep(inst.g);
  inst.name = "cliquepath(n=" + std::to_string(n) +
              ",D=" + std::to_string(inst.diameter) + ")";
  return inst;
}

Instance make_grid_instance(graph::NodeId rows, graph::NodeId cols) {
  Instance inst;
  inst.g = graph::grid(rows, cols);
  inst.diameter = rows + cols - 2;
  inst.name = "grid(" + std::to_string(rows) + "x" + std::to_string(cols) + ")";
  return inst;
}

Instance make_rgg_instance(graph::NodeId n, double radius, util::Rng& rng) {
  Instance inst;
  inst.g = graph::random_geometric(n, radius, rng);
  inst.diameter = graph::diameter_double_sweep(inst.g);
  inst.name = "rgg(n=" + std::to_string(n) +
              ",D=" + std::to_string(inst.diameter) + ")";
  return inst;
}

}  // namespace radiocast::sim
