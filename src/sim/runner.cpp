#include "sim/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/rng.hpp"

namespace radiocast::sim {

Runner::Runner(int threads) : threads_(threads < 1 ? 1 : threads) {}

void Runner::run_indexed(int count, const std::function<void(int)>& task) {
  if (count <= 0) return;
  const int workers = std::min(threads_, count);
  if (workers <= 1) {
    for (int i = 0; i < count; ++i) task(i);
    return;
  }
  std::atomic<int> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        task(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<util::OnlineStats> Runner::replicate(
    int reps, std::uint64_t base_seed, std::size_t metric_count,
    const std::function<std::vector<double>(int rep, std::uint64_t seed)>&
        body) {
  const auto per_rep = map(reps, [&](int rep) {
    std::vector<double> metrics =
        body(rep, util::mix_seed(base_seed, static_cast<std::uint64_t>(rep)));
    if (metrics.size() != metric_count) {
      throw std::logic_error(
          "Runner::replicate: body returned " +
          std::to_string(metrics.size()) + " metrics, expected " +
          std::to_string(metric_count));
    }
    return metrics;
  });
  std::vector<util::OnlineStats> stats(metric_count);
  for (const auto& metrics : per_rep) {
    for (std::size_t m = 0; m < metric_count; ++m) {
      if (!std::isnan(metrics[m])) stats[m].add(metrics[m]);
    }
  }
  return stats;
}

}  // namespace radiocast::sim
