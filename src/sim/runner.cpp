#include "sim/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace radiocast::sim {

Runner::Runner(int threads) : threads_(threads < 1 ? 1 : threads) {}

std::vector<util::OnlineStats> Runner::replicate_batched(
    int reps, std::uint64_t base_seed, std::size_t metric_count,
    int lane_width,
    const std::function<std::vector<std::vector<double>>(
        int first_rep, const std::vector<std::uint64_t>& seeds)>&
        batch_body) {
  if (lane_width < 1) {
    throw std::invalid_argument("Runner::replicate_batched: lane_width < 1");
  }
  const int batches = reps <= 0 ? 0 : (reps + lane_width - 1) / lane_width;
  const auto per_batch = map(batches, [&](int b) {
    const int first = b * lane_width;
    const int count = std::min(lane_width, reps - first);
    std::vector<std::uint64_t> seeds(static_cast<std::size_t>(count));
    for (int l = 0; l < count; ++l) {
      seeds[static_cast<std::size_t>(l)] =
          util::mix_seed(base_seed, static_cast<std::uint64_t>(first + l));
    }
    auto lanes = batch_body(first, seeds);
    if (lanes.size() != static_cast<std::size_t>(count)) {
      throw std::logic_error("Runner::replicate_batched: body returned " +
                             std::to_string(lanes.size()) +
                             " lanes, expected " + std::to_string(count));
    }
    for (const auto& metrics : lanes) {
      if (metrics.size() != metric_count) {
        throw std::logic_error(
            "Runner::replicate_batched: lane returned " +
            std::to_string(metrics.size()) + " metrics, expected " +
            std::to_string(metric_count));
      }
    }
    return lanes;
  });
  std::vector<util::OnlineStats> stats(metric_count);
  for (const auto& lanes : per_batch) {
    for (const auto& metrics : lanes) {
      for (std::size_t m = 0; m < metric_count; ++m) {
        if (!std::isnan(metrics[m])) stats[m].add(metrics[m]);
      }
    }
  }
  return stats;
}

void Runner::run_indexed(int count, const std::function<void(int)>& task) {
  if (count <= 0) return;
  const int workers = std::min(threads_, count);
  if (workers <= 1) {
    for (int i = 0; i < count; ++i) task(i);
    return;
  }
  std::atomic<int> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&](int w) {
    if (obs::tracing_enabled()) {
      obs::set_thread_name(("runner-worker-" + std::to_string(w)).c_str());
    }
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      const obs::TraceSpan span("runner.task", "index",
                                static_cast<std::uint64_t>(i));
      try {
        task(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker, w);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<util::OnlineStats> Runner::replicate(
    int reps, std::uint64_t base_seed, std::size_t metric_count,
    const std::function<std::vector<double>(int rep, std::uint64_t seed)>&
        body) {
  const auto per_rep = map(reps, [&](int rep) {
    std::vector<double> metrics =
        body(rep, util::mix_seed(base_seed, static_cast<std::uint64_t>(rep)));
    if (metrics.size() != metric_count) {
      throw std::logic_error(
          "Runner::replicate: body returned " +
          std::to_string(metrics.size()) + " metrics, expected " +
          std::to_string(metric_count));
    }
    return metrics;
  });
  std::vector<util::OnlineStats> stats(metric_count);
  for (const auto& metrics : per_rep) {
    for (std::size_t m = 0; m < metric_count; ++m) {
      if (!std::isnan(metrics[m])) stats[m].add(metrics[m]);
    }
  }
  return stats;
}

}  // namespace radiocast::sim
