#include "sim/scenario.hpp"

#include <filesystem>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/table.hpp"

namespace radiocast::sim {

ScenarioContext::ScenarioContext(const util::Cli& cli_in, Runner& runner_in)
    : cli(cli_in), runner(runner_in), out(&std::cout) {}

bool ScenarioContext::quick() const { return cli.get_bool("quick", false); }

std::uint64_t ScenarioContext::seed(std::uint64_t fallback) const {
  return cli.get_uint("seed", fallback);
}

int ScenarioContext::reps(int quick_default, int full_default) const {
  return static_cast<int>(cli.get_uint(
      "reps",
      static_cast<std::uint64_t>(quick() ? quick_default : full_default)));
}

void ScenarioContext::emit(const util::Table& table, const std::string& title,
                           const std::string& csv_name) {
  table.print(*out, title);
  if (out_dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    *out << "[csv] cannot create " << out_dir << ": " << ec.message() << "\n";
    return;
  }
  const std::string path =
      (std::filesystem::path(out_dir) / (csv_name + ".csv")).string();
  if (table.write_csv(path)) {
    *out << "[csv] " << path << "\n";
  }
}

void ScenarioContext::note(const std::string& line) { *out << line << "\n"; }

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  if (scenario.name.empty()) {
    throw std::invalid_argument("scenario name must be non-empty");
  }
  if (!scenario.run) {
    throw std::invalid_argument("scenario '" + scenario.name +
                                "' has no run function");
  }
  std::string name = scenario.name;
  const auto [it, inserted] = scenarios_.emplace(name, std::move(scenario));
  (void)it;
  if (!inserted) {
    throw std::invalid_argument("duplicate scenario name '" + name + "'");
  }
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

std::vector<const Scenario*> ScenarioRegistry::list() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, scenario] : scenarios_) out.push_back(&scenario);
  return out;
}

void ScenarioRegistry::run(const std::string& name,
                           ScenarioContext& ctx) const {
  const Scenario* s = find(name);
  if (s == nullptr) {
    std::ostringstream msg;
    msg << "unknown scenario '" << name << "'; known scenarios:";
    for (const auto& [known, scenario] : scenarios_) {
      (void)scenario;
      msg << " " << known;
    }
    throw std::invalid_argument(msg.str());
  }
  s->run(ctx);
}

ScenarioRegistration::ScenarioRegistration(std::string name,
                                           std::string description,
                                           ScenarioFn fn) {
  ScenarioRegistry::global().add(
      Scenario{std::move(name), std::move(description), std::move(fn)});
}

}  // namespace radiocast::sim
