#include "sim/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/table.hpp"

namespace radiocast::sim {

ScenarioContext::ScenarioContext(const util::Cli& cli_in, Runner& runner_in)
    : cli(cli_in), runner(runner_in), out(&std::cout) {}

bool ScenarioContext::quick() const { return cli.get_bool("quick", false); }

std::uint64_t ScenarioContext::seed(std::uint64_t fallback) const {
  return cli.get_uint("seed", fallback);
}

int ScenarioContext::reps(int quick_default, int full_default) const {
  return static_cast<int>(cli.get_uint(
      "reps",
      static_cast<std::uint64_t>(quick() ? quick_default : full_default)));
}

void ScenarioContext::emit(const util::Table& table, const std::string& title,
                           const std::string& csv_name) {
  table.print(*out, title);
  if (out_dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    *out << "[csv] cannot create " << out_dir << ": " << ec.message() << "\n";
    return;
  }
  const std::string path =
      (std::filesystem::path(out_dir) / (csv_name + ".csv")).string();
  if (table.write_csv(path)) {
    *out << "[csv] " << path << "\n";
  }
}

void ScenarioContext::note(const std::string& line) { *out << line << "\n"; }

radio::MediumKind ScenarioContext::medium_kind() const {
  return radio::parse_medium_kind(cli.get_choice(
      "medium", "scalar",
      std::span<const std::string_view>(radio::kMediumNames)));
}

int ScenarioContext::medium_threads() const {
  return static_cast<int>(cli.get_int("medium-threads", 0));
}

radio::RecoveryStrategy ScenarioContext::recovery_strategy() const {
  return radio::parse_recovery_strategy(cli.get_choice(
      "recovery", "auto",
      std::span<const std::string_view>(radio::kRecoveryNames)));
}

void ScenarioContext::record(ReplicationRecord r) {
  std::lock_guard<std::mutex> lock(record_mutex_);
  records_.push_back(std::move(r));
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string json_number(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  const std::string s = os.str();
  // JSON has no NaN/Inf; absent metrics become null.
  if (s.find("nan") != std::string::npos ||
      s.find("inf") != std::string::npos) {
    return "null";
  }
  return s;
}

}  // namespace

std::string ScenarioContext::write_json(const std::string& scenario_name,
                                        double wall_ms_total) {
  if (out_dir.empty()) return "";
  std::vector<ReplicationRecord> records;
  {
    std::lock_guard<std::mutex> lock(record_mutex_);
    records = records_;
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const ReplicationRecord& a, const ReplicationRecord& b) {
                     return a.label != b.label ? a.label < b.label
                                               : a.rep < b.rep;
                   });
  std::string body = "{\n  \"scenario\": ";
  append_json_string(body, scenario_name);
  body += ",\n  \"wall_ms_total\": " + json_number(wall_ms_total);
  body += ",\n  \"replications\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    body += i == 0 ? "\n" : ",\n";
    body += "    {\"label\": ";
    append_json_string(body, r.label);
    body += ", \"rep\": " + std::to_string(r.rep);
    body += ", \"rounds\": " + json_number(r.rounds);
    body += ", \"deliveries\": " + json_number(r.deliveries);
    body += ", \"wall_ms\": " + json_number(r.wall_ms);
    body += ", \"medium\": ";
    append_json_string(body, r.medium);
    body += ", \"lanes\": " + std::to_string(r.lanes);
    body += ", \"recovery\": ";
    append_json_string(body, r.recovery);
    body += ", \"phase_traverse_ns\": " + json_number(r.phase_traverse_ns);
    body += ", \"phase_output_ns\": " + json_number(r.phase_output_ns);
    body += ", \"phase_recover_ns\": " + json_number(r.phase_recover_ns);
    body += "}";
  }
  body += records.empty() ? "]\n}\n" : "\n  ]\n}\n";

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    *out << "[json] cannot create " << out_dir << ": " << ec.message()
         << "\n";
    return "";
  }
  const std::string path =
      (std::filesystem::path(out_dir) / (scenario_name + ".json")).string();
  std::ofstream f(path);
  if (!f) {
    *out << "[json] cannot write " << path << "\n";
    return "";
  }
  f << body;
  return path;
}

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  if (scenario.name.empty()) {
    throw std::invalid_argument("scenario name must be non-empty");
  }
  if (!scenario.run) {
    throw std::invalid_argument("scenario '" + scenario.name +
                                "' has no run function");
  }
  std::string name = scenario.name;
  const auto [it, inserted] = scenarios_.emplace(name, std::move(scenario));
  (void)it;
  if (!inserted) {
    throw std::invalid_argument("duplicate scenario name '" + name + "'");
  }
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

std::vector<const Scenario*> ScenarioRegistry::list() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, scenario] : scenarios_) out.push_back(&scenario);
  return out;
}

void ScenarioRegistry::run(const std::string& name,
                           ScenarioContext& ctx) const {
  const Scenario* s = find(name);
  if (s == nullptr) {
    std::ostringstream msg;
    msg << "unknown scenario '" << name << "'; known scenarios:";
    for (const auto& [known, scenario] : scenarios_) {
      (void)scenario;
      msg << " " << known;
    }
    throw std::invalid_argument(msg.str());
  }
  s->run(ctx);
}

ScenarioRegistration::ScenarioRegistration(std::string name,
                                           std::string description,
                                           ScenarioFn fn) {
  ScenarioRegistry::global().add(
      Scenario{std::move(name), std::move(description), std::move(fn)});
}

}  // namespace radiocast::sim
