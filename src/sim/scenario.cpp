#include "sim/scenario.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "exp/report.hpp"
#include "obs/metrics.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"

namespace radiocast::sim {

ScenarioContext::ScenarioContext(const util::Cli& cli_in, Runner& runner_in)
    : cli(cli_in), runner(runner_in), out(&std::cout) {}

bool ScenarioContext::quick() const { return cli.get_bool("quick", false); }

std::uint64_t ScenarioContext::seed(std::uint64_t fallback) const {
  return cli.get_uint("seed", fallback);
}

int ScenarioContext::reps(int quick_default, int full_default) const {
  return static_cast<int>(cli.get_uint(
      "reps",
      static_cast<std::uint64_t>(quick() ? quick_default : full_default)));
}

void ScenarioContext::emit(const util::Table& table, const std::string& title,
                           const std::string& csv_name) {
  table.print(*out, title);
  exp::Report(out_dir).write_csv(csv_name, table, *out);
}

std::string ScenarioContext::emit_json(const std::string& name,
                                       util::Json payload) {
  emitted_json_.push_back(name);
  return exp::Report(out_dir).write_json(name, std::move(payload), *out);
}

void ScenarioContext::note(const std::string& line) { *out << line << "\n"; }

radio::MediumKind ScenarioContext::medium_kind() const {
  return radio::parse_medium_kind(cli.get_choice(
      "medium", "scalar",
      std::span<const std::string_view>(radio::kMediumNames)));
}

int ScenarioContext::medium_threads() const {
  if (!cli.has("medium-threads")) return 0;
  return util::parse_positive_int(cli.get_string("medium-threads", ""),
                                  "flag --medium-threads");
}

int ScenarioContext::gen_threads() const {
  if (!cli.has("gen-threads")) return 0;
  return util::parse_positive_int(cli.get_string("gen-threads", ""),
                                  "flag --gen-threads");
}

radio::RecoveryStrategy ScenarioContext::recovery_strategy() const {
  return radio::parse_recovery_strategy(cli.get_choice(
      "recovery", "auto",
      std::span<const std::string_view>(radio::kRecoveryNames)));
}

void ScenarioContext::record(ReplicationRecord r) {
  std::lock_guard<std::mutex> lock(record_mutex_);
  records_.push_back(std::move(r));
}

std::string ScenarioContext::write_json(const std::string& scenario_name,
                                        double wall_ms_total) {
  if (std::find(emitted_json_.begin(), emitted_json_.end(), scenario_name) !=
      emitted_json_.end()) {
    return "";  // the scenario owns this file (e.g. sweep.json)
  }
  std::vector<ReplicationRecord> records;
  {
    std::lock_guard<std::mutex> lock(record_mutex_);
    records = records_;
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const ReplicationRecord& a, const ReplicationRecord& b) {
                     return a.label != b.label ? a.label < b.label
                                               : a.rep < b.rep;
                   });
  util::Json payload = util::Json::object();
  payload.set("scenario", scenario_name);
  payload.set("wall_ms_total", wall_ms_total);
  util::Json replications = util::Json::array();
  for (const ReplicationRecord& r : records) {
    util::Json row = util::Json::object();
    row.set("label", r.label);
    row.set("rep", r.rep);
    row.set("rounds", r.rounds);
    row.set("deliveries", r.deliveries);
    row.set("wall_ms", r.wall_ms);
    row.set("medium", r.medium);
    row.set("lanes", r.lanes);
    row.set("recovery", r.recovery);
    row.set("phase_traverse_ns", r.phase_traverse_ns);
    row.set("phase_output_ns", r.phase_output_ns);
    row.set("phase_recover_ns", r.phase_recover_ns);
    row.set("active_listeners", r.active_listeners);
    replications.push_back(std::move(row));
  }
  payload.set("replications", std::move(replications));
  // Timing-ish metadata like everything else in this file; gate it behind
  // the same flag the sweep reports use so --timing=off stays byte-stable.
  if (cli.get_bool("timing", true)) {
    payload.set("metrics", obs::Metrics::global().snapshot_json());
  }
  // Not via emit_json: this IS the driver's fallback write, and it must
  // not mark the name as scenario-owned.
  return exp::Report(out_dir).write_json(scenario_name, std::move(payload),
                                         *out);
}

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  if (scenario.name.empty()) {
    throw std::invalid_argument("scenario name must be non-empty");
  }
  if (!scenario.run) {
    throw std::invalid_argument("scenario '" + scenario.name +
                                "' has no run function");
  }
  std::string name = scenario.name;
  const auto [it, inserted] = scenarios_.emplace(name, std::move(scenario));
  (void)it;
  if (!inserted) {
    throw std::invalid_argument("duplicate scenario name '" + name + "'");
  }
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

std::vector<const Scenario*> ScenarioRegistry::list() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, scenario] : scenarios_) out.push_back(&scenario);
  return out;
}

void ScenarioRegistry::run(const std::string& name,
                           ScenarioContext& ctx) const {
  const Scenario* s = find(name);
  if (s == nullptr) {
    std::ostringstream msg;
    msg << "unknown scenario '" << name << "'; known scenarios:";
    for (const auto& [known, scenario] : scenarios_) {
      (void)scenario;
      msg << " " << known;
    }
    throw std::invalid_argument(msg.str());
  }
  s->run(ctx);
}

ScenarioRegistration::ScenarioRegistration(std::string name,
                                           std::string description,
                                           ScenarioFn fn) {
  ScenarioRegistry::global().add(
      Scenario{std::move(name), std::move(description), std::move(fn)});
}

}  // namespace radiocast::sim
