// Process-wide registry of named counters, gauges, and log2-bucketed
// histograms.
//
// obs::Metrics is the aggregate complement of the trace: where the trace
// answers "when did this span run on which thread", metrics answer "how
// were round latencies / task walls / steal counts distributed over the
// whole run". Instruments register lazily by name and live for the process
// (references returned by counter()/gauge()/histogram() are stable
// forever; reset() zeroes values but never invalidates them), so hot sites
// hoist a `static Counter&` and pay a few relaxed atomic ops per event.
//
// snapshot_json() renders the registry name-sorted for byte-stable output
// given equal values. The snapshot lands in sweep/bench JSON as part of
// report schema v3 — gated under --timing, because the values are
// wall-clock- and scheduling-dependent, and --timing=off output must stay
// byte-identical across machines, thread counts, and resumes.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace radiocast::obs {

/// Monotonic event count. add() is a relaxed fetch_add — safe from any
/// thread, never a synchronisation point.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (queue depth, active worker count, ...).
class Gauge {
 public:
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Log2-bucketed distribution of non-negative integer samples (latencies
/// in ns, steal counts, reps). Bucket b counts samples v with
/// bit_width(v) == b: bucket 0 holds v = 0, bucket b >= 1 holds
/// [2^(b-1), 2^b). Fixed 65 buckets cover the whole uint64 range, so
/// record() is two relaxed fetch_adds and a bit_width — no allocation, no
/// locking, any thread.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void record(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Bucket index a value lands in (0 for 0, else 1 + floor(log2 v)).
  static int bucket_of(std::uint64_t v) {
    int b = 0;
    while (v != 0) {
      v >>= 1;
      ++b;
    }
    return b;
  }
  /// Inclusive upper bound of bucket b (0, 1, 3, 7, ...).
  static std::uint64_t bucket_max(int b) {
    return b == 0 ? 0
           : b >= 64 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << b) - 1;
  }

  std::uint64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const;
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Upper bound of the bucket where the cumulative count first reaches
  /// `q` (0 < q <= 1) of the total — a log2-resolution percentile. 0 when
  /// empty.
  std::uint64_t percentile(double q) const;
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// The registry. Lookup by name is mutex-guarded (registration is rare and
/// call sites hoist the reference); the instruments themselves are
/// lock-free.
class Metrics {
 public:
  static Metrics& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Name-sorted snapshot:
  ///   {"counters": {name: value, ...},
  ///    "gauges": {name: value, ...},
  ///    "histograms": {name: {"count", "sum", "mean", "p50", "p90",
  ///                          "p99", "max", "buckets": [[bucket_max,
  ///                          count], ...nonzero only]}, ...}}
  /// Instruments that never recorded anything are skipped, so a snapshot
  /// only speaks for code paths that actually ran.
  util::Json snapshot_json() const;

  /// Zeroes every registered instrument (references stay valid).
  void reset();

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

 private:
  Metrics() = default;
};

}  // namespace radiocast::obs
