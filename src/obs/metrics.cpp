#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace radiocast::obs {

namespace {

// The registry's backing store. std::map keeps names sorted (snapshot
// order) and node-based storage keeps instrument addresses stable across
// registrations; unique_ptr double-insulates against any future container
// change. Guarded by g_metrics_mu — hot sites hoist the returned reference
// so this lock is off every fast path.
std::mutex g_metrics_mu;
std::map<std::string, std::unique_ptr<Counter>, std::less<>> g_counters;
std::map<std::string, std::unique_ptr<Gauge>, std::less<>> g_gauges;
std::map<std::string, std::unique_ptr<Histogram>, std::less<>> g_histograms;

template <typename T>
T& lookup(std::map<std::string, std::unique_ptr<T>, std::less<>>& reg,
          std::string_view name) {
  std::lock_guard<std::mutex> lock(g_metrics_mu);
  auto it = reg.find(name);
  if (it == reg.end()) {
    it = reg.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return *it->second;
}

util::Json histogram_json(const Histogram& h) {
  const std::uint64_t count = h.count();
  util::Json j = util::Json::object();
  j.set("count", util::json_uint(count));
  j.set("sum", util::json_uint(h.sum()));
  j.set("mean", count == 0 ? 0.0
                           : static_cast<double>(h.sum()) /
                                 static_cast<double>(count));
  j.set("p50", util::json_uint(h.percentile(0.50)));
  j.set("p90", util::json_uint(h.percentile(0.90)));
  j.set("p99", util::json_uint(h.percentile(0.99)));
  util::Json buckets = util::Json::array();
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    if (h.bucket(b) == 0) continue;
    util::Json pair = util::Json::array();
    pair.push_back(util::json_uint(Histogram::bucket_max(b)));
    pair.push_back(util::json_uint(h.bucket(b)));
    buckets.push_back(std::move(pair));
  }
  j.set("buckets", std::move(buckets));
  return j;
}

}  // namespace

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::percentile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket(b);
    if (seen >= std::max<std::uint64_t>(target, 1)) return bucket_max(b);
  }
  return bucket_max(kBuckets - 1);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Metrics& Metrics::global() {
  static Metrics metrics;
  return metrics;
}

Counter& Metrics::counter(std::string_view name) {
  return lookup(g_counters, name);
}

Gauge& Metrics::gauge(std::string_view name) { return lookup(g_gauges, name); }

Histogram& Metrics::histogram(std::string_view name) {
  return lookup(g_histograms, name);
}

util::Json Metrics::snapshot_json() const {
  std::lock_guard<std::mutex> lock(g_metrics_mu);
  util::Json j = util::Json::object();
  util::Json counters = util::Json::object();
  for (const auto& [name, c] : g_counters) {
    if (c->value() == 0) continue;
    counters.set(name, util::json_uint(c->value()));
  }
  util::Json gauges = util::Json::object();
  for (const auto& [name, g] : g_gauges) {
    if (g->value() == 0) continue;
    gauges.set(name, util::json_uint(g->value()));
  }
  util::Json histograms = util::Json::object();
  for (const auto& [name, h] : g_histograms) {
    if (h->count() == 0) continue;
    histograms.set(name, histogram_json(*h));
  }
  j.set("counters", std::move(counters));
  j.set("gauges", std::move(gauges));
  j.set("histograms", std::move(histograms));
  return j;
}

void Metrics::reset() {
  std::lock_guard<std::mutex> lock(g_metrics_mu);
  for (auto& [name, c] : g_counters) c->reset();
  for (auto& [name, g] : g_gauges) g->reset();
  for (auto& [name, h] : g_histograms) h->reset();
}

}  // namespace radiocast::obs
