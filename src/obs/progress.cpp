#include "obs/progress.hpp"

#include <chrono>
#include <cstdio>
#include <string>

#ifdef _WIN32
#include <io.h>
#define RADIOCAST_ISATTY _isatty
#define RADIOCAST_FILENO _fileno
#else
#include <unistd.h>
#define RADIOCAST_ISATTY isatty
#define RADIOCAST_FILENO fileno
#endif

namespace radiocast::obs {

namespace {

constexpr std::uint64_t kRedrawIntervalNs = 200'000'000;  // 5 Hz

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string format_eta(double seconds) {
  if (seconds < 0 || seconds > 86400.0 * 30) return "?";
  const auto s = static_cast<std::uint64_t>(seconds + 0.5);
  if (s < 120) return std::to_string(s) + "s";
  return std::to_string(s / 60) + "m" + std::to_string(s % 60) + "s";
}

}  // namespace

ProgressMeter::ProgressMeter(std::size_t total_tasks,
                             std::uint64_t total_reps)
    : total_tasks_(total_tasks),
      total_reps_(total_reps),
      start_ns_(steady_ns()) {}

ProgressMeter::~ProgressMeter() { finish(); }

void ProgressMeter::add_replayed(std::size_t tasks, std::uint64_t reps) {
  std::lock_guard<std::mutex> lock(mu_);
  done_tasks_ += tasks;
  done_reps_ += reps;
  if (tasks > 0) draw(false);
}

void ProgressMeter::task_done(std::uint64_t reps, bool cache_hit,
                              bool quarantined) {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  ++done_tasks_;
  done_reps_ += reps;
  live_reps_ += reps;
  if (cache_hit) ++cache_hits_;
  if (quarantined) ++quarantined_;
  const std::uint64_t now = steady_ns();
  if (now - last_draw_ns_ >= kRedrawIntervalNs ||
      done_tasks_ == total_tasks_) {
    draw(false);
  }
}

void ProgressMeter::finish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  draw(true);
}

bool ProgressMeter::stderr_is_tty() {
  return RADIOCAST_ISATTY(RADIOCAST_FILENO(stderr)) != 0;
}

void ProgressMeter::draw(bool final_line) {
  last_draw_ns_ = steady_ns();
  const double elapsed_s =
      static_cast<double>(last_draw_ns_ - start_ns_) * 1e-9;
  const double rate =
      elapsed_s > 1e-9 ? static_cast<double>(live_reps_) / elapsed_s : 0.0;
  std::string eta = "?";
  if (rate > 1e-9 && total_reps_ >= done_reps_) {
    eta = format_eta(static_cast<double>(total_reps_ - done_reps_) / rate);
  }
  char line[160];
  std::snprintf(line, sizeof line,
                "[sweep] %zu/%zu tasks | %llu/%llu reps | %.0f reps/s | "
                "eta %s | cache %llu | quarantined %llu",
                done_tasks_, total_tasks_,
                static_cast<unsigned long long>(done_reps_),
                static_cast<unsigned long long>(total_reps_), rate,
                eta.c_str(), static_cast<unsigned long long>(cache_hits_),
                static_cast<unsigned long long>(quarantined_));
  // Pad over any longer previous line, rewrite in place; the final draw
  // moves to a fresh line so later stderr output starts clean.
  std::fprintf(stderr, "\r%-110s%s", line, final_line ? "\n" : "");
  std::fflush(stderr);
}

}  // namespace radiocast::obs
