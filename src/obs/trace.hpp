// Chrome-trace instrumentation with a ~free disabled path.
//
// obs::TraceSession records scoped spans, instant events, and counter
// samples into per-thread ring buffers and flushes them as Chrome
// trace-event JSON ("X"/"i"/"C" phases plus thread-name metadata), loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. The design contract:
//
//   * One global relaxed-atomic enabled flag gates every record call, so
//     instrumentation compiled into the hot kernels costs a load + branch
//     when no --trace is active (pinned by the overhead bar in
//     tests/test_obs.cpp).
//   * Event names and argument keys are `const char*` STATIC strings —
//     recording never allocates, never formats. Each thread owns a
//     fixed-capacity ring; when it wraps, the oldest events are dropped
//     and counted (dropped()), never blocking the instrumented thread.
//   * Tracing never touches the reports: with --timing=off the CSV/JSON
//     output of a traced run is byte-identical to an untraced one (pinned
//     by test + CI). The trace file is the only side channel.
//
// Distinct from radio::Trace (per-round protocol activity statistics);
// this layer is about wall-clock attribution across threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace radiocast::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
/// Nanoseconds since the active session started (steady clock).
std::uint64_t session_now_ns();
void emit_complete(const char* name, std::uint64_t begin_ns,
                   const char* arg1, std::uint64_t v1, const char* arg2,
                   std::uint64_t v2);
void emit_event(char phase, const char* name, std::uint64_t value);
}  // namespace detail

/// The single branch every instrumentation site pays when tracing is off.
inline bool tracing_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Names the calling thread's lane in the trace (e.g. "sharded-worker-3").
/// Cheap no-op when tracing is off; safe to call repeatedly (last name
/// wins for the thread's current buffer).
void set_thread_name(const char* name);

/// Point event on the calling thread's timeline (Chrome phase "i").
inline void trace_instant(const char* name) {
  if (tracing_enabled()) detail::emit_event('i', name, 0);
}

/// Counter sample (Chrome phase "C"): a stepped per-name value track.
inline void trace_counter(const char* name, std::uint64_t value) {
  if (tracing_enabled()) detail::emit_event('C', name, value);
}

/// RAII scoped span: records one complete ("X") event covering the scope's
/// lifetime, with up to two integer arguments. Arguments are evaluated by
/// the caller either way — keep them to values already at hand.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* arg1 = nullptr,
                     std::uint64_t v1 = 0, const char* arg2 = nullptr,
                     std::uint64_t v2 = 0)
      : name_(name),
        arg1_(arg1),
        arg2_(arg2),
        v1_(v1),
        v2_(v2),
        begin_ns_(tracing_enabled() ? detail::session_now_ns() : kOff) {}
  ~TraceSpan() {
    if (begin_ns_ != kOff) {
      detail::emit_complete(name_, begin_ns_, arg1_, v1_, arg2_, v2_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  static constexpr std::uint64_t kOff = ~std::uint64_t{0};
  const char* name_;
  const char* arg1_;
  const char* arg2_;
  std::uint64_t v1_;
  std::uint64_t v2_;
  std::uint64_t begin_ns_;
};

/// Process-wide trace recorder. One session may be active at a time;
/// start() arms the global flag, stop_and_flush() disarms it, drains every
/// thread's ring, and writes the Chrome trace JSON file.
class TraceSession {
 public:
  static TraceSession& global();

  /// Arms tracing; events land in per-thread rings until stop_and_flush.
  /// `events_per_thread` overrides the default ring capacity (0 keeps the
  /// default; tests shrink it to exercise the drop path). Throws
  /// std::runtime_error if a session is already active.
  void start(std::string path, std::size_t events_per_thread = 0);

  bool active() const { return tracing_enabled(); }

  /// Disarms tracing, writes the trace file, and releases the buffers.
  /// Returns the path written, or "" when no session was active. Throws
  /// std::runtime_error when the file cannot be written.
  std::string stop_and_flush();

  /// Events lost to ring wrap-around in the session being recorded (or the
  /// last one flushed). Also emitted into the trace as a final
  /// "trace.dropped_events" counter when non-zero.
  std::uint64_t dropped() const;

 private:
  TraceSession() = default;
};

}  // namespace radiocast::obs
