#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "util/json.hpp"

namespace radiocast::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

using detail::g_trace_enabled;

struct Event {
  const char* name;
  const char* arg1;
  const char* arg2;
  std::uint64_t ts_ns;
  std::uint64_t dur_ns;
  std::uint64_t v1;
  std::uint64_t v2;
  char phase;  // 'X' complete, 'i' instant, 'C' counter
};

// One thread's ring. The owning thread is the only writer; the flusher
// reads under the same mutex, so the lock is uncontended for the entire
// session (one locked ring write per event — the cost is dominated by the
// clock read that preceded it). Kept alive by shared_ptr from both the
// registry and the thread-local slot, so worker threads may exit (or be
// detached watchdogs) before the flush without dangling.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<Event> ring;
  std::uint64_t written = 0;  // total records; ring holds the last min(.,cap)
  std::uint32_t tid = 0;
  std::string name;
};

constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 16;

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Session state. g_session_gen bumps on every start() so thread-local
// buffer slots from a previous session re-register instead of writing into
// flushed rings.
std::mutex g_registry_mu;
std::vector<std::shared_ptr<ThreadBuffer>> g_buffers;
std::string g_path;
std::size_t g_ring_capacity = kDefaultRingCapacity;
std::uint64_t g_flushed_dropped = 0;
std::atomic<std::uint64_t> g_session_gen{0};
std::atomic<std::uint64_t> g_t0_ns{0};

struct TlsSlot {
  std::shared_ptr<ThreadBuffer> buf;
  std::uint64_t gen = 0;
};
thread_local TlsSlot t_slot;

// Returns the calling thread's buffer for the current session, registering
// one on first touch. nullptr when tracing raced off.
ThreadBuffer* tls_buffer() {
  const std::uint64_t gen = g_session_gen.load(std::memory_order_acquire);
  if (t_slot.buf && t_slot.gen == gen) return t_slot.buf.get();
  std::lock_guard<std::mutex> lock(g_registry_mu);
  if (!g_trace_enabled.load(std::memory_order_relaxed)) return nullptr;
  auto buf = std::make_shared<ThreadBuffer>();
  buf->tid = static_cast<std::uint32_t>(g_buffers.size() + 1);
  buf->name = "thread-" + std::to_string(buf->tid);
  buf->ring.resize(g_ring_capacity);
  g_buffers.push_back(buf);
  t_slot.buf = std::move(buf);
  t_slot.gen = gen;
  return t_slot.buf.get();
}

void record(const Event& ev) {
  ThreadBuffer* tb = tls_buffer();
  if (tb == nullptr) return;
  std::lock_guard<std::mutex> lock(tb->mu);
  tb->ring[tb->written % tb->ring.size()] = ev;
  ++tb->written;
}

void append_ts_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

void append_args(std::string& out, const Event& ev) {
  if (ev.phase == 'C') {
    out += ",\"args\":{\"value\":";
    out += std::to_string(ev.v1);
    out += '}';
    return;
  }
  if (ev.arg1 == nullptr && ev.arg2 == nullptr) return;
  out += ",\"args\":{";
  if (ev.arg1 != nullptr) {
    util::json_append_escaped(out, ev.arg1);
    out += ':';
    out += std::to_string(ev.v1);
  }
  if (ev.arg2 != nullptr) {
    if (ev.arg1 != nullptr) out += ',';
    util::json_append_escaped(out, ev.arg2);
    out += ':';
    out += std::to_string(ev.v2);
  }
  out += '}';
}

void append_event_json(std::string& out, std::uint32_t tid, const Event& ev) {
  out += "{\"ph\":\"";
  out += ev.phase;
  out += "\",\"pid\":1,\"tid\":";
  out += std::to_string(tid);
  out += ",\"ts\":";
  append_ts_us(out, ev.ts_ns);
  if (ev.phase == 'X') {
    out += ",\"dur\":";
    append_ts_us(out, ev.dur_ns);
  }
  out += ",\"name\":";
  util::json_append_escaped(out, ev.name);
  if (ev.phase == 'i') out += ",\"s\":\"t\"";
  append_args(out, ev);
  out += "}";
}

void append_metadata(std::string& out, std::uint32_t tid, const char* kind,
                     const std::string& name) {
  out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
  out += std::to_string(tid);
  out += ",\"name\":\"";
  out += kind;
  out += "\",\"args\":{\"name\":";
  util::json_append_escaped(out, name);
  out += "}}";
}

}  // namespace

namespace detail {

std::uint64_t session_now_ns() {
  return steady_ns() - g_t0_ns.load(std::memory_order_relaxed);
}

void emit_complete(const char* name, std::uint64_t begin_ns, const char* arg1,
                   std::uint64_t v1, const char* arg2, std::uint64_t v2) {
  if (!g_trace_enabled.load(std::memory_order_relaxed)) return;
  const std::uint64_t end_ns = session_now_ns();
  record(Event{name, arg1, arg2, begin_ns,
               end_ns >= begin_ns ? end_ns - begin_ns : 0, v1, v2, 'X'});
}

void emit_event(char phase, const char* name, std::uint64_t value) {
  record(Event{name, nullptr, nullptr, session_now_ns(), 0, value, 0, phase});
}

}  // namespace detail

void set_thread_name(const char* name) {
  if (!tracing_enabled()) return;
  ThreadBuffer* tb = tls_buffer();
  if (tb == nullptr) return;
  std::lock_guard<std::mutex> lock(tb->mu);
  tb->name = name;
}

TraceSession& TraceSession::global() {
  static TraceSession session;
  return session;
}

void TraceSession::start(std::string path, std::size_t events_per_thread) {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  if (g_trace_enabled.load(std::memory_order_relaxed)) {
    throw std::runtime_error("trace: a session is already active");
  }
  g_path = std::move(path);
  g_ring_capacity =
      events_per_thread == 0 ? kDefaultRingCapacity : events_per_thread;
  g_buffers.clear();
  g_flushed_dropped = 0;
  g_t0_ns.store(steady_ns(), std::memory_order_relaxed);
  g_session_gen.fetch_add(1, std::memory_order_release);
  g_trace_enabled.store(true, std::memory_order_seq_cst);
}

std::string TraceSession::stop_and_flush() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    if (!g_trace_enabled.load(std::memory_order_relaxed)) return "";
    g_trace_enabled.store(false, std::memory_order_seq_cst);
    buffers.swap(g_buffers);
    path.swap(g_path);
  }

  std::string out;
  out.reserve(std::size_t{1} << 16);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  append_metadata(out, 0, "process_name", "radiocast");
  std::uint64_t dropped = 0;
  for (const auto& tb : buffers) {
    // In-flight spans from threads that started before the disable may
    // still be emitting; the per-buffer mutex serialises against them.
    std::lock_guard<std::mutex> lock(tb->mu);
    out += ",\n";
    append_metadata(out, tb->tid, "thread_name", tb->name);
    const std::uint64_t cap = tb->ring.size();
    const std::uint64_t kept = std::min<std::uint64_t>(tb->written, cap);
    dropped += tb->written - kept;
    for (std::uint64_t i = tb->written - kept; i < tb->written; ++i) {
      out += ",\n";
      append_event_json(out, tb->tid, tb->ring[i % cap]);
    }
  }
  if (dropped > 0) {
    out += ",\n";
    append_event_json(out, 0,
                      Event{"trace.dropped_events", nullptr, nullptr,
                            detail::session_now_ns(), 0, dropped, 0, 'C'});
  }
  out += "\n]}\n";
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    g_flushed_dropped = dropped;
  }

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(out.data(), static_cast<std::streamsize>(out.size()));
  file.flush();
  if (!file.good()) {
    throw std::runtime_error("trace: failed to write " + path);
  }
  return path;
}

std::uint64_t TraceSession::dropped() const {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  std::uint64_t dropped = g_flushed_dropped;
  for (const auto& tb : g_buffers) {
    std::lock_guard<std::mutex> buf_lock(tb->mu);
    const std::uint64_t cap = tb->ring.size();
    if (tb->written > cap) dropped += tb->written - cap;
  }
  return dropped;
}

}  // namespace radiocast::obs
