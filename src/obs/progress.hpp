// Rate-limited single-line live progress/ETA heartbeat on stderr.
//
// The sweep Planner ticks a ProgressMeter after every durable task; the
// meter redraws one `\r`-rewritten stderr line at most ~5x per second with
// tasks done/total, replication throughput, an ETA, cache hits, and the
// quarantine count. stderr only — stdout stays the machine-readable
// channel, and reports are untouched. Construction is the opt-in: the
// sweep scenario only builds one when the heartbeat should run (stderr is
// a TTY and --progress is not "off", or --progress=on forces it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>

namespace radiocast::obs {

class ProgressMeter {
 public:
  /// `total_tasks` / `total_reps`: the whole sweep, including tasks a
  /// resume will replay from the journal.
  ProgressMeter(std::size_t total_tasks, std::uint64_t total_reps);
  ~ProgressMeter();
  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// Tasks satisfied by journal replay before live execution starts.
  /// Counted as done but excluded from the live reps/s rate.
  void add_replayed(std::size_t tasks, std::uint64_t reps);

  /// One task finished live. Thread-safe (Planner workers call it
  /// concurrently); redraws only when the rate limit allows.
  void task_done(std::uint64_t reps, bool cache_hit, bool quarantined);

  /// Draws the final state and moves to a fresh line. Idempotent; the
  /// destructor calls it as a backstop.
  void finish();

  /// Whether stderr is an interactive terminal (the --progress=auto test).
  static bool stderr_is_tty();

 private:
  void draw(bool final_line);

  std::mutex mu_;
  std::size_t total_tasks_;
  std::uint64_t total_reps_;
  std::size_t done_tasks_ = 0;
  std::uint64_t done_reps_ = 0;
  std::uint64_t live_reps_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t quarantined_ = 0;
  std::uint64_t start_ns_;
  std::uint64_t last_draw_ns_ = 0;
  bool finished_ = false;
};

}  // namespace radiocast::obs
