// Two-level clustering hierarchy of Algorithm 1 (steps 1, 3, 5):
//   * one coarse clustering with beta = D^-0.5 (shared randomness domains),
//   * for each integer j in [0.01 log D, 0.1 log D], `reps` = D^0.2 fine
//     clusterings with beta = 2^-j, computed independently INSIDE each
//     coarse cluster (fine clusters never cross coarse boundaries),
//   * per-coarse-cluster pseudo-random sequences over (j, rep) choices
//     (step 5's D^0.99-length sequence; realised lazily and deterministically
//     from the run seed + coarse centre id + position).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/exponential_shifts.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace radiocast::cluster {

struct HierarchyParams {
  /// Coarse clustering rate: beta = D^coarse_beta_exponent.
  double coarse_beta_exponent = -0.5;
  /// Fine j range as fractions of log2(D): j in [j_min_frac*log2 D,
  /// j_max_frac*log2 D] (paper: 0.01 and 0.1).
  double j_min_frac = 0.01;
  double j_max_frac = 0.1;
  /// Number of fine clusterings per j: ceil(D^fine_reps_exponent).
  double fine_reps_exponent = 0.2;
  /// Hard cap on total fine clusterings (memory guard for scaled runs).
  std::uint32_t max_total_fine = 256;
};

/// The realised hierarchy.
class Hierarchy {
 public:
  Hierarchy(const graph::Graph& g, std::uint32_t diameter,
            const HierarchyParams& params, util::Rng& rng);

  const Partition& coarse() const { return coarse_; }

  /// Fine j values actually used (ascending; at least one).
  const std::vector<std::uint32_t>& j_values() const { return j_values_; }
  std::uint32_t reps_per_j() const { return reps_; }

  /// Fine partition for (j index, repetition).
  const Partition& fine(std::size_t j_index, std::uint32_t rep) const {
    return fine_[j_index * reps_ + rep];
  }
  std::size_t fine_count() const { return fine_.size(); }

  /// Algorithm 1 step 5: the coarse cluster of `coarse_center` uses, at
  /// sequence position `pos`, the fine clustering returned here. The choice
  /// is uniform over (j, rep) pairs and deterministic in
  /// (seed, coarse_center, pos) — this models the centre drawing the random
  /// sequence once and distributing it within its cluster.
  struct FineChoice {
    std::size_t j_index;
    std::uint32_t rep;
    std::uint32_t j;       // the actual exponent (beta = 2^-j)
    double beta;
  };
  FineChoice sequence_choice(NodeId coarse_center, std::uint64_t pos) const;

  /// Ablation hook: when false, sequence_choice always picks j = j_max,
  /// rep = pos % reps (round-robin) — "fixed beta" mode.
  void set_randomize(bool randomize) { randomize_ = randomize; }

  /// Total rounds the distributed precomputation of the whole hierarchy
  /// would cost (Lemma 2.1 clusterings + Lemma 2.3 schedules + sequence
  /// dissemination; see DESIGN.md fidelity note 1).
  std::uint64_t charged_precompute_rounds() const { return charged_rounds_; }

 private:
  Partition coarse_;
  std::vector<std::uint32_t> j_values_;
  std::uint32_t reps_ = 1;
  std::vector<Partition> fine_;
  std::uint64_t seq_seed_ = 0;
  std::uint64_t charged_rounds_ = 0;
  bool randomize_ = true;
};

}  // namespace radiocast::cluster
