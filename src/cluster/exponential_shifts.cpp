#include "cluster/exponential_shifts.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "util/math.hpp"

namespace radiocast::cluster {

Partition::DenseIds Partition::dense_ids() const {
  DenseIds d;
  const NodeId n = node_count();
  d.id_of_node.assign(n, graph::kInvalidNode);
  std::vector<NodeId> center_to_dense(n, graph::kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId c = center[v];
    if (c == graph::kInvalidNode) continue;
    if (center_to_dense[c] == graph::kInvalidNode) {
      center_to_dense[c] = static_cast<NodeId>(d.center_of_id.size());
      d.center_of_id.push_back(c);
    }
    d.id_of_node[v] = center_to_dense[c];
  }
  return d;
}

namespace {

struct QueueEntry {
  double key;  // delta_c - dist(c, v) of the candidate assignment
  NodeId node;
  NodeId center;
  NodeId via;  // neighbour we'd adopt as tree parent
  std::uint32_t hops;
  bool operator<(const QueueEntry& o) const {
    if (key != o.key) return key < o.key;
    return center > o.center;  // ties: smaller centre id wins (max-heap)
  }
};

/// Region-aware neighbourhood predicate.
struct Scope {
  const std::vector<std::uint8_t>* mask = nullptr;
  const std::vector<NodeId>* region = nullptr;
  bool in_scope(NodeId v) const {
    if (mask != nullptr && !(*mask)[v]) return false;
    if (region != nullptr && (*region)[v] == graph::kInvalidNode) return false;
    return true;
  }
  bool linked(NodeId u, NodeId v) const {
    if (!in_scope(u) || !in_scope(v)) return false;
    if (region != nullptr && (*region)[u] != (*region)[v]) return false;
    return true;
  }
};

Partition run_partition(const graph::Graph& g, double beta, const Scope& scope,
                        util::Rng& rng) {
  if (beta <= 0.0) {
    throw std::invalid_argument("partition: beta must be positive");
  }
  const NodeId n = g.node_count();
  Partition p;
  p.beta = beta;
  p.center.assign(n, graph::kInvalidNode);
  p.dist_to_center.assign(n, 0);
  p.parent.assign(n, graph::kInvalidNode);
  p.delta.assign(n, 0.0);

  // Each node starts as a candidate centre for itself with key delta_v.
  // A max-Dijkstra over keys delta_c - dist(c, v) assigns every node the
  // centre maximising the shifted distance (exactly the MPX rule). Shifts
  // are continuous so ties have probability zero; we still break ties
  // deterministically (smaller centre id) for bit-reproducible runs.
  std::priority_queue<QueueEntry> pq;
  std::vector<double> best_key(n, -std::numeric_limits<double>::infinity());
  for (NodeId v = 0; v < n; ++v) {
    if (!scope.in_scope(v)) continue;
    p.delta[v] = rng.exponential(beta);
    best_key[v] = p.delta[v];
    pq.push({p.delta[v], v, v, v, 0});
  }
  while (!pq.empty()) {
    const QueueEntry e = pq.top();
    pq.pop();
    if (p.center[e.node] != graph::kInvalidNode) continue;  // settled
    if (e.key < best_key[e.node]) continue;                 // stale
    p.center[e.node] = e.center;
    p.dist_to_center[e.node] = e.hops;
    p.parent[e.node] = e.via;
    for (NodeId w : g.neighbors(e.node)) {
      if (!scope.linked(e.node, w)) continue;
      if (p.center[w] != graph::kInvalidNode) continue;
      const double key = e.key - 1.0;
      if (key > best_key[w]) {
        best_key[w] = key;
        pq.push({key, w, e.center, e.node, e.hops + 1});
      }
    }
  }
  return p;
}

}  // namespace

Partition partition(const graph::Graph& g, double beta, util::Rng& rng) {
  return run_partition(g, beta, Scope{}, rng);
}

Partition partition_masked(const graph::Graph& g, double beta,
                           const std::vector<std::uint8_t>& mask,
                           util::Rng& rng) {
  if (mask.size() != g.node_count()) {
    throw std::invalid_argument("partition_masked: mask size mismatch");
  }
  Scope s;
  s.mask = &mask;
  return run_partition(g, beta, s, rng);
}

Partition partition_regions(const graph::Graph& g, double beta,
                            const std::vector<NodeId>& region,
                            util::Rng& rng) {
  if (region.size() != g.node_count()) {
    throw std::invalid_argument("partition_regions: region size mismatch");
  }
  Scope s;
  s.region = &region;
  return run_partition(g, beta, s, rng);
}

std::uint64_t precompute_rounds(std::uint32_t n, double beta) {
  const double logn = util::safe_log2(static_cast<double>(n));
  return static_cast<std::uint64_t>(std::ceil(logn * logn * logn / beta));
}

}  // namespace radiocast::cluster
