#include "cluster/partition_stats.hpp"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "graph/algorithms.hpp"

namespace radiocast::cluster {

namespace {

/// BFS inside one cluster from `start`; visits only nodes with the same
/// centre. Returns (visited order, distances keyed by node).
void cluster_bfs(const graph::Graph& g, const Partition& p, NodeId start,
                 std::vector<std::uint32_t>& dist_scratch,
                 std::vector<NodeId>& order_out) {
  const NodeId center = p.center[start];
  order_out.clear();
  std::vector<NodeId> frontier{start};
  dist_scratch[start] = 0;
  order_out.push_back(start);
  std::uint32_t level = 0;
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (NodeId u : frontier) {
      for (NodeId w : g.neighbors(u)) {
        if (p.center[w] != center) continue;
        if (dist_scratch[w] != graph::kUnreachable) continue;
        dist_scratch[w] = level;
        order_out.push_back(w);
        next.push_back(w);
      }
    }
    frontier.swap(next);
  }
}

}  // namespace

std::vector<ClusterInfo> cluster_infos(const graph::Graph& g,
                                       const Partition& p) {
  const auto dense = p.dense_ids();
  std::vector<ClusterInfo> infos(dense.center_of_id.size());
  const NodeId n = g.node_count();
  for (std::size_t c = 0; c < infos.size(); ++c) {
    infos[c].center = dense.center_of_id[c];
  }
  for (NodeId v = 0; v < n; ++v) {
    const NodeId id = dense.id_of_node[v];
    if (id == graph::kInvalidNode) continue;
    auto& info = infos[id];
    ++info.size;
    info.strong_radius = std::max(info.strong_radius, p.dist_to_center[v]);
  }
  // Strong diameter lower bound by double sweep within each cluster.
  std::vector<std::uint32_t> dist(n, graph::kUnreachable);
  std::vector<NodeId> order;
  for (auto& info : infos) {
    cluster_bfs(g, p, info.center, dist, order);
    NodeId far1 = info.center;
    for (NodeId v : order) {
      if (dist[v] > dist[far1]) far1 = v;
    }
    for (NodeId v : order) dist[v] = graph::kUnreachable;
    cluster_bfs(g, p, far1, dist, order);
    std::uint32_t best = 0;
    for (NodeId v : order) best = std::max(best, dist[v]);
    info.strong_diameter_lb = best;
    for (NodeId v : order) dist[v] = graph::kUnreachable;
  }
  return infos;
}

double cut_fraction(const graph::Graph& g, const Partition& p) {
  std::uint64_t in_scope = 0, cut = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (!p.in_scope(u)) continue;
    for (NodeId v : g.neighbors(u)) {
      if (v < u || !p.in_scope(v)) continue;
      ++in_scope;
      if (p.center[u] != p.center[v]) ++cut;
    }
  }
  return in_scope == 0 ? 0.0
                       : static_cast<double>(cut) / static_cast<double>(in_scope);
}

std::uint64_t cut_edge_count(const graph::Graph& g, const Partition& p) {
  std::uint64_t cut = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (!p.in_scope(u)) continue;
    for (NodeId v : g.neighbors(u)) {
      if (v < u || !p.in_scope(v)) continue;
      if (p.center[u] != p.center[v]) ++cut;
    }
  }
  return cut;
}

bool clusters_connected(const graph::Graph& g, const Partition& p) {
  const NodeId n = g.node_count();
  std::vector<std::uint32_t> dist(n, graph::kUnreachable);
  std::vector<std::uint8_t> reached(n, 0);
  std::vector<NodeId> order;
  for (NodeId v = 0; v < n; ++v) {
    if (!p.in_scope(v) || !p.is_center(v)) continue;
    cluster_bfs(g, p, v, dist, order);
    for (NodeId u : order) {
      reached[u] = 1;
      dist[u] = graph::kUnreachable;
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (p.in_scope(v) && !reached[v]) return false;
  }
  return true;
}

bool centers_consistent(const Partition& p) {
  for (NodeId v = 0; v < p.node_count(); ++v) {
    const NodeId c = p.center[v];
    if (c == graph::kInvalidNode) continue;
    if (p.center[c] != c) return false;
    if (p.is_center(v) && p.dist_to_center[v] != 0) return false;
  }
  return true;
}

bool distances_consistent(const graph::Graph& g, const Partition& p) {
  const NodeId n = g.node_count();
  std::vector<std::uint32_t> dist(n, graph::kUnreachable);
  std::vector<NodeId> order;
  for (NodeId c = 0; c < n; ++c) {
    if (!p.in_scope(c) || !p.is_center(c)) continue;
    cluster_bfs(g, p, c, dist, order);
    for (NodeId v : order) {
      if (dist[v] != p.dist_to_center[v]) return false;
    }
    for (NodeId v : order) dist[v] = graph::kUnreachable;
  }
  return true;
}

std::vector<std::uint8_t> boundary_nodes(const graph::Graph& g,
                                         const Partition& p) {
  const NodeId n = g.node_count();
  std::vector<std::uint8_t> risky(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    if (!p.in_scope(u)) continue;
    for (NodeId v : g.neighbors(u)) {
      if (p.in_scope(v) && p.center[v] != p.center[u]) {
        risky[u] = 1;
        break;
      }
    }
  }
  return risky;
}

std::uint32_t clusters_within(const graph::Graph& g, const Partition& p,
                              NodeId v, std::uint32_t d) {
  if (!p.in_scope(v)) return 0;
  std::unordered_set<NodeId> centers;
  std::vector<std::uint32_t> dist(g.node_count(), graph::kUnreachable);
  std::vector<NodeId> frontier{v}, next;
  dist[v] = 0;
  centers.insert(p.center[v]);
  std::uint32_t level = 0;
  while (!frontier.empty() && level < d) {
    ++level;
    next.clear();
    for (NodeId u : frontier) {
      for (NodeId w : g.neighbors(u)) {
        if (dist[w] != graph::kUnreachable) continue;
        dist[w] = level;
        if (p.in_scope(w)) centers.insert(p.center[w]);
        next.push_back(w);
      }
    }
    frontier.swap(next);
  }
  return static_cast<std::uint32_t>(centers.size());
}

std::uint32_t bordering_clusters(const graph::Graph& g, const Partition& p,
                                 NodeId v) {
  return clusters_within(g, p, v, 1);
}

double mean_dist_to_center(const Partition& p) {
  std::uint64_t sum = 0, count = 0;
  for (NodeId v = 0; v < p.node_count(); ++v) {
    if (!p.in_scope(v)) continue;
    sum += p.dist_to_center[v];
    ++count;
  }
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

SubpathBadness subpath_badness(const graph::Graph& g, const Partition& p,
                               const std::vector<NodeId>& path,
                               std::uint32_t sub_len, std::uint32_t radius) {
  SubpathBadness out;
  if (path.empty() || sub_len == 0) return out;
  // A subpath is good iff all nodes within `radius` of it share one cluster.
  // We BFS once per subpath from its node set; subpaths partition the path.
  for (std::size_t start = 0; start < path.size(); start += sub_len) {
    const std::size_t end = std::min(path.size(), start + sub_len);
    ++out.total_subpaths;
    std::unordered_set<NodeId> centers;
    std::vector<std::uint32_t> dist(g.node_count(), graph::kUnreachable);
    std::vector<NodeId> frontier, next;
    for (std::size_t i = start; i < end; ++i) {
      const NodeId v = path[i];
      if (dist[v] == graph::kUnreachable) {
        dist[v] = 0;
        frontier.push_back(v);
        if (p.in_scope(v)) centers.insert(p.center[v]);
      }
    }
    std::uint32_t level = 0;
    while (!frontier.empty() && level < radius && centers.size() <= 1) {
      ++level;
      next.clear();
      for (NodeId u : frontier) {
        for (NodeId w : g.neighbors(u)) {
          if (dist[w] != graph::kUnreachable) continue;
          dist[w] = level;
          if (p.in_scope(w)) centers.insert(p.center[w]);
          next.push_back(w);
        }
      }
      frontier.swap(next);
    }
    if (centers.size() > 1) ++out.bad_subpaths;
  }
  return out;
}

}  // namespace radiocast::cluster
