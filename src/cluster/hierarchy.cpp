#include "cluster/hierarchy.hpp"

#include <algorithm>
#include <cmath>

#include "util/math.hpp"

namespace radiocast::cluster {

Hierarchy::Hierarchy(const graph::Graph& g, std::uint32_t diameter,
                     const HierarchyParams& params, util::Rng& rng)
    : coarse_(partition(
          g,
          util::fpow(static_cast<double>(std::max<std::uint32_t>(2, diameter)),
                     params.coarse_beta_exponent),
          rng)) {
  const double d = static_cast<double>(std::max<std::uint32_t>(2, diameter));
  const double log_d = util::safe_log2(d);

  // j range [0.01 log D, 0.1 log D], clamped to sane values: j >= 1 so that
  // beta = 2^-j <= 1/2, and j_max >= j_min so the range is non-empty.
  std::uint32_t j_min = static_cast<std::uint32_t>(
      std::max(1.0, std::floor(params.j_min_frac * log_d)));
  std::uint32_t j_max = static_cast<std::uint32_t>(
      std::max<double>(j_min, std::floor(params.j_max_frac * log_d)));
  for (std::uint32_t j = j_min; j <= j_max; ++j) j_values_.push_back(j);

  reps_ = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(util::fpow(d, params.fine_reps_exponent))));
  // Memory guard: cap the grid, trimming repetitions first.
  while (j_values_.size() * reps_ > params.max_total_fine && reps_ > 1) {
    --reps_;
  }

  fine_.reserve(j_values_.size() * reps_);
  for (std::uint32_t j : j_values_) {
    const double beta = std::ldexp(1.0, -static_cast<int>(j));  // 2^-j
    for (std::uint32_t r = 0; r < reps_; ++r) {
      fine_.push_back(partition_regions(g, beta, coarse_.center, rng));
      charged_rounds_ += precompute_rounds(g.node_count(), beta);
    }
  }
  charged_rounds_ += precompute_rounds(g.node_count(), coarse_.beta);
  seq_seed_ = rng();
}

Hierarchy::FineChoice Hierarchy::sequence_choice(NodeId coarse_center,
                                                 std::uint64_t pos) const {
  FineChoice c;
  const std::size_t total = fine_.size();
  std::size_t idx;
  if (randomize_) {
    // Deterministic hash of (seed, centre, position) -> uniform index.
    std::uint64_t h = util::mix_seed(seq_seed_, coarse_center);
    h = util::mix_seed(h, pos);
    idx = static_cast<std::size_t>(h % total);
  } else {
    // Ablation: fixed j = j_max, repetitions cycled round-robin.
    idx = (j_values_.size() - 1) * reps_ + (pos % reps_);
  }
  c.j_index = idx / reps_;
  c.rep = static_cast<std::uint32_t>(idx % reps_);
  c.j = j_values_[c.j_index];
  c.beta = std::ldexp(1.0, -static_cast<int>(c.j));
  return c;
}

}  // namespace radiocast::cluster
