// Partition(beta): the Miller-Peng-Xu exponential-shift clustering
// (Lemma 2.1 of Czumaj-Davies; originally MPX, SPAA 2013).
//
// Every node v draws delta_v ~ Exp(beta); node u joins the cluster of the
// centre c maximising delta_c - dist(c, u). Key properties the paper
// consumes (all validated by tests and the bench suite):
//   * clusters have strong diameter O(log n / beta) whp       (Lemma 2.1)
//   * each edge is cut with probability O(beta)               (Lemma 2.1)
//   * #distinct clusters within distance d of a node is
//     stochastically dominated by a geometric-like law        (Lemma 4.3)
//   * for beta = 2^-j with random j in [0.01 log D, 0.1 log D], w.p. >=
//     0.55 the expected distance to the centre is O(log n/(beta log D))
//                                                             (Theorem 2.2)
//
// The radio-network distributed implementation costs O(log^3 n / beta)
// rounds (Lemma 2.1); we compute the partition centrally with the *exact*
// random process and charge that round cost via `precompute_rounds` (see
// DESIGN.md "fidelity decisions" #1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace radiocast::cluster {

using graph::NodeId;

/// Result of one Partition(beta) run. Node u's cluster is identified by its
/// centre node id; a centre is always its own centre.
struct Partition {
  double beta = 0.0;
  /// Per node: the cluster centre it adopted (kInvalidNode for nodes
  /// excluded by the mask).
  std::vector<NodeId> center;
  /// Per node: hop distance to its centre along the adopted shifted-BFS
  /// tree (== graph distance to centre within the cluster).
  std::vector<std::uint32_t> dist_to_center;
  /// Per node: parent on the adopted shifted-BFS tree (centres point to
  /// themselves). The tree is intra-cluster by construction and is the
  /// skeleton the Lemma 2.3 schedules broadcast along.
  std::vector<NodeId> parent;
  /// Per node: the exponential shift it drew.
  std::vector<double> delta;

  NodeId node_count() const { return static_cast<NodeId>(center.size()); }
  bool in_scope(NodeId v) const { return center[v] != graph::kInvalidNode; }
  bool is_center(NodeId v) const { return center[v] == v; }

  /// Dense re-indexing: returns per-node dense cluster ids in
  /// [0, cluster_count), kInvalidNode for out-of-scope nodes, and the list
  /// of centres indexed by dense id.
  struct DenseIds {
    std::vector<NodeId> id_of_node;
    std::vector<NodeId> center_of_id;
  };
  DenseIds dense_ids() const;
};

/// Runs Partition(beta) on the whole graph.
Partition partition(const graph::Graph& g, double beta, util::Rng& rng);

/// Runs Partition(beta) restricted to the nodes with mask[v] != 0; edges
/// leaving the mask are ignored (used for fine clusterings computed inside
/// coarse clusters, which never cross coarse boundaries). mask.size() must
/// equal g.node_count().
Partition partition_masked(const graph::Graph& g, double beta,
                           const std::vector<std::uint8_t>& mask,
                           util::Rng& rng);

/// Runs Partition(beta) independently inside each region: nodes u, v are
/// considered adjacent only when region[u] == region[v]. Nodes with region
/// == graph::kInvalidNode are out of scope. This implements Algorithm 1
/// step 3: fine clusterings computed within each coarse cluster (pass the
/// coarse `center` vector as the region).
Partition partition_regions(const graph::Graph& g, double beta,
                            const std::vector<NodeId>& region,
                            util::Rng& rng);

/// Number of rounds the distributed radio-network implementation of
/// Partition(beta) would cost (Lemma 2.1: O(log^3 n / beta)); used by the
/// round-accounting in core::Compete.
std::uint64_t precompute_rounds(std::uint32_t n, double beta);

}  // namespace radiocast::cluster
