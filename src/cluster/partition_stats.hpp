// Measurements over a Partition: everything the paper's lemmas quantify.
//
// These are analysis utilities (centralised); they power the E4/E5/E8/E11
// experiments and the partition invariant tests.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/exponential_shifts.hpp"
#include "graph/graph.hpp"

namespace radiocast::cluster {

/// Per-cluster summary.
struct ClusterInfo {
  NodeId center = graph::kInvalidNode;
  std::uint32_t size = 0;
  /// max over members of hop distance to centre within the cluster
  /// (the "strong radius"; strong diameter <= 2 * strong_radius).
  std::uint32_t strong_radius = 0;
  /// Exact strong diameter via double sweep inside the cluster subgraph
  /// (exact on trees, a lower bound in general; paired with 2*radius as the
  /// upper bound).
  std::uint32_t strong_diameter_lb = 0;
};

/// All per-cluster summaries, dense-id indexed.
std::vector<ClusterInfo> cluster_infos(const graph::Graph& g,
                                       const Partition& p);

/// Fraction of in-scope edges cut by the partition (both endpoints in scope,
/// different centres). Lemma 2.1 claims this is O(beta) per edge.
double cut_fraction(const graph::Graph& g, const Partition& p);

/// Count of cut edges.
std::uint64_t cut_edge_count(const graph::Graph& g, const Partition& p);

/// True if every cluster is connected in the induced subgraph (required by
/// the clustering definition in Section 2.1).
bool clusters_connected(const graph::Graph& g, const Partition& p);

/// True if center-of-anyone => center-of-itself (Section 2.1 property).
bool centers_consistent(const Partition& p);

/// True if dist_to_center[v] equals the BFS distance from v to its centre
/// inside v's cluster (validates the shifted-BFS tree bookkeeping).
bool distances_consistent(const graph::Graph& g, const Partition& p);

/// Nodes with at least one in-scope neighbour in a different cluster — the
/// paper's "risky" nodes (proof of Lemma 4.2).
std::vector<std::uint8_t> boundary_nodes(const graph::Graph& g,
                                         const Partition& p);

/// Number of distinct clusters with a node within distance <= d of v
/// (including v's own). Lemma 4.3 bounds its distribution; the background
/// Decay process cost scales with it (q in the proof of Lemma 4.2).
std::uint32_t clusters_within(const graph::Graph& g, const Partition& p,
                              NodeId v, std::uint32_t d);

/// Distinct clusters adjacent to v (closed neighbourhood) = clusters_within
/// with d = 1; the "q" of Lemma 4.2's rescue-time bound.
std::uint32_t bordering_clusters(const graph::Graph& g, const Partition& p,
                                 NodeId v);

/// Mean hop distance to the cluster centre over in-scope nodes
/// (the quantity bounded by Theorem 2.2).
double mean_dist_to_center(const Partition& p);

/// Distance to centre of one node; kUnreachable-free by construction.
inline std::uint32_t dist_to_center(const Partition& p, NodeId v) {
  return p.dist_to_center[v];
}

/// For a path given as a node sequence, counts the subpaths of length
/// `sub_len` that are "bad": some node within distance `radius` of the
/// subpath lies in a different cluster than another such node (i.e. the
/// subpath's neighbourhood is not contained in one cluster) — Section 4's
/// good/bad subpath dichotomy for the coarse clustering.
struct SubpathBadness {
  std::uint32_t total_subpaths = 0;
  std::uint32_t bad_subpaths = 0;
};
SubpathBadness subpath_badness(const graph::Graph& g, const Partition& p,
                               const std::vector<NodeId>& path,
                               std::uint32_t sub_len, std::uint32_t radius);

}  // namespace radiocast::cluster
