#include "schedule/decay.hpp"

#include <cmath>

#include "util/math.hpp"

namespace radiocast::schedule {

double decay_probability(std::uint32_t step) {
  if (step == 0) return 1.0;  // defensive; steps are 1-based
  if (step >= 64) return 0.0;
  return std::ldexp(1.0, -static_cast<int>(step));
}

std::uint32_t decay_round_length(std::uint32_t n) {
  return std::max<std::uint32_t>(1, util::clog2(n));
}

std::uint32_t decay_step(radio::Network& net,
                         const std::vector<std::uint8_t>& participates,
                         const std::vector<radio::Payload>& payload_of,
                         std::uint32_t step, std::vector<radio::Payload>& best,
                         util::Rng& rng,
                         std::vector<graph::NodeId>* received_from) {
  const graph::NodeId n = net.node_count();
  static thread_local std::vector<graph::NodeId> tx_nodes;
  static thread_local std::vector<radio::Payload> tx_payload;
  static thread_local radio::SparseOutcome out;
  tx_nodes.clear();
  tx_payload.clear();
  const double p = decay_probability(step);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (participates[v] && rng.bernoulli(p)) {
      tx_nodes.push_back(v);
      tx_payload.push_back(payload_of[v]);
    }
  }
  net.resolve(tx_nodes, tx_payload, out);
  if (received_from != nullptr) {
    received_from->assign(n, graph::kInvalidNode);
  }
  for (const auto& d : out.deliveries) {
    if (best[d.node] == radio::kNoPayload || d.payload > best[d.node]) {
      best[d.node] = d.payload;
    }
    // The sparse outcome names the unique transmitting neighbour directly;
    // no neighbourhood re-scan needed.
    if (received_from != nullptr) (*received_from)[d.node] = d.from;
  }
  return static_cast<std::uint32_t>(out.deliveries.size());
}

std::uint32_t decay_round(radio::Network& net,
                          const std::vector<std::uint8_t>& participates,
                          const std::vector<radio::Payload>& payload_of,
                          std::vector<radio::Payload>& best, util::Rng& rng) {
  const std::uint32_t steps = decay_round_length(net.node_count());
  std::uint32_t delivered = 0;
  for (std::uint32_t s = 1; s <= steps; ++s) {
    delivered +=
        decay_step(net, participates, payload_of, s, best, rng, nullptr);
  }
  return delivered;
}

}  // namespace radiocast::schedule
