#include "schedule/decay.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "radio/simd.hpp"
#include "util/math.hpp"

namespace radiocast::schedule {

double decay_probability(std::uint32_t step) {
  if (step == 0) return 1.0;  // defensive; steps are 1-based
  if (step >= 64) return 0.0;
  return std::ldexp(1.0, -static_cast<int>(step));
}

std::uint32_t decay_round_length(std::uint32_t n) {
  return std::max<std::uint32_t>(1, util::clog2(n));
}

namespace {

/// One 64-node block's coin word for Bernoulli(2^-step): the AND of `step`
/// raw words, exited early once zero (the exit depends only on drawn
/// values, never on participation, so the stream position stays a pure
/// function of the draw history).
std::uint64_t coin_word(util::Rng& rng, std::uint32_t step) {
  if (step == 0) return ~std::uint64_t{0};  // probability 1
  if (step >= 64) return 0;                 // matches decay_probability
  std::uint64_t w = rng();
  for (std::uint32_t j = 1; j < step && w != 0; ++j) w &= rng();
  return w;
}

}  // namespace

std::uint32_t decay_step_lanes(radio::LaneExecutor& net,
                               std::span<const std::uint64_t> participates,
                               radio::PayloadPlanes payload_of,
                               std::uint32_t step,
                               radio::KnowledgePlanes best,
                               std::span<util::Rng> lane_rng,
                               radio::BatchOutcome& out, bool with_senders) {
  const graph::NodeId n = net.node_count();
  const int lanes = static_cast<int>(lane_rng.size());
  if (lanes < 1 || lanes > net.lanes()) {
    throw std::invalid_argument(
        "decay_step_lanes: lane_rng size must be in [1, net.lanes()]");
  }
  if (participates.size() != n || best.plane_size() != n ||
      lanes > best.lane_capacity()) {
    throw std::invalid_argument("decay_step_lanes: plane size mismatch");
  }
  const std::size_t blocks = (static_cast<std::size_t>(n) + 63) / 64;

  static thread_local std::vector<std::uint64_t> coin;
  static thread_local std::vector<std::uint64_t> tx_mask;
  static thread_local std::vector<radio::ActiveTx> active;
  coin.resize(blocks * static_cast<std::size_t>(lanes));
  tx_mask.resize(n);
  active.clear();

  // Per lane, per block: draw the coin words, block order, so the stream
  // consumption matches a standalone 1-lane run of the same lane.
  for (int l = 0; l < lanes; ++l) {
    util::Rng& rng = lane_rng[static_cast<std::size_t>(l)];
    std::uint64_t* lane_coin = coin.data() + static_cast<std::size_t>(l) * blocks;
    for (std::size_t b = 0; b < blocks; ++b) lane_coin[b] = coin_word(rng, step);
  }

  if (lanes == 1) {
    for (graph::NodeId v = 0; v < n; ++v) {
      tx_mask[v] = participates[v] & (coin[v >> 6] >> (v & 63)) & 1;
      if (tx_mask[v] != 0) active.push_back({v, tx_mask[v]});
    }
  } else {
    // Coin words are node-indexed per lane; the transmit mask is
    // lane-indexed per node. Transpose 64 lanes x 64 nodes per block with
    // the shared anti-diagonal kernel (radio/simd.hpp): load row 63-l,
    // read row 63-(v-base) for the main-diagonal transpose for free.
    std::array<std::uint64_t, 64> w;
    for (std::size_t b = 0; b < blocks; ++b) {
      w.fill(0);
      std::uint64_t any = 0;
      for (int l = 0; l < lanes; ++l) {
        const std::uint64_t c = coin[static_cast<std::size_t>(l) * blocks + b];
        w[static_cast<std::size_t>(63 - l)] = c;
        any |= c;
      }
      const graph::NodeId base = static_cast<graph::NodeId>(b << 6);
      const graph::NodeId hi = std::min<graph::NodeId>(n, base + 64);
      if (any == 0) {  // deep steps: whole blocks of silent coins
        for (graph::NodeId v = base; v < hi; ++v) tx_mask[v] = 0;
        continue;
      }
      radio::simd::transpose64(w);
      for (graph::NodeId v = base; v < hi; ++v) {
        tx_mask[v] = participates[v] & w[static_cast<std::size_t>(63 - (v - base))];
        if (tx_mask[v] != 0) active.push_back({v, tx_mask[v]});
      }
    }
  }

  // Deep Decay steps are sparse by construction (2^-step participation):
  // when few nodes transmit, route through the sparse entry points so the
  // frontier backend resolves the step in O(active work). The dense-mask
  // scan above already happened (the coin stream must stay a pure function
  // of the draw history), so this only moves the medium-side cost; the
  // active list is built in increasing node order and the dense adapters
  // pin outcome equality, so results are byte-identical on every backend.
  const bool sparse =
      static_cast<std::uint64_t>(active.size()) * 16 <= n;
  if (with_senders) {
    if (sparse) {
      net.step_lanes_active(active, payload_of, out, /*with_senders=*/true);
    } else {
      net.step_lanes(tx_mask, payload_of, out, /*with_senders=*/true);
    }
    for (const auto& d : out.deliveries) {
      radio::Payload& b = best.at(d.lane, d.node);
      if (b == radio::kNoPayload || d.payload > b) b = d.payload;
    }
  } else {
    if (sparse) {
      net.step_lanes_max_active(active, payload_of, best, out);
    } else {
      net.step_lanes_max(tx_mask, payload_of, best, out);
    }
  }
  std::uint32_t delivered = 0;
  for (int l = 0; l < lanes; ++l) delivered += out.delivered_count[l];
  return delivered;
}

std::uint32_t decay_round_lanes(radio::LaneExecutor& net,
                                std::span<const std::uint64_t> participates,
                                radio::PayloadPlanes payload_of,
                                radio::KnowledgePlanes best,
                                std::span<util::Rng> lane_rng,
                                radio::BatchOutcome& out) {
  const std::uint32_t steps = decay_round_length(net.node_count());
  std::uint32_t delivered = 0;
  for (std::uint32_t s = 1; s <= steps; ++s) {
    delivered +=
        decay_step_lanes(net, participates, payload_of, s, best, lane_rng, out);
  }
  return delivered;
}

std::uint32_t decay_step(radio::Network& net,
                         const std::vector<std::uint8_t>& participates,
                         const std::vector<radio::Payload>& payload_of,
                         std::uint32_t step, std::vector<radio::Payload>& best,
                         util::Rng& rng,
                         std::vector<graph::NodeId>* received_from) {
  const graph::NodeId n = net.node_count();
  static thread_local std::vector<std::uint64_t> mask;
  static thread_local radio::BatchOutcome out;
  mask.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) mask[v] = participates[v] ? 1 : 0;
  // Senders are materialized only when the caller wants received_from.
  const std::uint32_t delivered = decay_step_lanes(
      net, mask, payload_of, step, best, std::span<util::Rng>(&rng, 1), out,
      /*with_senders=*/received_from != nullptr);
  if (received_from != nullptr) {
    received_from->assign(n, graph::kInvalidNode);
    // The outcome names the unique transmitting neighbour directly; no
    // neighbourhood re-scan needed.
    for (const auto& d : out.deliveries) (*received_from)[d.node] = d.from;
  }
  return delivered;
}

std::uint32_t decay_round(radio::Network& net,
                          const std::vector<std::uint8_t>& participates,
                          const std::vector<radio::Payload>& payload_of,
                          std::vector<radio::Payload>& best, util::Rng& rng) {
  const std::uint32_t steps = decay_round_length(net.node_count());
  std::uint32_t delivered = 0;
  for (std::uint32_t s = 1; s <= steps; ++s) {
    delivered +=
        decay_step(net, participates, payload_of, s, best, rng, nullptr);
  }
  return delivered;
}

}  // namespace radiocast::schedule
