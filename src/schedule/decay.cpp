#include "schedule/decay.hpp"

#include <cmath>

#include "util/math.hpp"

namespace radiocast::schedule {

double decay_probability(std::uint32_t step) {
  if (step == 0) return 1.0;  // defensive; steps are 1-based
  if (step >= 64) return 0.0;
  return std::ldexp(1.0, -static_cast<int>(step));
}

std::uint32_t decay_round_length(std::uint32_t n) {
  return std::max<std::uint32_t>(1, util::clog2(n));
}

std::uint32_t decay_step(radio::Network& net,
                         const std::vector<std::uint8_t>& participates,
                         const std::vector<radio::Payload>& payload_of,
                         std::uint32_t step, std::vector<radio::Payload>& best,
                         util::Rng& rng,
                         std::vector<graph::NodeId>* received_from) {
  const graph::NodeId n = net.node_count();
  static thread_local std::vector<std::uint8_t> transmit;
  static thread_local std::vector<radio::Payload> payload;
  transmit.assign(n, 0);
  payload.assign(n, radio::kNoPayload);
  const double p = decay_probability(step);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (participates[v] && rng.bernoulli(p)) {
      transmit[v] = 1;
      payload[v] = payload_of[v];
    }
  }
  const radio::RoundOutcome out = net.step(transmit, payload);
  if (received_from != nullptr) {
    received_from->assign(n, graph::kInvalidNode);
  }
  std::uint32_t delivered = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (out.reception[v] != radio::Reception::kMessage) continue;
    ++delivered;
    const radio::Payload got = out.received_payload[v];
    if (best[v] == radio::kNoPayload || got > best[v]) best[v] = got;
    if (received_from != nullptr) {
      // The unique transmitting neighbour is recoverable by scanning v's
      // neighbourhood; with exactly one transmitter this is well-defined.
      for (graph::NodeId u : net.topology().neighbors(v)) {
        if (transmit[u]) {
          (*received_from)[v] = u;
          break;
        }
      }
    }
  }
  return delivered;
}

std::uint32_t decay_round(radio::Network& net,
                          const std::vector<std::uint8_t>& participates,
                          const std::vector<radio::Payload>& payload_of,
                          std::vector<radio::Payload>& best, util::Rng& rng) {
  const std::uint32_t steps = decay_round_length(net.node_count());
  std::uint32_t delivered = 0;
  for (std::uint32_t s = 1; s <= steps; ++s) {
    delivered +=
        decay_step(net, participates, payload_of, s, best, rng, nullptr);
  }
  return delivered;
}

}  // namespace radiocast::schedule
