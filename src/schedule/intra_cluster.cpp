#include "schedule/intra_cluster.hpp"

#include <algorithm>
#include <cassert>

#include "schedule/decay.hpp"
#include "util/math.hpp"

namespace radiocast::schedule {

namespace {

using graph::NodeId;
using radio::Payload;

/// Nodes bucketed by tree depth, up to max_hops inclusive.
std::vector<std::vector<NodeId>> bucket_by_depth(const TreeSchedule& sched,
                                                 NodeId n,
                                                 std::uint32_t max_hops) {
  std::vector<std::vector<NodeId>> by_depth(
      static_cast<std::size_t>(max_hops) + 1);
  for (NodeId v = 0; v < n; ++v) {
    if (!sched.in_scope(v)) continue;
    const std::uint32_t d = sched.depth(v);
    if (d <= max_hops) by_depth[d].push_back(v);
  }
  return by_depth;
}

/// Shared scratch for one window run.
struct WindowScratch {
  std::vector<std::uint8_t> reached;
  std::vector<Payload> upval;
  std::vector<Payload> snap;              // centre snapshot (keyed by centre)
  std::vector<std::uint32_t> foreign_at;  // round stamp of foreign blocking
  std::vector<std::uint8_t> transmit;
  std::vector<Payload> payload;
  std::uint32_t round_stamp = 0;
};

}  // namespace

IcpStats run_icp_window(radio::Network& net, const TreeSchedule& sched,
                        std::vector<Payload>& best, const IcpParams& params,
                        util::Rng& rng) {
  const graph::Graph& g = net.topology();
  const NodeId n = g.node_count();
  IcpStats stats;
  const std::uint32_t ell = std::max<std::uint32_t>(1, params.pass_hops);
  const std::uint32_t span = std::min(ell, sched.max_depth());
  const auto by_depth = bucket_by_depth(sched, n, span);

  WindowScratch s;
  s.reached.assign(n, 0);
  s.upval.assign(n, radio::kNoPayload);
  s.snap.assign(n, radio::kNoPayload);
  s.foreign_at.assign(n, static_cast<std::uint32_t>(-1));
  s.transmit.assign(n, 0);
  s.payload.assign(n, radio::kNoPayload);

  DecayBackground bg(sched, params.seed);
  bg.rebind(sched, params.window_id);

  // Centre snapshots (Algorithm 3's "highest message known by the centre").
  for (NodeId v = 0; v < n; ++v) {
    if (sched.in_scope(v) && sched.center(v) == v) s.snap[v] = best[v];
  }

  auto interleave_background = [&]() {
    if (!params.with_background) return;
    stats.rescued += bg.step(net, best, s.reached, rng);
    ++stats.rounds;
  };

  const bool colored = sched.mode() == ScheduleMode::kColored;
  const std::uint32_t period = sched.period();

  // ---- Outward wave (passes 1 and 3) ------------------------------------
  auto outward = [&]() {
    std::fill(s.reached.begin(), s.reached.end(), std::uint8_t{0});
    for (NodeId v = 0; v < n; ++v) {
      if (sched.in_scope(v) && sched.center(v) == v &&
          best[v] != radio::kNoPayload) {
        s.reached[v] = 1;
      }
    }
    if (!colored) {
      // Pipelined: wave time t; depth-t reached nodes transmit, children
      // receive unless a foreign-cluster transmitter is in range (the
      // Lemma 4.2 risky failure). Intra-cluster interference is resolved
      // by the Lemma 2.3 schedule (DESIGN.md fidelity note 2).
      for (std::uint32_t t = 0; t < span; ++t) {
        ++s.round_stamp;
        for (NodeId u : by_depth[t]) {
          if (!s.reached[u]) continue;
          for (NodeId w : g.neighbors(u)) {
            if (!sched.in_scope(w) || sched.center(w) != sched.center(u)) {
              s.foreign_at[w] = s.round_stamp;
            }
          }
        }
        for (NodeId u : by_depth[t]) {
          if (!s.reached[u]) continue;
          for (NodeId v : sched.children(u)) {
            if (sched.depth(v) > span) continue;
            if (s.foreign_at[v] == s.round_stamp) {
              ++stats.blocked;
              continue;
            }
            if (!s.reached[v]) {
              s.reached[v] = 1;
              ++stats.deliveries;
            }
            if (best[v] == radio::kNoPayload || best[u] > best[v]) {
              best[v] = best[u];
            }
          }
        }
        ++stats.rounds;
        interleave_background();
      }
    } else {
      // Colored: fully physical. Reached nodes at depth <= span transmit
      // their best in their colour slot; all receptions resolved by the
      // medium's exact collision rule.
      for (std::uint32_t r = 0; r < span * period; ++r) {
        const std::uint32_t slot = r % period;
        std::fill(s.transmit.begin(), s.transmit.end(), std::uint8_t{0});
        for (NodeId v = 0; v < n; ++v) {
          if (s.reached[v] && sched.in_scope(v) && sched.depth(v) <= span &&
              sched.color(v) == slot && best[v] != radio::kNoPayload) {
            s.transmit[v] = 1;
            s.payload[v] = best[v];
          }
        }
        const radio::RoundOutcome out = net.step(s.transmit, s.payload);
        for (NodeId v = 0; v < n; ++v) {
          if (out.reception[v] != radio::Reception::kMessage) continue;
          const Payload got = out.received_payload[v];
          if (best[v] == radio::kNoPayload || got > best[v]) best[v] = got;
          // Same-cluster reached transmitter in range => v holds the wave.
          if (sched.in_scope(v) && !s.reached[v]) {
            for (NodeId u : g.neighbors(v)) {
              if (s.transmit[u] && sched.center(u) == sched.center(v)) {
                s.reached[v] = 1;
                ++stats.deliveries;
                break;
              }
            }
          }
        }
        ++stats.rounds;
        interleave_background();
      }
    }
  };

  // ---- Inward wave (pass 2) ---------------------------------------------
  auto inward = [&]() {
    for (NodeId v = 0; v < n; ++v) {
      s.upval[v] = radio::kNoPayload;
      if (!sched.in_scope(v) || sched.depth(v) > span) continue;
      const Payload csnap = s.snap[sched.center(v)];
      if (best[v] != radio::kNoPayload &&
          (csnap == radio::kNoPayload || best[v] > csnap)) {
        s.upval[v] = best[v];
      }
    }
    if (!colored) {
      for (std::uint32_t t = 0; t < span; ++t) {
        const std::uint32_t d = span - t;  // transmitting depth this round
        ++s.round_stamp;
        for (NodeId u : by_depth[d]) {
          if (s.upval[u] == radio::kNoPayload) continue;
          for (NodeId w : g.neighbors(u)) {
            if (!sched.in_scope(w) || sched.center(w) != sched.center(u)) {
              s.foreign_at[w] = s.round_stamp;
            }
          }
        }
        for (NodeId u : by_depth[d]) {
          if (s.upval[u] == radio::kNoPayload) continue;
          const NodeId p = sched.parent(u);
          if (p == u) continue;
          if (s.foreign_at[p] == s.round_stamp) {
            ++stats.blocked;
            continue;
          }
          if (s.upval[p] == radio::kNoPayload || s.upval[u] > s.upval[p]) {
            s.upval[p] = s.upval[u];
            ++stats.deliveries;
          }
        }
        ++stats.rounds;
        interleave_background();
      }
    } else {
      for (std::uint32_t r = 0; r < span * period; ++r) {
        const std::uint32_t slot = r % period;
        std::fill(s.transmit.begin(), s.transmit.end(), std::uint8_t{0});
        for (NodeId v = 0; v < n; ++v) {
          if (sched.in_scope(v) && sched.depth(v) <= span &&
              sched.depth(v) > 0 && s.upval[v] != radio::kNoPayload &&
              sched.color(v) == slot) {
            s.transmit[v] = 1;
            s.payload[v] = s.upval[v];
          }
        }
        const radio::RoundOutcome out = net.step(s.transmit, s.payload);
        for (NodeId v = 0; v < n; ++v) {
          if (out.reception[v] != radio::Reception::kMessage) continue;
          const Payload got = out.received_payload[v];
          if (best[v] == radio::kNoPayload || got > best[v]) best[v] = got;
          if (!sched.in_scope(v)) continue;
          // Accept the convergecast value from a same-cluster child-side
          // transmitter (the physical message carries the cluster id).
          for (NodeId u : g.neighbors(v)) {
            if (s.transmit[u] && sched.center(u) == sched.center(v) &&
                sched.depth(u) == sched.depth(v) + 1) {
              if (s.upval[v] == radio::kNoPayload || got > s.upval[v]) {
                s.upval[v] = got;
                ++stats.deliveries;
              }
              break;
            }
          }
        }
        ++stats.rounds;
        interleave_background();
      }
    }
    // Centres adopt the aggregated maximum.
    for (NodeId v = 0; v < n; ++v) {
      if (sched.in_scope(v) && sched.center(v) == v &&
          s.upval[v] != radio::kNoPayload) {
        if (best[v] == radio::kNoPayload || s.upval[v] > best[v]) {
          best[v] = s.upval[v];
        }
      }
    }
  };

  outward();
  inward();
  outward();
  return stats;
}

DecayBackground::DecayBackground(const TreeSchedule& sched, std::uint64_t seed)
    : sched_(&sched),
      seed_(seed),
      lambda_(decay_round_length(
          static_cast<std::uint32_t>(sched.partition().node_count()))) {}

void DecayBackground::rebind(const TreeSchedule& sched,
                             std::uint64_t window_id) {
  sched_ = &sched;
  window_id_ = window_id;
}

std::uint32_t DecayBackground::step(radio::Network& net,
                                    std::vector<Payload>& best,
                                    std::vector<std::uint8_t>& reached,
                                    util::Rng& rng) {
  const NodeId n = net.node_count();
  // Clock decomposition: epochs of lambda iterations, each iteration i
  // (1-based) being one Decay round of lambda steps, run by a cluster with
  // the coordinated probability 2^-i (Algorithm 4).
  const std::uint64_t iter_len = lambda_;
  const std::uint64_t epoch_len = static_cast<std::uint64_t>(lambda_) * lambda_;
  const std::uint64_t epoch = clock_ / epoch_len;
  const std::uint32_t i =
      static_cast<std::uint32_t>((clock_ % epoch_len) / iter_len) + 1;
  const std::uint32_t step_in_round =
      static_cast<std::uint32_t>(clock_ % iter_len) + 1;
  ++clock_;

  participate_scratch_.assign(n, 0);
  payload_scratch_.assign(n, radio::kNoPayload);
  const double coin_p = decay_probability(i);
  for (NodeId v = 0; v < n; ++v) {
    if (!reached[v] || !sched_->in_scope(v)) continue;
    if (best[v] == radio::kNoPayload) continue;
    // Coordinated per-cluster coin: deterministic hash of
    // (seed, window, epoch, i, centre) -> [0,1).
    std::uint64_t h = util::mix_seed(seed_, window_id_);
    h = util::mix_seed(h, epoch * 64 + i);
    h = util::mix_seed(h, sched_->center(v));
    const double u01 =
        static_cast<double>(h >> 11) * 0x1.0p-53;  // 53-bit mantissa
    if (u01 >= coin_p) continue;
    participate_scratch_[v] = 1;
    payload_scratch_[v] = best[v];
  }
  const std::uint32_t delivered =
      decay_step(net, participate_scratch_, payload_scratch_, step_in_round,
                 best, rng, &from_scratch_);
  std::uint32_t rescued = 0;
  if (delivered > 0) {
    for (NodeId v = 0; v < n; ++v) {
      const NodeId u = from_scratch_[v];
      if (u == graph::kInvalidNode) continue;
      if (sched_->in_scope(v) && !reached[v] &&
          sched_->center(u) == sched_->center(v)) {
        reached[v] = 1;
        ++rescued;
      }
    }
  }
  return rescued;
}

}  // namespace radiocast::schedule
