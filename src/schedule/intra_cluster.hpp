// Intra-Cluster Propagation (Algorithm 3) with its background Decay
// process (Algorithm 4), executed synchronously over one Partition.
//
// One window does:
//   1) outward wave: centre's best message to all nodes within `pass_hops`,
//   2) inward wave: nodes knowing a higher message converge-cast it to the
//      centre (values aggregate by max along the tree),
//   3) outward wave again with the centre's updated best.
//
// Steps of the main waves are interleaved 1:1 with steps of the background
// process (Algorithm 4), which repeatedly has each cluster flip a
// 2^-i-probability coordinated coin to run one Decay round, rescuing
// "risky" boundary nodes whose scheduled receptions are garbled by
// neighbouring clusters (Lemma 4.2).
//
// This synchronized runner is used by the Compete background process
// (Algorithm 2), by the schedule/validity experiments (E10/E11), and by
// tests. The main Compete process needs per-coarse-cluster desynchronised
// windows and implements its own loop over the same TreeSchedule data.
#pragma once

#include <cstdint>
#include <vector>

#include "radio/network.hpp"
#include "schedule/bfs_schedule.hpp"
#include "util/rng.hpp"

namespace radiocast::schedule {

struct IcpParams {
  /// Hop budget ell of Intra-Cluster Propagation(ell).
  std::uint32_t pass_hops = 1;
  /// Interleave the Algorithm 4 background stream (1:1 with main steps).
  bool with_background = true;
  /// Domain separators for the background coordinated coins.
  std::uint64_t window_id = 0;
  std::uint64_t seed = 0;
};

struct IcpStats {
  /// Physical rounds consumed, counting both interleaved streams.
  std::uint64_t rounds = 0;
  /// Successful scheduled deliveries (tree-wave hops).
  std::uint64_t deliveries = 0;
  /// Scheduled deliveries blocked by a foreign-cluster transmitter
  /// (pipelined mode's honest inter-cluster collisions).
  std::uint64_t blocked = 0;
  /// Nodes rescued (wave-informed) by the background Decay process.
  std::uint64_t rescued = 0;
};

/// Executes one full ICP window over `best` (node -> highest known message,
/// radio::kNoPayload when none). `net` must wrap the same graph the
/// schedule was built on; it is used for the physically-simulated parts
/// (background Decay always; the main waves too in kColored mode).
IcpStats run_icp_window(radio::Network& net, const TreeSchedule& sched,
                        std::vector<radio::Payload>& best,
                        const IcpParams& params, util::Rng& rng);

/// The background stream alone, as a resumable object (used by the Compete
/// main process, whose windows are desynchronised across coarse clusters
/// but whose background stream free-runs globally).
class DecayBackground {
 public:
  /// `reached[v]` marks nodes that already hold their cluster's wave
  /// message and therefore participate in rescuing neighbours.
  DecayBackground(const TreeSchedule& sched, std::uint64_t seed);

  /// Runs one physical round of the background stream. Participating
  /// clusters' reached members transmit per Decay; listeners receiving from
  /// a same-cluster reached neighbour become reached themselves.
  /// Returns number of nodes rescued this round.
  std::uint32_t step(radio::Network& net, std::vector<radio::Payload>& best,
                     std::vector<std::uint8_t>& reached, util::Rng& rng);

  /// Re-binds the schedule (the active clustering changed windows).
  void rebind(const TreeSchedule& sched, std::uint64_t window_id);

 private:
  const TreeSchedule* sched_;
  std::uint64_t seed_;
  std::uint64_t window_id_ = 0;
  std::uint32_t lambda_;       // ceil(log2 n)
  std::uint64_t clock_ = 0;    // background rounds elapsed
  std::vector<std::uint8_t> participate_scratch_;
  std::vector<radio::Payload> payload_scratch_;
  std::vector<graph::NodeId> from_scratch_;
};

}  // namespace radiocast::schedule
