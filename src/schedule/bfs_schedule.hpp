// Intra-cluster broadcast schedules (the Lemma 2.3 substrate).
//
// A TreeSchedule materialises, for one Partition, the shifted-BFS tree of
// every cluster (depth, parent, children) plus an optional conflict-free
// transmission colouring. Two execution modes mirror DESIGN.md fidelity
// note 2:
//
//  * kPipelined — the schedule's *guarantee* (Lemma 2.3: a message moves to
//    distance ell in O(ell + polylog) rounds): a wave advances one hop per
//    round along the tree. Collisions *between* clusters are still honest:
//    a listener with a foreign-cluster transmitter in range that round is
//    blocked (the paper's risky-node failure mode, Lemma 4.2).
//
//  * kColored — a physically collision-free slot assignment inside each
//    cluster, computed by greedy 2-hop conflict colouring: two same-cluster
//    nodes may share a slot only if neither can garble a transmission
//    intended for the other's tree-children. Cross-cluster collisions are
//    naturally honest. A wave advances one hop per `period` rounds.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/exponential_shifts.hpp"
#include "graph/graph.hpp"

namespace radiocast::schedule {

using cluster::Partition;
using graph::NodeId;

enum class ScheduleMode : std::uint8_t { kPipelined, kColored };

class TreeSchedule {
 public:
  /// Builds the tree structure; computes colours only when `mode` is
  /// kColored (colouring costs O(sum of 2-hop neighbourhood sizes)).
  TreeSchedule(const graph::Graph& g, const Partition& p, ScheduleMode mode);

  const Partition& partition() const { return *part_; }
  ScheduleMode mode() const { return mode_; }

  std::uint32_t depth(NodeId v) const { return part_->dist_to_center[v]; }
  NodeId parent(NodeId v) const { return part_->parent[v]; }
  NodeId center(NodeId v) const { return part_->center[v]; }
  bool in_scope(NodeId v) const { return part_->in_scope(v); }

  std::span<const NodeId> children(NodeId v) const {
    return {child_.data() + child_off_[v], child_.data() + child_off_[v + 1]};
  }

  /// Colour of v (kColored mode only).
  std::uint32_t color(NodeId v) const { return color_[v]; }
  /// Slot period: 1 in kPipelined mode; max colours in kColored mode.
  std::uint32_t period() const { return period_; }

  /// Max cluster depth over all in-scope nodes.
  std::uint32_t max_depth() const { return max_depth_; }

  /// Rounds needed for a wave to cover distance ell under this schedule.
  std::uint64_t rounds_for_distance(std::uint32_t ell) const {
    return static_cast<std::uint64_t>(period_) * ell;
  }

 private:
  const graph::Graph* graph_;
  const Partition* part_;
  ScheduleMode mode_;
  std::vector<std::uint64_t> child_off_;
  std::vector<NodeId> child_;
  std::vector<std::uint32_t> color_;
  std::uint32_t period_ = 1;
  std::uint32_t max_depth_ = 0;

  void compute_coloring(const graph::Graph& g);
};

}  // namespace radiocast::schedule
