// The Decay protocol of Bar-Yehuda, Goldreich, Itai (Algorithm 5 of the
// paper) — the fundamental randomized transmission primitive of radio
// networks. One "round of Decay" consists of ceil(log2 n) time steps; in
// step i (1-based) each participating node transmits with probability 2^-i.
// Lemma 3.1: a listener with >= 1 participating neighbour receives with
// constant probability per Decay round.
//
// The primitive is lane-generic: decay_step_lanes/decay_round_lanes drive
// any radio::LaneExecutor, so the same implementation runs one scalar
// replication (Network) or up to 64 batched Monte-Carlo lanes
// (BatchNetwork) — `participates` becomes a per-node lane mask, payload_of
// and best become per-lane planes, and each lane draws its Bernoulli coins
// from its own RNG stream. The single-lane decay_step/decay_round are thin
// wrappers, so scalar and batched executions share one code path.
//
// Coin scheme: Bernoulli(2^-i) is drawn as the AND of i coin words per
// 64-node block of a lane's stream (bit v mod 64 decides node v), with
// early exit once the running AND is zero. The draw sequence is a pure
// function of (lane seed, call sequence) — independent of who participates
// — so lane l of a batched run consumes exactly the word sequence a
// standalone scalar run with the same seed consumes, which is what makes
// batched and per-seed executions byte-identical, lane by lane.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "radio/lane_executor.hpp"
#include "radio/network.hpp"
#include "util/rng.hpp"

namespace radiocast::schedule {

/// Transmission probability at 1-based Decay step i: 2^-i.
double decay_probability(std::uint32_t step);

/// Number of steps in one Decay round for an n-node network: ceil(log2 n),
/// at least 1.
std::uint32_t decay_round_length(std::uint32_t n);

/// Executes ONE step of synchronized Decay across all lanes of `net`.
/// Bit l of participates[v] marks v as running Decay in lane l; each
/// participant transmits its lane's payload_of value with probability
/// 2^-step (coins from lane_rng[l], see the coin-scheme note above).
/// `best` is the knowledge-plane view (any KnowledgePlanes layout; the
/// batched cores use node-major), updated with the maximum received value.
/// `out` is caller-owned scratch holding the round's delivered masks and
/// counters on return. lane_rng.size() selects the lane count; it must not
/// exceed net.lanes(), and best must cover node_count nodes x that many
/// lanes. By default deliveries fold into `best` through the executor's
/// step_lanes_max (no per-delivery records — the fast path); pass
/// with_senders = true to materialize out.deliveries (sender + payload per
/// delivery) for consumers that need to know who delivered, at the cost of
/// building those records. Deep steps with few transmitters route through
/// the sparse step_lanes_(max_)active entry points, so tail rounds cost
/// O(active work) on the frontier backend — outcomes are identical either
/// way (the coin stream never depends on the path taken). Returns the
/// number of deliveries summed over lanes either way.
std::uint32_t decay_step_lanes(radio::LaneExecutor& net,
                               std::span<const std::uint64_t> participates,
                               radio::PayloadPlanes payload_of,
                               std::uint32_t step,
                               radio::KnowledgePlanes best,
                               std::span<util::Rng> lane_rng,
                               radio::BatchOutcome& out,
                               bool with_senders = false);

/// Executes one full Decay round (decay_round_length(n) steps) across all
/// lanes. Returns total deliveries over steps and lanes.
std::uint32_t decay_round_lanes(radio::LaneExecutor& net,
                                std::span<const std::uint64_t> participates,
                                radio::PayloadPlanes payload_of,
                                radio::KnowledgePlanes best,
                                std::span<util::Rng> lane_rng,
                                radio::BatchOutcome& out);

/// Single-lane convenience over decay_step_lanes. `participates[v]` marks
/// nodes running Decay this round; each transmits `payload_of[v]` with
/// probability 2^-step. Listeners that receive update
/// `best[v] = max(best[v], received)`. Returns the number of deliveries.
///
/// `received_from` (optional, may be null) is filled with the transmitter
/// that delivered to each node this step (kInvalidNode otherwise) — the
/// simulation-side bookkeeping used by cluster-rescue logic (a real message
/// would carry the sender's cluster id; see DESIGN.md).
std::uint32_t decay_step(radio::Network& net,
                         const std::vector<std::uint8_t>& participates,
                         const std::vector<radio::Payload>& payload_of,
                         std::uint32_t step, std::vector<radio::Payload>& best,
                         util::Rng& rng,
                         std::vector<graph::NodeId>* received_from);

/// Executes one full Decay round (decay_round_length(n) steps).
/// Returns total deliveries.
std::uint32_t decay_round(radio::Network& net,
                          const std::vector<std::uint8_t>& participates,
                          const std::vector<radio::Payload>& payload_of,
                          std::vector<radio::Payload>& best, util::Rng& rng);

}  // namespace radiocast::schedule
