// The Decay protocol of Bar-Yehuda, Goldreich, Itai (Algorithm 5 of the
// paper) — the fundamental randomized transmission primitive of radio
// networks. One "round of Decay" consists of ceil(log2 n) time steps; in
// step i (1-based) each participating node transmits with probability 2^-i.
// Lemma 3.1: a listener with >= 1 participating neighbour receives with
// constant probability per Decay round.
#pragma once

#include <cstdint>
#include <vector>

#include "radio/network.hpp"
#include "util/rng.hpp"

namespace radiocast::schedule {

/// Transmission probability at 1-based Decay step i: 2^-i.
double decay_probability(std::uint32_t step);

/// Number of steps in one Decay round for an n-node network: ceil(log2 n),
/// at least 1.
std::uint32_t decay_round_length(std::uint32_t n);

/// Executes ONE step of synchronized Decay over the physical medium.
/// `participates[v]` marks nodes running Decay this round; each transmits
/// `payload_of[v]` with probability 2^-step. Listeners that receive update
/// `best[v] = max(best[v], received)`. Returns the number of deliveries.
///
/// `received_from` (optional, may be null) is filled with the transmitter
/// that delivered to each node this step (kInvalidNode otherwise) — the
/// simulation-side bookkeeping used by cluster-rescue logic (a real message
/// would carry the sender's cluster id; see DESIGN.md).
std::uint32_t decay_step(radio::Network& net,
                         const std::vector<std::uint8_t>& participates,
                         const std::vector<radio::Payload>& payload_of,
                         std::uint32_t step, std::vector<radio::Payload>& best,
                         util::Rng& rng,
                         std::vector<graph::NodeId>* received_from);

/// Executes one full Decay round (decay_round_length(n) steps).
/// Returns total deliveries.
std::uint32_t decay_round(radio::Network& net,
                          const std::vector<std::uint8_t>& participates,
                          const std::vector<radio::Payload>& payload_of,
                          std::vector<radio::Payload>& best, util::Rng& rng);

}  // namespace radiocast::schedule
