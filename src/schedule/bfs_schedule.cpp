#include "schedule/bfs_schedule.hpp"

#include <algorithm>
#include <cassert>

namespace radiocast::schedule {

TreeSchedule::TreeSchedule(const graph::Graph& g, const Partition& p,
                           ScheduleMode mode)
    : graph_(&g), part_(&p), mode_(mode) {
  const NodeId n = g.node_count();
  // Children CSR from parent pointers.
  child_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (!p.in_scope(v)) continue;
    max_depth_ = std::max(max_depth_, p.dist_to_center[v]);
    const NodeId u = p.parent[v];
    if (u != v) ++child_off_[u + 1];
  }
  for (std::size_t i = 1; i < child_off_.size(); ++i) {
    child_off_[i] += child_off_[i - 1];
  }
  child_.resize(child_off_.back());
  std::vector<std::uint64_t> cursor(child_off_.begin(), child_off_.end() - 1);
  for (NodeId v = 0; v < n; ++v) {
    if (!p.in_scope(v)) continue;
    const NodeId u = p.parent[v];
    if (u != v) child_[cursor[u]++] = v;
  }
  if (mode_ == ScheduleMode::kColored) {
    compute_coloring(g);
  } else {
    period_ = 1;
  }
}

void TreeSchedule::compute_coloring(const graph::Graph& g) {
  const NodeId n = g.node_count();
  color_.assign(n, 0);
  std::vector<std::uint8_t> colored(n, 0);

  // Colour nodes cluster by cluster in (depth, id) order. Node u's colour
  // must differ from every already-coloured same-cluster node w that could
  // interfere with u's role as a tree transmitter:
  //   (a) w is adjacent to a child of u (w would garble u -> child), or
  //   (b) u is adjacent to a child of w (u would garble w -> its child).
  // Greedy first-fit; forbidden sets collected per node.
  std::vector<NodeId> order;
  order.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    if (part_->in_scope(v)) order.push_back(v);
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (part_->center[a] != part_->center[b]) {
      return part_->center[a] < part_->center[b];
    }
    if (part_->dist_to_center[a] != part_->dist_to_center[b]) {
      return part_->dist_to_center[a] < part_->dist_to_center[b];
    }
    return a < b;
  });

  std::vector<std::uint32_t> forbidden;  // colours, reused per node
  period_ = 1;
  for (NodeId u : order) {
    const NodeId cu = part_->center[u];
    forbidden.clear();
    // (a): same-cluster coloured neighbours of u's children.
    for (NodeId v : children(u)) {
      for (NodeId w : g.neighbors(v)) {
        if (w != u && colored[w] && part_->center[w] == cu) {
          forbidden.push_back(color_[w]);
        }
      }
    }
    // (b): parents (within cluster) of u's same-cluster neighbours.
    for (NodeId v : g.neighbors(u)) {
      if (part_->center[v] != cu) continue;
      const NodeId w = part_->parent[v];
      if (w != u && w != v && colored[w] && part_->center[w] == cu) {
        forbidden.push_back(color_[w]);
      }
    }
    // (c): u's own tree parent — radios are half-duplex, so a node sharing
    // its parent's slot could never receive from it (this would deadlock
    // pipelined multi-message broadcast).
    {
      const NodeId w = part_->parent[u];
      if (w != u && colored[w]) forbidden.push_back(color_[w]);
    }
    std::sort(forbidden.begin(), forbidden.end());
    forbidden.erase(std::unique(forbidden.begin(), forbidden.end()),
                    forbidden.end());
    std::uint32_t c = 0;
    for (std::uint32_t f : forbidden) {
      if (f == c) {
        ++c;
      } else if (f > c) {
        break;
      }
    }
    color_[u] = c;
    colored[u] = 1;
    period_ = std::max(period_, c + 1);
  }
}

}  // namespace radiocast::schedule
