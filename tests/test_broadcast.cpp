// Broadcast = Compete({s}) — Theorem 5.1.
#include "core/broadcast.hpp"

#include <gtest/gtest.h>

#include "core/theory.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace radiocast::core {
namespace {

TEST(Broadcast, InformsEveryoneOnGrid) {
  const graph::Graph g = graph::grid(12, 12);
  const auto r = broadcast(g, 22, 0, 555, CompeteParams{}, 1);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.informed, g.node_count());
  EXPECT_EQ(r.message, 555u);
}

TEST(Broadcast, EquivalentToCompeteSingleton) {
  const graph::Graph g = graph::path_of_cliques(12, 6);
  const auto b = broadcast(g, 34, 5, 99, CompeteParams{}, 42);
  const auto c = compete(g, 34, {{5, 99}}, CompeteParams{}, 42);
  EXPECT_EQ(b.rounds, c.rounds);
  EXPECT_EQ(b.success, c.success);
  EXPECT_EQ(b.informed, c.informed);
}

TEST(Broadcast, DefaultMessageIsSourceDerived) {
  const graph::Graph g = graph::path(10);
  const auto r = broadcast(g, 9, 3, CompeteParams{}, 2);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.message, 4u);  // source id + 1
}

TEST(Broadcast, SourceAtEveryPositionWorks) {
  const graph::Graph g = graph::path(60);
  for (graph::NodeId s : {0u, 29u, 59u}) {
    const auto r = broadcast(g, 59, s, 7, CompeteParams{}, 3 + s);
    EXPECT_TRUE(r.success) << "source " << s;
  }
}

TEST(Broadcast, CompletesWithinBudgetFactorOfTheory) {
  // Not a performance guarantee — just that the round budget (a multiple
  // of the theory bound) was never the stopping reason on a benign family.
  const graph::Graph g = graph::path_of_cliques(25, 8);
  const auto d = graph::diameter_double_sweep(g);
  const auto r = broadcast(g, d, 0, 1, CompeteParams{}, 4);
  ASSERT_TRUE(r.success);
  EXPECT_LT(static_cast<double>(r.rounds),
            60.0 * theory::bound_cd(g.node_count(), d));
}

TEST(Broadcast, DiameterHintCanBeUpperBound) {
  // Nodes only know an upper bound on D; a 2x overestimate must still work.
  const graph::Graph g = graph::grid(10, 10);
  const auto r = broadcast(g, 2 * 18, 0, 9, CompeteParams{}, 5);
  EXPECT_TRUE(r.success);
}

}  // namespace
}  // namespace radiocast::core
