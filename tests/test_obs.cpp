// The observability layer's contracts:
//   * TraceSession — the flushed file is well-formed Chrome trace JSON
//     (Perfetto-loadable shape: traceEvents with name/ph/pid/tid/ts, "X"
//     events carrying dur, thread_name metadata), nested spans close in
//     the right order, ring wrap drops oldest events and counts them.
//   * Histogram — the log2 bucketing law, exact count/sum, percentile
//     semantics (upper bound of the covering bucket).
//   * Metrics — registry snapshot skips silent instruments, renders
//     name-sorted, reset keeps references valid.
//   * The non-interference promise: a traced sweep's CSV/JSON at
//     --timing=off is byte-identical to an untraced one, and the disabled
//     instrumentation path is cheap enough to live in round kernels.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exp/planner.hpp"
#include "exp/report.hpp"
#include "exp/spec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/runner.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace radiocast::obs {
namespace {

std::string trace_file(const char* name) {
  return ::testing::TempDir() + "radiocast_" + name + ".trace.json";
}

util::Json flush_and_parse(const std::string& path) {
  const std::string written = TraceSession::global().stop_and_flush();
  EXPECT_EQ(written, path);
  std::ifstream f(path);
  std::stringstream buffer;
  buffer << f.rdbuf();
  std::remove(path.c_str());
  return util::Json::parse(buffer.str());
}

/// Events (non-metadata) with the given name, in file order.
std::vector<const util::Json*> events_named(const util::Json& trace,
                                            const std::string& name) {
  std::vector<const util::Json*> out;
  for (const util::Json& e : trace.find("traceEvents")->items()) {
    if (e.find("name")->as_string() == name) out.push_back(&e);
  }
  return out;
}

// ------------------------------------------------------------ trace session

TEST(Trace, FlushedFileIsWellFormedChromeTraceJson) {
  const std::string path = trace_file("wellformed");
  TraceSession::global().start(path);
  set_thread_name("obs-test-main");
  {
    TraceSpan outer("outer.span", "a", 1, "b", 2);
    {
      TraceSpan inner("inner.span");
      trace_instant("mid.instant");
    }
  }
  trace_counter("some.counter", 42);
  const util::Json trace = flush_and_parse(path);

  EXPECT_EQ(trace.find("displayTimeUnit")->as_string(), "ms");
  const util::Json* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GT(events->size(), 0u);

  bool saw_thread_name = false;
  for (const util::Json& e : events->items()) {
    // Every event carries the Perfetto-required fields.
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("ph"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    const std::string ph = e.find("ph")->as_string();
    if (ph == "M") {
      if (e.find("name")->as_string() == "thread_name" &&
          e.find("args")->find("name")->as_string() == "obs-test-main") {
        saw_thread_name = true;
      }
      continue;
    }
    ASSERT_NE(e.find("ts"), nullptr);
    if (ph == "X") {
      ASSERT_NE(e.find("dur"), nullptr);
      EXPECT_GE(e.find("dur")->as_number(), 0.0);
    }
  }
  EXPECT_TRUE(saw_thread_name);

  // Span arguments round-trip.
  const auto outer = events_named(trace, "outer.span");
  ASSERT_EQ(outer.size(), 1u);
  EXPECT_EQ(outer[0]->find("ph")->as_string(), "X");
  EXPECT_DOUBLE_EQ(outer[0]->find("args")->find("a")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(outer[0]->find("args")->find("b")->as_number(), 2.0);

  // Nesting: inner is contained in outer's [ts, ts+dur] window, and the
  // instant fired inside inner.
  const auto inner = events_named(trace, "inner.span");
  const auto instant = events_named(trace, "mid.instant");
  ASSERT_EQ(inner.size(), 1u);
  ASSERT_EQ(instant.size(), 1u);
  EXPECT_EQ(instant[0]->find("ph")->as_string(), "i");
  const double o_ts = outer[0]->find("ts")->as_number();
  const double o_end = o_ts + outer[0]->find("dur")->as_number();
  const double i_ts = inner[0]->find("ts")->as_number();
  const double i_end = i_ts + inner[0]->find("dur")->as_number();
  EXPECT_LE(o_ts, i_ts);
  EXPECT_LE(i_end, o_end);
  EXPECT_LE(i_ts, instant[0]->find("ts")->as_number());
  EXPECT_LE(instant[0]->find("ts")->as_number(), i_end);

  // Counter events carry their value under args.value.
  const auto counter = events_named(trace, "some.counter");
  ASSERT_EQ(counter.size(), 1u);
  EXPECT_EQ(counter[0]->find("ph")->as_string(), "C");
  EXPECT_DOUBLE_EQ(counter[0]->find("args")->find("value")->as_number(),
                   42.0);
}

TEST(Trace, RingWrapDropsOldestAndCounts) {
  const std::string path = trace_file("ringwrap");
  TraceSession::global().start(path, /*events_per_thread=*/4);
  for (int i = 0; i < 10; ++i) trace_counter("wrap.sample", i);
  const util::Json trace = flush_and_parse(path);
  EXPECT_EQ(TraceSession::global().dropped(), 6u);

  // The survivors are the NEWEST four samples, in order.
  const auto kept = events_named(trace, "wrap.sample");
  ASSERT_EQ(kept.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(kept[i]->find("args")->find("value")->as_number(),
                     6.0 + i);
  }
  const auto dropped = events_named(trace, "trace.dropped_events");
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_DOUBLE_EQ(dropped[0]->find("args")->find("value")->as_number(), 6.0);
}

TEST(Trace, SessionLifecycle) {
  // No session: everything is a cheap no-op.
  EXPECT_FALSE(TraceSession::global().active());
  EXPECT_EQ(TraceSession::global().stop_and_flush(), "");
  trace_instant("goes.nowhere");
  { TraceSpan span("also.nowhere"); }

  const std::string path = trace_file("lifecycle");
  TraceSession::global().start(path);
  EXPECT_TRUE(TraceSession::global().active());
  // Second start while active is a loud error, not a silent truncation.
  EXPECT_THROW(TraceSession::global().start(trace_file("second")),
               std::runtime_error);
  trace_instant("one.event");
  const util::Json trace = flush_and_parse(path);
  EXPECT_FALSE(TraceSession::global().active());
  EXPECT_EQ(events_named(trace, "one.event").size(), 1u);
  // Events recorded after the flush belong to no session and are lost.
  trace_instant("too.late");
}

TEST(Trace, UnwritablePathThrowsOnFlush) {
  TraceSession::global().start("/nonexistent-dir/trace.json");
  trace_instant("doomed");
  EXPECT_THROW(TraceSession::global().stop_and_flush(), std::runtime_error);
  EXPECT_FALSE(TraceSession::global().active());
}

// -------------------------------------------------------------- histograms

TEST(Histogram, Log2BucketingLaw) {
  // bucket 0 holds exactly 0; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(7), 3);
  EXPECT_EQ(Histogram::bucket_of(8), 4);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64);
  EXPECT_EQ(Histogram::bucket_max(0), 0u);
  EXPECT_EQ(Histogram::bucket_max(1), 1u);
  EXPECT_EQ(Histogram::bucket_max(2), 3u);
  EXPECT_EQ(Histogram::bucket_max(3), 7u);
  EXPECT_EQ(Histogram::bucket_max(64), ~std::uint64_t{0});
}

TEST(Histogram, CountSumAndPercentiles) {
  Histogram h;
  for (const std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 7ull, 8ull}) {
    h.record(v);
  }
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 25u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.bucket(4), 1u);
  // Percentile = upper bound of the bucket where the cumulative count
  // reaches ceil(q * total). ceil(0.5 * 7) = 4 -> bucket 2 -> 3;
  // ceil(0.99 * 7) = 7 -> bucket 4 -> 15.
  EXPECT_EQ(h.percentile(0.50), 3u);
  EXPECT_EQ(h.percentile(0.99), 15u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.50), 0u);
}

// ---------------------------------------------------------------- registry

TEST(Metrics, SnapshotSkipsSilentInstrumentsAndSortsNames) {
  Metrics& m = Metrics::global();
  // Process-global registry: use unique names and clean the values up so
  // other tests' snapshots are not polluted.
  m.counter("ztest.obs.silent");  // registered, never incremented
  Counter& hits = m.counter("ztest.obs.hits");
  Counter& misses = m.counter("ztest.obs.a_misses");
  Histogram& lat = m.histogram("ztest.obs.lat");
  hits.add(3);
  misses.add();
  lat.record(5);
  lat.record(1000);

  const util::Json snap = m.snapshot_json();
  const util::Json* counters = snap.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("ztest.obs.silent"), nullptr);
  EXPECT_DOUBLE_EQ(counters->find("ztest.obs.hits")->as_number(), 3.0);
  // std::map iteration: "ztest.obs.a_misses" renders before
  // "ztest.obs.hits".
  int a_at = -1, hits_at = -1, at = 0;
  for (const auto& [name, value] : counters->members()) {
    if (name == "ztest.obs.a_misses") a_at = at;
    if (name == "ztest.obs.hits") hits_at = at;
    ++at;
  }
  ASSERT_GE(a_at, 0);
  ASSERT_GE(hits_at, 0);
  EXPECT_LT(a_at, hits_at);

  const util::Json* histo = snap.find("histograms")->find("ztest.obs.lat");
  ASSERT_NE(histo, nullptr);
  EXPECT_DOUBLE_EQ(histo->find("count")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(histo->find("sum")->as_number(), 1005.0);
  EXPECT_EQ(histo->find("buckets")->size(), 2u);

  // reset() zeroes values but the hoisted references stay usable.
  hits.reset();
  misses.reset();
  lat.reset();
  hits.add();
  EXPECT_EQ(hits.value(), 1u);
  hits.reset();
}

// ------------------------------------------------- report non-interference

exp::SweepSpec tiny_spec() {
  exp::SweepSpec spec;
  spec.families = {"gnp", "grid"};
  spec.n = {96};
  spec.p = {8.0};
  spec.p_is_degree = true;
  spec.protocols = {"decay"};
  spec.mediums = {radio::MediumKind::kScalar, radio::MediumKind::kSharded};
  spec.recoveries = {radio::RecoveryStrategy::kAuto};
  spec.lanes = 8;
  spec.reps = 8;
  spec.seed = 11;
  return spec;
}

/// CSV + JSON of the tiny grid with timing off — the byte-stable rendering.
std::pair<std::string, std::string> render_sweep() {
  const exp::SweepSpec spec = tiny_spec();
  const auto jobs = exp::expand(spec);
  sim::Runner runner(2);
  const auto results = exp::Planner().run(jobs, runner);
  util::Table table(exp::long_headers(/*timing=*/false));
  for (const auto& point : results) {
    exp::add_long_row(table, exp::point_meta(point), point.acc,
                      /*timing=*/false);
  }
  return {table.to_csv(),
          exp::sweep_json(spec, results, /*timing=*/false).dump(2)};
}

TEST(Trace, DoesNotChangeReportBytesAtTimingOff) {
  const auto [csv_off, json_off] = render_sweep();
  ASSERT_FALSE(csv_off.empty());

  const std::string path = trace_file("noninterference");
  TraceSession::global().start(path);
  const auto [csv_on, json_on] = render_sweep();
  const util::Json trace = flush_and_parse(path);

  EXPECT_EQ(csv_off, csv_on);
  EXPECT_EQ(json_off, json_on);
  // And the trace genuinely observed the run: round spans from both
  // backends and the runner pool's task spans are present.
  EXPECT_FALSE(events_named(trace, "runner.task").empty());
  EXPECT_FALSE(events_named(trace, "scalar.round").empty());
  EXPECT_FALSE(events_named(trace, "sharded.batch_round").empty());
}

TEST(Report, TimingGateControlsPoolRollupAndMetrics) {
  const exp::SweepSpec spec = tiny_spec();
  const auto jobs = exp::expand(spec);
  sim::Runner runner(1);
  const auto results = exp::Planner().run(jobs, runner);

  const util::Json timed = exp::sweep_json(spec, results, /*timing=*/true);
  const util::Json* pool = timed.find("pool");
  ASSERT_NE(pool, nullptr);
  ASSERT_NE(pool->find("steal_attempts"), nullptr);
  ASSERT_NE(pool->find("steals"), nullptr);
  ASSERT_NE(pool->find("idle_ns"), nullptr);
  ASSERT_NE(timed.find("metrics"), nullptr);
  ASSERT_NE(timed.find("metrics")->find("histograms"), nullptr);

  const util::Json untimed = exp::sweep_json(spec, results, /*timing=*/false);
  EXPECT_EQ(untimed.find("pool"), nullptr);
  EXPECT_EQ(untimed.find("metrics"), nullptr);
}

// --------------------------------------------------- disabled-path overhead

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define RADIOCAST_OBS_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define RADIOCAST_OBS_SANITIZED 1
#endif
#endif

TEST(Trace, DisabledPathStaysCheap) {
#if defined(RADIOCAST_OBS_SANITIZED) || !defined(NDEBUG)
  GTEST_SKIP() << "overhead bar only meaningful in optimised builds";
#else
  ASSERT_FALSE(TraceSession::global().active());
  constexpr int kIters = 2'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t sink = 0;
  for (int i = 0; i < kIters; ++i) {
    const TraceSpan span("bar.span", "i", static_cast<std::uint64_t>(i));
    trace_instant("bar.instant");
    sink += static_cast<std::uint64_t>(i);
  }
  const double ns_per_iter =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - t0)
          .count() /
      kIters;
  EXPECT_NE(sink, 0u);
  // Each iteration is two relaxed loads + branches; the bar is deliberately
  // generous (shared CI machines), but catches any accidental lock or
  // allocation sneaking onto the disabled path.
  EXPECT_LT(ns_per_iter, 250.0);
#endif
}

}  // namespace
}  // namespace radiocast::obs
