#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace radiocast::graph {
namespace {

TEST(Bfs, DistancesOnPath) {
  const Graph g = path(6);
  const auto d = bfs_distances(g, 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(d[v], v);
}

TEST(Bfs, UnreachableMarked) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(Bfs, TreeParentsConsistent) {
  util::Rng rng(3);
  const Graph g = gnp(150, 0.04, rng);
  const auto t = bfs_tree(g, 0);
  EXPECT_EQ(t.parent[0], 0u);
  for (NodeId v = 1; v < g.node_count(); ++v) {
    ASSERT_NE(t.parent[v], kInvalidNode);
    EXPECT_EQ(t.dist[v], t.dist[t.parent[v]] + 1);
    EXPECT_TRUE(g.has_edge(v, t.parent[v]));
  }
}

TEST(Bfs, SourceOutOfRangeThrows) {
  const Graph g = path(3);
  EXPECT_THROW(bfs_distances(g, 3), std::out_of_range);
}

TEST(MultiBfs, NearestSourceAssignment) {
  const Graph g = path(10);
  const auto r = multi_source_bfs(g, {0, 9});
  EXPECT_EQ(r.dist[0], 0u);
  EXPECT_EQ(r.dist[9], 0u);
  EXPECT_EQ(r.dist[4], 4u);
  EXPECT_EQ(r.nearest_source[1], 0u);
  EXPECT_EQ(r.nearest_source[8], 9u);
}

TEST(MultiBfs, MatchesMinOfSingleSourceBfs) {
  util::Rng rng(5);
  const Graph g = random_geometric(200, 0.1, rng);
  const std::vector<NodeId> sources{3, 77, 150};
  const auto multi = multi_source_bfs(g, sources);
  std::vector<std::vector<std::uint32_t>> singles;
  for (NodeId s : sources) singles.push_back(bfs_distances(g, s));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    std::uint32_t best = kUnreachable;
    for (const auto& d : singles) best = std::min(best, d[v]);
    EXPECT_EQ(multi.dist[v], best);
  }
}

TEST(Components, CountsAndLabels) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Graph g = b.build();
  const auto c = connected_components(g);
  EXPECT_EQ(c[0], c[1]);
  EXPECT_EQ(c[1], c[2]);
  EXPECT_EQ(c[3], c[4]);
  EXPECT_NE(c[0], c[3]);
  EXPECT_NE(c[5], c[0]);
  EXPECT_NE(c[5], c[3]);
}

TEST(Components, ConnectedPredicates) {
  EXPECT_TRUE(is_connected(path(5)));
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_FALSE(is_connected(b.build()));
  EXPECT_TRUE(is_connected(GraphBuilder(0).build()));
}

TEST(Diameter, ExactOnKnownGraphs) {
  EXPECT_EQ(diameter_exact(path(7)), 6u);
  EXPECT_EQ(diameter_exact(cycle(9)), 4u);
  EXPECT_EQ(diameter_exact(clique(5)), 1u);
  EXPECT_EQ(diameter_exact(grid(3, 3)), 4u);
}

TEST(Diameter, DoubleSweepExactOnTrees) {
  util::Rng rng(7);
  for (int i = 0; i < 5; ++i) {
    const Graph g = random_recursive_tree(120, rng);
    EXPECT_EQ(diameter_double_sweep(g), diameter_exact(g));
  }
}

TEST(Diameter, DoubleSweepIsLowerBound) {
  util::Rng rng(9);
  const Graph g = gnp(150, 0.03, rng);
  EXPECT_LE(diameter_double_sweep(g), diameter_exact(g));
}

TEST(Diameter, BoundsBracketExact) {
  util::Rng rng(11);
  for (int i = 0; i < 5; ++i) {
    const Graph g = random_geometric(150, 0.12, rng);
    const auto exact = diameter_exact(g);
    const auto [lo, hi] = diameter_bounds(g);
    EXPECT_LE(lo, exact);
    EXPECT_GE(hi, exact);
  }
}

TEST(Eccentricity, CenterVsEndOfPath) {
  const Graph g = path(9);
  EXPECT_EQ(eccentricity(g, 0), 8u);
  EXPECT_EQ(eccentricity(g, 4), 4u);
}

TEST(Eccentricity, DisconnectedThrows) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_THROW(eccentricity(b.build(), 0), std::invalid_argument);
}

TEST(ShortestPath, EndpointsAndLength) {
  const Graph g = grid(4, 4);
  const auto p = shortest_path(g, 0, 15);
  ASSERT_FALSE(p.empty());
  EXPECT_EQ(p.front(), 0u);
  EXPECT_EQ(p.back(), 15u);
  EXPECT_EQ(p.size(), bfs_distances(g, 0)[15] + 1);
  for (std::size_t i = 1; i < p.size(); ++i) {
    EXPECT_TRUE(g.has_edge(p[i - 1], p[i]));
  }
}

TEST(ShortestPath, TrivialAndUnreachable) {
  const Graph g = path(3);
  const auto self = shortest_path(g, 1, 1);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self[0], 1u);
  GraphBuilder b(4);
  b.add_edge(0, 1);
  EXPECT_TRUE(shortest_path(b.build(), 0, 3).empty());
}

TEST(ShortestPath, CanonicalIsDeterministic) {
  util::Rng rng(13);
  const Graph g = gnp(100, 0.05, rng);
  const auto p1 = shortest_path(g, 2, 50);
  const auto p2 = shortest_path(g, 2, 50);
  EXPECT_EQ(p1, p2);  // Section 4's "canonical shortest path" is fixed
}

TEST(Degeneracy, KnownValues) {
  EXPECT_EQ(degeneracy(path(10)), 1u);
  EXPECT_EQ(degeneracy(cycle(10)), 2u);
  EXPECT_EQ(degeneracy(clique(6)), 5u);
  EXPECT_EQ(degeneracy(star(10)), 1u);
  EXPECT_EQ(degeneracy(grid(5, 5)), 2u);
}

}  // namespace
}  // namespace radiocast::graph
