// Intra-Cluster Propagation windows (Algorithm 3 + 4), synchronized runner.
#include "schedule/intra_cluster.hpp"

#include <gtest/gtest.h>

#include "cluster/partition_stats.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace radiocast::schedule {
namespace {

using cluster::Partition;
using cluster::partition;
using radio::kNoPayload;
using radio::Payload;

/// One big cluster covering a path: centre = node 0.
Partition whole_path_cluster(graph::NodeId n) {
  Partition p;
  p.beta = 0.1;
  p.center.assign(n, 0);
  p.dist_to_center.resize(n);
  p.parent.resize(n);
  p.delta.assign(n, 0.0);
  for (graph::NodeId v = 0; v < n; ++v) {
    p.dist_to_center[v] = v;
    p.parent[v] = v == 0 ? 0 : v - 1;
  }
  return p;
}

TEST(Icp, OutwardWaveInformsWithinHopBudget) {
  const graph::Graph g = graph::path(20);
  const Partition p = whole_path_cluster(20);
  const TreeSchedule sched(g, p, ScheduleMode::kPipelined);
  radio::Network net(g);
  std::vector<Payload> best(20, kNoPayload);
  best[0] = 77;  // centre knows
  IcpParams params;
  params.pass_hops = 8;
  params.with_background = false;
  util::Rng rng(1);
  run_icp_window(net, sched, best, params, rng);
  for (graph::NodeId v = 0; v <= 8; ++v) EXPECT_EQ(best[v], 77u) << v;
  for (graph::NodeId v = 9; v < 20; ++v) EXPECT_EQ(best[v], kNoPayload) << v;
}

TEST(Icp, InwardWaveLiftsHigherMessageToCenter) {
  const graph::Graph g = graph::path(20);
  const Partition p = whole_path_cluster(20);
  const TreeSchedule sched(g, p, ScheduleMode::kPipelined);
  radio::Network net(g);
  std::vector<Payload> best(20, kNoPayload);
  best[0] = 10;   // centre's value
  best[6] = 99;   // deeper node knows better
  IcpParams params;
  params.pass_hops = 8;
  params.with_background = false;
  util::Rng rng(2);
  run_icp_window(net, sched, best, params, rng);
  EXPECT_EQ(best[0], 99u);          // centre adopted the max (pass 2)
  for (graph::NodeId v = 0; v <= 8; ++v) {
    EXPECT_EQ(best[v], 99u) << v;   // redistributed outward (pass 3)
  }
}

TEST(Icp, NodeBeyondBudgetDoesNotReachCenter) {
  const graph::Graph g = graph::path(20);
  const Partition p = whole_path_cluster(20);
  const TreeSchedule sched(g, p, ScheduleMode::kPipelined);
  radio::Network net(g);
  std::vector<Payload> best(20, kNoPayload);
  best[0] = 10;
  best[15] = 99;  // beyond the 8-hop curtail
  IcpParams params;
  params.pass_hops = 8;
  params.with_background = false;
  util::Rng rng(3);
  run_icp_window(net, sched, best, params, rng);
  EXPECT_EQ(best[0], 10u);  // curtail respected
}

TEST(Icp, RoundAccountingPipelined) {
  const graph::Graph g = graph::path(10);
  const Partition p = whole_path_cluster(10);
  const TreeSchedule sched(g, p, ScheduleMode::kPipelined);
  radio::Network net(g);
  std::vector<Payload> best(10, kNoPayload);
  best[0] = 1;
  IcpParams params;
  params.pass_hops = 5;
  params.with_background = false;
  util::Rng rng(4);
  const auto stats = run_icp_window(net, sched, best, params, rng);
  EXPECT_EQ(stats.rounds, 15u);  // 3 passes x 5 hops, no background
  params.with_background = true;
  std::vector<Payload> best2(10, kNoPayload);
  best2[0] = 1;
  const auto stats2 = run_icp_window(net, sched, best2, params, rng);
  EXPECT_EQ(stats2.rounds, 30u);  // interleaved 1:1
}

/// Deterministic-collision gadget: path 0-1-2 with clusters A={0,1}
/// (centre 0) and B={2} (centre 2). At wave time 0 both centres transmit;
/// node 1's parent delivery is garbled by the foreign centre 2 every
/// outward pass.
struct RiskyGadget {
  graph::Graph g = graph::path(3);
  Partition p;
  RiskyGadget() {
    p.beta = 0.1;
    p.center = {0, 0, 2};
    p.dist_to_center = {0, 1, 0};
    p.parent = {0, 0, 2};
    p.delta.assign(3, 0.0);
  }
};

TEST(Icp, ForeignClusterBlocksRiskyNodeWithoutBackground) {
  RiskyGadget gadget;
  const TreeSchedule sched(gadget.g, gadget.p, ScheduleMode::kPipelined);
  radio::Network net(gadget.g);
  std::vector<Payload> best{50, kNoPayload, 60};
  IcpParams params;
  params.pass_hops = 2;
  params.with_background = false;
  util::Rng rng(5);
  const auto stats = run_icp_window(net, sched, best, params, rng);
  // Both outward passes block node 1 (centre 0 and foreign centre 2
  // transmit in the same wave slot), and nothing can rescue it.
  EXPECT_GE(stats.blocked, 2u);
  EXPECT_EQ(best[1], kNoPayload);
}

TEST(Icp, BackgroundRescuesRiskyNodes) {
  // Same gadget with Algorithm 4 enabled: the per-cluster coordinated
  // coins eventually let cluster A transmit alone, informing node 1.
  RiskyGadget gadget;
  const TreeSchedule sched(gadget.g, gadget.p, ScheduleMode::kPipelined);
  radio::Network net(gadget.g);
  std::vector<Payload> best{50, kNoPayload, 60};
  IcpParams params;
  params.pass_hops = 2;
  params.with_background = true;
  util::Rng rng(6);
  std::uint64_t rescued = 0;
  // Note: node 1 may also hear the *foreign* centre via Decay (best gets
  // set without a rescue); keep iterating until a same-cluster rescue
  // happened so the mechanism itself is exercised.
  for (int w = 0; w < 200 && rescued == 0; ++w) {
    params.window_id = w;
    rescued += run_icp_window(net, sched, best, params, rng).rescued;
  }
  EXPECT_GT(rescued, 0u);
  EXPECT_NE(best[1], kNoPayload);
}

TEST(Icp, ColoredModeInformsPhysically) {
  util::Rng rng(7);
  const graph::Graph g = graph::grid(10, 10);
  const Partition p = cluster::partition(g, 0.15, rng);
  const TreeSchedule sched(g, p, ScheduleMode::kColored);
  radio::Network net(g);
  std::vector<Payload> best(g.node_count(), kNoPayload);
  // every centre starts with a value
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    if (p.is_center(v)) best[v] = 100 + v;
  }
  IcpParams params;
  params.pass_hops = sched.max_depth() + 1;
  params.with_background = true;
  const auto stats = run_icp_window(net, sched, best, params, rng);
  EXPECT_GT(stats.deliveries, 0u);
  // Every node heard something (its own cluster's wave at least).
  std::size_t informed = 0;
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    informed += best[v] != kNoPayload;
  }
  EXPECT_GT(informed, g.node_count() * 3 / 4);
}

TEST(Icp, EmptyCentersProduceNoTraffic) {
  const graph::Graph g = graph::path(6);
  const Partition p = whole_path_cluster(6);
  const TreeSchedule sched(g, p, ScheduleMode::kPipelined);
  radio::Network net(g);
  std::vector<Payload> best(6, kNoPayload);  // nobody knows anything
  IcpParams params;
  params.pass_hops = 3;
  params.with_background = true;
  util::Rng rng(8);
  const auto stats = run_icp_window(net, sched, best, params, rng);
  EXPECT_EQ(stats.deliveries, 0u);
  for (auto b : best) EXPECT_EQ(b, kNoPayload);
}

}  // namespace
}  // namespace radiocast::schedule
