// The crash-safety subsystem's contracts:
//   * FaultSpec — the RADIOCAST_FAULT grammar parses strictly.
//   * Checkpoint — journal round trip (exact doubles, full-range uint64
//     counters, NaN metrics), torn/corrupt-tail tolerance, interior
//     corruption and stale-spec rejection.
//   * Planner::run_durable — THE resume promise: a sweep killed at ANY
//     task boundary and resumed produces byte-identical CSV + JSON
//     (timing off) to an uninterrupted run; graceful drain leaves a
//     resumable journal; watchdog + retry absorb transient faults and
//     quarantine poisoned tasks.
//   * Report — atomic writes that THROW on I/O failure instead of
//     logging and returning "".
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exp/checkpoint.hpp"
#include "exp/fault.hpp"
#include "exp/planner.hpp"
#include "exp/report.hpp"
#include "exp/spec.hpp"
#include "sim/runner.hpp"
#include "util/fsio.hpp"
#include "util/table.hpp"

namespace radiocast::exp {
namespace {

/// Every test leaves the process-global harness disarmed: faults off,
/// no pending shutdown, no io hook. Tests in one binary share them.
struct HarnessGuard {
  HarnessGuard() { reset(); }
  ~HarnessGuard() { reset(); }
  static void reset() {
    FaultInjector::global().configure(FaultSpec{});
    FaultInjector::global().cancel_hangs();
    clear_shutdown();
    util::set_io_fault_hook(nullptr);
  }
};

/// The sweep-test grid: 8 jobs (gnp/grid x n x scalar/bitslice), one
/// lane-batch task per job -> 8 tasks.
SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.families = {"gnp", "grid"};
  spec.n = {96, 128};
  spec.p = {8.0};
  spec.p_is_degree = true;
  spec.protocols = {"decay"};
  spec.mediums = {radio::MediumKind::kScalar, radio::MediumKind::kBitslice};
  spec.recoveries = {radio::RecoveryStrategy::kAuto};
  spec.lanes = 16;
  spec.reps = 8;
  spec.seed = 5;
  return spec;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// The deterministic report bytes (timing off) for a run's points.
std::pair<std::string, std::string> render(
    const SweepSpec& spec, const RunOutcome& outcome) {
  util::Table table(long_headers(/*timing=*/false));
  for (const auto& point : outcome.points) {
    add_long_row(table, point_meta(point), point.acc, /*timing=*/false);
  }
  return {table.to_csv(),
          sweep_json(spec, outcome.points, /*timing=*/false,
                     &outcome.quarantined)
              .dump(2)};
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::stringstream buffer;
  buffer << f.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << content;
}

std::vector<std::string> journal_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      lines.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return lines;
}

// --------------------------------------------------------------- FaultSpec

TEST(FaultSpec, ParsesTheWholeGrammar) {
  EXPECT_EQ(FaultSpec::parse("kill@3").kind, FaultSpec::Kind::kKill);
  EXPECT_EQ(FaultSpec::parse("kill@3").index, 3u);
  EXPECT_EQ(FaultSpec::parse("kill@0").index, 0u);
  EXPECT_EQ(FaultSpec::parse("abort@2").kind, FaultSpec::Kind::kAbort);
  EXPECT_EQ(FaultSpec::parse("io-fail@7").kind, FaultSpec::Kind::kIoFail);
  EXPECT_EQ(FaultSpec::parse("io-fail@7").index, 7u);
  const FaultSpec tthrow = FaultSpec::parse("task-throw@4x3");
  EXPECT_EQ(tthrow.kind, FaultSpec::Kind::kTaskThrow);
  EXPECT_EQ(tthrow.index, 4u);
  EXPECT_EQ(tthrow.times, 3);
  EXPECT_EQ(FaultSpec::parse("task-throw@4").times, 1);
  EXPECT_EQ(FaultSpec::parse("task-hang@1").kind, FaultSpec::Kind::kTaskHang);
  EXPECT_EQ(FaultSpec::parse("sigint@5").kind, FaultSpec::Kind::kSigint);
}

TEST(FaultSpec, RejectsJunkStrictly) {
  for (const char* bad :
       {"", "kill", "kill@", "@3", "kill@x", "kill@-1", "kill@1.5",
        "frob@1", "abort@0", "io-fail@0", "io-fail@junk", "task-throw@1x0",
        "task-throw@1x", "kill@1 ", "KILL@1"}) {
    EXPECT_THROW((void)FaultSpec::parse(bad), std::invalid_argument) << bad;
  }
}

// -------------------------------------------------------------- Checkpoint

TEST(Checkpoint, JournalRoundTripsExactValues) {
  HarnessGuard guard;
  const std::string dir = fresh_dir("radiocast_cp_roundtrip");
  const SweepSpec spec = tiny_spec();

  TaskOutcome out;
  out.n_actual = 96;
  out.diameter = 7;
  out.gen_ns = (1ull << 60) + 3;  // beyond 2^53: must survive exactly
  out.wall_ms = 1.0 / 3.0;        // needs max_digits10 round trip
  out.phases.traverse_ns = (1ull << 55) + 1;
  out.phases.constfold_rounds = 42;
  out.phases.steal_attempts = 19;
  out.phases.steals = 6;
  out.phases.idle_ns = (1ull << 54) + 9;
  LaneOutcome lane;
  lane.success = true;
  lane.rounds = 17.0;
  lane.informed = 96.0;
  // deliveries/transmissions stay NaN (absent) — journaled as null.
  out.lanes.push_back(lane);

  TaskOutcome poisoned;
  poisoned.quarantined = true;
  poisoned.error = "injected \"quoted\" failure\nwith newline";

  {
    auto cp = Checkpoint::start(dir, spec, 8);
    cp->record(2, out);
    cp->record(5, poisoned);
  }

  auto cp = Checkpoint::resume(dir, spec, 8);
  EXPECT_EQ(cp->completed_count(), 2u);
  EXPECT_TRUE(cp->completed(2));
  EXPECT_TRUE(cp->completed(5));
  EXPECT_FALSE(cp->completed(0));
  const TaskOutcome* back = cp->outcome(2);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->n_actual, 96u);
  EXPECT_EQ(back->diameter, 7u);
  EXPECT_EQ(back->gen_ns, (1ull << 60) + 3);
  EXPECT_EQ(back->wall_ms, 1.0 / 3.0);  // bit-exact, not just near
  EXPECT_EQ(back->phases.traverse_ns, (1ull << 55) + 1);
  EXPECT_EQ(back->phases.constfold_rounds, 42u);
  EXPECT_EQ(back->phases.steal_attempts, 19u);
  EXPECT_EQ(back->phases.steals, 6u);
  EXPECT_EQ(back->phases.idle_ns, (1ull << 54) + 9);
  ASSERT_EQ(back->lanes.size(), 1u);
  EXPECT_TRUE(back->lanes[0].success);
  EXPECT_EQ(back->lanes[0].rounds, 17.0);
  EXPECT_TRUE(std::isnan(back->lanes[0].deliveries));
  EXPECT_TRUE(std::isnan(back->lanes[0].transmissions));
  const TaskOutcome* q = cp->outcome(5);
  ASSERT_NE(q, nullptr);
  EXPECT_TRUE(q->quarantined);
  EXPECT_EQ(q->error, poisoned.error);

  cp->remove_journal();
  EXPECT_FALSE(std::filesystem::exists(Checkpoint::journal_path(dir)));
}

TEST(Checkpoint, ToleratesTornTailRejectsInteriorCorruption) {
  HarnessGuard guard;
  const std::string dir = fresh_dir("radiocast_cp_corrupt");
  const SweepSpec spec = tiny_spec();
  TaskOutcome out;
  out.n_actual = 96;
  {
    auto cp = Checkpoint::start(dir, spec, 8);
    cp->record(0, out);
    cp->record(1, out);
  }
  const std::string path = Checkpoint::journal_path(dir);
  const std::string text = read_file(path);

  // Unterminated tail (crash mid-append): dropped, earlier records kept.
  write_file(path, text.substr(0, text.size() - 10));
  EXPECT_EQ(Checkpoint::resume(dir, spec, 8)->completed_count(), 1u);

  // Corrupt FINAL complete line (torn write that still got its newline):
  // dropped likewise.
  {
    std::string damaged = text;
    damaged[damaged.size() - 20] ^= 0x20;
    write_file(path, damaged);
    auto cp = Checkpoint::resume(dir, spec, 8);
    EXPECT_EQ(cp->completed_count(), 1u);
    EXPECT_TRUE(cp->completed(0));
    EXPECT_FALSE(cp->completed(1));
  }

  // Corrupt INTERIOR line: fsync ordering makes this impossible in a
  // real crash, so it is external damage — refuse loudly.
  {
    const auto lines = journal_lines(text);
    ASSERT_EQ(lines.size(), 3u);
    std::string damaged_mid = lines[0] + "\n";
    std::string bad_record = lines[1];
    bad_record[bad_record.size() - 5] ^= 0x20;
    damaged_mid += bad_record + "\n" + lines[2] + "\n";
    write_file(path, damaged_mid);
    EXPECT_THROW((void)Checkpoint::resume(dir, spec, 8), std::runtime_error);
  }

  // Missing journal and empty journal are refusals, not empty resumes.
  std::filesystem::remove(path);
  EXPECT_THROW((void)Checkpoint::resume(dir, spec, 8), std::runtime_error);
  write_file(path, "");
  EXPECT_THROW((void)Checkpoint::resume(dir, spec, 8), std::runtime_error);
}

TEST(Checkpoint, RejectsStaleSpecAndWrongTaskCount) {
  HarnessGuard guard;
  const std::string dir = fresh_dir("radiocast_cp_stale");
  const SweepSpec spec = tiny_spec();
  { auto cp = Checkpoint::start(dir, spec, 8); }

  SweepSpec other = tiny_spec();
  other.reps = 16;  // a different grid entirely
  EXPECT_THROW((void)Checkpoint::resume(dir, other, 8), std::runtime_error);
  EXPECT_THROW((void)Checkpoint::resume(dir, spec, 9), std::runtime_error);
  EXPECT_NE(spec_fingerprint(spec), spec_fingerprint(other));
  EXPECT_NO_THROW((void)Checkpoint::resume(dir, spec, 8));
}

// ------------------------------------------------------- resume byte-identity

/// THE tentpole assertion: for EVERY task boundary k, a run that died
/// right after journaling task k (simulated by truncating a 1-thread
/// run's journal after k+1 records — record order == task order there)
/// resumes to byte-identical reports.
TEST(Planner, ResumeIsByteIdenticalAtEveryTaskBoundary) {
  HarnessGuard guard;
  const SweepSpec spec = tiny_spec();
  const auto jobs = expand(spec);
  const std::size_t task_count = flatten_tasks(jobs).size();
  ASSERT_EQ(task_count, 8u);

  // Uninterrupted journaled run on 1 thread: the reference bytes AND the
  // task-ordered journal the crash simulations truncate.
  const std::string clean_dir = fresh_dir("radiocast_resume_clean");
  std::string clean_journal;
  std::pair<std::string, std::string> clean_bytes;
  {
    auto cp = Checkpoint::start(clean_dir, spec, task_count);
    sim::Runner runner(1);
    const RunOutcome outcome = Planner().run_durable(jobs, runner, cp.get());
    ASSERT_FALSE(outcome.interrupted);
    ASSERT_TRUE(outcome.quarantined.empty());
    EXPECT_EQ(outcome.tasks_run, task_count);
    clean_bytes = render(spec, outcome);
    clean_journal = read_file(Checkpoint::journal_path(clean_dir));
  }
  const auto lines = journal_lines(clean_journal);
  ASSERT_EQ(lines.size(), task_count + 1);  // header + one record per task

  const std::string dir = fresh_dir("radiocast_resume_kill");
  for (std::size_t k = 0; k < task_count; ++k) {
    // Die right after task k's record: journal = header + records 0..k.
    std::string truncated;
    for (std::size_t i = 0; i <= k + 1; ++i) truncated += lines[i] + "\n";
    write_file(Checkpoint::journal_path(dir), truncated);

    auto cp = Checkpoint::resume(dir, spec, task_count);
    EXPECT_EQ(cp->completed_count(), k + 1) << "kill@" << k;
    sim::Runner runner(2);  // resume on a different thread count, too
    const RunOutcome outcome = Planner().run_durable(jobs, runner, cp.get());
    ASSERT_FALSE(outcome.interrupted);
    EXPECT_EQ(outcome.tasks_replayed, k + 1) << "kill@" << k;
    EXPECT_EQ(outcome.tasks_run, task_count - k - 1) << "kill@" << k;
    const auto bytes = render(spec, outcome);
    EXPECT_EQ(clean_bytes.first, bytes.first) << "CSV differs for kill@" << k;
    EXPECT_EQ(clean_bytes.second, bytes.second)
        << "JSON differs for kill@" << k;
  }
}

TEST(Planner, GracefulDrainLeavesResumableJournal) {
  HarnessGuard guard;
  const SweepSpec spec = tiny_spec();
  const auto jobs = expand(spec);
  const std::size_t task_count = flatten_tasks(jobs).size();

  const std::string clean_dir = fresh_dir("radiocast_drain_ref");
  std::pair<std::string, std::string> clean_bytes;
  {
    auto cp = Checkpoint::start(clean_dir, spec, task_count);
    sim::Runner runner(1);
    clean_bytes = render(spec, Planner().run_durable(jobs, runner, cp.get()));
  }

  const std::string dir = fresh_dir("radiocast_drain");
  {
    // sigint@2: task 2 requests shutdown while running; it (and anything
    // in flight) still finishes and journals, later tasks never start.
    FaultInjector::global().configure(FaultSpec::parse("sigint@2"));
    auto cp = Checkpoint::start(dir, spec, task_count);
    sim::Runner runner(1);
    const RunOutcome outcome = Planner().run_durable(jobs, runner, cp.get());
    EXPECT_TRUE(outcome.interrupted);
    EXPECT_TRUE(shutdown_requested());
    EXPECT_EQ(outcome.tasks_run, 3u);  // tasks 0, 1, 2
  }
  HarnessGuard::reset();
  {
    auto cp = Checkpoint::resume(dir, spec, task_count);
    EXPECT_EQ(cp->completed_count(), 3u);
    sim::Runner runner(2);
    const RunOutcome outcome = Planner().run_durable(jobs, runner, cp.get());
    EXPECT_FALSE(outcome.interrupted);
    EXPECT_EQ(render(spec, outcome), clean_bytes);
  }

  // A drain requested BEFORE the run starts no task at all.
  {
    request_shutdown();
    sim::Runner runner(1);
    const RunOutcome outcome = Planner().run_durable(jobs, runner, nullptr);
    EXPECT_TRUE(outcome.interrupted);
    EXPECT_EQ(outcome.tasks_run, 0u);
    clear_shutdown();
  }
}

// --------------------------------------------------- watchdog / retry / etc.

TEST(Planner, TransientFaultIsRetriedInvisibly) {
  HarnessGuard guard;
  const SweepSpec spec = tiny_spec();
  const auto jobs = expand(spec);
  sim::Runner runner(1);
  const auto clean =
      render(spec, Planner().run_durable(jobs, runner, nullptr));

  // Task 3 fails its first attempt; one retry absorbs it byte-invisibly.
  FaultInjector::global().configure(FaultSpec::parse("task-throw@3"));
  const RunOutcome outcome =
      Planner({.retries = 1}).run_durable(jobs, runner, nullptr);
  EXPECT_TRUE(outcome.quarantined.empty());
  EXPECT_EQ(render(spec, outcome), clean);
}

TEST(Planner, PoisonedTaskIsQuarantinedNotFatal) {
  HarnessGuard guard;
  const SweepSpec spec = tiny_spec();
  const auto jobs = expand(spec);
  sim::Runner runner(1);

  // Task 3 fails twice but only one retry is allowed: quarantine.
  FaultInjector::global().configure(FaultSpec::parse("task-throw@3x2"));
  const RunOutcome outcome =
      Planner({.retries = 1}).run_durable(jobs, runner, nullptr);
  ASSERT_EQ(outcome.quarantined.size(), 1u);
  EXPECT_EQ(outcome.quarantined[0].task, 3u);
  EXPECT_FALSE(outcome.quarantined[0].error.empty());
  // The rest of the grid still folded (tiny grid: 1 task per job).
  EXPECT_EQ(outcome.points[3].acc.trials(), 0u);
  EXPECT_GT(outcome.points[4].acc.trials(), 0u);
  // The report document says so.
  const util::Json doc =
      sweep_json(spec, outcome.points, false, &outcome.quarantined);
  ASSERT_NE(doc.find("quarantined"), nullptr);
  EXPECT_EQ(doc.find("quarantined")->items().size(), 1u);

  // run() (the strict legacy entry point) rethrows instead of thinning.
  EXPECT_THROW((void)Planner().run(jobs, runner), std::runtime_error);
  HarnessGuard::reset();

  // Config errors are never quarantined — they rethrow immediately.
  auto broken = jobs;
  broken[0].family = "no-such-family";
  EXPECT_THROW(
      (void)Planner({.retries = 3}).run_durable(broken, runner, nullptr),
      std::invalid_argument);
}

TEST(Planner, WatchdogTimesOutHungTaskThenRetrySucceeds) {
  HarnessGuard guard;
  const SweepSpec spec = tiny_spec();
  const auto jobs = expand(spec);
  sim::Runner runner(1);
  const auto clean =
      render(spec, Planner().run_durable(jobs, runner, nullptr));

  // Task 0's first attempt hangs forever; the watchdog abandons it after
  // 100ms and the retry (attempt 1 >= times 1: the hang is spent) runs
  // clean. Output is byte-identical — the timeout never leaks.
  FaultInjector::global().configure(FaultSpec::parse("task-hang@0"));
  const RunOutcome outcome =
      Planner({.task_timeout_ms = 100, .retries = 1})
          .run_durable(jobs, runner, nullptr);
  EXPECT_TRUE(outcome.quarantined.empty());
  EXPECT_EQ(render(spec, outcome), clean);

  // Without a retry budget the hang quarantines with the watchdog error.
  FaultInjector::global().configure(FaultSpec::parse("task-hang@0"));
  const RunOutcome poisoned =
      Planner({.task_timeout_ms = 100}).run_durable(jobs, runner, nullptr);
  ASSERT_EQ(poisoned.quarantined.size(), 1u);
  EXPECT_NE(poisoned.quarantined[0].error.find("watchdog"),
            std::string::npos);

  // Release the abandoned hangers before their cv outlives the test body.
  FaultInjector::global().cancel_hangs();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

// ------------------------------------------------------------------ report

TEST(Report, WritesAtomicallyAndThrowsOnIoFailure) {
  HarnessGuard guard;
  const std::string dir = fresh_dir("radiocast_report_atomic");
  std::ostringstream log;
  util::Table table({"a", "b"});
  table.row().add(1).add(2);

  const Report report(dir);
  EXPECT_TRUE(report.enabled());
  EXPECT_EQ(report.out_dir(), dir);
  const std::string path = report.write_csv("t", table, log);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(read_file(path), table.to_csv());
  // No .tmp residue from the atomic rename.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // Injected I/O failure: the write THROWS (drivers exit nonzero) and
  // the previous file survives untouched.
  util::set_io_fault_hook([] { return true; });
  util::Table table2({"a", "b"});
  table2.row().add(3).add(4);
  EXPECT_THROW((void)report.write_csv("t", table2, log), std::runtime_error);
  util::Json payload = util::Json::object();
  payload.set("kind", "probe");
  EXPECT_THROW((void)report.write_json("t", std::move(payload), log),
               std::runtime_error);
  util::set_io_fault_hook(nullptr);
  EXPECT_EQ(read_file(path), table.to_csv());

  // Disabled sink: explicit signal, no filesystem contact.
  const Report disabled{""};
  EXPECT_FALSE(disabled.enabled());
  EXPECT_TRUE(disabled.out_dir().empty());
  EXPECT_EQ(disabled.write_csv("t", table, log), "");
}

}  // namespace
}  // namespace radiocast::exp
