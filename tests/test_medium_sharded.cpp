// Work-stealing sharded medium: the slice layout is a pure function of
// the graph (+ the slice knob), per-slice outputs merge in slice-index
// order, and workers only move cost — so every observable (deliveries,
// order included; masks; planes; counters) must be BYTE-IDENTICAL for any
// worker count and any steal interleaving. Plus the node-major/lane-major
// knowledge-plane differential across all four backends: the layout is a
// view, never a semantic.
#include "radio/medium_sharded.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "graph/generators.hpp"
#include "radio/medium.hpp"
#include "util/rng.hpp"

namespace radiocast::radio {
namespace {

using graph::Graph;
using graph::NodeId;

std::vector<std::uint64_t> random_mask(NodeId n, int lanes, double p,
                                       util::Rng& rng) {
  std::vector<std::uint64_t> mask(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (int l = 0; l < lanes; ++l) {
      if (rng.bernoulli(p)) mask[v] |= std::uint64_t{1} << l;
    }
  }
  return mask;
}

/// Everything a batch round observably produces, compared with operator==
/// — vector ORDER included, which is what "byte-identical" means here.
struct BatchObservables {
  std::vector<BatchDeliveredMask> delivered;
  std::vector<BatchDelivery> deliveries;
  std::vector<std::pair<NodeId, std::uint64_t>> collisions;
  std::array<std::uint32_t, kMaxLanes> transmitter_count{};
  std::array<std::uint32_t, kMaxLanes> delivered_count{};
  std::array<std::uint32_t, kMaxLanes> collided_count{};
  std::uint32_t active_listeners = 0;
  std::vector<Payload> best;

  bool operator==(const BatchObservables&) const = default;
};

BatchObservables capture(const BatchOutcome& out, std::vector<Payload> best) {
  BatchObservables o;
  o.delivered = out.delivered;
  o.deliveries = out.deliveries;
  for (const auto& c : out.collisions) o.collisions.emplace_back(c.node, c.lanes);
  o.transmitter_count = out.transmitter_count;
  o.delivered_count = out.delivered_count;
  o.collided_count = out.collided_count;
  o.active_listeners = out.active_listeners;
  o.best = std::move(best);
  return o;
}

/// Runs a fixed multi-round workload (scalar rounds + batch rounds with
/// senders + max-fold rounds, dense and sparse shapes) on one medium and
/// returns every observable in sequence.
std::vector<BatchObservables> run_workload(const Graph& g,
                                           CollisionModel model, int workers,
                                           int slices) {
  const NodeId n = g.node_count();
  ShardedMedium medium(g, model, workers, slices);
  util::Rng rng(4242);  // same stream for every worker count
  std::vector<BatchObservables> trace;
  for (int round = 0; round < 6; ++round) {
    // Alternate dense and sparse-tail shapes so both the gather and the
    // scatter kernels (and their tx-segment prologue) execute.
    const double density = round % 2 == 0 ? 0.3 : 0.01;
    const int lanes = round < 2 ? 1 : 64;
    const auto tx_mask = random_mask(n, lanes, density, rng);
    std::vector<Payload> planes(static_cast<std::size_t>(lanes) * n);
    for (int l = 0; l < lanes; ++l) {
      for (NodeId v = 0; v < n; ++v) {
        planes[static_cast<std::size_t>(l) * n + v] =
            9'000 * static_cast<Payload>(l + 1) + v;
      }
    }
    const PayloadPlanes payload = PayloadPlanes::lane_major(planes, n);

    BatchOutcome out;
    medium.resolve_batch(tx_mask, payload, lanes, out, /*with_senders=*/true);
    trace.push_back(capture(out, {}));

    std::vector<Payload> best(static_cast<std::size_t>(lanes) * n, kNoPayload);
    BatchOutcome fold;
    medium.resolve_batch_max(tx_mask, payload, lanes,
                             KnowledgePlanes::node_major(best, n), fold);
    trace.push_back(capture(fold, std::move(best)));

    // Scalar facade round from the same stream.
    std::vector<NodeId> tx;
    std::vector<Payload> pay;
    for (NodeId v = 0; v < n; ++v) {
      if (tx_mask[v] & 1) {
        tx.push_back(v);
        pay.push_back(100 + v);
      }
    }
    SparseOutcome sp;
    medium.resolve(tx, pay, sp);
    BatchObservables so;
    for (const auto& d : sp.deliveries) {
      so.deliveries.push_back({d.node, 0, d.from, d.payload});
    }
    for (const NodeId c : sp.collided_nodes) so.collisions.emplace_back(c, 1);
    so.transmitter_count[0] = sp.transmitter_count;
    so.collided_count[0] = sp.collided_count;
    so.active_listeners = sp.active_listeners;
    trace.push_back(std::move(so));
  }
  return trace;
}

// Tentpole pin: byte-identical outcomes for 1, 4, and 7 workers over the
// SAME slice layout. The 1-worker run never steals; the multi-worker runs
// steal arbitrarily — none of it may show.
TEST(MediumSharded, WorkerCountByteDeterminism) {
  util::Rng grng(71);
  const Graph g = graph::gnp(260, 0.05, grng);
  for (const CollisionModel model :
       {CollisionModel::kNoDetection, CollisionModel::kDetection}) {
    const auto want = run_workload(g, model, /*workers=*/1, /*slices=*/37);
    for (const int workers : {4, 7}) {
      const auto got = run_workload(g, model, workers, /*slices=*/37);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i], want[i])
            << "workers=" << workers << " step=" << i
            << " model=" << static_cast<int>(model);
      }
    }
  }
}

// Forced-steal stress: slice granularity of ~1 node makes every worker's
// own deque tiny and guarantees heavy stealing; outcomes still match the
// single-worker run exactly, over many repetitions to shake interleavings.
TEST(MediumSharded, ForcedStealStaysDeterministic) {
  util::Rng grng(72);
  const Graph g = graph::gnp(150, 0.08, grng);
  const NodeId n = g.node_count();
  const int slices = static_cast<int>(n);  // ~1 node per slice
  ShardedMedium one(g, CollisionModel::kDetection, 1, slices);
  ShardedMedium many(g, CollisionModel::kDetection, 6, slices);
  EXPECT_EQ(one.slice_count(), many.slice_count());
  util::Rng rng_a(7), rng_b(7);
  for (int round = 0; round < 40; ++round) {
    const auto mask_a = random_mask(n, 64, 0.1, rng_a);
    const auto mask_b = random_mask(n, 64, 0.1, rng_b);
    ASSERT_EQ(mask_a, mask_b);
    std::vector<Payload> shared(n, 5);
    std::vector<Payload> best_a(static_cast<std::size_t>(64) * n, kNoPayload);
    std::vector<Payload> best_b = best_a;
    BatchOutcome out_a, out_b;
    one.resolve_batch_max(mask_a, shared, 64,
                          KnowledgePlanes::node_major(best_a, n), out_a);
    many.resolve_batch_max(mask_b, shared, 64,
                           KnowledgePlanes::node_major(best_b, n), out_b);
    ASSERT_EQ(best_a, best_b) << "round " << round;
    ASSERT_EQ(out_a.delivered, out_b.delivered) << "round " << round;
    ASSERT_EQ(out_a.delivered_count, out_b.delivered_count);
    ASSERT_EQ(out_a.active_listeners, out_b.active_listeners);
  }
}

// The slice layout is worker-count independent (that is WHY outcomes can
// be), while shard_count keeps meaning the worker count.
TEST(MediumSharded, SliceLayoutIndependentOfWorkers) {
  util::Rng grng(73);
  const Graph g = graph::gnp(200, 0.06, grng);
  ShardedMedium a(g, CollisionModel::kNoDetection, 1);
  ShardedMedium b(g, CollisionModel::kNoDetection, 7);
  EXPECT_EQ(a.slice_count(), b.slice_count());
  EXPECT_EQ(a.shard_count(), 1);
  EXPECT_EQ(b.shard_count(), 7);
  EXPECT_EQ(b.worker_count(), 7);

  // Explicit slice knob; capped at node count.
  ShardedMedium c(g, CollisionModel::kNoDetection, 2, 23);
  EXPECT_EQ(c.slice_count(), 23);
  ShardedMedium d(g, CollisionModel::kNoDetection, 2, 1 << 20);
  EXPECT_LE(d.slice_count(), static_cast<int>(g.node_count()));
}

// RADIOCAST_SHARD_SLICES overrides the default; invalid values throw
// (same hardening contract as RADIOCAST_SHARD_THREADS).
TEST(MediumSharded, SliceEnvOverride) {
  util::Rng grng(74);
  const Graph g = graph::gnp(120, 0.05, grng);
  ASSERT_EQ(setenv("RADIOCAST_SHARD_SLICES", "11", 1), 0);
  {
    ShardedMedium m(g, CollisionModel::kNoDetection, 2);
    EXPECT_EQ(m.slice_count(), 11);
    // Explicit argument beats the env var.
    ShardedMedium e(g, CollisionModel::kNoDetection, 2, 5);
    EXPECT_EQ(e.slice_count(), 5);
  }
  ASSERT_EQ(setenv("RADIOCAST_SHARD_SLICES", "banana", 1), 0);
  EXPECT_THROW(ShardedMedium(g, CollisionModel::kNoDetection, 2),
               std::invalid_argument);
  unsetenv("RADIOCAST_SHARD_SLICES");
}

// Node-major vs lane-major knowledge planes: same fold, different view.
// For every backend, folding into a node-major buffer and into a
// lane-major buffer must produce the same (lane, node) values — pinned by
// remapping one onto the other — and the payload side must agree too when
// the planes come in node-major form.
TEST(MediumSharded, NodeMajorLaneMajorDifferentialAllBackends) {
  util::Rng rng(75);
  const Graph g = graph::gnp(140, 0.06, rng);
  const NodeId n = g.node_count();
  constexpr MediumKind kAll[] = {MediumKind::kScalar, MediumKind::kBitslice,
                                 MediumKind::kSharded, MediumKind::kFrontier};
  for (const int lanes : {7, 64}) {
    const auto tx_mask = random_mask(n, lanes, 0.2, rng);
    // Same logical payloads in both layouts.
    std::vector<Payload> lane_major_payload(
        static_cast<std::size_t>(lanes) * n);
    std::vector<Payload> node_major_payload(
        static_cast<std::size_t>(lanes) * n);
    for (int l = 0; l < lanes; ++l) {
      for (NodeId v = 0; v < n; ++v) {
        const Payload p = 3'000 * static_cast<Payload>(l + 1) + v;
        lane_major_payload[static_cast<std::size_t>(l) * n + v] = p;
        node_major_payload[static_cast<std::size_t>(v) * lanes + l] = p;
      }
    }
    for (const MediumKind kind : kAll) {
      auto medium = make_medium(kind, g, CollisionModel::kNoDetection, 3);
      std::vector<Payload> best_lm(static_cast<std::size_t>(lanes) * n,
                                   kNoPayload);
      std::vector<Payload> best_nm(static_cast<std::size_t>(lanes) * n,
                                   kNoPayload);
      BatchOutcome out_lm, out_nm;
      medium->resolve_batch_max(
          tx_mask, PayloadPlanes::lane_major(lane_major_payload, n), lanes,
          KnowledgePlanes::lane_major(best_lm, n), out_lm);
      medium->resolve_batch_max(
          tx_mask, PayloadPlanes::node_major(node_major_payload, n), lanes,
          KnowledgePlanes::node_major(best_nm, n), out_nm);
      EXPECT_EQ(out_lm.delivered, out_nm.delivered) << to_string(kind);
      EXPECT_EQ(out_lm.delivered_count, out_nm.delivered_count)
          << to_string(kind);
      for (int l = 0; l < lanes; ++l) {
        for (NodeId v = 0; v < n; ++v) {
          ASSERT_EQ(best_lm[static_cast<std::size_t>(l) * n + v],
                    best_nm[static_cast<std::size_t>(v) * lanes + l])
              << to_string(kind) << " lane " << l << " node " << v;
        }
      }
    }
  }
}

// Multi-lane folds through the implicit single-plane view must be
// rejected: a raw vector is a 1-lane adapter, not a multi-lane buffer.
TEST(MediumSharded, ImplicitSinglePlaneRejectsMultiLane) {
  util::Rng rng(76);
  const Graph g = graph::gnp(60, 0.1, rng);
  const NodeId n = g.node_count();
  const auto tx_mask = random_mask(n, 8, 0.3, rng);
  const std::vector<Payload> shared(n, 1);
  std::vector<Payload> best(static_cast<std::size_t>(8) * n, kNoPayload);
  ShardedMedium medium(g, CollisionModel::kNoDetection, 2);
  BatchOutcome out;
  EXPECT_THROW(medium.resolve_batch_max(tx_mask, shared, 8, best, out),
               std::invalid_argument);
  // The explicit view over the same buffer is fine.
  medium.resolve_batch_max(tx_mask, shared, 8,
                           KnowledgePlanes::node_major(best, n), out);
}

}  // namespace
}  // namespace radiocast::radio
