// Distributed BFS-tree construction (the Section 1.2 application).
#include "core/bfs_tree.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace radiocast::core {
namespace {

TEST(BfsTree, RootedGrowthOnPath) {
  const graph::Graph g = graph::path(30);
  BfsTreeParams p;
  p.root_hint = 0;
  const auto t = build_bfs_tree(g, 29, p, 1);
  ASSERT_TRUE(t.success);
  EXPECT_EQ(t.root, 0u);
  EXPECT_EQ(t.election_rounds, 0u);  // no election needed
  for (graph::NodeId v = 0; v < 30; ++v) {
    EXPECT_EQ(t.layer[v], v);
    EXPECT_EQ(t.parent[v], v == 0 ? 0u : v - 1);
  }
}

TEST(BfsTree, LayersAreTrueBfsDistances) {
  util::Rng rng(2);
  const graph::Graph g = graph::random_geometric(200, 0.1, rng);
  const auto d = graph::diameter_double_sweep(g);
  BfsTreeParams p;
  p.root_hint = 5;
  const auto t = build_bfs_tree(g, d, p, 2);
  ASSERT_TRUE(t.success);
  const auto dist = graph::bfs_distances(g, 5);
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(t.layer[v], dist[v]) << v;
  }
}

TEST(BfsTree, WithElectionProducesValidTree) {
  util::Rng rng(3);
  const graph::Graph g = graph::gnp(150, 0.04, rng);
  const auto d = std::max(2u, graph::diameter_double_sweep(g));
  const auto t = build_bfs_tree(g, d, BfsTreeParams{}, 3);
  ASSERT_TRUE(t.success);
  EXPECT_GT(t.election_rounds, 0u);
  EXPECT_LT(t.root, g.node_count());
  EXPECT_TRUE(is_valid_bfs_tree(g, t));
}

TEST(BfsTree, SingleNode) {
  const graph::Graph g = graph::path(1);
  BfsTreeParams p;
  p.root_hint = 0;
  const auto t = build_bfs_tree(g, 1, p, 4);
  EXPECT_TRUE(t.success);
  EXPECT_EQ(t.growth_rounds, 0u);
}

TEST(BfsTree, StarFromCenterAndLeaf) {
  const graph::Graph g = graph::star(20);
  BfsTreeParams pc;
  pc.root_hint = 0;
  const auto tc = build_bfs_tree(g, 2, pc, 5);
  ASSERT_TRUE(tc.success);
  for (graph::NodeId v = 1; v < 20; ++v) EXPECT_EQ(tc.layer[v], 1u);
  BfsTreeParams pl;
  pl.root_hint = 3;
  const auto tl = build_bfs_tree(g, 2, pl, 6);
  ASSERT_TRUE(tl.success);
  EXPECT_EQ(tl.layer[0], 1u);
  EXPECT_EQ(tl.layer[7], 2u);
}

TEST(BfsTree, RootHintOutOfRangeThrows) {
  const graph::Graph g = graph::path(5);
  BfsTreeParams p;
  p.root_hint = 9;
  EXPECT_THROW(build_bfs_tree(g, 4, p, 7), std::out_of_range);
}

TEST(BfsTree, ValidatorRejectsBrokenTrees) {
  const graph::Graph g = graph::path(5);
  BfsTreeParams p;
  p.root_hint = 0;
  auto t = build_bfs_tree(g, 4, p, 8);
  ASSERT_TRUE(t.success);
  auto bad1 = t;
  bad1.layer[3] = 9;  // wrong layer
  EXPECT_FALSE(is_valid_bfs_tree(g, bad1));
  auto bad2 = t;
  bad2.parent[2] = 4;  // parent not one layer up / wrong side
  EXPECT_FALSE(is_valid_bfs_tree(g, bad2));
  auto bad3 = t;
  bad3.parent[4] = graph::kInvalidNode;  // detached node
  EXPECT_FALSE(is_valid_bfs_tree(g, bad3));
}

class BfsTreeFamilies : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BfsTreeFamilies, ValidAcrossFamiliesAndSeeds) {
  util::Rng rng(GetParam());
  const graph::Graph graphs[] = {
      graph::grid(10, 12),
      graph::path_of_cliques(12, 6),
      graph::random_recursive_tree(120, rng),
      graph::cycle(60),
  };
  for (const auto& g : graphs) {
    const auto d = std::max(2u, graph::diameter_double_sweep(g));
    BfsTreeParams p;
    p.root_hint = static_cast<graph::NodeId>(
        GetParam() % g.node_count());
    const auto t = build_bfs_tree(g, d, p, GetParam());
    EXPECT_TRUE(t.success) << g.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsTreeFamilies,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace radiocast::core
