// Cross-module integration: the full paper pipeline plus the qualitative
// claims the evaluation reproduces (LE ~ BC time; binary-search LE slower;
// all algorithms agree on the same winner).
#include <gtest/gtest.h>

#include "baselines/decay_broadcast.hpp"
#include "baselines/hw_broadcast.hpp"
#include "baselines/le_binary_search.hpp"
#include "core/radiocast.hpp"

namespace radiocast {
namespace {

TEST(Integration, AllBroadcastAlgorithmsAgreeOnDeliveredMessage) {
  util::Rng rng(1);
  const graph::Graph g = graph::random_geometric(300, 0.08, rng);
  const auto d = std::max(2u, graph::diameter_double_sweep(g));
  const radio::Payload msg = 424242;

  const auto cd = core::broadcast(g, d, 7, msg, core::CompeteParams{}, 5);
  const auto hw = baselines::hw_broadcast(g, d, 7, msg, 5);
  const auto bgi = baselines::decay_broadcast(
      g, d, {{7, msg}}, baselines::bgi_params(g.node_count()), 5);
  EXPECT_TRUE(cd.success);
  EXPECT_TRUE(hw.success);
  EXPECT_TRUE(bgi.success);
  EXPECT_EQ(bgi.winner, msg);
}

TEST(Integration, LeaderElectionTimeTracksBroadcastTime) {
  // Theorem 5.2's headline: LE is no longer asymptotically harder than
  // broadcast. On the same graph, CD LE must be within a small factor of
  // CD broadcast (they run the same Compete machinery), while the
  // binary-search baseline pays an extra ~log n factor.
  const graph::Graph g = graph::path_of_cliques(30, 8);
  const auto d = graph::diameter_double_sweep(g);

  const auto bc = core::broadcast(g, d, 0, 1, core::CompeteParams{}, 3);
  const auto le = core::elect_leader(g, d, core::LeaderElectionParams{}, 3);
  const auto ble =
      baselines::binary_search_leader_election(g, d, {}, 3);
  ASSERT_TRUE(bc.success);
  ASSERT_TRUE(le.success);
  ASSERT_TRUE(ble.success);
  EXPECT_LT(le.rounds, 6 * bc.rounds + 2000);
  EXPECT_GT(ble.rounds, le.rounds);  // the paper's improvement
}

TEST(Integration, IoRoundTripThenBroadcast) {
  // Persist a generated topology, reload it, and run the full stack on the
  // reloaded copy.
  util::Rng rng(2);
  const graph::Graph g = graph::gnp(150, 0.04, rng);
  const std::string path = "/tmp/radiocast_integration.edges";
  ASSERT_TRUE(graph::write_edge_list_file(g, path));
  const graph::Graph h = graph::read_edge_list_file(path);
  std::remove(path.c_str());
  const auto d = std::max(2u, graph::diameter_double_sweep(h));
  const auto r = core::broadcast(h, d, 0, 9, core::CompeteParams{}, 4);
  EXPECT_TRUE(r.success);
}

TEST(Integration, HierarchyPartitionScheduleConsistency) {
  // Build the full Algorithm 1 preprocessing stack and check the
  // cross-module invariants the Compete engine relies on.
  util::Rng rng(3);
  const graph::Graph g = graph::grid(18, 18);
  const auto d = graph::diameter_double_sweep(g);
  const cluster::Hierarchy h(g, d, cluster::HierarchyParams{}, rng);
  for (std::size_t ji = 0; ji < h.j_values().size(); ++ji) {
    for (std::uint32_t rep = 0; rep < h.reps_per_j(); ++rep) {
      const auto& fine = h.fine(ji, rep);
      const schedule::TreeSchedule sched(g, fine,
                                         schedule::ScheduleMode::kPipelined);
      for (graph::NodeId v = 0; v < g.node_count(); ++v) {
        // Engine invariant: tree children of v live in v's fine cluster
        // and one level deeper.
        for (graph::NodeId c : sched.children(v)) {
          EXPECT_EQ(fine.center[c], fine.center[v]);
          EXPECT_EQ(fine.dist_to_center[c], fine.dist_to_center[v] + 1);
        }
      }
    }
  }
}

TEST(Integration, CompeteWinnerIsInvariantAcrossConfigs) {
  const graph::Graph g = graph::grid(9, 9);
  std::vector<core::CompeteSource> sources{{0, 17}, {40, 23}, {80, 5}};
  for (int cfg = 0; cfg < 4; ++cfg) {
    core::CompeteParams p;
    p.enable_background = cfg != 1;
    p.enable_icp_background = cfg != 2;
    p.randomize_beta = cfg != 3;
    const auto r = core::compete(g, 16, sources, p, 100 + cfg);
    EXPECT_TRUE(r.success) << cfg;
    EXPECT_EQ(r.winner, 23u) << cfg;
  }
}

TEST(Integration, SpontaneousTransmissionsAreActuallyUsed) {
  // The model feature the paper exploits: nodes transmit before knowing
  // the source message (cluster centres start waves with their own best ==
  // none, but candidate/centre activity happens regardless). We check the
  // background engine produces transmissions from non-source nodes early.
  const graph::Graph g = graph::path_of_cliques(20, 6);
  const auto d = graph::diameter_double_sweep(g);
  const auto r = core::compete(g, d, {{0, 1}}, core::CompeteParams{}, 6);
  ASSERT_TRUE(r.success);
  // Deliveries far exceed n-1 tree deliveries of a single source flood:
  // concurrent cluster-local activity is the spontaneous-transmission
  // signature.
  EXPECT_GT(r.main_stats.wave_deliveries + r.background_stats.wave_deliveries,
            g.node_count());
}

}  // namespace
}  // namespace radiocast
