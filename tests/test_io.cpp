#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace radiocast::graph {
namespace {

TEST(Io, RoundTripPreservesGraph) {
  util::Rng rng(3);
  const Graph g = gnp(80, 0.06, rng);
  std::stringstream ss;
  write_edge_list(g, ss);
  const Graph h = read_edge_list(ss);
  EXPECT_EQ(h.node_count(), g.node_count());
  EXPECT_EQ(h.edge_count(), g.edge_count());
  EXPECT_EQ(h.edges(), g.edges());
}

TEST(Io, CommentsAndBlankLines) {
  std::stringstream ss("# a comment\n\n3 2\n0 1 # inline\n\n1 2\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Io, MissingHeaderThrows) {
  std::stringstream ss("zero one\n0 1\n");
  EXPECT_THROW(read_edge_list(ss), std::invalid_argument);
}

TEST(Io, EmptyInputThrows) {
  std::stringstream ss("");
  EXPECT_THROW(read_edge_list(ss), std::invalid_argument);
}

TEST(Io, EdgeCountMismatchThrows) {
  std::stringstream ss("3 5\n0 1\n1 2\n");
  EXPECT_THROW(read_edge_list(ss), std::invalid_argument);
}

TEST(Io, FileRoundTrip) {
  const Graph g = path(10);
  const std::string p = "/tmp/radiocast_io_test.edges";
  ASSERT_TRUE(write_edge_list_file(g, p));
  const Graph h = read_edge_list_file(p);
  EXPECT_EQ(h.edges(), g.edges());
  std::remove(p.c_str());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/xyz.edges"),
               std::invalid_argument);
}

TEST(Io, NodeIdOutOfHeaderRangeThrows) {
  std::stringstream ss("3 1\n0 7\n");
  EXPECT_THROW(read_edge_list(ss), std::out_of_range);
}

}  // namespace
}  // namespace radiocast::graph
