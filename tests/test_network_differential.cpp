// Differential test for the radio medium's two code paths: the sparse
// kernel Network::step_sparse must agree with the dense Network::step on
// deliveries, payloads, and aggregate counters for ANY graph and transmit
// set — they implement the same interference rule and every algorithm
// picks one or the other purely for performance.
#include "radio/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace radiocast::radio {
namespace {

using graph::Graph;
using graph::NodeId;

struct Delivery {
  NodeId node;
  Payload payload;
  bool operator==(const Delivery&) const = default;
  bool operator<(const Delivery& o) const {
    return node < o.node || (node == o.node && payload < o.payload);
  }
};

/// Runs one round through both kernels and asserts identical outcomes.
void check_round(const Graph& g, const std::vector<std::uint8_t>& transmit,
                 const std::vector<Payload>& payload) {
  const NodeId n = g.node_count();

  Network dense_net(g);
  RoundOutcome dense;
  dense_net.step(transmit, payload, dense);

  std::vector<NodeId> tx_nodes;
  std::vector<Payload> tx_pay;
  for (NodeId v = 0; v < n; ++v) {
    if (transmit[v]) {
      tx_nodes.push_back(v);
      tx_pay.push_back(payload[v]);
    }
  }
  Network sparse_net(g);
  Network::SparseOutcome sparse;
  sparse_net.step_sparse(tx_nodes, tx_pay, sparse);

  // Aggregates.
  EXPECT_EQ(dense.transmitter_count, sparse.transmitter_count);
  EXPECT_EQ(dense.delivered_count, sparse.deliveries.size());
  EXPECT_EQ(dense.collided_count, sparse.collided_count);

  // Per-delivery agreement: same listeners, same payloads; and the sparse
  // 'from' must be a transmitting neighbour of the listener.
  std::vector<Delivery> from_dense, from_sparse;
  for (NodeId v = 0; v < n; ++v) {
    if (dense.reception[v] == Reception::kMessage) {
      from_dense.push_back({v, dense.received_payload[v]});
    }
  }
  for (const auto& d : sparse.deliveries) {
    from_sparse.push_back({d.node, d.payload});
    EXPECT_TRUE(transmit[d.from]) << "sender " << d.from << " did not tx";
    const auto nbrs = g.neighbors(d.node);
    EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), d.from) != nbrs.end())
        << "sender " << d.from << " not a neighbour of " << d.node;
    EXPECT_EQ(d.payload, payload[d.from]);
  }
  std::sort(from_dense.begin(), from_dense.end());
  std::sort(from_sparse.begin(), from_sparse.end());
  EXPECT_EQ(from_dense, from_sparse);
}

void check_graph_at_densities(const Graph& g, util::Rng& rng) {
  const NodeId n = g.node_count();
  for (const double density : {0.0, 0.02, 0.1, 0.5, 1.0}) {
    std::vector<std::uint8_t> transmit(n, 0);
    std::vector<Payload> payload(n, kNoPayload);
    for (NodeId v = 0; v < n; ++v) {
      transmit[v] = rng.bernoulli(density);
      payload[v] = 100 + v;
    }
    check_round(g, transmit, payload);
  }
}

TEST(NetworkDifferential, RandomGnpGraphs) {
  util::Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gnp(120, 0.05, rng);
    check_graph_at_densities(g, rng);
  }
}

TEST(NetworkDifferential, RandomGeometricGraphs) {
  util::Rng rng(43);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = graph::random_geometric(200, 0.12, rng);
    check_graph_at_densities(g, rng);
  }
}

TEST(NetworkDifferential, StructuredFamilies) {
  util::Rng rng(44);
  check_graph_at_densities(graph::star(65), rng);
  check_graph_at_densities(graph::grid(9, 13), rng);
  check_graph_at_densities(graph::clique(40), rng);
  check_graph_at_densities(graph::path_of_cliques(10, 8), rng);
}

TEST(NetworkDifferential, DuplicateTransmittersCountedOnce) {
  const Graph g = graph::star(8);
  Network dense_net(g);
  std::vector<std::uint8_t> transmit(g.node_count(), 0);
  std::vector<Payload> payload(g.node_count(), kNoPayload);
  transmit[3] = 1;
  payload[3] = 7;
  const RoundOutcome dense = dense_net.step(transmit, payload);

  Network sparse_net(g);
  Network::SparseOutcome sparse;
  sparse_net.step_sparse({3, 3, 3}, {7, 7, 7}, sparse);

  EXPECT_EQ(sparse.transmitter_count, 1u);
  EXPECT_EQ(dense.transmitter_count, sparse.transmitter_count);
  ASSERT_EQ(sparse.deliveries.size(), 1u);
  EXPECT_EQ(sparse.deliveries[0].node, 0u);
  EXPECT_EQ(sparse.deliveries[0].from, 3u);
  EXPECT_EQ(sparse.deliveries[0].payload, 7u);
  EXPECT_EQ(dense.delivered_count, 1u);
}

TEST(NetworkDifferential, CountersAdvanceIdentically) {
  util::Rng rng(45);
  const Graph g = graph::grid(8, 8);
  Network dense_net(g);
  Network sparse_net(g);
  RoundOutcome dense;
  Network::SparseOutcome sparse;
  for (int round = 0; round < 20; ++round) {
    std::vector<std::uint8_t> transmit(g.node_count(), 0);
    std::vector<Payload> payload(g.node_count(), kNoPayload);
    std::vector<NodeId> tx_nodes;
    std::vector<Payload> tx_pay;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      transmit[v] = rng.bernoulli(0.15);
      payload[v] = v;
      if (transmit[v]) {
        tx_nodes.push_back(v);
        tx_pay.push_back(v);
      }
    }
    dense_net.step(transmit, payload, dense);
    sparse_net.step_sparse(tx_nodes, tx_pay, sparse);
  }
  EXPECT_EQ(dense_net.rounds_elapsed(), sparse_net.rounds_elapsed());
  EXPECT_EQ(dense_net.total_transmissions(),
            sparse_net.total_transmissions());
  EXPECT_EQ(dense_net.total_deliveries(), sparse_net.total_deliveries());
  EXPECT_EQ(dense_net.total_collisions(), sparse_net.total_collisions());
}

}  // namespace
}  // namespace radiocast::radio
