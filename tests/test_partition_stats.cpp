#include "cluster/partition_stats.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace radiocast::cluster {
namespace {

/// Hand-built partition on a path 0-1-2-3-4-5: clusters {0,1,2} (centre 0)
/// and {3,4,5} (centre 4).
Partition hand_partition() {
  Partition p;
  p.beta = 0.5;
  p.center = {0, 0, 0, 4, 4, 4};
  p.dist_to_center = {0, 1, 2, 1, 0, 1};
  p.parent = {0, 0, 1, 4, 4, 4};
  p.delta.assign(6, 0.0);
  return p;
}

TEST(PartitionStats, ClusterInfosOnHandPartition) {
  const graph::Graph g = graph::path(6);
  const Partition p = hand_partition();
  const auto infos = cluster_infos(g, p);
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].center, 0u);
  EXPECT_EQ(infos[0].size, 3u);
  EXPECT_EQ(infos[0].strong_radius, 2u);
  EXPECT_EQ(infos[0].strong_diameter_lb, 2u);
  EXPECT_EQ(infos[1].center, 4u);
  EXPECT_EQ(infos[1].size, 3u);
  EXPECT_EQ(infos[1].strong_radius, 1u);
  EXPECT_EQ(infos[1].strong_diameter_lb, 2u);
}

TEST(PartitionStats, CutEdgesOnHandPartition) {
  const graph::Graph g = graph::path(6);
  const Partition p = hand_partition();
  EXPECT_EQ(cut_edge_count(g, p), 1u);  // edge {2,3}
  EXPECT_DOUBLE_EQ(cut_fraction(g, p), 1.0 / 5.0);
}

TEST(PartitionStats, InvariantCheckersAcceptHandPartition) {
  const graph::Graph g = graph::path(6);
  const Partition p = hand_partition();
  EXPECT_TRUE(centers_consistent(p));
  EXPECT_TRUE(clusters_connected(g, p));
  EXPECT_TRUE(distances_consistent(g, p));
}

TEST(PartitionStats, InvariantCheckersRejectBrokenPartitions) {
  const graph::Graph g = graph::path(6);
  // Centre pointing to a non-centre.
  Partition bad1 = hand_partition();
  bad1.center[1] = 2;  // 2 is not its own centre
  EXPECT_FALSE(centers_consistent(bad1));
  // Disconnected cluster: {0, 5} with centre 0.
  Partition bad2 = hand_partition();
  bad2.center = {0, 4, 4, 4, 4, 0};
  bad2.dist_to_center = {0, 1, 2, 1, 0, 1};
  EXPECT_FALSE(clusters_connected(g, bad2));
  // Wrong recorded distance.
  Partition bad3 = hand_partition();
  bad3.dist_to_center[2] = 7;
  EXPECT_FALSE(distances_consistent(g, bad3));
}

TEST(PartitionStats, BoundaryNodes) {
  const graph::Graph g = graph::path(6);
  const Partition p = hand_partition();
  const auto risky = boundary_nodes(g, p);
  EXPECT_EQ(risky, (std::vector<std::uint8_t>{0, 0, 1, 1, 0, 0}));
}

TEST(PartitionStats, ClustersWithinDistance) {
  const graph::Graph g = graph::path(6);
  const Partition p = hand_partition();
  EXPECT_EQ(clusters_within(g, p, 0, 1), 1u);
  EXPECT_EQ(clusters_within(g, p, 2, 1), 2u);
  EXPECT_EQ(clusters_within(g, p, 0, 5), 2u);
  EXPECT_EQ(bordering_clusters(g, p, 2), 2u);
  EXPECT_EQ(bordering_clusters(g, p, 1), 1u);
}

TEST(PartitionStats, MeanDistToCenter) {
  const Partition p = hand_partition();
  EXPECT_DOUBLE_EQ(mean_dist_to_center(p), (0 + 1 + 2 + 1 + 0 + 1) / 6.0);
}

TEST(PartitionStats, SubpathBadnessOnHandPartition) {
  const graph::Graph g = graph::path(6);
  const Partition p = hand_partition();
  const std::vector<graph::NodeId> full_path{0, 1, 2, 3, 4, 5};
  // Subpaths of length 3: {0,1,2} and {3,4,5}. With radius 0 each stays in
  // one cluster -> no bad subpath.
  auto r0 = subpath_badness(g, p, full_path, 3, 0);
  EXPECT_EQ(r0.total_subpaths, 2u);
  EXPECT_EQ(r0.bad_subpaths, 0u);
  // With radius 1 both subpaths see the other cluster -> both bad.
  auto r1 = subpath_badness(g, p, full_path, 3, 1);
  EXPECT_EQ(r1.bad_subpaths, 2u);
}

TEST(PartitionStats, SubpathBadnessSingleClusterNeverBad) {
  const graph::Graph g = graph::path(8);
  Partition p;
  p.beta = 0.1;
  p.center.assign(8, 0);
  p.dist_to_center = {0, 1, 2, 3, 4, 5, 6, 7};
  p.parent = {0, 0, 1, 2, 3, 4, 5, 6};
  p.delta.assign(8, 0.0);
  const std::vector<graph::NodeId> path{0, 1, 2, 3, 4, 5, 6, 7};
  const auto r = subpath_badness(g, p, path, 2, 3);
  EXPECT_EQ(r.total_subpaths, 4u);
  EXPECT_EQ(r.bad_subpaths, 0u);
}

TEST(PartitionStats, MaskedNodesExcludedFromStats) {
  util::Rng rng(3);
  const graph::Graph g = graph::grid(8, 8);
  std::vector<std::uint8_t> mask(64, 1);
  for (graph::NodeId v = 0; v < 16; ++v) mask[v] = 0;
  const Partition p = partition_masked(g, 0.3, mask, rng);
  EXPECT_EQ(clusters_within(g, p, 0, 3), 0u);  // out-of-scope query
  // cut_fraction only counts in-scope edge pairs; no crash, sane value.
  const double f = cut_fraction(g, p);
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
}

}  // namespace
}  // namespace radiocast::cluster
