// Cross-backend differential test for the pluggable radio medium: the
// scalar, bitslice, and sharded backends implement one interference rule
// and must produce identical outcomes — deliveries, collision evidence,
// counters, and (through the Network facade) full RoundOutcomes — on any
// graph, any transmit set, and both collision models.
#include "radio/medium.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "graph/generators.hpp"
#include "radio/batch_network.hpp"
#include "radio/medium_sharded.hpp"
#include "radio/network.hpp"
#include "sim/runner.hpp"
#include "util/rng.hpp"

namespace radiocast::radio {
namespace {

using graph::Graph;
using graph::NodeId;

constexpr MediumKind kAllKinds[] = {MediumKind::kScalar,
                                    MediumKind::kBitslice,
                                    MediumKind::kSharded};

struct NormalizedOutcome {
  std::vector<SparseDelivery> deliveries;
  std::vector<NodeId> collided;
  std::uint32_t transmitter_count = 0;
  std::uint32_t collided_count = 0;

  bool operator==(const NormalizedOutcome&) const = default;
};

NormalizedOutcome normalize(const SparseOutcome& out) {
  NormalizedOutcome n;
  n.deliveries = out.deliveries;
  std::sort(n.deliveries.begin(), n.deliveries.end(),
            [](const SparseDelivery& a, const SparseDelivery& b) {
              return a.node < b.node;
            });
  n.collided = out.collided_nodes;
  std::sort(n.collided.begin(), n.collided.end());
  n.transmitter_count = out.transmitter_count;
  n.collided_count = out.collided_count;
  return n;
}

void check_all_backends(const Graph& g,
                        const std::vector<NodeId>& transmitters,
                        const std::vector<Payload>& tx_payload,
                        CollisionModel model) {
  auto scalar = make_medium(MediumKind::kScalar, g, model);
  SparseOutcome ref_out;
  scalar->resolve(transmitters, tx_payload, ref_out);
  const NormalizedOutcome ref = normalize(ref_out);

  for (const MediumKind kind :
       {MediumKind::kBitslice, MediumKind::kSharded}) {
    auto medium = make_medium(kind, g, model, /*threads=*/3);
    SparseOutcome out;
    medium->resolve(transmitters, tx_payload, out);
    EXPECT_EQ(normalize(out), ref)
        << "backend " << to_string(kind) << " diverged (model="
        << static_cast<int>(model) << ", n=" << g.node_count() << ")";
    if (model == CollisionModel::kNoDetection) {
      EXPECT_TRUE(out.collided_nodes.empty())
          << "collided_nodes must stay empty without collision detection";
    }
  }
}

void check_graph(const Graph& g, util::Rng& rng) {
  for (const CollisionModel model :
       {CollisionModel::kNoDetection, CollisionModel::kDetection}) {
    for (const double density : {0.0, 0.05, 0.3, 0.9}) {
      std::vector<NodeId> tx;
      std::vector<Payload> pay;
      for (NodeId v = 0; v < g.node_count(); ++v) {
        if (rng.bernoulli(density)) {
          tx.push_back(v);
          pay.push_back(1000 + v);
        }
      }
      check_all_backends(g, tx, pay, model);
    }
  }
}

TEST(MediumBackends, DifferentialOnGnp) {
  util::Rng rng(71);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = graph::gnp(150, 0.05, rng);
    check_graph(g, rng);
  }
}

TEST(MediumBackends, DifferentialOnClusterInstances) {
  util::Rng rng(72);
  const Graph cliques = graph::path_of_cliques(10, 8);
  const Graph star = graph::star(50);
  const Graph grid = graph::grid(9, 11);
  check_graph(cliques, rng);
  check_graph(star, rng);
  check_graph(grid, rng);
}

// The facade must expose identical RoundOutcomes regardless of backend —
// including Reception::kCollision marks under the detection model.
TEST(MediumBackends, NetworkFacadeRoundOutcomesMatch) {
  util::Rng rng(73);
  const Graph g = graph::gnp(120, 0.06, rng);
  const NodeId n = g.node_count();
  for (const CollisionModel model :
       {CollisionModel::kNoDetection, CollisionModel::kDetection}) {
    for (const double density : {0.1, 0.6}) {
      std::vector<std::uint8_t> transmit(n, 0);
      std::vector<Payload> payload(n, kNoPayload);
      for (NodeId v = 0; v < n; ++v) {
        transmit[v] = rng.bernoulli(density);
        payload[v] = 500 + v;
      }
      Network ref(g, model, MediumKind::kScalar);
      const RoundOutcome want = ref.step(transmit, payload);
      for (const MediumKind kind : kAllKinds) {
        Network net(g, model, kind, /*medium_threads=*/3);
        const RoundOutcome got = net.step(transmit, payload);
        EXPECT_EQ(got.reception, want.reception) << to_string(kind);
        EXPECT_EQ(got.received_payload, want.received_payload)
            << to_string(kind);
        EXPECT_EQ(got.transmitter_count, want.transmitter_count);
        EXPECT_EQ(got.delivered_count, want.delivered_count);
        EXPECT_EQ(got.collided_count, want.collided_count);
      }
    }
  }
}

// Satellite: under kDetection the sparse path must report the same
// collided listeners the dense path marks kCollision.
TEST(MediumBackends, SparseCollidedNodesMatchDensePath) {
  util::Rng rng(74);
  const Graph g = graph::gnp(100, 0.08, rng);
  const NodeId n = g.node_count();
  std::vector<std::uint8_t> transmit(n, 0);
  std::vector<Payload> payload(n, kNoPayload);
  std::vector<NodeId> tx;
  std::vector<Payload> tx_pay;
  for (NodeId v = 0; v < n; ++v) {
    transmit[v] = rng.bernoulli(0.3);
    payload[v] = v;
    if (transmit[v]) {
      tx.push_back(v);
      tx_pay.push_back(v);
    }
  }
  Network dense_net(g, CollisionModel::kDetection);
  const RoundOutcome dense = dense_net.step(transmit, payload);
  Network sparse_net(g, CollisionModel::kDetection);
  SparseOutcome sparse;
  sparse_net.resolve(tx, tx_pay, sparse);

  std::vector<NodeId> want;
  for (NodeId v = 0; v < n; ++v) {
    if (dense.reception[v] == Reception::kCollision) want.push_back(v);
  }
  std::vector<NodeId> got = sparse.collided_nodes;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);
  EXPECT_EQ(sparse.collided_count, dense.collided_count);

  // Without detection the same round must not leak collision identities.
  Network silent_net(g, CollisionModel::kNoDetection);
  SparseOutcome silent;
  silent_net.resolve(tx, tx_pay, silent);
  EXPECT_TRUE(silent.collided_nodes.empty());
  EXPECT_EQ(silent.collided_count, dense.collided_count);
}

TEST(MediumBackends, DuplicateTransmittersFirstPayloadWins) {
  const Graph g = graph::star(6);
  for (const MediumKind kind : kAllKinds) {
    auto medium = make_medium(kind, g, CollisionModel::kNoDetection, 2);
    SparseOutcome out;
    medium->resolve(std::vector<NodeId>{2, 2, 2},
                    std::vector<Payload>{9, 8, 7}, out);
    EXPECT_EQ(out.transmitter_count, 1u) << to_string(kind);
    ASSERT_EQ(out.deliveries.size(), 1u) << to_string(kind);
    EXPECT_EQ(out.deliveries[0].node, 0u);
    EXPECT_EQ(out.deliveries[0].from, 2u);
    EXPECT_EQ(out.deliveries[0].payload, 9u);
  }
}

// Lane-by-lane: the bitslice batch kernel must agree with 64 independent
// scalar rounds (the default per-lane decomposition of resolve_batch).
void check_batch(const Graph& g, CollisionModel model, int lanes,
                 double density, util::Rng& rng) {
  const NodeId n = g.node_count();
  std::vector<std::uint64_t> tx_mask(n, 0);
  std::vector<Payload> payload(n);
  for (NodeId v = 0; v < n; ++v) {
    payload[v] = 2000 + v;
    for (int l = 0; l < lanes; ++l) {
      if (rng.bernoulli(density)) tx_mask[v] |= std::uint64_t{1} << l;
    }
  }

  auto scalar = make_medium(MediumKind::kScalar, g, model);
  BatchOutcome want;
  scalar->resolve_batch(tx_mask, payload, lanes, want);

  for (const MediumKind kind :
       {MediumKind::kBitslice, MediumKind::kSharded}) {
    auto medium = make_medium(kind, g, model, 3);
    BatchOutcome got;
    medium->resolve_batch(tx_mask, payload, lanes, got);

    EXPECT_EQ(got.transmitter_count, want.transmitter_count);
    EXPECT_EQ(got.delivered_count, want.delivered_count);
    EXPECT_EQ(got.collided_count, want.collided_count);

    auto key = [](const BatchDelivery& d) {
      return (static_cast<std::uint64_t>(d.node) << 8) | d.lane;
    };
    auto sort_deliveries = [&](std::vector<BatchDelivery> v) {
      std::sort(v.begin(), v.end(),
                [&](const BatchDelivery& a, const BatchDelivery& b) {
                  return key(a) < key(b);
                });
      return v;
    };
    const auto a = sort_deliveries(want.deliveries);
    const auto b = sort_deliveries(got.deliveries);
    ASSERT_EQ(a.size(), b.size()) << to_string(kind);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].node, b[i].node);
      EXPECT_EQ(a[i].lane, b[i].lane);
      EXPECT_EQ(a[i].from, b[i].from);
      EXPECT_EQ(a[i].payload, b[i].payload);
    }

    // Collision records may be split differently across lanes; compare the
    // OR of the masks per node.
    auto fold = [n](const std::vector<BatchCollision>& cs) {
      std::vector<std::uint64_t> mask(n, 0);
      for (const auto& c : cs) mask[c.node] |= c.lanes;
      return mask;
    };
    EXPECT_EQ(fold(got.collisions), fold(want.collisions))
        << to_string(kind);

    // The aggregate delivered masks must cover exactly the per-delivery
    // list, and each listener must appear at most once.
    auto fold_delivered = [n](const BatchOutcome& o) {
      std::vector<std::uint64_t> mask(n, 0);
      for (const auto& d : o.delivered) {
        EXPECT_EQ(mask[d.node], 0u) << "listener listed twice";
        mask[d.node] = d.lanes;
      }
      return mask;
    };
    auto fold_deliveries = [n](const BatchOutcome& o) {
      std::vector<std::uint64_t> mask(n, 0);
      for (const auto& d : o.deliveries) {
        mask[d.node] |= std::uint64_t{1} << d.lane;
      }
      return mask;
    };
    const auto got_masks = fold_delivered(got);
    EXPECT_EQ(got_masks, fold_delivered(want)) << to_string(kind);
    EXPECT_EQ(got_masks, fold_deliveries(got)) << to_string(kind);

    // Mask-only mode: identical masks and counters, no sender detail.
    BatchOutcome masks_only;
    medium->resolve_batch(tx_mask, payload, lanes, masks_only,
                          /*with_senders=*/false);
    EXPECT_TRUE(masks_only.deliveries.empty());
    EXPECT_EQ(fold_delivered(masks_only), got_masks) << to_string(kind);
    EXPECT_EQ(masks_only.delivered_count, got.delivered_count);
    EXPECT_EQ(masks_only.transmitter_count, got.transmitter_count);
    EXPECT_EQ(masks_only.collided_count, got.collided_count);
  }
}

TEST(MediumBackends, BatchDifferential) {
  util::Rng rng(75);
  const Graph gnp = graph::gnp(130, 0.05, rng);
  const Graph cliques = graph::path_of_cliques(6, 7);
  for (const CollisionModel model :
       {CollisionModel::kNoDetection, CollisionModel::kDetection}) {
    check_batch(gnp, model, 64, 0.15, rng);
    check_batch(gnp, model, 5, 0.4, rng);
    check_batch(cliques, model, 64, 0.3, rng);
  }
}

// Per-lane payload planes: each lane must deliver its own plane's value,
// and the bitslice kernel must agree with the per-lane scalar
// decomposition on every (listener, lane, sender, payload) quadruple.
TEST(MediumBackends, BatchPerLanePayloadPlanes) {
  util::Rng rng(78);
  const Graph g = graph::gnp(110, 0.06, rng);
  const NodeId n = g.node_count();
  const int lanes = 11;
  std::vector<std::uint64_t> tx_mask(n, 0);
  std::vector<Payload> planes(static_cast<std::size_t>(lanes) * n);
  for (NodeId v = 0; v < n; ++v) {
    for (int l = 0; l < lanes; ++l) {
      if (rng.bernoulli(0.3)) tx_mask[v] |= std::uint64_t{1} << l;
      planes[static_cast<std::size_t>(l) * n + v] =
          10'000 * static_cast<Payload>(l + 1) + v;
    }
  }
  const PayloadPlanes payload = PayloadPlanes::lane_major(planes, n);
  EXPECT_FALSE(payload.lane_invariant());
  EXPECT_EQ(payload.lane_capacity(), lanes);

  auto scalar = make_medium(MediumKind::kScalar, g, CollisionModel::kNoDetection);
  BatchOutcome want;
  scalar->resolve_batch(tx_mask, payload, lanes, want);
  for (const auto& d : want.deliveries) {
    EXPECT_EQ(d.payload,
              10'000 * static_cast<Payload>(d.lane + 1) + d.from)
        << "delivery must carry the sender's own-lane plane value";
  }

  auto bitslice =
      make_medium(MediumKind::kBitslice, g, CollisionModel::kNoDetection);
  BatchOutcome got;
  bitslice->resolve_batch(tx_mask, payload, lanes, got);
  auto sorted = [](std::vector<BatchDelivery> v) {
    std::sort(v.begin(), v.end(),
              [](const BatchDelivery& a, const BatchDelivery& b) {
                return std::tie(a.node, a.lane) < std::tie(b.node, b.lane);
              });
    return v;
  };
  EXPECT_EQ(sorted(got.deliveries), sorted(want.deliveries));
  EXPECT_EQ(got.delivered_count, want.delivered_count);
}

// Satellite: BatchNetwork::step under CollisionModel::kDetection — the
// per-lane collided-listener masks must match what an independent scalar
// Network reports for each lane, and must stay empty without detection.
TEST(MediumBackends, BatchNetworkDetectionCollidedMasks) {
  util::Rng rng(79);
  const Graph g = graph::gnp(100, 0.08, rng);
  const NodeId n = g.node_count();
  const int lanes = 13;
  for (const MediumKind kind : {MediumKind::kBitslice, MediumKind::kScalar}) {
    BatchNetwork bn(g, lanes, CollisionModel::kDetection, kind);
    std::vector<std::uint64_t> tx_mask(n, 0);
    std::vector<Payload> payload(n);
    for (NodeId v = 0; v < n; ++v) {
      payload[v] = v;
      for (int l = 0; l < lanes; ++l) {
        // Lane density grows with l so some lanes are collision-heavy.
        if (rng.bernoulli(0.05 + 0.05 * l)) {
          tx_mask[v] |= std::uint64_t{1} << l;
        }
      }
    }
    BatchOutcome out;
    bn.step(tx_mask, payload, out);

    // Fold collision records (consumers must OR split masks).
    std::vector<std::uint64_t> got(n, 0);
    for (const auto& c : out.collisions) got[c.node] |= c.lanes;

    std::uint64_t total_collided = 0;
    for (int l = 0; l < lanes; ++l) {
      std::vector<NodeId> tx;
      std::vector<Payload> pay;
      for (NodeId v = 0; v < n; ++v) {
        if (tx_mask[v] >> l & 1) {
          tx.push_back(v);
          pay.push_back(payload[v]);
        }
      }
      Network ref(g, CollisionModel::kDetection);
      SparseOutcome so;
      ref.resolve(tx, pay, so);
      ASSERT_EQ(out.collided_count[l], so.collided_count)
          << to_string(kind) << " lane " << l;
      total_collided += so.collided_count;
      std::vector<std::uint64_t> want_bit(n, 0);
      for (const NodeId v : so.collided_nodes) want_bit[v] = 1;
      for (NodeId v = 0; v < n; ++v) {
        EXPECT_EQ(got[v] >> l & 1, want_bit[v])
            << to_string(kind) << " lane " << l << " node " << v;
      }
    }
    EXPECT_EQ(bn.total_collisions(), total_collided) << to_string(kind);

    // Without detection, identities must not leak (counters still count).
    BatchNetwork silent(g, lanes, CollisionModel::kNoDetection, kind);
    BatchOutcome silent_out;
    silent.step(tx_mask, payload, silent_out);
    EXPECT_TRUE(silent_out.collisions.empty()) << to_string(kind);
    EXPECT_EQ(silent.total_collisions(), total_collided) << to_string(kind);
  }
}

// Satellite: RADIOCAST_SHARD_THREADS overrides the sharded backend's
// hardware-derived default worker count (CI hosts report 1 core).
TEST(MediumBackends, ShardThreadsEnvOverride) {
  util::Rng rng(80);
  const Graph g = graph::gnp(60, 0.1, rng);
  ASSERT_EQ(setenv("RADIOCAST_SHARD_THREADS", "5", 1), 0);
  {
    ShardedMedium m(g, CollisionModel::kNoDetection, /*threads=*/0);
    EXPECT_EQ(m.shard_count(), 5);
    // An explicit thread count still wins over the environment.
    ShardedMedium explicit_m(g, CollisionModel::kNoDetection, 2);
    EXPECT_EQ(explicit_m.shard_count(), 2);
  }
  unsetenv("RADIOCAST_SHARD_THREADS");
}

TEST(MediumBackends, BatchNetworkCountersMatchScalarTotals) {
  util::Rng rng(76);
  const Graph g = graph::gnp(90, 0.07, rng);
  const NodeId n = g.node_count();
  const int lanes = 17;

  BatchNetwork bn(g, lanes);
  std::vector<Network> nets;
  nets.reserve(lanes);
  for (int l = 0; l < lanes; ++l) nets.emplace_back(g);

  std::vector<std::uint64_t> tx_mask(n);
  std::vector<Payload> payload(n);
  BatchOutcome out;
  for (int round = 0; round < 8; ++round) {
    for (NodeId v = 0; v < n; ++v) {
      payload[v] = v;
      tx_mask[v] = 0;
      for (int l = 0; l < lanes; ++l) {
        if (rng.bernoulli(0.2)) tx_mask[v] |= std::uint64_t{1} << l;
      }
    }
    bn.step(tx_mask, payload, out);
    for (int l = 0; l < lanes; ++l) {
      std::vector<NodeId> tx;
      std::vector<Payload> pay;
      for (NodeId v = 0; v < n; ++v) {
        if (tx_mask[v] >> l & 1) {
          tx.push_back(v);
          pay.push_back(payload[v]);
        }
      }
      SparseOutcome so;
      nets[static_cast<std::size_t>(l)].resolve(tx, pay, so);
    }
  }
  std::uint64_t want_tx = 0, want_delivered = 0, want_collided = 0;
  for (const auto& net : nets) {
    want_tx += net.total_transmissions();
    want_delivered += net.total_deliveries();
    want_collided += net.total_collisions();
  }
  EXPECT_EQ(bn.total_transmissions(), want_tx);
  EXPECT_EQ(bn.total_deliveries(), want_delivered);
  EXPECT_EQ(bn.total_collisions(), want_collided);
  EXPECT_EQ(bn.rounds_elapsed(), 8u);
}

// replicate_batched must see the exact per-replication seeds replicate
// hands out, merge in replication order, and be --threads invariant.
TEST(MediumBackends, ReplicateBatchedMatchesReplicate) {
  const int reps = 23;
  const std::uint64_t base_seed = 99;
  auto metric = [](int rep, std::uint64_t seed) {
    return std::vector<double>{static_cast<double>(seed % 1000),
                               static_cast<double>(rep)};
  };
  sim::Runner serial(1);
  const auto want = serial.replicate(reps, base_seed, 2, metric);
  for (const int threads : {1, 3}) {
    sim::Runner runner(threads);
    const auto got = runner.replicate_batched(
        reps, base_seed, 2, 7,
        [&](int first_rep, const std::vector<std::uint64_t>& seeds) {
          std::vector<std::vector<double>> lanes;
          for (std::size_t l = 0; l < seeds.size(); ++l) {
            lanes.push_back(metric(first_rep + static_cast<int>(l),
                                   seeds[l]));
          }
          return lanes;
        });
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t m = 0; m < want.size(); ++m) {
      EXPECT_EQ(got[m].count(), want[m].count());
      EXPECT_DOUBLE_EQ(got[m].mean(), want[m].mean());
    }
  }
}

// Tentpole differential: sender recovery must be a pure cost knob. For
// every backend, both collision models, and 1/7/64 lanes, kRowScan and
// kIdPlanes (and kAuto) must produce identical deliveries, delivered
// masks, best[] planes, and tallies. Per-listener delivery order is
// normalized (the row scan emits sender-major, the id planes lane-major).
TEST(MediumBackends, RecoveryStrategyDifferential) {
  util::Rng rng(81);
  const Graph gnp = graph::gnp(140, 0.06, rng);
  const Graph star = graph::star(60);
  constexpr RecoveryStrategy kStrategies[] = {RecoveryStrategy::kRowScan,
                                              RecoveryStrategy::kIdPlanes,
                                              RecoveryStrategy::kAuto};
  auto sorted = [](std::vector<BatchDelivery> v) {
    std::sort(v.begin(), v.end(),
              [](const BatchDelivery& a, const BatchDelivery& b) {
                return std::tie(a.node, a.lane) < std::tie(b.node, b.lane);
              });
    return v;
  };
  for (const Graph* g : {&gnp, &star}) {
    const NodeId n = g->node_count();
    for (const CollisionModel model :
         {CollisionModel::kNoDetection, CollisionModel::kDetection}) {
      for (const int lanes : {1, 7, 64}) {
        // Lane-major planes exercise real per-lane payload recovery; a
        // second round with one shared constant plane exercises kAuto's
        // no-identification fold shortcut.
        std::vector<std::uint64_t> tx_mask(n, 0);
        std::vector<Payload> planes(static_cast<std::size_t>(lanes) * n);
        for (NodeId v = 0; v < n; ++v) {
          for (int l = 0; l < lanes; ++l) {
            if (rng.bernoulli(0.25)) tx_mask[v] |= std::uint64_t{1} << l;
            planes[static_cast<std::size_t>(l) * n + v] =
                7'000 * static_cast<Payload>(l + 1) + v;
          }
        }
        const std::vector<Payload> shared(n, 42);
        for (const MediumKind kind : kAllKinds) {
          BatchOutcome want;
          std::vector<Payload> want_best(
              static_cast<std::size_t>(lanes) * n, kNoPayload);
          bool have_want = false;
          for (const RecoveryStrategy strategy : kStrategies) {
            auto medium = make_medium(kind, *g, model, 3, strategy);
            EXPECT_EQ(medium->recovery_strategy(), strategy);
            BatchOutcome got;
            medium->resolve_batch(
                tx_mask, PayloadPlanes::lane_major(planes, n), lanes, got);
            std::vector<Payload> got_best(
                static_cast<std::size_t>(lanes) * n, kNoPayload);
            BatchOutcome fold_out;
            medium->resolve_batch_max(
                tx_mask, PayloadPlanes::lane_major(planes, n), lanes,
                KnowledgePlanes::lane_major(got_best, n), fold_out);
            BatchOutcome shared_out;
            std::vector<Payload> shared_best(
                static_cast<std::size_t>(lanes) * n, kNoPayload);
            medium->resolve_batch_max(
                tx_mask, shared, lanes,
                KnowledgePlanes::lane_major(shared_best, n), shared_out);
            if (!have_want) {
              want = got;
              want.deliveries = sorted(want.deliveries);
              want_best = got_best;
              have_want = true;
              // Cross-check the fold against the recovered deliveries.
              std::vector<Payload> from_deliveries(
                  static_cast<std::size_t>(lanes) * n, kNoPayload);
              for (const auto& d : got.deliveries) {
                Payload& b =
                    from_deliveries[static_cast<std::size_t>(d.lane) * n +
                                    d.node];
                if (b == kNoPayload || d.payload > b) b = d.payload;
              }
              EXPECT_EQ(got_best, from_deliveries) << to_string(kind);
              for (const auto& d : shared_out.delivered) {
                for (std::uint64_t hit = d.lanes; hit != 0; hit &= hit - 1) {
                  const int l = std::countr_zero(hit);
                  EXPECT_EQ(
                      shared_best[static_cast<std::size_t>(l) * n + d.node],
                      42u);
                }
              }
              continue;
            }
            const std::string ctx = std::string(to_string(kind)) + "/" +
                                    std::string(to_string(strategy)) +
                                    " lanes=" + std::to_string(lanes);
            EXPECT_EQ(sorted(got.deliveries), want.deliveries) << ctx;
            auto masks = [n](const BatchOutcome& o) {
              std::vector<std::uint64_t> m(n, 0);
              for (const auto& d : o.delivered) m[d.node] = d.lanes;
              return m;
            };
            EXPECT_EQ(masks(got), masks(want)) << ctx;
            EXPECT_EQ(got.transmitter_count, want.transmitter_count) << ctx;
            EXPECT_EQ(got.delivered_count, want.delivered_count) << ctx;
            EXPECT_EQ(got.collided_count, want.collided_count) << ctx;
            EXPECT_EQ(got_best, want_best) << ctx;  // byte-identical planes
          }
        }
      }
    }
  }
}

// The bitslice kernel must actually take both recovery paths when pinned
// (the differential above would pass vacuously if a knob were ignored).
TEST(MediumBackends, RecoveryStrategyPinsThePath) {
  util::Rng rng(82);
  const Graph g = graph::gnp(120, 0.08, rng);
  const NodeId n = g.node_count();
  std::vector<std::uint64_t> tx_mask(n, 0);
  std::vector<Payload> planes(static_cast<std::size_t>(64) * n, 5);
  for (NodeId v = 0; v < n; ++v) {
    for (int l = 0; l < 64; ++l) {
      if (rng.bernoulli(0.2)) tx_mask[v] |= std::uint64_t{1} << l;
    }
  }
  for (const RecoveryStrategy strategy :
       {RecoveryStrategy::kRowScan, RecoveryStrategy::kIdPlanes}) {
    auto medium = make_medium(MediumKind::kBitslice, g,
                              CollisionModel::kNoDetection, 0, strategy);
    BatchOutcome out;
    for (int round = 0; round < 5; ++round) {
      medium->resolve_batch(tx_mask, PayloadPlanes::lane_major(planes, n),
                            64, out);
    }
    const PhaseTimers& t = medium->phase_timers();
    EXPECT_EQ(t.rounds, 5u);
    if (strategy == RecoveryStrategy::kRowScan) {
      EXPECT_EQ(t.rowscan_rounds, 5u);
      EXPECT_EQ(t.idplane_rounds, 0u);
    } else {
      EXPECT_EQ(t.idplane_rounds, 5u);
      EXPECT_EQ(t.rowscan_rounds, 0u);
    }
    medium->reset_phase_timers();
    EXPECT_EQ(medium->phase_timers().rounds, 0u);
  }
  // kAuto's constant-plane fold shortcut must be counted as neither.
  auto medium = make_medium(MediumKind::kBitslice, g,
                            CollisionModel::kNoDetection, 0,
                            RecoveryStrategy::kAuto);
  const std::vector<Payload> shared(n, 9);
  std::vector<Payload> best(static_cast<std::size_t>(64) * n, kNoPayload);
  BatchOutcome out;
  medium->resolve_batch_max(tx_mask, shared, 64,
                            KnowledgePlanes::lane_major(best, n), out);
  EXPECT_EQ(medium->phase_timers().constfold_rounds, 1u);
  EXPECT_EQ(medium->phase_timers().rowscan_rounds, 0u);
  EXPECT_EQ(medium->phase_timers().idplane_rounds, 0u);
}

// Satellite regression: the single-lane resolve() adapter must not leak a
// transmitter's payload into later rounds — mask1_ and payload1_ are both
// cleared in the epilogue, so repeated rounds with duplicate transmitter
// entries keep delivering each round's own (first-occurrence) payload.
TEST(MediumBackends, DuplicateTransmittersRepeatedRoundsStayFresh) {
  const Graph g = graph::star(6);
  for (const MediumKind kind : kAllKinds) {
    auto medium = make_medium(kind, g, CollisionModel::kNoDetection, 2);
    for (Payload round = 0; round < 4; ++round) {
      SparseOutcome out;
      // Duplicates every round, with round-varying payloads: first
      // occurrence wins, and nothing from earlier rounds survives.
      medium->resolve(std::vector<NodeId>{2, 2, 2},
                      std::vector<Payload>{100 + round, 7, 8}, out);
      EXPECT_EQ(out.transmitter_count, 1u) << to_string(kind);
      ASSERT_EQ(out.deliveries.size(), 1u) << to_string(kind);
      EXPECT_EQ(out.deliveries[0].from, 2u);
      EXPECT_EQ(out.deliveries[0].payload, 100 + round)
          << to_string(kind) << " round " << round;
      // Alternate transmitter between rounds so a stale payload for node 2
      // would be observable if the epilogue ever stopped clearing it.
      SparseOutcome other;
      medium->resolve(std::vector<NodeId>{3}, std::vector<Payload>{55}, other);
      ASSERT_EQ(other.deliveries.size(), 1u) << to_string(kind);
      EXPECT_EQ(other.deliveries[0].payload, 55u);
    }
  }
}

TEST(MediumBackends, ParseRecoveryStrategy) {
  EXPECT_EQ(parse_recovery_strategy("auto"), RecoveryStrategy::kAuto);
  EXPECT_EQ(parse_recovery_strategy("rowscan"), RecoveryStrategy::kRowScan);
  EXPECT_EQ(parse_recovery_strategy("idplanes"),
            RecoveryStrategy::kIdPlanes);
  EXPECT_THROW(parse_recovery_strategy("psychic"), std::invalid_argument);
  EXPECT_EQ(to_string(RecoveryStrategy::kIdPlanes), "idplanes");
}

TEST(MediumBackends, ParseKind) {
  EXPECT_EQ(parse_medium_kind("scalar"), MediumKind::kScalar);
  EXPECT_EQ(parse_medium_kind("bitslice"), MediumKind::kBitslice);
  EXPECT_EQ(parse_medium_kind("sharded"), MediumKind::kSharded);
  EXPECT_THROW(parse_medium_kind("quantum"), std::invalid_argument);
  EXPECT_EQ(to_string(MediumKind::kBitslice), "bitslice");
}

}  // namespace
}  // namespace radiocast::radio
