// Exhaustive verification of the interference rule — THE semantics every
// experiment depends on (Section 1.1 of the paper).
#include "radio/network.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace radiocast::radio {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;

std::vector<std::uint8_t> tx_mask(NodeId n,
                                  std::initializer_list<NodeId> who) {
  std::vector<std::uint8_t> m(n, 0);
  for (NodeId v : who) m[v] = 1;
  return m;
}

std::vector<Payload> payloads(NodeId n, Payload base = 100) {
  std::vector<Payload> p(n);
  for (NodeId v = 0; v < n; ++v) p[v] = base + v;
  return p;
}

TEST(Network, SingleTransmitterDelivers) {
  // star: 0 center, 1..3 leaves
  const Graph g = graph::star(4);
  Network net(g);
  const auto out = net.step(tx_mask(4, {1}), payloads(4));
  EXPECT_EQ(out.reception[0], Reception::kMessage);
  EXPECT_EQ(out.received_payload[0], 101u);
  EXPECT_EQ(out.delivered_count, 1u);
  EXPECT_EQ(out.collided_count, 0u);
}

TEST(Network, TwoTransmittersCollideAtCommonNeighbor) {
  const Graph g = graph::star(4);
  Network net(g);
  const auto out = net.step(tx_mask(4, {1, 2}), payloads(4));
  // Centre hears nothing and CANNOT distinguish it from silence.
  EXPECT_EQ(out.reception[0], Reception::kSilence);
  EXPECT_EQ(out.collided_count, 1u);
  EXPECT_EQ(out.delivered_count, 0u);
}

TEST(Network, SilenceWhenNoneTransmit) {
  const Graph g = graph::star(4);
  Network net(g);
  const auto out = net.step(tx_mask(4, {}), payloads(4));
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(out.reception[v], Reception::kSilence);
  }
  EXPECT_EQ(out.transmitter_count, 0u);
}

TEST(Network, TransmitterNeverReceives) {
  // Half-duplex: 0-1 edge, both transmit; neither receives.
  const Graph g = graph::path(2);
  Network net(g);
  const auto out = net.step(tx_mask(2, {0, 1}), payloads(2));
  EXPECT_EQ(out.reception[0], Reception::kSilence);
  EXPECT_EQ(out.reception[1], Reception::kSilence);
  EXPECT_EQ(out.delivered_count, 0u);
}

TEST(Network, TransmitterWithOneTransmittingNeighborStillDeaf) {
  // 0-1-2 path, 0 and 1 transmit: node 2 hears 1; node 0 is transmitting
  // and must not hear 1.
  const Graph g = graph::path(3);
  Network net(g);
  const auto out = net.step(tx_mask(3, {0, 1}), payloads(3));
  EXPECT_EQ(out.reception[2], Reception::kMessage);
  EXPECT_EQ(out.received_payload[2], 101u);
  EXPECT_EQ(out.reception[0], Reception::kSilence);
}

TEST(Network, NonNeighborsDoNotInterfere) {
  // 0-1, 2-3 disjoint edges; both 0 and 2 transmit.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  Network net(g);
  const auto out = net.step(tx_mask(4, {0, 2}), payloads(4));
  EXPECT_EQ(out.reception[1], Reception::kMessage);
  EXPECT_EQ(out.received_payload[1], 100u);
  EXPECT_EQ(out.reception[3], Reception::kMessage);
  EXPECT_EQ(out.received_payload[3], 102u);
}

TEST(Network, CollisionTruthTableOnTriangleWithPendant) {
  // Graph: triangle 0-1-2 plus pendant 3 attached to 0. Enumerate ALL 16
  // transmit patterns and check each listener against first principles.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(0, 3);
  const Graph g = b.build();
  Network net(g);
  const auto pay = payloads(4);
  for (std::uint32_t mask = 0; mask < 16; ++mask) {
    std::vector<std::uint8_t> tx(4, 0);
    for (NodeId v = 0; v < 4; ++v) tx[v] = (mask >> v) & 1;
    const auto out = net.step(tx, pay);
    for (NodeId v = 0; v < 4; ++v) {
      std::uint32_t tx_nb = 0;
      Payload expect_pay = kNoPayload;
      for (NodeId u : g.neighbors(v)) {
        if (tx[u]) {
          ++tx_nb;
          expect_pay = pay[u];
        }
      }
      if (tx[v] || tx_nb != 1) {
        EXPECT_EQ(out.reception[v], Reception::kSilence)
            << "mask=" << mask << " v=" << v;
      } else {
        EXPECT_EQ(out.reception[v], Reception::kMessage)
            << "mask=" << mask << " v=" << v;
        EXPECT_EQ(out.received_payload[v], expect_pay);
      }
    }
  }
}

TEST(Network, DetectionModelReportsCollision) {
  const Graph g = graph::star(4);
  Network net(g, CollisionModel::kDetection);
  const auto out = net.step(tx_mask(4, {1, 2}), payloads(4));
  EXPECT_EQ(out.reception[0], Reception::kCollision);
}

TEST(Network, NoDetectionModelHidesCollision) {
  const Graph g = graph::star(4);
  Network net(g, CollisionModel::kNoDetection);
  const auto out = net.step(tx_mask(4, {1, 2, 3}), payloads(4));
  EXPECT_EQ(out.reception[0], Reception::kSilence);
  EXPECT_EQ(out.collided_count, 1u);  // counted internally either way
}

TEST(Network, CountersAccumulate) {
  const Graph g = graph::path(3);
  Network net(g);
  net.step(tx_mask(3, {0}), payloads(3));
  net.step(tx_mask(3, {0, 2}), payloads(3));
  EXPECT_EQ(net.rounds_elapsed(), 2u);
  EXPECT_EQ(net.total_transmissions(), 3u);
  EXPECT_EQ(net.total_deliveries(), 1u + 0u);  // round2: node1 collides
  EXPECT_EQ(net.total_collisions(), 1u);
  net.reset_counters();
  EXPECT_EQ(net.rounds_elapsed(), 0u);
  EXPECT_EQ(net.total_transmissions(), 0u);
}

TEST(Network, SizeMismatchThrows) {
  const Graph g = graph::path(3);
  Network net(g);
  std::vector<std::uint8_t> tx(2, 0);
  std::vector<Payload> pay(3, 0);
  RoundOutcome out;
  EXPECT_THROW(net.step(tx, pay, out), std::invalid_argument);
}

// --- step_sparse must agree exactly with the dense rule -------------------

TEST(NetworkSparse, AgreesWithDenseOnRandomRounds) {
  util::Rng rng(99);
  const Graph g = graph::gnp(120, 0.05, rng);
  Network dense(g), sparse(g);
  const NodeId n = g.node_count();
  for (int round = 0; round < 50; ++round) {
    std::vector<std::uint8_t> tx(n, 0);
    std::vector<Payload> pay(n, kNoPayload);
    std::vector<graph::NodeId> tx_nodes;
    std::vector<Payload> tx_pay;
    for (NodeId v = 0; v < n; ++v) {
      if (rng.bernoulli(0.1)) {
        tx[v] = 1;
        pay[v] = 1000 + v;
        tx_nodes.push_back(v);
        tx_pay.push_back(pay[v]);
      }
    }
    const auto d = dense.step(tx, pay);
    Network::SparseOutcome s;
    sparse.step_sparse(tx_nodes, tx_pay, s);
    EXPECT_EQ(s.transmitter_count, d.transmitter_count);
    EXPECT_EQ(s.collided_count, d.collided_count);
    EXPECT_EQ(s.deliveries.size(), d.delivered_count);
    for (const auto& del : s.deliveries) {
      EXPECT_EQ(d.reception[del.node], Reception::kMessage);
      EXPECT_EQ(d.received_payload[del.node], del.payload);
      EXPECT_TRUE(g.has_edge(del.node, del.from));
    }
  }
}

TEST(NetworkSparse, DeduplicatesTransmitters) {
  const Graph g = graph::path(2);
  Network net(g);
  Network::SparseOutcome out;
  net.step_sparse({0, 0, 0}, {5, 5, 5}, out);
  EXPECT_EQ(out.transmitter_count, 1u);
  ASSERT_EQ(out.deliveries.size(), 1u);
  EXPECT_EQ(out.deliveries[0].node, 1u);
  EXPECT_EQ(out.deliveries[0].payload, 5u);
}

TEST(NetworkSparse, HalfDuplexRespected) {
  const Graph g = graph::path(2);
  Network net(g);
  Network::SparseOutcome out;
  net.step_sparse({0, 1}, {5, 6}, out);
  EXPECT_TRUE(out.deliveries.empty());
}

TEST(NetworkSparse, MismatchThrows) {
  const Graph g = graph::path(3);
  Network net(g);
  Network::SparseOutcome out;
  std::vector<graph::NodeId> tx{0};
  std::vector<Payload> pay;
  EXPECT_THROW(net.step_sparse(tx, pay, out), std::invalid_argument);
}

}  // namespace
}  // namespace radiocast::radio
