// Per-node protocol implementations (baselines::protocols) run through the
// Engine: correctness, round-complexity shape, and cross-validation
// against the vectorised algorithm cores.
#include "baselines/protocols.hpp"

#include <gtest/gtest.h>

#include "baselines/decay_broadcast.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "radio/engine.hpp"
#include "schedule/decay.hpp"

namespace radiocast::baselines::protocols {
namespace {

template <typename P, typename... Args>
radio::EngineResult run_protocol(const graph::Graph& g, std::uint32_t d,
                                 graph::NodeId source, radio::Round budget,
                                 std::uint64_t seed, Args&&... args) {
  radio::Engine eng(g, d);
  util::Rng seeds(seed);
  eng.install(
      [&](graph::NodeId v) -> std::unique_ptr<radio::Protocol> {
        return std::make_unique<P>(v == source ? radio::Payload{99}
                                                : radio::kNoPayload,
                                   std::forward<Args>(args)...);
      },
      seeds);
  return eng.run(budget);
}

TEST(DecayBroadcastProtocol, InformsPath) {
  const auto g = graph::path(60);
  const auto r = run_protocol<DecayBroadcast>(g, 59, 0, 50000, 1);
  EXPECT_TRUE(r.all_done);
}

TEST(DecayBroadcastProtocol, InformsRandomGeometric) {
  util::Rng rng(2);
  const auto g = graph::random_geometric(200, 0.1, rng);
  const auto d = graph::diameter_double_sweep(g);
  const auto r = run_protocol<DecayBroadcast>(g, d, 0, 100000, 2);
  EXPECT_TRUE(r.all_done);
}

TEST(DecayBroadcastProtocol, RoundCountMatchesVectorisedCore) {
  // The OO protocol and the vectorised baselines::decay_broadcast are the
  // same algorithm; with independent randomness their round counts must
  // agree within a small factor (both ~ (D + log n) log n).
  const auto g = graph::path(150);
  const auto oo = run_protocol<DecayBroadcast>(g, 149, 0, 200000, 3);
  ASSERT_TRUE(oo.all_done);
  const auto vec =
      decay_broadcast(g, 149, {{0, 99}}, bgi_params(g.node_count()), 3);
  ASSERT_TRUE(vec.success);
  const double ratio =
      static_cast<double>(oo.rounds) / static_cast<double>(vec.rounds);
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 3.0);
}

TEST(ShallowDecayProtocol, InformsCliquePath) {
  const auto g = graph::path_of_cliques(30, 5);
  const auto d = graph::diameter_double_sweep(g);
  const auto r = run_protocol<ShallowDecayBroadcast>(g, d, 0, 200000, 4);
  EXPECT_TRUE(r.all_done);
}

TEST(ShallowDecayProtocol, FasterThanFullDecayOnLowCongestion) {
  const auto g = graph::path_of_cliques(50, 4);
  const auto d = graph::diameter_double_sweep(g);
  const auto shallow =
      run_protocol<ShallowDecayBroadcast>(g, d, 0, 400000, 5);
  const auto full = run_protocol<DecayBroadcast>(g, d, 0, 400000, 5);
  ASSERT_TRUE(shallow.all_done);
  ASSERT_TRUE(full.all_done);
  EXPECT_LT(shallow.rounds, full.rounds);
}

TEST(RoundRobinProtocol, DeterministicCompletionWithinND) {
  const auto g = graph::path(40);
  const auto r = run_protocol<RoundRobinBroadcast>(
      g, 39, 0, static_cast<radio::Round>(40) * 40 + 1, 6);
  EXPECT_TRUE(r.all_done);
  EXPECT_LE(r.rounds, 40u * 40u);
  EXPECT_EQ(r.collisions, 0u);  // one transmitter per round, ever
}

TEST(RoundRobinProtocol, SameRoundsForSameInstance) {
  const auto g = graph::cycle(30);
  const auto a = run_protocol<RoundRobinBroadcast>(g, 15, 3, 10000, 7);
  const auto b = run_protocol<RoundRobinBroadcast>(g, 15, 3, 10000, 99);
  ASSERT_TRUE(a.all_done);
  // Fully deterministic: the seed must not matter at all.
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(BeepWave, LayersEqualBfsDistances) {
  util::Rng rng(8);
  const auto g = graph::random_geometric(150, 0.12, rng);
  const auto d = graph::diameter_double_sweep(g);
  radio::Engine eng(g, d, radio::CollisionModel::kDetection);
  util::Rng seeds(8);
  eng.install(
      [](graph::NodeId v) -> std::unique_ptr<radio::Protocol> {
        return std::make_unique<BeepWave>(v == 0);
      },
      seeds);
  const auto r = eng.run(static_cast<radio::Round>(d) + 2);
  EXPECT_TRUE(r.all_done);
  const auto dist = graph::bfs_distances(g, 0);
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    const auto& p = static_cast<const BeepWave&>(eng.protocol(v));
    EXPECT_EQ(p.layer(), dist[v]) << v;
  }
}

TEST(BeepWave, RequiresCollisionDetection) {
  // Without CD, simultaneous beeps cancel and the wave stalls wherever two
  // frontier nodes share a listener. On a "theta" gadget this is
  // deterministic: 0 connected to 1 and 2; both connected to 3.
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  const auto g = b.build();
  radio::Engine eng(g, 2, radio::CollisionModel::kNoDetection);
  util::Rng seeds(9);
  eng.install(
      [](graph::NodeId v) -> std::unique_ptr<radio::Protocol> {
        return std::make_unique<BeepWave>(v == 0);
      },
      seeds);
  const auto r = eng.run(50);
  EXPECT_FALSE(r.all_done);  // node 3 never hears a clean beep
  const auto& p3 = static_cast<const BeepWave&>(eng.protocol(3));
  EXPECT_EQ(p3.layer(), BeepWave::kNoLayer);
}

TEST(LayeredCdBroadcast, InformsEveryoneUnderCd) {
  util::Rng rng(10);
  const auto g = graph::random_geometric(200, 0.1, rng);
  const auto d = graph::diameter_double_sweep(g);
  radio::Engine eng(g, d, radio::CollisionModel::kDetection);
  util::Rng seeds(10);
  eng.install(
      [](graph::NodeId v) -> std::unique_ptr<radio::Protocol> {
        return std::make_unique<LayeredCdBroadcast>(
            v == 0 ? radio::Payload{7} : radio::kNoPayload);
      },
      seeds);
  const auto r = eng.run(200000);
  EXPECT_TRUE(r.all_done);
}

TEST(LayeredCdBroadcast, LayeringHoldsOnPath) {
  // On a path the layered schedule is collision-free after the wave; the
  // message must advance briskly (one layer per <= 3*lambda rounds).
  const auto g = graph::path(50);
  radio::Engine eng(g, 49, radio::CollisionModel::kDetection);
  util::Rng seeds(11);
  eng.install(
      [](graph::NodeId v) -> std::unique_ptr<radio::Protocol> {
        return std::make_unique<LayeredCdBroadcast>(
            v == 0 ? radio::Payload{7} : radio::kNoPayload);
      },
      seeds);
  const auto r = eng.run(100000);
  ASSERT_TRUE(r.all_done);
  const std::uint64_t lambda = schedule::decay_round_length(50);
  EXPECT_LT(r.rounds, 51 + 49ull * 3 * lambda * 4);
}

}  // namespace
}  // namespace radiocast::baselines::protocols
